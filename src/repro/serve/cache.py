"""Thread-safe LRU cache for tiles and query results.

One generic cache class serves both of the server's caches (the tile
pyramid cache and the query-result cache) so eviction, invalidation and
accounting behave identically everywhere.  Values are treated as
immutable by convention — the service caches frozen results
(:class:`~repro.raster.DensityGrid` tile arrays, summary dicts) and
never mutates what it put in.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Callable, Hashable

from ..errors import ParameterError

__all__ = ["LRUCache"]

_MISSING = object()


class LRUCache:
    """Bounded mapping with least-recently-used eviction and hit accounting.

    ``get`` refreshes recency; ``put`` evicts the stalest entry once
    ``capacity`` is exceeded.  :meth:`invalidate` supports both exact-key
    removal and predicate sweeps — the hook the streaming dirty-tile
    ledger drives (evict exactly the tiles that changed, keep the rest).
    """

    def __init__(self, capacity: int):
        capacity = int(capacity)
        if capacity < 1:
            raise ParameterError(
                f"cache capacity must be positive, got {capacity}"
            )
        self.capacity = capacity
        self._lock = threading.Lock()
        self._data: OrderedDict[Hashable, object] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def get(self, key: Hashable, default=None):
        """The cached value (refreshing its recency), else ``default``."""
        with self._lock:
            value = self._data.get(key, _MISSING)
            if value is _MISSING:
                self.misses += 1
                return default
            self._data.move_to_end(key)
            self.hits += 1
            return value

    def put(self, key: Hashable, value) -> None:
        """Insert/refresh an entry, evicting the LRU tail past capacity."""
        with self._lock:
            self._data[key] = value
            self._data.move_to_end(key)
            while len(self._data) > self.capacity:
                self._data.popitem(last=False)
                self.evictions += 1

    def invalidate(self, key: Hashable = None,
                   predicate: Callable[[Hashable], bool] | None = None) -> int:
        """Drop entries; returns how many were removed.

        With ``key``, removes that entry if present.  With ``predicate``,
        removes every entry whose key satisfies it (how dirty-tile
        invalidation sweeps one dataset's changed tiles without touching
        the rest of the pyramid).  Exactly one of the two must be given.
        """
        if (key is None) == (predicate is None):
            raise ParameterError(
                "invalidate takes exactly one of key/predicate"
            )
        with self._lock:
            if predicate is None:
                removed = 1 if self._data.pop(key, _MISSING) is not _MISSING else 0
            else:
                doomed = [k for k in self._data if predicate(k)]
                for k in doomed:
                    del self._data[k]
                removed = len(doomed)
            self.invalidations += removed
            return removed

    def clear(self) -> int:
        """Drop every entry; returns how many there were."""
        with self._lock:
            n = len(self._data)
            self._data.clear()
            self.invalidations += n
            return n

    def stats(self) -> dict:
        """Point-in-time accounting: size, hits, misses, evictions."""
        with self._lock:
            return {
                "size": len(self._data),
                "capacity": self.capacity,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "invalidations": self.invalidations,
            }
