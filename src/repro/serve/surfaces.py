"""Streaming-maintained KDV surfaces aligned to the serving tile lattice.

Each :class:`MaintainedSurface` wraps one :class:`repro.stream.StreamingKDV`
whose raster is ``tile_px * 2**zoom`` pixels square with a dirty-tile
ledger of exactly ``tile_px``-pixel tiles — so the ledger lattice **is**
the serving tile lattice, and "tile ``(tx, ty)`` is dirty" translates
one-for-one into "evict cache key ``(tx, ty)``".  That alignment is the
whole trick behind streaming-driven invalidation: an ingest batch
touches the kernel patches of its new events only, the ledger compares
those candidate tiles pixel-for-pixel, and the service evicts exactly
the tiles that changed while the rest of the cached pyramid stays warm.

Surfaces are additions-only consumers (the serving dataset is
append-only), so the accumulator's insert/remove drift never grows and
the re-scatter escape hatch stays dormant; ``rescatter_ratio=None``
makes that explicit.
"""

from __future__ import annotations

import threading

import numpy as np

from ..errors import ParameterError, ServeError
from ..geometry import BoundingBox
from ..raster import DensityGrid
from ..stream import StreamDelta, StreamingKDV

__all__ = ["MaintainedSurface"]

_EMPTY_POINTS = np.empty((0, 2), dtype=np.float64)
_EMPTY_TIMES = np.empty(0, dtype=np.float64)


class MaintainedSurface:
    """One dataset's KDV pyramid level, kept current by ingest deltas.

    Parameters
    ----------
    dataset:
        The :class:`~repro.serve.datasets.Dataset` this surface tracks
        (fixed window; append-only contents).
    zoom:
        Pyramid level; the raster is ``tile_px * 2**zoom`` square and the
        tile lattice is ``2**zoom x 2**zoom``.
    bandwidth, kernel, dtype:
        KDV parameters, fixed for the surface's lifetime — the service
        keys surfaces by them.
    workers, backend:
        Forwarded to the streaming KDV for its (dormant) re-scatter path.
    """

    def __init__(self, dataset, zoom: int, bandwidth: float,
                 kernel: str = "quartic", tile_px: int = 64,
                 dtype=None, workers: int | None = None,
                 backend: str | None = None):
        zoom = int(zoom)
        if zoom < 0:
            raise ParameterError(f"zoom must be >= 0, got {zoom}")
        tile_px = int(tile_px)
        if tile_px < 1:
            raise ParameterError(f"tile_px must be positive, got {tile_px}")
        self.zoom = zoom
        self.tile_px = tile_px
        npx = tile_px * (2 ** zoom)
        self._kdv = StreamingKDV(
            dataset.bbox, (npx, npx), bandwidth, kernel=kernel,
            tile=tile_px, rescatter_ratio=None,
            dtype=np.float64 if dtype is None else dtype,
            workers=workers, backend=backend,
        )
        self._lock = threading.Lock()
        self._scattered = 0  # dataset points already on the surface
        self._version = -1   # dataset version last synced (-1 = never)

    @property
    def npx(self) -> int:
        """Raster side length in pixels (``tile_px * 2**zoom``)."""
        return self._kdv.nx

    @property
    def tiles_per_side(self) -> int:
        """Tile lattice side length (``2**zoom``)."""
        return self._kdv.ledger.tiles_nx

    @property
    def bandwidth(self) -> float:
        """The fixed KDV bandwidth of this surface."""
        return self._kdv.bandwidth

    def sync(self, dataset) -> tuple[tuple[int, int], ...]:
        """Scatter any dataset points this surface has not seen yet.

        Returns the ``(tx, ty)`` tiles whose pixels actually changed
        (read through the ledger's public
        :meth:`~repro.stream.DirtyTileLedger.dirty_tiles` accessor, then
        cleared) — exactly the cache entries the service must evict.
        Returns ``()`` when already current, which is the hot no-op path
        of every cached tile request.
        """
        with self._lock:
            if dataset.version == self._version:
                return ()
            new_pts, new_ts = dataset.points_since(self._scattered)
            delta = StreamDelta(
                entered_points=np.asarray(new_pts, dtype=np.float64),
                entered_times=np.asarray(new_ts, dtype=np.float64),
                left_points=_EMPTY_POINTS,
                left_times=_EMPTY_TIMES,
                window=dataset,
            )
            self._kdv.apply(delta)
            self._scattered += int(new_pts.shape[0])
            self._version = dataset.version
            ledger = self._kdv.ledger
            dirty = ledger.dirty_tiles()
            ledger.clear_dirty()
            return dirty

    def tile_bounds_px(self, tx: int, ty: int) -> tuple[int, int, int, int]:
        """Pixel bounds of tile ``(tx, ty)``; bad addresses raise 404s."""
        ledger = self._kdv.ledger
        if not (0 <= tx < ledger.tiles_nx and 0 <= ty < ledger.tiles_ny):
            raise ServeError(
                f"tile ({tx}, {ty}) outside the "
                f"{ledger.tiles_nx}x{ledger.tiles_ny} lattice at zoom "
                f"{self.zoom}"
            )
        return ledger.bounds(tx, ty)

    def tile_bbox(self, tx: int, ty: int) -> BoundingBox:
        """Geographic extent of tile ``(tx, ty)``."""
        x0, x1, y0, y1 = self.tile_bounds_px(tx, ty)
        bbox = self._kdv.bbox
        dx, dy = bbox.pixel_size(self._kdv.nx, self._kdv.ny)
        return BoundingBox(
            bbox.xmin + x0 * dx, bbox.ymin + y0 * dy,
            bbox.xmin + x1 * dx, bbox.ymin + y1 * dy,
        )

    def tile_values(self, tx: int, ty: int) -> np.ndarray:
        """Density values of tile ``(tx, ty)``, ``(tile_px, tile_px)``.

        Clamped at zero like :meth:`StreamingKDV.snapshot` (float
        cancellation residue must not leak negative densities to
        clients); always a fresh array, safe to cache.
        """
        x0, x1, y0, y1 = self.tile_bounds_px(tx, ty)
        with self._lock:
            view = self._kdv.accumulator.surface_view(0)
            return np.maximum(view[x0:x1, y0:y1], 0.0)

    def tile_grid(self, tx: int, ty: int) -> DensityGrid:
        """Tile ``(tx, ty)`` as a standalone :class:`DensityGrid`."""
        return DensityGrid(self.tile_bbox(tx, ty), self.tile_values(tx, ty))

    def grid(self) -> DensityGrid:
        """The full surface as a :class:`DensityGrid` (diagnostics attached)."""
        with self._lock:
            return self._kdv.snapshot()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MaintainedSurface(zoom={self.zoom}, {self.npx}px, "
            f"b={self.bandwidth:g}, synced_version={self._version})"
        )
