"""Server-side datasets: named, growable point sets with stable identity.

A request (:mod:`repro.core.request`) names a dataset; this module is
what the name resolves to.  Each :class:`Dataset` carries two distinct
hashes, and the distinction is what makes streaming cache invalidation
work:

* ``identity`` — fixed at creation, stable across ingests.  Tile-cache
  keys use it, so an ingest does **not** wipe the whole pyramid; instead
  the maintained surfaces report exactly which tiles changed and only
  those entries are evicted.
* :meth:`Dataset.content_fingerprint` — a running hash advanced by every
  ingest batch.  Query-result cache keys use it, so results computed
  over stale contents can never be served again (they simply stop
  matching and age out of the LRU).

Ingests are append-only — the window semantics of a live feed are the
business of :mod:`repro.stream`; the serving dataset is the ever-growing
ground truth those windows slide over.
"""

from __future__ import annotations

import hashlib
import threading

import numpy as np

from .._validation import as_points
from ..errors import DataError, ParameterError, ServeError
from ..geometry import BoundingBox

__all__ = ["Dataset", "DatasetStore"]


def _bbox_tuple(bbox: BoundingBox) -> tuple[float, float, float, float]:
    """``(xmin, ymin, xmax, ymax)`` — the request wire order."""
    return (bbox.xmin, bbox.ymin, bbox.xmax, bbox.ymax)


def _as_times(times, n: int) -> np.ndarray:
    """Validated float64 times of length ``n`` (arrival index by default)."""
    if times is None:
        return np.arange(n, dtype=np.float64)
    ts = np.asarray(times, dtype=np.float64).reshape(-1)
    if ts.shape[0] != n:
        raise DataError(
            f"times length {ts.shape[0]} does not match {n} points"
        )
    if not np.all(np.isfinite(ts)):
        raise DataError("times must be finite")
    return ts


class Dataset:
    """One named point set: fixed window, append-only contents.

    Thread-safe: ingests append under a lock, readers get defensive
    copies of the live contents.  ``version`` counts ingest batches
    (creation is version 0); ``window`` (the ``points`` property) is what
    :class:`~repro.serve.surfaces.MaintainedSurface` scatters and what
    query execution feeds to :func:`~repro.core.request.execute_request`.
    """

    def __init__(self, name: str, points, times=None,
                 bbox: BoundingBox | None = None, margin: float = 0.05):
        if not name or not isinstance(name, str):
            raise ParameterError(f"dataset name must be a non-empty string, got {name!r}")
        pts = as_points(points)
        if pts.shape[0] == 0:
            raise DataError("a dataset needs at least one point")
        if bbox is None:
            bbox = BoundingBox.of_points(pts, margin=margin)
        elif not isinstance(bbox, BoundingBox):
            bbox = BoundingBox(*tuple(float(v) for v in bbox))
        self.name = name
        self.bbox = bbox
        self._lock = threading.Lock()
        self._pts = pts.copy()
        self._ts = _as_times(times, pts.shape[0])
        self.version = 0
        seed = hashlib.sha256()
        seed.update(name.encode("utf-8"))
        seed.update(np.asarray(_bbox_tuple(bbox), dtype=np.float64).tobytes())
        seed.update(np.ascontiguousarray(self._pts).tobytes())
        self.identity = seed.hexdigest()[:16]
        self._content = seed.copy()

    @property
    def n(self) -> int:
        """Number of points currently in the dataset."""
        with self._lock:
            return int(self._pts.shape[0])

    @property
    def points(self) -> np.ndarray:
        """The full ``(n, 2)`` contents (a defensive copy)."""
        with self._lock:
            return self._pts.copy()

    @property
    def times(self) -> np.ndarray:
        """Event times aligned with :attr:`points` (a copy)."""
        with self._lock:
            return self._ts.copy()

    def points_since(self, start: int) -> tuple[np.ndarray, np.ndarray]:
        """``(points, times)`` appended at index ``start`` onward (copies).

        The incremental feed for surface maintenance: a surface that has
        scattered the first ``start`` points catches up by scattering
        exactly this suffix.
        """
        with self._lock:
            return self._pts[start:].copy(), self._ts[start:].copy()

    def content_fingerprint(self) -> str:
        """Hash of the current contents, advanced by every ingest."""
        with self._lock:
            return self._content.hexdigest()[:16]

    def ingest(self, points, times=None) -> int:
        """Append a batch; returns the number of points added.

        Points outside the dataset's fixed window are rejected — the
        window is part of the dataset's identity (every maintained
        surface is rasterised over it), so growing it silently would
        corrupt every cached tile.
        """
        pts = as_points(points)
        if pts.shape[0] == 0:
            return 0
        inside = self.bbox.contains(pts)
        if not np.all(inside):
            raise DataError(
                f"{int((~inside).sum())} of {pts.shape[0]} ingested points "
                f"fall outside the dataset window {_bbox_tuple(self.bbox)}"
            )
        ts = _as_times(times, pts.shape[0])
        with self._lock:
            self._pts = np.vstack([self._pts, pts])
            self._ts = np.concatenate([self._ts, ts])
            self.version += 1
            self._content.update(np.ascontiguousarray(pts).tobytes())
        return int(pts.shape[0])

    def summary(self) -> dict:
        """JSON-safe description (the ``/v1/datasets`` row)."""
        with self._lock:
            n = int(self._pts.shape[0])
            version = self.version
            content = self._content.hexdigest()[:16]
        return {
            "name": self.name,
            "n": n,
            "version": version,
            "identity": self.identity,
            "content": content,
            "bbox": list(_bbox_tuple(self.bbox)),
        }


class DatasetStore:
    """Registry of named datasets behind one lock."""

    def __init__(self):
        self._lock = threading.Lock()
        self._datasets: dict[str, Dataset] = {}

    def create(self, name: str, points, times=None,
               bbox: BoundingBox | None = None, margin: float = 0.05
               ) -> Dataset:
        """Register a new dataset; duplicate names are rejected."""
        dataset = Dataset(name, points, times=times, bbox=bbox, margin=margin)
        with self._lock:
            if name in self._datasets:
                raise ParameterError(f"dataset {name!r} already exists")
            self._datasets[name] = dataset
        return dataset

    def get(self, name: str) -> Dataset:
        """The named dataset; unknown names raise :class:`ServeError` (404)."""
        with self._lock:
            dataset = self._datasets.get(name)
        if dataset is None:
            raise ServeError(
                f"unknown dataset {name!r}; known: "
                f"{', '.join(sorted(self._datasets)) or '(none)'}"
            )
        return dataset

    def names(self) -> tuple[str, ...]:
        """Registered dataset names, sorted."""
        with self._lock:
            return tuple(sorted(self._datasets))

    def summaries(self) -> list[dict]:
        """JSON-safe rows for every dataset, sorted by name."""
        with self._lock:
            datasets = [self._datasets[k] for k in sorted(self._datasets)]
        return [d.summary() for d in datasets]
