"""Thread-safe service metrics: counters, gauges and latency percentiles.

The ``/stats`` endpoint's substrate.  Counters are monotonic (requests,
cache hits, coalesced waiters, executions); gauges are last-write floats
(queue depth); latencies keep a fixed-size ring of recent observations
per endpoint, from which p50/p95 are computed on demand — a bounded-
memory approximation that tracks the current traffic mix rather than
lifetime history, which is what an operator watching a server wants.

All timing flows through :class:`repro.obs.Stopwatch` (the library's one
sanctioned ``perf_counter`` user, reprolint RPR010).
"""

from __future__ import annotations

import threading

import numpy as np

from ..errors import ParameterError

__all__ = ["LatencyRing", "ServeStats"]


class LatencyRing:
    """Fixed-capacity ring buffer of recent latencies (seconds)."""

    def __init__(self, capacity: int = 1024):
        capacity = int(capacity)
        if capacity < 1:
            raise ParameterError(
                f"latency ring capacity must be positive, got {capacity}"
            )
        self._buf = np.zeros(capacity, dtype=np.float64)
        self._idx = 0
        self.count = 0

    def observe(self, seconds: float) -> None:
        """Record one latency observation (caller holds the stats lock)."""
        self._buf[self._idx] = seconds
        self._idx = (self._idx + 1) % self._buf.shape[0]
        self.count += 1

    def percentiles(self, qs=(50.0, 95.0)) -> dict[str, float]:
        """``{"p50": ..., "p95": ...}`` in milliseconds over the live window."""
        live = min(self.count, self._buf.shape[0])
        if live == 0:
            return {f"p{q:g}": 0.0 for q in qs}
        window = self._buf[:live]
        values = np.percentile(window, qs)
        return {f"p{q:g}": float(v) * 1e3 for q, v in zip(qs, values)}


class ServeStats:
    """One server's metrics: named counters, gauges and per-endpoint latency.

    Every method is safe to call from any handler thread; reads
    (:meth:`snapshot`) see a consistent point-in-time view.
    """

    def __init__(self, latency_window: int = 1024):
        self._lock = threading.Lock()
        self._counters: dict[str, int] = {}
        self._gauges: dict[str, float] = {}
        self._latency: dict[str, LatencyRing] = {}
        self._latency_window = int(latency_window)

    def incr(self, name: str, n: int = 1) -> None:
        """Add ``n`` to the named monotonic counter."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + int(n)

    def gauge(self, name: str, value: float) -> None:
        """Set the named gauge to ``value`` (last write wins)."""
        with self._lock:
            self._gauges[name] = float(value)

    def adjust_gauge(self, name: str, delta: float) -> float:
        """Add ``delta`` to a gauge and return the new value (atomic)."""
        with self._lock:
            value = self._gauges.get(name, 0.0) + float(delta)
            self._gauges[name] = value
            return value

    def observe_latency(self, endpoint: str, seconds: float) -> None:
        """Record one request latency under ``endpoint``."""
        with self._lock:
            ring = self._latency.get(endpoint)
            if ring is None:
                ring = self._latency[endpoint] = LatencyRing(
                    self._latency_window
                )
            ring.observe(seconds)

    def counter(self, name: str, default: int = 0) -> int:
        """Current value of one counter."""
        with self._lock:
            return self._counters.get(name, default)

    def snapshot(self) -> dict:
        """Point-in-time JSON-safe view: counters, gauges, latency percentiles.

        Derived ratios the issue's operators actually watch — tile-cache
        hit rate and coalesce rate — are computed here so every client of
        ``/stats`` sees the same arithmetic.
        """
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            latency = {
                name: {"count": ring.count, **ring.percentiles()}
                for name, ring in self._latency.items()
            }
        hits = counters.get("tile.cache_hit", 0)
        misses = counters.get("tile.cache_miss", 0)
        lookups = hits + misses
        return {
            "counters": counters,
            "gauges": gauges,
            "latency_ms": latency,
            "tile_cache_hit_rate": (hits / lookups) if lookups else 0.0,
            "coalesced_total": counters.get("coalesce.waited", 0),
        }
