"""Analytics service layer: the paper's serving story made runnable.

The paper frames large-scale geospatial analytics as a *serving*
problem — KDV-Explorer-style front-ends where millions of users pan and
zoom over shared datasets while new events stream in.  This package is
that layer over the library's tools:

* :class:`AnalyticsService` — the transport-free core: datasets
  (:class:`DatasetStore`), an LRU tile-pyramid cache invalidated
  tile-exactly by the streaming dirty-tile ledger, a query-result cache
  keyed by dataset content, request coalescing (identical concurrent
  queries execute once), bounded admission, and per-request traces
  feeding a ``/stats`` snapshot.
* :func:`create_server` — an :mod:`http.server` front-end exposing
  tiles, queries, ingest and stats over JSON (plus PPM tiles for eyes).
* ``repro serve`` — the CLI entry point that boots the above.

Everything rides the unified Request/Plan/Execute API of
:mod:`repro.core.request`: a wire dict becomes an
:class:`~repro.core.request.AnalyticsRequest`, its canonical fingerprint
keys the caches and the coalescer, and execution goes through the same
:func:`~repro.core.request.execute_request` path library callers use.
"""

from .cache import LRUCache
from .coalesce import Coalescer
from .datasets import Dataset, DatasetStore
from .frontend import ReproRequestHandler, create_server
from .service import AnalyticsService, ServeConfig, TileResult
from .stats import ServeStats
from .surfaces import MaintainedSurface

__all__ = [
    "AnalyticsService",
    "Coalescer",
    "Dataset",
    "DatasetStore",
    "LRUCache",
    "MaintainedSurface",
    "ReproRequestHandler",
    "ServeConfig",
    "ServeStats",
    "TileResult",
    "create_server",
]
