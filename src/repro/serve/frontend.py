"""Stdlib HTTP front-end over :class:`~repro.serve.service.AnalyticsService`.

A deliberately thin layer: parse the URL/body, call the transport-free
service, serialise the answer.  Concurrency comes from
:class:`http.server.ThreadingHTTPServer` (one thread per connection);
the service's admission semaphore bounds how many of those threads
execute analytics at once, and its coalescer collapses identical
concurrent queries — the HTTP layer adds no policy of its own.

Routes (all JSON unless noted):

=======  ===================================  =================================
Method   Path                                 Meaning
=======  ===================================  =================================
GET      ``/healthz``                         liveness probe
GET      ``/stats``                           service metrics snapshot
GET      ``/v1/datasets``                     dataset summary rows
POST     ``/v1/datasets/<name>``              create dataset from a point body
POST     ``/v1/ingest/<name>``                append a batch to a dataset
POST     ``/v1/query``                        run an analytics request dict
GET      ``/v1/tile/<name>/<z>/<x>/<y>.json`` density tile (values + bbox)
GET      ``/v1/tile/<name>/<z>/<x>/<y>.ppm``  the same tile as a PPM heatmap
=======  ===================================  =================================

Tile query parameters: ``bandwidth`` (required), ``kernel``, ``dtype``,
``colormap`` (PPM only).  Error mapping is uniform:
:class:`~repro.errors.ServeError` → 404,
any other :class:`~repro.errors.ReproError` → 400, everything else → 500,
all with a JSON ``{"error": ...}`` body.
"""

from __future__ import annotations

import json
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qsl, urlsplit

from ..errors import ParameterError, ReproError, ServeError
from ..raster import render_rgb
from .service import AnalyticsService

__all__ = ["create_server", "ReproRequestHandler"]

#: Upper bound on accepted request bodies (64 MiB of JSON points is far
#: beyond any sane ingest batch; bigger means a client error, not a load).
_MAX_BODY = 64 * 1024 * 1024


def _ppm_bytes(grid, colormap: str) -> bytes:
    """The grid rendered as a binary PPM image (the CLI's heatmap format)."""
    image = render_rgb(grid, colormap)
    h, w, _ = image.shape
    return f"P6\n{w} {h}\n255\n".encode("ascii") + image.tobytes()


class ReproRequestHandler(BaseHTTPRequestHandler):
    """Routes HTTP requests onto the bound :class:`AnalyticsService`.

    Bind a service with ``type("H", (ReproRequestHandler,), {"service":
    svc})`` or use :func:`create_server`, which does exactly that.
    """

    service: AnalyticsService  # injected by create_server
    protocol_version = "HTTP/1.1"
    server_version = "repro-serve"

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        """Access logging is the stats module's job; stay quiet on stderr."""

    # -- plumbing ----------------------------------------------------------

    def _send(self, status: int, body: bytes,
              content_type: str = "application/json") -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_json(self, status: int, payload) -> None:
        self._send(status, json.dumps(payload).encode("utf-8"))

    def _read_json(self):
        length = int(self.headers.get("Content-Length") or 0)
        if length <= 0:
            raise ParameterError("request body must be non-empty JSON")
        if length > _MAX_BODY:
            raise ParameterError(
                f"request body of {length} bytes exceeds the "
                f"{_MAX_BODY}-byte limit"
            )
        raw = self.rfile.read(length)
        try:
            return json.loads(raw)
        except json.JSONDecodeError as exc:
            raise ParameterError(f"request body is not valid JSON: {exc}") from exc

    def _dispatch(self, handler) -> None:
        """Run a route handler with the uniform error → status mapping."""
        try:
            handler()
        except ServeError as exc:
            self.service.stats.incr("http.404")
            self._send_json(404, {"error": str(exc)})
        except ReproError as exc:
            self.service.stats.incr("http.400")
            self._send_json(400, {"error": str(exc)})
        except BrokenPipeError:  # client went away mid-response
            self.service.stats.incr("http.disconnect")
        except Exception as exc:  # noqa: BLE001 - server must not die
            self.service.stats.incr("http.500")
            self._send_json(
                500, {"error": f"{type(exc).__name__}: {exc}"}
            )

    # -- routes ------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        """Dispatch GET routes."""
        self._dispatch(self._get)

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        """Dispatch POST routes."""
        self._dispatch(self._post)

    def _get(self) -> None:
        url = urlsplit(self.path)
        parts = [p for p in url.path.split("/") if p]
        query = dict(parse_qsl(url.query))
        if parts == ["healthz"]:
            self._send_json(200, {"ok": True})
            return
        if parts == ["stats"]:
            self._send_json(200, self.service.stats_snapshot())
            return
        if parts == ["v1", "datasets"]:
            self._send_json(200, {"datasets": self.service.datasets()})
            return
        if len(parts) == 6 and parts[:2] == ["v1", "tile"]:
            self._get_tile(parts[2:], query)
            return
        raise ServeError(f"no such resource: {url.path}")

    def _get_tile(self, parts: list[str], query: dict) -> None:
        name, z_raw, x_raw, y_raw = parts
        stem, _, fmt = y_raw.partition(".")
        fmt = fmt or "json"
        if fmt not in ("json", "ppm"):
            raise ParameterError(f"tile format must be json or ppm, got {fmt!r}")
        try:
            zoom, tx, ty = int(z_raw), int(x_raw), int(stem)
        except ValueError as exc:
            raise ParameterError(
                f"tile address must be integers, got /{z_raw}/{x_raw}/{stem}"
            ) from exc
        if "bandwidth" not in query:
            raise ParameterError("tile requests need a bandwidth parameter")
        try:
            bandwidth = float(query["bandwidth"])
        except ValueError as exc:
            raise ParameterError(
                f"bandwidth must be a number, got {query['bandwidth']!r}"
            ) from exc
        result = self.service.tile(
            name, zoom, tx, ty, bandwidth,
            kernel=query.get("kernel", "quartic"),
            dtype=query.get("dtype"),
        )
        if fmt == "json":
            self._send_json(200, result.to_payload())
            return
        from ..geometry import BoundingBox
        from ..raster import DensityGrid
        grid = DensityGrid(BoundingBox(*result.bbox), result.values)
        self._send(
            200, _ppm_bytes(grid, query.get("colormap", "heat")),
            content_type="image/x-portable-pixmap",
        )

    def _post(self) -> None:
        url = urlsplit(self.path)
        parts = [p for p in url.path.split("/") if p]
        if parts == ["v1", "query"]:
            self._send_json(200, self.service.query(self._read_json()))
            return
        if len(parts) == 3 and parts[:2] == ["v1", "datasets"]:
            body = self._read_json()
            summary = self.service.create_dataset(
                parts[2],
                body.get("points"),
                times=body.get("times"),
                bbox=tuple(body["bbox"]) if body.get("bbox") else None,
                margin=float(body.get("margin", 0.05)),
            )
            self._send_json(201, summary)
            return
        if len(parts) == 3 and parts[:2] == ["v1", "ingest"]:
            body = self._read_json()
            outcome = self.service.ingest(
                parts[2], body.get("points"), times=body.get("times")
            )
            self._send_json(200, outcome)
            return
        raise ServeError(f"no such resource: {url.path}")


def create_server(service: AnalyticsService, host: str = "127.0.0.1",
                  port: int = 0) -> ThreadingHTTPServer:
    """A ready-to-run threading HTTP server bound to ``service``.

    ``port=0`` binds an ephemeral port (read it back from
    ``server.server_address``) — what the tests and the CI smoke client
    use.  Call ``serve_forever()`` to block, or run it in a thread and
    ``shutdown()`` for a clean stop.
    """
    handler = type(
        "BoundReproRequestHandler", (ReproRequestHandler,),
        {"service": service},
    )
    server = ThreadingHTTPServer((host, int(port)), handler)
    server.daemon_threads = True
    return server
