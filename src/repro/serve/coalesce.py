"""Request coalescing: identical concurrent queries compute once.

The serving pattern the paper's workload motivates: when a popular
dashboard refreshes, hundreds of clients ask for the *same* tile in the
same instant.  Caching alone does not help the stampede — every miss
arrives before the first computation finishes.  The coalescer closes
that gap: the first caller for a key becomes the **leader** and
computes; every concurrent caller with the same canonical fingerprint
becomes a **follower**, blocks on the leader's completion event, and
receives the identical result object (or the leader's exception).

Keys are the canonical request fingerprints of
:meth:`repro.core.request.AnalyticsRequest.fingerprint` (plus dataset
content version), so "identical" means semantically identical, not
merely textually identical payloads.
"""

from __future__ import annotations

import threading
from typing import Callable, Hashable

__all__ = ["Coalescer"]

_PENDING = object()


class _Flight:
    """One in-flight computation: completion event plus its outcome."""

    __slots__ = ("done", "result", "error", "followers")

    def __init__(self):
        self.done = threading.Event()
        self.result = _PENDING
        self.error: BaseException | None = None
        self.followers = 0


class Coalescer:
    """In-flight map collapsing concurrent identical computations into one."""

    def __init__(self):
        self._lock = threading.Lock()
        self._flights: dict[Hashable, _Flight] = {}
        self.coalesced = 0   # lifetime follower count
        self.executions = 0  # lifetime leader count

    def inflight(self) -> int:
        """Number of keys currently being computed."""
        with self._lock:
            return len(self._flights)

    def run(self, key: Hashable, compute: Callable[[], object]
            ) -> tuple[object, bool]:
        """Compute-or-join: returns ``(result, led)``.

        ``led`` is ``True`` for the caller that actually executed
        ``compute`` and ``False`` for every coalesced follower.  A
        leader's exception propagates to the leader *and* to every
        follower of that flight; the flight is retired either way, so
        the next arrival after completion starts a fresh computation
        (important when the failure was transient).
        """
        with self._lock:
            flight = self._flights.get(key)
            if flight is None:
                flight = _Flight()
                self._flights[key] = flight
                lead = True
                self.executions += 1
            else:
                lead = False
                flight.followers += 1
                self.coalesced += 1
        if not lead:
            flight.done.wait()
            if flight.error is not None:
                # Followers re-raise the leader's exception object verbatim
                # (already a repro.errors type when the library raised it).
                raise flight.error  # reprolint: disable=RPR002
            return flight.result, False
        try:
            flight.result = compute()
        except BaseException as exc:
            flight.error = exc
            raise
        finally:
            with self._lock:
                del self._flights[key]
            flight.done.set()
        return flight.result, True
