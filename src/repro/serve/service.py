"""The analytics service: request in, cached/coalesced/planned result out.

:class:`AnalyticsService` is the transport-free core of the server —
everything the HTTP front-end does is a thin translation onto these
methods, and the test suite exercises them directly (no sockets needed):

* :meth:`tile` — cached KDV pyramid tiles.  Cache keys carry the dataset
  *identity* (stable across ingests), so invalidation is driven by the
  streaming dirty-tile ledger: an ingest evicts exactly the tiles whose
  pixels changed and leaves the rest of the pyramid warm.
* :meth:`query` — full analytics through the unified
  :func:`~repro.core.request.execute_request` path.  Result-cache keys
  carry the dataset *content fingerprint*, so an ingest implicitly
  retires every stale result.
* Both paths coalesce: concurrent identical requests (same canonical
  fingerprint, same dataset state) execute once and fan the result out.
* Every executed request runs under its own :mod:`repro.obs` collector;
  latency, hit/coalesce counters and queue depth land in
  :meth:`stats_snapshot` (the ``/stats`` payload).
"""

from __future__ import annotations

import hashlib
import threading
from dataclasses import dataclass
from typing import Mapping

import numpy as np

from .. import obs, parallel
from ..core.kfunction import KFunctionPlot
from ..core.pipeline import HotspotReport
from ..core.request import (
    AnalyticsRequest,
    execute_request,
    plan_request,
    request_from_dict,
)
from ..errors import ParameterError
from ..raster import DensityGrid
from .cache import LRUCache
from .coalesce import Coalescer
from .datasets import DatasetStore
from .stats import ServeStats
from .surfaces import MaintainedSurface

__all__ = ["AnalyticsService", "ServeConfig", "TileResult"]


@dataclass(frozen=True)
class ServeConfig:
    """Tunable knobs of one :class:`AnalyticsService`.

    ``tile_px`` and ``max_zoom`` fix the pyramid geometry (a zoom-``z``
    surface is ``tile_px * 2**z`` pixels square).  ``max_inflight``
    bounds concurrently *executing* requests (``None`` → twice the
    resolved worker count, floor 4); excess requests queue on the
    admission semaphore and show up in the ``queue.depth`` gauge.
    """

    tile_px: int = 64
    max_zoom: int = 4
    tile_cache_capacity: int = 512
    result_cache_capacity: int = 128
    latency_window: int = 1024
    max_inflight: int | None = None
    workers: int | None = None
    backend: str | None = None

    def resolve_inflight(self) -> int:
        """The admission-semaphore size this config means."""
        if self.max_inflight is not None:
            slots = int(self.max_inflight)
            if slots < 1:
                raise ParameterError(
                    f"max_inflight must be positive, got {self.max_inflight}"
                )
            return slots
        return max(4, 2 * parallel.resolve_workers(self.workers))


@dataclass(frozen=True)
class TileResult:
    """One served tile: addressing, geometry, density values, provenance."""

    dataset: str
    version: int
    zoom: int
    tx: int
    ty: int
    bandwidth: float
    kernel: str
    bbox: tuple[float, float, float, float]
    values: np.ndarray

    def to_payload(self) -> dict:
        """JSON-safe wire form (values nested x-major, north not flipped)."""
        return {
            "dataset": self.dataset,
            "version": self.version,
            "zoom": self.zoom,
            "tx": self.tx,
            "ty": self.ty,
            "bandwidth": self.bandwidth,
            "kernel": self.kernel,
            "bbox": list(self.bbox),
            "shape": list(self.values.shape),
            "values": self.values.tolist(),
        }


class _Admission:
    """Bounded-concurrency gate that reports queueing pressure as gauges."""

    def __init__(self, stats: ServeStats, slots: int):
        self._sem = threading.BoundedSemaphore(slots)
        self._stats = stats
        self.slots = slots

    def __enter__(self) -> "_Admission":
        self._stats.adjust_gauge("queue.depth", 1)
        self._sem.acquire()
        self._stats.adjust_gauge("queue.depth", -1)
        self._stats.adjust_gauge("inflight", 1)
        return self

    def __exit__(self, *exc) -> bool:
        self._stats.adjust_gauge("inflight", -1)
        self._sem.release()
        return False


class AnalyticsService:
    """Coalescing, caching front door over the Request/Plan/Execute API."""

    def __init__(self, store: DatasetStore | None = None,
                 config: ServeConfig | None = None):
        self.config = config if config is not None else ServeConfig()
        self.store = store if store is not None else DatasetStore()
        self.stats = ServeStats(latency_window=self.config.latency_window)
        self.tile_cache = LRUCache(self.config.tile_cache_capacity)
        self.result_cache = LRUCache(self.config.result_cache_capacity)
        self.coalescer = Coalescer()
        self._admission = _Admission(self.stats, self.config.resolve_inflight())
        self._surfaces: dict[tuple, MaintainedSurface] = {}
        self._surfaces_lock = threading.Lock()

    # -- datasets ----------------------------------------------------------

    def create_dataset(self, name: str, points, times=None, bbox=None,
                       margin: float = 0.05) -> dict:
        """Register a dataset; returns its summary row."""
        dataset = self.store.create(
            name, points, times=times, bbox=bbox, margin=margin
        )
        self.stats.incr("datasets.created")
        return dataset.summary()

    def datasets(self) -> list[dict]:
        """Summary rows of every registered dataset."""
        return self.store.summaries()

    def ingest(self, name: str, points, times=None) -> dict:
        """Append a batch to a dataset and invalidate exactly what changed.

        Every maintained surface of the dataset is brought current; the
        union of their dirty tiles is evicted from the tile cache by
        exact key.  Query results are not touched — their keys carry the
        content fingerprint, which this ingest just advanced, so stale
        entries can never be served again and simply age out.
        """
        with self._admission, obs.Stopwatch() as sw:
            dataset = self.store.get(name)
            added = dataset.ingest(points, times=times)
            invalidated = 0
            for key, surface in self._surfaces_for(dataset.identity):
                _, zoom, bandwidth, kernel, dtype = key
                for tx, ty in surface.sync(dataset):
                    invalidated += self.tile_cache.invalidate(
                        key=("tile", dataset.identity, zoom, tx, ty,
                             bandwidth, kernel, dtype)
                    )
            self.stats.incr("ingest.batches")
            self.stats.incr("ingest.events", added)
            self.stats.incr("tile.invalidated", invalidated)
        self.stats.observe_latency("ingest", sw.seconds)
        return {
            "dataset": name,
            "added": added,
            "version": dataset.version,
            "content": dataset.content_fingerprint(),
            "invalidated_tiles": invalidated,
        }

    # -- tiles -------------------------------------------------------------

    def _surfaces_for(self, identity: str
                      ) -> list[tuple[tuple, MaintainedSurface]]:
        with self._surfaces_lock:
            return [
                (key, surf) for key, surf in self._surfaces.items()
                if key[0] == identity
            ]

    def _surface(self, dataset, zoom: int, bandwidth: float, kernel: str,
                 dtype: str | None) -> MaintainedSurface:
        key = (dataset.identity, zoom, bandwidth, kernel, dtype)
        with self._surfaces_lock:
            surface = self._surfaces.get(key)
            if surface is None:
                surface = MaintainedSurface(
                    dataset, zoom, bandwidth, kernel=kernel,
                    tile_px=self.config.tile_px,
                    dtype=np.dtype(dtype) if dtype is not None else None,
                    workers=self.config.workers,
                    backend=self.config.backend,
                )
                self._surfaces[key] = surface
                self.stats.incr("surfaces.created")
        return surface

    def tile(self, name: str, zoom: int, tx: int, ty: int,
             bandwidth: float, kernel: str = "quartic",
             dtype: str | None = None) -> TileResult:
        """One pyramid tile, served from cache when its pixels are current."""
        zoom = int(zoom)
        if not (0 <= zoom <= self.config.max_zoom):
            raise ParameterError(
                f"zoom must lie in [0, {self.config.max_zoom}], got {zoom}"
            )
        bandwidth = float(bandwidth)
        if bandwidth <= 0.0:
            raise ParameterError(
                f"bandwidth must be positive, got {bandwidth}"
            )
        tx = int(tx)
        ty = int(ty)
        with self._admission, obs.Stopwatch() as sw:
            dataset = self.store.get(name)
            key = ("tile", dataset.identity, zoom, tx, ty, bandwidth, kernel,
                   dtype)
            result = self.tile_cache.get(key)
            if result is not None:
                self.stats.incr("tile.cache_hit")
            else:
                self.stats.incr("tile.cache_miss")
                result, led = self.coalescer.run(
                    key,
                    lambda: self._compute_tile(
                        dataset, zoom, tx, ty, bandwidth, kernel, dtype
                    ),
                )
                if led:
                    self.tile_cache.put(key, result)
                    self.stats.incr("tile.computed")
                else:
                    self.stats.incr("coalesce.waited")
        self.stats.incr("requests.total")
        self.stats.observe_latency("tile", sw.seconds)
        return result

    def _compute_tile(self, dataset, zoom: int, tx: int, ty: int,
                      bandwidth: float, kernel: str, dtype: str | None
                      ) -> TileResult:
        """Cold path: sync the maintained surface, slice the tile out."""
        with obs.enabled():
            surface = self._surface(dataset, zoom, bandwidth, kernel, dtype)
            dirty = surface.sync(dataset)
            # A sync here means ingests landed since the surface was last
            # read; those tiles' cached entries are stale — evict them.
            for dtx, dty in dirty:
                self.tile_cache.invalidate(
                    key=("tile", dataset.identity, zoom, dtx, dty, bandwidth,
                         kernel, dtype)
                )
            bbox = surface.tile_bbox(tx, ty)
            values = surface.tile_values(tx, ty)
        return TileResult(
            dataset=dataset.name, version=dataset.version, zoom=zoom,
            tx=tx, ty=ty, bandwidth=bandwidth, kernel=kernel,
            bbox=(bbox.xmin, bbox.ymin, bbox.xmax, bbox.ymax),
            values=values,
        )

    # -- full analytics ----------------------------------------------------

    def query(self, request) -> dict:
        """Execute an analytics request (wire dict or request object).

        The request must name a registered dataset.  Identical concurrent
        queries against identical dataset contents coalesce into one
        execution; repeated queries hit the result cache until an ingest
        advances the content fingerprint.
        """
        if isinstance(request, Mapping):
            request = request_from_dict(request)
        if not isinstance(request, AnalyticsRequest):
            raise ParameterError(
                f"query needs an AnalyticsRequest or its dict form, got "
                f"{type(request).__name__}"
            )
        if not request.dataset:
            raise ParameterError("served requests must name a dataset")
        with self._admission, obs.Stopwatch() as sw:
            dataset = self.store.get(request.dataset)
            key = ("query", dataset.identity, dataset.content_fingerprint(),
                   request.fingerprint())
            payload = self.result_cache.get(key)
            if payload is not None:
                self.stats.incr("query.cache_hit")
            else:
                self.stats.incr("query.cache_miss")
                payload, led = self.coalescer.run(
                    key, lambda: self._execute_query(dataset, request)
                )
                if led:
                    self.result_cache.put(key, payload)
                    self.stats.incr("query.computed")
                else:
                    self.stats.incr("coalesce.waited")
        self.stats.incr("requests.total")
        self.stats.observe_latency(f"query.{request.kind}", sw.seconds)
        return payload

    def _execute_query(self, dataset, request: AnalyticsRequest) -> dict:
        """Cold path: plan, execute under a fresh trace, summarise."""
        points = dataset.points
        plan = plan_request(request, points, bbox=dataset.bbox)
        with obs.enabled() as trace, obs.Stopwatch() as sw:
            result = execute_request(request, points, bbox=dataset.bbox)
        diagnostics = trace.diagnostics()
        payload = _summarize(result)
        payload.update({
            "dataset": dataset.name,
            "version": dataset.version,
            "fingerprint": request.fingerprint(),
            "plan": plan.as_dict(),
            "trace": {
                "seconds": sw.seconds,
                "counters": diagnostics.counters(),
            },
        })
        return payload

    # -- introspection -----------------------------------------------------

    def stats_snapshot(self) -> dict:
        """The ``/stats`` payload: counters, latencies, caches, coalescing."""
        snap = self.stats.snapshot()
        with self._surfaces_lock:
            n_surfaces = len(self._surfaces)
        snap.update({
            "tile_cache": self.tile_cache.stats(),
            "result_cache": self.result_cache.stats(),
            "coalescer": {
                "inflight": self.coalescer.inflight(),
                "executions": self.coalescer.executions,
                "coalesced": self.coalescer.coalesced,
            },
            "surfaces": n_surfaces,
            "max_inflight": self._admission.slots,
            "datasets": self.store.names(),
        })
        return snap


def _summarize(result) -> dict:
    """JSON-safe digest of a native analytics result.

    Full density surfaces are summarised (shape, mass, extrema, a SHA-256
    of the raw values for cache-identity checks) rather than shipped —
    clients wanting pixels use the tile endpoint, which is cached and
    invalidated properly.
    """
    if isinstance(result, DensityGrid):
        values = np.ascontiguousarray(result.values)
        return {
            "kind": "kdv",
            "shape": list(values.shape),
            "total": float(values.sum()),
            "max": float(values.max()),
            "surface_sha256": hashlib.sha256(values.tobytes()).hexdigest(),
        }
    if isinstance(result, HotspotReport):
        return {
            "kind": "hotspot",
            "significant": bool(result.significant),
            "bandwidth": float(result.bandwidth),
            "bandwidth_source": result.bandwidth_source,
            "hotspots": [
                {
                    "centroid": [float(c) for c in spot.centroid],
                    "mass": float(spot.mass),
                    "area": float(spot.area),
                }
                for spot in result.hotspots
            ],
        }
    if isinstance(result, KFunctionPlot):
        return {
            "kind": "kfunction",
            "n_simulations": int(result.n_simulations),
            "rows": [
                {
                    "threshold": s, "observed": k,
                    "lower": lo, "upper": hi, "regime": regime,
                }
                for s, k, lo, hi, regime in result.rows()
            ],
        }
    raise ParameterError(
        f"no serialiser for result type {type(result).__name__}"
    )
