"""Shared argument validation helpers.

Every public entry point funnels its inputs through these helpers so that
error messages are consistent across the library and so the numeric code can
assume clean ``float64`` arrays.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from .errors import DataError, ParameterError

__all__ = [
    "as_points",
    "as_values",
    "as_timestamps",
    "as_weights",
    "check_positive",
    "check_non_negative",
    "check_in_range",
    "check_thresholds",
    "check_probability",
    "resolve_rng",
    "chunk_ranges",
]


def as_points(points, name: str = "points", allow_empty: bool = False) -> np.ndarray:
    """Coerce ``points`` to a contiguous ``(n, 2)`` float64 array.

    Accepts anything ``np.asarray`` understands: lists of pairs, tuples,
    existing arrays.  Rejects NaN/inf coordinates, wrong dimensionality and
    (by default) empty inputs.
    """
    arr = np.asarray(points, dtype=np.float64)
    if arr.ndim == 1 and arr.size == 2:
        arr = arr.reshape(1, 2)
    if arr.ndim != 2 or arr.shape[1] != 2:
        raise DataError(
            f"{name} must be an (n, 2) array of planar coordinates, "
            f"got shape {arr.shape}"
        )
    if not allow_empty and arr.shape[0] == 0:
        raise DataError(f"{name} must contain at least one point")
    if arr.size and not np.all(np.isfinite(arr)):
        raise DataError(f"{name} contains non-finite coordinates")
    return np.ascontiguousarray(arr)


def as_values(values, n: int, name: str = "values") -> np.ndarray:
    """Coerce ``values`` to a length-``n`` float64 vector (e.g. IDW samples)."""
    arr = np.asarray(values, dtype=np.float64).ravel()
    if arr.shape[0] != n:
        raise DataError(f"{name} must have length {n}, got {arr.shape[0]}")
    if arr.size and not np.all(np.isfinite(arr)):
        raise DataError(f"{name} contains non-finite entries")
    return arr


def as_timestamps(times, n: int, name: str = "times") -> np.ndarray:
    """Coerce event timestamps to a length-``n`` float64 vector."""
    return as_values(times, n, name=name)


def as_weights(weights, n: int, name: str = "weights") -> np.ndarray:
    """Coerce per-point weights to a length-``n`` non-negative float64 vector.

    Weights enter kernel sums and tree node aggregates, so they must be
    finite and non-negative (negative mass would break every density
    bound in the library).
    """
    arr = np.asarray(weights, dtype=np.float64).ravel()
    if arr.shape[0] != n:
        raise ParameterError(f"{name} must have length {n}, got {arr.shape[0]}")
    if arr.size and (not np.all(np.isfinite(arr)) or np.any(arr < 0)):
        raise ParameterError(f"{name} must be finite and non-negative")
    return arr


def check_positive(value: float, name: str) -> float:
    """Require a strictly positive finite scalar; return it as ``float``."""
    value = float(value)
    if not np.isfinite(value) or value <= 0.0:
        raise ParameterError(f"{name} must be a positive finite number, got {value}")
    return value


def check_non_negative(value: float, name: str) -> float:
    """Require a non-negative finite scalar; return it as ``float``."""
    value = float(value)
    if not np.isfinite(value) or value < 0.0:
        raise ParameterError(f"{name} must be non-negative and finite, got {value}")
    return value


def check_in_range(value: float, name: str, low: float, high: float) -> float:
    """Require ``low <= value <= high``; return the value as ``float``."""
    value = float(value)
    if not (low <= value <= high):
        raise ParameterError(f"{name} must lie in [{low}, {high}], got {value}")
    return value


def check_probability(value: float, name: str) -> float:
    """Require a probability in the open interval (0, 1)."""
    value = float(value)
    if not (0.0 < value < 1.0):
        raise ParameterError(f"{name} must lie in (0, 1), got {value}")
    return value


def check_thresholds(thresholds: Iterable[float], name: str = "thresholds") -> np.ndarray:
    """Validate a list of distance/time thresholds.

    Thresholds must be finite, non-negative and non-decreasing (sorted input
    keeps the multi-threshold counting code simple and is what a plot needs
    anyway).  Returns the thresholds as a float64 vector.
    """
    arr = np.asarray(list(thresholds) if not isinstance(thresholds, np.ndarray) else thresholds,
                     dtype=np.float64).ravel()
    if arr.size == 0:
        raise ParameterError(f"{name} must contain at least one value")
    if not np.all(np.isfinite(arr)):
        raise ParameterError(f"{name} contains non-finite entries")
    if np.any(arr < 0):
        raise ParameterError(f"{name} must be non-negative")
    if np.any(np.diff(arr) < 0):
        raise ParameterError(f"{name} must be sorted in non-decreasing order")
    return arr


def resolve_rng(seed) -> np.random.Generator:
    """Turn ``seed`` (None, int, or Generator) into a NumPy ``Generator``.

    Mirrors the convention of ``np.random.default_rng`` so every stochastic
    routine in the library accepts the same ``seed=`` argument.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def chunk_ranges(total: int, chunk: int) -> Sequence[tuple[int, int]]:
    """Split ``range(total)`` into ``(start, stop)`` chunks of size ``chunk``."""
    if chunk <= 0:
        raise ParameterError(f"chunk size must be positive, got {chunk}")
    return [(start, min(start + chunk, total)) for start in range(0, total, chunk)]
