"""Exception hierarchy for the :mod:`repro` library.

All errors raised by the library derive from :class:`ReproError`, so callers
can catch library failures with a single ``except ReproError`` clause while
still letting programming errors (``TypeError`` from NumPy, etc.) propagate.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ParameterError",
    "DataError",
    "NetworkError",
    "ConvergenceError",
    "AnalysisError",
    "ServeError",
]


class ReproError(Exception):
    """Base class for every error raised by the :mod:`repro` library."""


class ParameterError(ReproError, ValueError):
    """A parameter value is out of its documented domain.

    Raised, for example, for a non-positive bandwidth, an empty threshold
    list, or an unknown method name.
    """


class DataError(ReproError, ValueError):
    """Input data has the wrong shape, dtype, or contains invalid values."""


class NetworkError(ReproError, ValueError):
    """A road-network operation received an inconsistent graph or position.

    Examples: an edge referencing an unknown node, an event offset that lies
    outside its edge, or a disconnected source in a routine that requires
    reachability.
    """


class ConvergenceError(ReproError, RuntimeError):
    """An iterative numerical routine failed to converge.

    Raised by variogram model fitting and by the bound-based KDV refinement
    when it cannot reach the requested guarantee with the given resources.
    """


class ServeError(ReproError, LookupError):
    """A service-layer request referenced something that does not exist.

    Raised by :mod:`repro.serve` for an unknown dataset or an
    out-of-range tile address — the conditions the HTTP front-end maps
    to a 404, as opposed to :class:`ParameterError`/:class:`DataError`
    (malformed requests, mapped to a 400).
    """


class AnalysisError(ReproError, RuntimeError):
    """The :mod:`repro.analysis` static-analysis tooling failed.

    Raised for malformed baseline files, invalid ``[tool.reprolint]``
    configuration, or unknown rule identifiers — never for lint findings
    themselves, which are reported as violations.
    """
