"""Spatial point-process generators.

These are the synthetic workloads behind every experiment: complete spatial
randomness (the null model of the K-function plot), clustered processes
(Thomas, Matérn — the "meaningful hotspot" patterns), inhibited processes
(the "dispersed" regime below the lower envelope in Figure 2), and
inhomogeneous Poisson processes with an arbitrary intensity surface.

All generators take an explicit ``seed`` and return ``(n, 2)`` float arrays
inside the provided window, so experiments are reproducible.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from .._validation import check_positive, resolve_rng
from ..errors import ParameterError
from ..geometry import BoundingBox

__all__ = [
    "csr",
    "poisson",
    "thomas",
    "matern",
    "inhibited",
    "inhomogeneous",
    "mixture",
]


def csr(n: int, bbox: BoundingBox, seed=None) -> np.ndarray:
    """Complete spatial randomness: ``n`` i.i.d. uniform points (binomial).

    This is the null model used for K-function envelopes (Definition 3
    requires "randomly generated datasets with the same size n").
    """
    n = int(n)
    if n < 0:
        raise ParameterError(f"n must be non-negative, got {n}")
    return bbox.sample_uniform(n, resolve_rng(seed))


def poisson(intensity: float, bbox: BoundingBox, seed=None) -> np.ndarray:
    """Homogeneous Poisson process with the given intensity (points / area)."""
    intensity = check_positive(intensity, "intensity")
    rng = resolve_rng(seed)
    n = int(rng.poisson(intensity * bbox.area))
    return bbox.sample_uniform(n, rng)


def thomas(
    n: int,
    n_clusters: int,
    sigma: float,
    bbox: BoundingBox,
    seed=None,
    centers=None,
    weights=None,
) -> np.ndarray:
    """Thomas cluster process conditioned to exactly ``n`` points.

    ``n_clusters`` parent centres are drawn uniformly (or taken from
    ``centers``); each of the ``n`` offspring picks a parent (optionally
    with ``weights``) and lands at a Gaussian offset with scale ``sigma``.
    Offspring falling outside the window are resampled (clipping would pile
    mass on the boundary and distort the K-function).
    """
    n = int(n)
    if n < 0:
        raise ParameterError(f"n must be non-negative, got {n}")
    sigma = check_positive(sigma, "sigma")
    rng = resolve_rng(seed)

    if centers is None:
        n_clusters = int(n_clusters)
        if n_clusters < 1:
            raise ParameterError(f"n_clusters must be >= 1, got {n_clusters}")
        centers = bbox.sample_uniform(n_clusters, rng)
    else:
        centers = np.asarray(centers, dtype=np.float64).reshape(-1, 2)
        n_clusters = centers.shape[0]

    if weights is None:
        probs = np.full(n_clusters, 1.0 / n_clusters)
    else:
        probs = np.asarray(weights, dtype=np.float64).ravel()
        if probs.shape[0] != n_clusters or np.any(probs < 0) or probs.sum() <= 0:
            raise ParameterError("weights must be non-negative with positive sum")
        probs = probs / probs.sum()

    out = np.empty((n, 2), dtype=np.float64)
    filled = 0
    while filled < n:
        need = n - filled
        parent = rng.choice(n_clusters, size=need, p=probs)
        pts = centers[parent] + rng.normal(scale=sigma, size=(need, 2))
        inside = bbox.contains(pts)
        kept = pts[inside]
        out[filled:filled + kept.shape[0]] = kept
        filled += kept.shape[0]
    return out


def matern(
    n: int,
    n_clusters: int,
    radius: float,
    bbox: BoundingBox,
    seed=None,
) -> np.ndarray:
    """Matérn cluster process conditioned to exactly ``n`` points.

    Like :func:`thomas` but offspring are uniform in a disc of the given
    ``radius`` around their parent — hard-edged clusters.
    """
    n = int(n)
    if n < 0:
        raise ParameterError(f"n must be non-negative, got {n}")
    n_clusters = int(n_clusters)
    if n_clusters < 1:
        raise ParameterError(f"n_clusters must be >= 1, got {n_clusters}")
    radius = check_positive(radius, "radius")
    rng = resolve_rng(seed)

    centers = bbox.sample_uniform(n_clusters, rng)
    out = np.empty((n, 2), dtype=np.float64)
    filled = 0
    while filled < n:
        need = n - filled
        parent = rng.choice(n_clusters, size=need)
        r = radius * np.sqrt(rng.uniform(size=need))
        theta = rng.uniform(0.0, 2.0 * np.pi, size=need)
        pts = centers[parent] + np.column_stack([r * np.cos(theta), r * np.sin(theta)])
        inside = bbox.contains(pts)
        kept = pts[inside]
        out[filled:filled + kept.shape[0]] = kept
        filled += kept.shape[0]
    return out


def inhibited(
    n: int,
    min_dist: float,
    bbox: BoundingBox,
    seed=None,
    max_proposals: int | None = None,
) -> np.ndarray:
    """Simple sequential inhibition: no two points closer than ``min_dist``.

    Produces the "dispersed" regime of Figure 2 (K-function below the lower
    envelope at small s).  Raises :class:`ParameterError` if the window
    cannot plausibly hold ``n`` points at that separation (packing bound)
    or the proposal budget runs out.
    """
    n = int(n)
    if n < 0:
        raise ParameterError(f"n must be non-negative, got {n}")
    min_dist = check_positive(min_dist, "min_dist")
    # Disc-packing sanity bound: each point blocks a disc of radius d/2.
    packing = bbox.area / (np.pi * (min_dist / 2.0) ** 2)
    if n > packing:
        raise ParameterError(
            f"cannot place {n} points with min_dist={min_dist} in a window of "
            f"area {bbox.area:g} (packing bound ~{int(packing)})"
        )
    rng = resolve_rng(seed)
    if max_proposals is None:
        max_proposals = max(10_000, 200 * n)

    # Grid occupancy with cells of side min_dist: a conflict can only sit in
    # the 3x3 neighbourhood, making each proposal O(1).
    nx = max(1, int(np.ceil(bbox.width / min_dist)))
    ny = max(1, int(np.ceil(bbox.height / min_dist)))
    cells: dict[tuple[int, int], list[int]] = {}
    pts = np.empty((n, 2), dtype=np.float64)
    placed = 0
    d2_min = min_dist * min_dist
    for _ in range(int(max_proposals)):
        if placed == n:
            break
        p = bbox.sample_uniform(1, rng)[0]
        cx = min(int((p[0] - bbox.xmin) / min_dist), nx - 1)
        cy = min(int((p[1] - bbox.ymin) / min_dist), ny - 1)
        ok = True
        for ix in range(max(cx - 1, 0), min(cx + 2, nx)):
            for iy in range(max(cy - 1, 0), min(cy + 2, ny)):
                for j in cells.get((ix, iy), ()):
                    if ((pts[j] - p) ** 2).sum() < d2_min:
                        ok = False
                        break
                if not ok:
                    break
            if not ok:
                break
        if ok:
            pts[placed] = p
            cells.setdefault((cx, cy), []).append(placed)
            placed += 1
    if placed < n:
        raise ParameterError(
            f"inhibition sampler placed only {placed}/{n} points within the "
            f"proposal budget; reduce n or min_dist"
        )
    return pts


def inhomogeneous(
    n: int,
    intensity: Callable[[np.ndarray, np.ndarray], np.ndarray],
    bbox: BoundingBox,
    seed=None,
    max_batches: int = 1000,
) -> np.ndarray:
    """Inhomogeneous process with ``n`` points via rejection sampling.

    ``intensity(xs, ys)`` must return non-negative values; it is normalised
    internally by its empirical maximum over a pilot sample, so only the
    *shape* of the surface matters.
    """
    n = int(n)
    if n < 0:
        raise ParameterError(f"n must be non-negative, got {n}")
    rng = resolve_rng(seed)

    pilot = bbox.sample_uniform(4096, rng)
    pilot_vals = np.asarray(intensity(pilot[:, 0], pilot[:, 1]), dtype=np.float64)
    if np.any(pilot_vals < 0) or not np.all(np.isfinite(pilot_vals)):
        raise ParameterError("intensity must be finite and non-negative")
    peak = float(pilot_vals.max())
    if peak <= 0.0:
        raise ParameterError("intensity is identically zero on the window")
    peak *= 1.5  # headroom in case the pilot missed the true maximum

    out = np.empty((n, 2), dtype=np.float64)
    filled = 0
    for _ in range(int(max_batches)):
        if filled == n:
            break
        batch = max(2 * (n - filled), 256)
        pts = bbox.sample_uniform(batch, rng)
        vals = np.asarray(intensity(pts[:, 0], pts[:, 1]), dtype=np.float64)
        vals = np.clip(vals, 0.0, None)
        accept = rng.uniform(0.0, peak, size=batch) < vals
        kept = pts[accept][: n - filled]
        out[filled:filled + kept.shape[0]] = kept
        filled += kept.shape[0]
    if filled < n:
        raise ParameterError(
            "rejection sampling failed to reach the requested size; the "
            "intensity surface may be (almost) zero on most of the window"
        )
    return out


def mixture(components: list[tuple[float, np.ndarray]], seed=None) -> np.ndarray:
    """Concatenate pre-generated components with the given fractions.

    ``components`` is ``[(fraction, points), ...]``; the result is the
    shuffled union.  Convenience for building datasets like "80% clustered
    + 20% uniform background".
    """
    if not components:
        raise ParameterError("mixture needs at least one component")
    rng = resolve_rng(seed)
    parts = [np.asarray(pts, dtype=np.float64).reshape(-1, 2) for _, pts in components]
    out = np.vstack(parts)
    rng.shuffle(out, axis=0)
    return out
