"""Data substrate: point-process generators, dataset stand-ins, CSV IO."""

from .datasets import (
    SpatialDataset,
    SpatioTemporalDataset,
    chicago_crime,
    hk_covid,
    network_accidents,
    nyc_taxi,
)
from .hawkes import hawkes_st, hawkes_stream
from .io import read_dataset_csv, read_points_csv, write_csv
from .processes import csr, inhibited, inhomogeneous, matern, mixture, poisson, thomas

__all__ = [
    "SpatialDataset",
    "SpatioTemporalDataset",
    "chicago_crime",
    "csr",
    "hawkes_st",
    "hawkes_stream",
    "hk_covid",
    "inhibited",
    "inhomogeneous",
    "matern",
    "mixture",
    "network_accidents",
    "nyc_taxi",
    "poisson",
    "read_dataset_csv",
    "read_points_csv",
    "thomas",
    "write_csv",
]
