"""CSV import/export for point datasets.

The deployed systems the paper describes (COVID hotspot maps, LIBKDV) all
ingest flat CSV files of event coordinates, optionally with a timestamp
column.  This module reads and writes that format with plain ``csv`` — no
pandas dependency — and validates on the way in.
"""

from __future__ import annotations

import csv
from pathlib import Path

import numpy as np

from .._validation import as_points, as_timestamps
from ..errors import DataError
from ..geometry import BoundingBox
from .datasets import SpatialDataset, SpatioTemporalDataset

__all__ = ["write_csv", "read_points_csv", "read_dataset_csv"]


def write_csv(path, points, times=None, header: bool = True) -> None:
    """Write points (and optional timestamps) to ``path`` as CSV.

    Columns are ``x,y`` or ``x,y,t``.
    """
    pts = as_points(points)
    if times is not None:
        times = as_timestamps(times, pts.shape[0])
    path = Path(path)
    with path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        if header:
            writer.writerow(["x", "y"] if times is None else ["x", "y", "t"])
        if times is None:
            writer.writerows((repr(float(x)), repr(float(y))) for x, y in pts)
        else:
            writer.writerows(
                (repr(float(x)), repr(float(y)), repr(float(t)))
                for (x, y), t in zip(pts, times)
            )


def read_points_csv(path) -> tuple[np.ndarray, np.ndarray | None]:
    """Read ``(points, times)`` from a CSV written by :func:`write_csv`.

    ``times`` is ``None`` when the file has only two columns.  A header row
    is detected automatically (any non-numeric first row is skipped).
    """
    path = Path(path)
    rows: list[list[str]] = []
    with path.open(newline="") as fh:
        for row in csv.reader(fh):
            if row:
                rows.append(row)
    if not rows:
        raise DataError(f"{path} is empty")

    def parse(row: list[str]) -> list[float] | None:
        try:
            return [float(v) for v in row]
        except ValueError:
            return None

    start = 0
    if parse(rows[0]) is None:
        start = 1  # header
    parsed = []
    for i, row in enumerate(rows[start:], start=start + 1):
        values = parse(row)
        if values is None:
            raise DataError(f"{path}:{i}: non-numeric row {row!r}")
        if len(values) not in (2, 3):
            raise DataError(f"{path}:{i}: expected 2 or 3 columns, got {len(values)}")
        parsed.append(values)
    if not parsed:
        raise DataError(f"{path} contains a header but no data rows")
    widths = {len(v) for v in parsed}
    if len(widths) != 1:
        raise DataError(f"{path} mixes 2- and 3-column rows")

    arr = np.asarray(parsed, dtype=np.float64)
    points = as_points(arr[:, :2])
    times = arr[:, 2] if arr.shape[1] == 3 else None
    return points, times


def read_dataset_csv(path, name: str | None = None, margin: float = 0.0):
    """Read a CSV into a :class:`SpatialDataset` or :class:`SpatioTemporalDataset`.

    The study window defaults to the tight bounding box of the points,
    padded by ``margin``.
    """
    points, times = read_points_csv(path)
    bbox = BoundingBox.of_points(points, margin=margin)
    name = name if name is not None else Path(path).stem
    if times is None:
        return SpatialDataset(name, points, bbox)
    return SpatioTemporalDataset(name, points, times, bbox)
