"""Synthetic stand-ins for the paper's real datasets.

The tutorial's demonstrations use the Hong Kong COVID-19 dataset [7], the
Chicago crime dataset [3] (7.68 M points) and the NYC taxi dataset [9]
(165 M points).  None of those are available offline, so this module
provides parametric generators that reproduce the *statistical features*
each experiment depends on (see DESIGN.md, "Substitutions"):

* :func:`hk_covid` — a two-wave spatiotemporal cluster process: wave 1 has
  a single outbreak region, wave 2 has two (paper Figure 4).
* :func:`chicago_crime` — street-aligned clustered crime events at any
  requested size.
* :func:`nyc_taxi` — anisotropic pickup hotspots plus diffuse background,
  with a daily-periodic time component.
* :func:`network_accidents` — events concentrated on a subset of a road
  network's edges (the NKDV / network-K workload).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._validation import as_points, as_timestamps, check_positive, resolve_rng
from ..errors import ParameterError
from ..geometry import BoundingBox
from ..network import NetworkPosition, RoadNetwork
from . import processes

__all__ = [
    "SpatialDataset",
    "SpatioTemporalDataset",
    "hk_covid",
    "chicago_crime",
    "nyc_taxi",
    "network_accidents",
]


@dataclass(frozen=True)
class SpatialDataset:
    """A named point set with its study window."""

    name: str
    points: np.ndarray
    bbox: BoundingBox

    def __post_init__(self) -> None:
        object.__setattr__(self, "points", as_points(self.points, name="points"))

    @property
    def n(self) -> int:
        return int(self.points.shape[0])

    def subsample(self, n: int, seed=None) -> "SpatialDataset":
        """A uniform random subset of size ``n`` (without replacement)."""
        n = int(n)
        if not (0 < n <= self.n):
            raise ParameterError(f"subsample size must be in (0, {self.n}], got {n}")
        rng = resolve_rng(seed)
        idx = rng.choice(self.n, size=n, replace=False)
        return SpatialDataset(f"{self.name}[n={n}]", self.points[idx], self.bbox)


@dataclass(frozen=True)
class SpatioTemporalDataset:
    """A named point set with per-event timestamps and a study window."""

    name: str
    points: np.ndarray
    times: np.ndarray
    bbox: BoundingBox

    def __post_init__(self) -> None:
        pts = as_points(self.points, name="points")
        object.__setattr__(self, "points", pts)
        object.__setattr__(
            self, "times", as_timestamps(self.times, pts.shape[0], name="times")
        )

    @property
    def n(self) -> int:
        return int(self.points.shape[0])

    @property
    def time_range(self) -> tuple[float, float]:
        return float(self.times.min()), float(self.times.max())

    def spatial(self) -> SpatialDataset:
        """Drop the time component."""
        return SpatialDataset(self.name, self.points, self.bbox)

    def slice_time(self, t_lo: float, t_hi: float) -> SpatialDataset:
        """Events with ``t_lo <= t < t_hi`` as a spatial dataset."""
        if not t_lo < t_hi:
            raise ParameterError(f"need t_lo < t_hi, got [{t_lo}, {t_hi})")
        mask = (self.times >= t_lo) & (self.times < t_hi)
        if not mask.any():
            raise ParameterError(f"no events in time window [{t_lo}, {t_hi})")
        return SpatialDataset(
            f"{self.name}[t in [{t_lo:g}, {t_hi:g})]", self.points[mask], self.bbox
        )


# ---------------------------------------------------------------------------
# Hong Kong COVID-19 stand-in (Figures 1, 4, 5)
# ---------------------------------------------------------------------------

_HK_BBOX = BoundingBox(0.0, 0.0, 50.0, 30.0)  # ~ HK extent in km, planar
_WAVE1_CENTERS = np.array([[18.0, 16.0]])  # one outbreak region (Dec 2020)
_WAVE2_CENTERS = np.array([[14.0, 17.0], [34.0, 11.0]])  # two regions (Jan 2022)


def hk_covid(
    n_wave1: int = 1500,
    n_wave2: int = 2500,
    sigma: float = 1.8,
    background_fraction: float = 0.15,
    seed: int | None = 7,
) -> SpatioTemporalDataset:
    """Two-wave COVID-style outbreak over an HK-sized window.

    Wave 1 (times in [0, 100)) clusters around a single region; wave 2
    (times in [100, 200)) clusters around two regions, reproducing the
    Figure 4 contrast.  A ``background_fraction`` of each wave is uniform
    community spread.
    """
    n_wave1 = int(n_wave1)
    n_wave2 = int(n_wave2)
    if n_wave1 < 1 or n_wave2 < 1:
        raise ParameterError("both waves need at least one case")
    sigma = check_positive(sigma, "sigma")
    if not (0.0 <= background_fraction < 1.0):
        raise ParameterError(
            f"background_fraction must be in [0, 1), got {background_fraction}"
        )
    rng = resolve_rng(seed)

    def wave(n: int, centers: np.ndarray, t_lo: float, t_hi: float):
        n_bg = int(round(n * background_fraction))
        n_cl = n - n_bg
        cluster_pts = processes.thomas(
            n_cl, centers.shape[0], sigma, _HK_BBOX, seed=rng, centers=centers
        )
        bg_pts = processes.csr(n_bg, _HK_BBOX, seed=rng)
        pts = np.vstack([cluster_pts, bg_pts])
        # Case counts rise then fall within a wave: Beta(2, 2)-shaped times.
        times = t_lo + (t_hi - t_lo) * rng.beta(2.0, 2.0, size=n)
        return pts, times

    pts1, t1 = wave(n_wave1, _WAVE1_CENTERS, 0.0, 100.0)
    pts2, t2 = wave(n_wave2, _WAVE2_CENTERS, 100.0, 200.0)
    points = np.vstack([pts1, pts2])
    times = np.concatenate([t1, t2])
    order = np.argsort(times)
    return SpatioTemporalDataset("hk_covid", points[order], times[order], _HK_BBOX)


# ---------------------------------------------------------------------------
# Chicago crime stand-in (large clustered workload)
# ---------------------------------------------------------------------------

_CHICAGO_BBOX = BoundingBox(0.0, 0.0, 30.0, 40.0)  # ~ city extent in km


def chicago_crime(
    n: int = 10_000,
    n_hotspots: int = 12,
    sigma: float = 1.2,
    street_spacing: float = 0.2,
    street_fraction: float = 0.7,
    seed: int | None = 11,
) -> SpatialDataset:
    """Clustered crime events, a fraction of which snap to a street grid.

    The snap models geocoding-to-address: ``street_fraction`` of the events
    have one coordinate rounded to the nearest street line, which produces
    the banded structure typical of real crime data.
    """
    n = int(n)
    if n < 1:
        raise ParameterError(f"n must be >= 1, got {n}")
    sigma = check_positive(sigma, "sigma")
    street_spacing = check_positive(street_spacing, "street_spacing")
    if not (0.0 <= street_fraction <= 1.0):
        raise ParameterError(f"street_fraction must be in [0, 1], got {street_fraction}")
    rng = resolve_rng(seed)

    pts = processes.thomas(n, int(n_hotspots), sigma, _CHICAGO_BBOX, seed=rng)
    snap = rng.uniform(size=n) < street_fraction
    axis = rng.integers(0, 2, size=n)  # snap x (avenue) or y (street)
    for dim in (0, 1):
        sel = snap & (axis == dim)
        pts[sel, dim] = np.round(pts[sel, dim] / street_spacing) * street_spacing
    pts = _CHICAGO_BBOX.clip(pts)
    if pts.shape[0] < n:  # snapping cannot push points out, but stay safe
        extra = processes.csr(n - pts.shape[0], _CHICAGO_BBOX, seed=rng)
        pts = np.vstack([pts, extra])
    return SpatialDataset("chicago_crime", pts, _CHICAGO_BBOX)


# ---------------------------------------------------------------------------
# NYC taxi stand-in (very large mixed workload with time)
# ---------------------------------------------------------------------------

_NYC_BBOX = BoundingBox(0.0, 0.0, 40.0, 40.0)
_NYC_HOTSPOTS = np.array(
    [
        # (cx, cy, sx, sy, weight): downtown, midtown, two airports.
        [12.0, 14.0, 1.0, 2.5, 0.35],
        [13.5, 20.0, 1.2, 2.0, 0.30],
        [30.0, 16.0, 0.8, 0.8, 0.10],
        [24.0, 30.0, 0.9, 0.9, 0.10],
    ]
)


def nyc_taxi(
    n: int = 20_000,
    background_fraction: float = 0.15,
    days: float = 7.0,
    seed: int | None = 13,
) -> SpatioTemporalDataset:
    """Taxi-pickup style data: anisotropic hotspots + uniform background.

    Times follow a daily double-peak (rush hour) profile over ``days`` days
    measured in hours, so temporal tools see realistic periodic structure.
    """
    n = int(n)
    if n < 1:
        raise ParameterError(f"n must be >= 1, got {n}")
    if not (0.0 <= background_fraction < 1.0):
        raise ParameterError(
            f"background_fraction must be in [0, 1), got {background_fraction}"
        )
    days = check_positive(days, "days")
    rng = resolve_rng(seed)

    n_bg = int(round(n * background_fraction))
    n_hot = n - n_bg
    weights = _NYC_HOTSPOTS[:, 4] / _NYC_HOTSPOTS[:, 4].sum()

    pts = np.empty((n_hot, 2), dtype=np.float64)
    filled = 0
    while filled < n_hot:
        need = n_hot - filled
        comp = rng.choice(_NYC_HOTSPOTS.shape[0], size=need, p=weights)
        cx, cy = _NYC_HOTSPOTS[comp, 0], _NYC_HOTSPOTS[comp, 1]
        sx, sy = _NYC_HOTSPOTS[comp, 2], _NYC_HOTSPOTS[comp, 3]
        cand = np.column_stack(
            [rng.normal(cx, sx), rng.normal(cy, sy)]
        )
        kept = cand[_NYC_BBOX.contains(cand)]
        pts[filled:filled + kept.shape[0]] = kept
        filled += kept.shape[0]
    bg = processes.csr(n_bg, _NYC_BBOX, seed=rng)
    points = np.vstack([pts, bg])

    # Daily double peak at 8h and 18h plus a flat base load.
    day = rng.integers(0, int(np.ceil(days)), size=n).astype(np.float64)
    mode = rng.uniform(size=n)
    hour = np.where(
        mode < 0.4,
        rng.normal(8.0, 1.5, size=n),
        np.where(mode < 0.8, rng.normal(18.0, 2.0, size=n), rng.uniform(0.0, 24.0, size=n)),
    )
    times = np.clip(day * 24.0 + np.mod(hour, 24.0), 0.0, days * 24.0)

    order = np.argsort(times)
    return SpatioTemporalDataset("nyc_taxi", points[order], times[order], _NYC_BBOX)


# ---------------------------------------------------------------------------
# Network events (NKDV / network K-function workload)
# ---------------------------------------------------------------------------

def network_accidents(
    network: RoadNetwork,
    n: int,
    hotspot_edges=None,
    hotspot_fraction: float = 0.8,
    seed: int | None = 17,
) -> list[NetworkPosition]:
    """Accident-style events on a road network.

    ``hotspot_fraction`` of the events land (uniformly by length) on the
    ``hotspot_edges``; the rest are uniform over the whole network.  With
    ``hotspot_edges=None`` a random 10% of edges become hotspots.
    """
    n = int(n)
    if n < 1:
        raise ParameterError(f"n must be >= 1, got {n}")
    if not (0.0 <= hotspot_fraction <= 1.0):
        raise ParameterError(
            f"hotspot_fraction must be in [0, 1], got {hotspot_fraction}"
        )
    rng = resolve_rng(seed)

    if hotspot_edges is None:
        k = max(1, network.n_edges // 10)
        hotspot_edges = rng.choice(network.n_edges, size=k, replace=False)
    hotspot_edges = np.asarray(hotspot_edges, dtype=np.int64).ravel()
    if hotspot_edges.size == 0:
        raise ParameterError("hotspot_edges must not be empty")
    if hotspot_edges.min() < 0 or hotspot_edges.max() >= network.n_edges:
        raise ParameterError("hotspot_edges references an edge outside the network")

    n_hot = int(round(n * hotspot_fraction))
    n_bg = n - n_hot

    hot_lengths = network.edge_lengths[hotspot_edges]
    probs = hot_lengths / hot_lengths.sum()
    chosen = rng.choice(hotspot_edges, size=n_hot, p=probs)
    offsets = rng.uniform(size=n_hot) * network.edge_lengths[chosen]
    events = [NetworkPosition(int(e), float(o)) for e, o in zip(chosen, offsets)]
    events.extend(network.sample_positions(n_bg, rng))
    return events
