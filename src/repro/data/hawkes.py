"""Self-exciting (Hawkes) spatiotemporal process generator.

The paper's introduction cites self-exciting spatio-temporal point
processes [82] as the model family behind crime contagion analysis.  This
generator produces epidemic-style data by direct branching simulation:

* **immigrants** arrive as a homogeneous Poisson process in space-time
  with rate ``mu`` (per unit area per unit time);
* every event spawns ``Poisson(alpha)`` **offspring** (``alpha < 1`` keeps
  the cascade subcritical), each delayed by ``Exponential(beta)`` in time
  and displaced by a Gaussian of scale ``sigma`` in space.

The result exhibits genuine space-time *interaction*: shuffling the
timestamps destroys the clustering, which is exactly what the
spatiotemporal K-function's permutation null (``null="permute"``) detects.
"""

from __future__ import annotations

import numpy as np

from .._validation import check_non_negative, check_positive, resolve_rng
from ..errors import ParameterError
from ..geometry import BoundingBox

__all__ = ["hawkes_st", "hawkes_stream"]


def hawkes_st(
    bbox: BoundingBox,
    horizon: float,
    mu: float,
    alpha: float = 0.5,
    beta: float = 0.1,
    sigma: float = 0.5,
    seed=None,
    max_events: int = 1_000_000,
) -> tuple[np.ndarray, np.ndarray]:
    """Simulate a spatiotemporal Hawkes process on ``bbox`` x [0, horizon).

    Parameters
    ----------
    bbox:
        Spatial window (offspring outside it are discarded — boundary
        emigration).
    horizon:
        Temporal window length; offspring past the horizon are discarded.
    mu:
        Immigrant intensity per unit area per unit time.
    alpha:
        Mean offspring per event (branching ratio); must be < 1 for the
        cascade to stay finite in expectation.
    beta:
        Rate of the exponential offspring delay (mean delay ``1 / beta``).
    sigma:
        Spatial offspring displacement scale.
    max_events:
        Hard cap guarding against runaway cascades.

    Returns
    -------
    ``(points, times)`` sorted by time.
    """
    horizon = check_positive(horizon, "horizon")
    mu = check_positive(mu, "mu")
    alpha = check_non_negative(alpha, "alpha")
    if alpha >= 1.0:
        raise ParameterError(
            f"alpha must be < 1 for a subcritical cascade, got {alpha}"
        )
    beta = check_positive(beta, "beta")
    sigma = check_positive(sigma, "sigma")
    rng = resolve_rng(seed)

    n_immigrants = int(rng.poisson(mu * bbox.area * horizon))
    points = [bbox.sample_uniform(n_immigrants, rng)]
    times = [rng.uniform(0.0, horizon, size=n_immigrants)]

    # Breadth-first branching: each generation spawns the next.
    gen_pts = points[0]
    gen_times = times[0]
    total = n_immigrants
    while gen_pts.shape[0] > 0:
        n_children = rng.poisson(alpha, size=gen_pts.shape[0])
        total_children = int(n_children.sum())
        if total_children == 0:
            break
        total += total_children
        if total > max_events:
            raise ParameterError(
                f"Hawkes cascade exceeded max_events={max_events}; "
                "reduce mu/alpha or the horizon"
            )
        parent_idx = np.repeat(np.arange(gen_pts.shape[0]), n_children)
        child_times = gen_times[parent_idx] + rng.exponential(
            1.0 / beta, size=total_children
        )
        child_pts = gen_pts[parent_idx] + rng.normal(
            scale=sigma, size=(total_children, 2)
        )
        keep = (child_times < horizon) & bbox.contains(child_pts)
        gen_pts = child_pts[keep]
        gen_times = child_times[keep]
        if gen_pts.shape[0]:
            points.append(gen_pts)
            times.append(gen_times)

    all_pts = np.vstack(points) if points else np.empty((0, 2))
    all_times = np.concatenate(times) if times else np.empty(0)
    order = np.argsort(all_times)
    return all_pts[order], all_times[order]


def hawkes_stream(
    bbox: BoundingBox,
    n: int,
    mu: float = 2.0,
    alpha: float = 0.5,
    beta: float = 0.1,
    sigma: float = 0.5,
    seed=None,
) -> tuple[np.ndarray, np.ndarray]:
    """Exactly ``n`` time-ordered Hawkes events — the live-feed workload.

    :func:`hawkes_st` yields a *random* event count for a fixed horizon;
    streaming benchmarks and tests need a deterministic length.  This
    wrapper grows the horizon geometrically (re-simulating with the same
    seed-derived generator sequence each round) until at least ``n``
    events land, then truncates to the first ``n`` in time order.  Event
    times are non-decreasing, as the sliding window's FIFO eviction
    requires.
    """
    if int(n) != n or n <= 0:
        raise ParameterError(f"n must be a positive integer, got {n!r}")
    n = int(n)
    mu = check_positive(mu, "mu")
    # Expected total intensity ~ mu * area / (1 - alpha) per unit time.
    branching = max(1.0 - float(alpha), 1e-3)
    horizon = max(n * branching / (mu * bbox.area), 1e-6)
    for attempt in range(32):
        pts, times = hawkes_st(
            bbox,
            horizon,
            mu,
            alpha=alpha,
            beta=beta,
            sigma=sigma,
            seed=seed,
            max_events=max(1_000_000, 64 * n),
        )
        if pts.shape[0] >= n:
            return pts[:n], times[:n]
        horizon *= 2.0
    raise ParameterError(
        f"could not generate {n} Hawkes events after {attempt + 1} horizon "
        "doublings; increase mu"
    )
