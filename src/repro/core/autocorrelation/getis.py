"""Getis-Ord statistics — Table 1's second correlation-analysis family.

* :func:`general_g` — the *global* General G of Getis & Ord (1992):
  measures whether high values cluster (G above expectation) or low values
  cluster (G below expectation).  Defined over symmetric binary
  distance-band weights and non-negative values.
* :func:`local_gi_star` — the local Gi* hot-spot statistic (the engine of
  ArcGIS "Hot Spot Analysis"): a z-score per location, including the
  location's own value in its neighbourhood.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..._validation import as_values
from ...errors import DataError
from .moran import _normal_sf
from .weights import SpatialWeights

__all__ = ["GeneralGResult", "general_g", "gi_star_scores", "local_gi_star"]


@dataclass(frozen=True)
class GeneralGResult:
    """Global General G with its normality z-score."""

    statistic: float
    expected: float
    variance: float
    z_score: float
    p_value: float  # two-sided

    @property
    def high_clustering(self) -> bool:
        """High values cluster (G > E[G], significant at 5%)."""
        return self.z_score > 0 and self.p_value < 0.05

    @property
    def low_clustering(self) -> bool:
        """Low values cluster (G < E[G], significant at 5%)."""
        return self.z_score < 0 and self.p_value < 0.05


def general_g(values, weights: SpatialWeights) -> GeneralGResult:
    """Getis-Ord General G over binary (or at least symmetric) weights.

    ``G = sum_ij w_ij z_i z_j / sum_{i != j} z_i z_j`` with z >= 0.
    Moments follow Getis & Ord (1992) under the randomisation assumption.
    """
    n = weights.n
    z = as_values(values, n)
    if np.any(z < 0):
        raise DataError("General G requires non-negative values")
    if z.sum() == 0.0:
        raise DataError("values are all zero; General G is undefined")

    num = float(z @ weights.lag(z))
    z_sum = float(z.sum())
    z_sq = float((z * z).sum())
    denom = z_sum * z_sum - z_sq  # sum over i != j of z_i z_j
    if denom <= 0.0:
        raise DataError("degenerate values: only one non-zero observation")
    g = num / denom

    s0 = weights.s0()
    s1 = weights.s1()
    s2 = weights.s2()
    expected = s0 / (n * (n - 1.0))

    # Getis-Ord (1992) variance under randomisation.
    b0_num = (n * n - 3.0 * n + 3.0) * s1 - n * s2 + 3.0 * s0 * s0
    b1_num = -((n * n - n) * s1 - 2.0 * n * s2 + 6.0 * s0 * s0)
    b2_num = -(2.0 * n * s1 - (n + 3.0) * s2 + 6.0 * s0 * s0)
    b3_num = 4.0 * (n - 1.0) * s1 - 2.0 * (n + 1.0) * s2 + 8.0 * s0 * s0
    b4_num = s1 - s2 + s0 * s0

    m1 = z_sum
    m2 = z_sq
    m3 = float((z ** 3).sum())
    m4 = float((z ** 4).sum())

    numerator = (
        b0_num * m2 * m2
        + b1_num * m4
        + b2_num * m1 * m1 * m2
        + b3_num * m1 * m3
        + b4_num * m1 ** 4
    )
    denominator = (m1 * m1 - m2) ** 2 * n * (n - 1.0) * (n - 2.0) * (n - 3.0)
    if denominator <= 0.0:
        raise DataError("General G needs at least 4 observations")
    var = numerator / denominator - expected * expected
    if var <= 0.0:
        raise DataError("degenerate weight structure: non-positive G variance")

    z_score = (g - expected) / np.sqrt(var)
    p_value = 2.0 * float(_normal_sf(abs(z_score)))
    return GeneralGResult(
        statistic=float(g),
        expected=float(expected),
        variance=float(var),
        z_score=float(z_score),
        p_value=min(p_value, 1.0),
    )


def gi_star_scores(
    values: np.ndarray,
    lag: np.ndarray,
    w_sum: np.ndarray,
    w_sq: np.ndarray,
) -> np.ndarray:
    """Closed-form Gi* z-scores from precomputed neighbourhood sums.

    Shared by the batch :func:`local_gi_star` (which builds ``lag`` /
    ``w_sum`` / ``w_sq`` by walking the CSR weights) and the streaming
    hot-spot analytic (which maintains them incrementally).  Both callers
    thus share the exact arithmetic, so a streamed map over the same
    window contents matches the batch map to within rounding of the
    summation order.

    Parameters
    ----------
    values:
        Observation vector ``z`` (length ``n``), float64.
    lag:
        Per-location weighted neighbour sum ``sum_j w_ij z_j`` *excluding*
        the self link.
    w_sum, w_sq:
        Per-location ``sum_j w_ij`` and ``sum_j w_ij^2`` excluding the
        self link; the Gi* self-inclusion (+1 each) is applied here.
    """
    z = np.asarray(values, dtype=np.float64)
    n = z.shape[0]
    z_bar = z.mean()
    s = float(np.sqrt((z * z).mean() - z_bar * z_bar))
    if s == 0.0:
        raise DataError("values are constant; Gi* is undefined")
    # Gi* includes the focal observation with weight 1.
    ws = np.asarray(w_sum, dtype=np.float64) + 1.0
    wq = np.asarray(w_sq, dtype=np.float64) + 1.0
    num = np.asarray(lag, dtype=np.float64) + z - z_bar * ws
    denom = s * np.sqrt(np.maximum((n * wq - ws * ws) / (n - 1.0), 1e-300))
    return num / denom


def local_gi_star(values, weights: SpatialWeights) -> np.ndarray:
    """Local Gi* z-scores (self-inclusive neighbourhoods).

    Positive scores mark statistically hot locations, negative scores cold
    ones; |z| > 1.96 is the conventional 5% cut.  The input ``weights``
    should be binary distance-band weights *without* the self link — the
    self term is added internally (that is the Gi* / Gi distinction).
    """
    n = weights.n
    z = as_values(values, n)
    lag = np.empty(n, dtype=np.float64)
    w_sum = np.empty(n, dtype=np.float64)
    w_sq = np.empty(n, dtype=np.float64)
    for i in range(n):
        cols, w = weights.row(i)
        lag[i] = float((w * z[cols]).sum())
        w_sum[i] = float(w.sum())
        w_sq[i] = float((w * w).sum())
    return gi_star_scores(z, lag, w_sum, w_sq)
