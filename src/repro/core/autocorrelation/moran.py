"""Moran's I — Table 1's global spatial autocorrelation statistic.

Global Moran's I over values ``z`` and weights ``W``:

    I = (n / S0) * (z_c^T W z_c) / (z_c^T z_c),       z_c = z - mean(z).

Inference is provided two ways, matching standard GIS practice:

* the analytic z-score under the *normality* assumption (Cliff & Ord
  moments, using the S0/S1/S2 sums of the weight matrix), and
* a permutation test (values shuffled over locations), which is the
  distribution-free default of modern packages.

Local Moran (LISA, Anselin 1995) decomposes I into per-location
contributions with permutation-based pseudo p-values, giving the
High-High / Low-Low / High-Low / Low-High cluster typology.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ... import obs
from ..._validation import as_values
from ...errors import DataError, ParameterError
from ...parallel import parallel_map, spawn_rngs
from .weights import SpatialWeights

__all__ = ["MoranResult", "morans_i", "LocalMoranResult", "local_morans_i"]


def _normal_sf(z: np.ndarray) -> np.ndarray:
    """Standard normal survival function via erfc (no SciPy dependency)."""
    from math import erfc

    z = np.asarray(z, dtype=np.float64)
    flat = z.ravel()
    out = np.array([0.5 * erfc(v / np.sqrt(2.0)) for v in flat])
    return out.reshape(z.shape)


@dataclass(frozen=True)
class MoranResult:
    """Global Moran's I with analytic and permutation inference.

    ``diagnostics`` carries the :class:`repro.obs.Diagnostics` of the
    producing call (permutation counters etc.); ``None`` when tracing
    was disabled.
    """

    statistic: float
    expected: float
    variance: float
    z_score: float
    p_value: float  # two-sided, normality assumption
    p_permutation: float | None  # one-sided pseudo p-value (if permutations ran)
    n_permutations: int
    diagnostics: "obs.Diagnostics | None" = None

    @property
    def is_clustered(self) -> bool:
        """Positive autocorrelation at the 5% level (analytic test)."""
        return self.statistic > self.expected and self.p_value < 0.05


def _moran_perm_task(task):
    """One Moran permutation draw: is the permuted I >= observed?"""
    rng, z, weights, n, s0, observed = task
    obs.count("moran.permutations")
    perm = rng.permutation(z)
    pc = perm - perm.mean()
    sim = (n / s0) * float(pc @ weights.lag(pc)) / float(pc @ pc)
    return sim >= observed


def morans_i(
    values,
    weights: SpatialWeights,
    permutations: int = 0,
    seed=None,
    workers: int | None = None,
    backend: str | None = None,
) -> MoranResult:
    """Global Moran's I with optional permutation inference.

    Permutation draws use one RNG stream each (see
    :mod:`repro.parallel`), so ``p_permutation`` is bit-identical for
    every ``workers``/``backend`` choice.
    """
    n = weights.n
    z = as_values(values, n)
    zc = z - z.mean()
    denom = float(zc @ zc)
    if denom == 0.0:
        raise DataError("values are constant; Moran's I is undefined")
    s0 = weights.s0()
    if s0 <= 0.0:
        raise DataError("weight matrix has no links")

    def stat(vec_c: np.ndarray) -> float:
        return (n / s0) * float(vec_c @ weights.lag(vec_c)) / float(vec_c @ vec_c)

    with obs.task("moran") as trace:
        obs.count("moran.sites", n)
        observed = stat(zc)
        expected = -1.0 / (n - 1)

        # Cliff-Ord variance under normality.
        s1 = weights.s1()
        s2 = weights.s2()
        var = (
            (n * n * s1 - n * s2 + 3.0 * s0 * s0)
            / ((n * n - 1.0) * s0 * s0)
            - expected * expected
        )
        if var <= 0.0:
            raise DataError(
                "degenerate weight structure: non-positive Moran variance"
            )
        z_score = (observed - expected) / np.sqrt(var)
        p_value = 2.0 * float(_normal_sf(abs(z_score)))

        p_perm = None
        permutations = int(permutations)
        if permutations > 0:
            tasks = [
                (rng, z, weights, n, s0, observed)
                for rng in spawn_rngs(seed, permutations)
            ]
            flags = parallel_map(
                _moran_perm_task, tasks, workers=workers, backend=backend,
                chunksize=16,
            )
            p_perm = (sum(flags) + 1) / (permutations + 1)

    return MoranResult(
        statistic=observed,
        expected=expected,
        variance=float(var),
        z_score=float(z_score),
        p_value=min(p_value, 1.0),
        p_permutation=p_perm,
        n_permutations=permutations,
        diagnostics=trace.diagnostics,
    )


@dataclass(frozen=True)
class LocalMoranResult:
    """Local Moran (LISA): per-location statistics and cluster labels."""

    statistics: np.ndarray
    p_values: np.ndarray  # permutation pseudo p-values (one-sided)
    labels: list[str]  # HH / LL / HL / LH / ns
    diagnostics: "obs.Diagnostics | None" = None

    def significant_mask(self, alpha: float = 0.05) -> np.ndarray:
        return self.p_values < alpha


def _local_moran_site_task(task):
    """Conditional permutation inference for one location (module-level)."""
    rng, i, zc, weights, m2, stat_i, permutations = task
    obs.count("moran.permutations", permutations)
    cols, w = weights.row(i)
    k = cols.shape[0]
    if k == 0:
        return 1.0, 0.0
    others = np.delete(zc, i)
    extreme = 0
    for _ in range(permutations):
        draw = rng.choice(others, size=k, replace=False)
        sim = zc[i] * float(w @ draw) / m2
        # One-sided in the direction of the observed statistic.
        if (stat_i >= 0 and sim >= stat_i) or (stat_i < 0 and sim <= stat_i):
            extreme += 1
    p_value = (extreme + 1) / (permutations + 1)
    lag_mean = (w * zc[cols]).sum() / max(w.sum(), 1e-12)
    return p_value, lag_mean


def local_morans_i(
    values,
    weights: SpatialWeights,
    permutations: int = 199,
    seed=None,
    workers: int | None = None,
    backend: str | None = None,
) -> LocalMoranResult:
    """Local Moran's I with conditional permutation inference.

    For each location the neighbours' values are re-drawn from the other
    n-1 observations; the pseudo p-value is the rank of the observed local
    statistic's magnitude in that conditional distribution.  Locations
    fan out over the shared executor with one RNG stream per location,
    so the p-values are bit-identical for every worker count.
    """
    n = weights.n
    z = as_values(values, n)
    permutations = int(permutations)
    if permutations < 1:
        raise ParameterError(f"permutations must be >= 1, got {permutations}")
    zc = z - z.mean()
    m2 = float(zc @ zc) / n
    if m2 == 0.0:
        raise DataError("values are constant; local Moran is undefined")

    lag = weights.lag(zc)
    stats = zc * lag / m2

    with obs.task("moran.local") as trace:
        obs.count("moran.sites", n)
        tasks = [
            (rng, i, zc, weights, m2, float(stats[i]), permutations)
            for i, rng in enumerate(spawn_rngs(seed, n))
        ]
        site_results = parallel_map(
            _local_moran_site_task, tasks, workers=workers, backend=backend,
            chunksize=8,
        )
    p_values = np.array([p for p, _ in site_results], dtype=np.float64)
    lag_mean = np.array([m for _, m in site_results], dtype=np.float64)

    labels = []
    for zi, li, p in zip(zc, lag_mean, p_values):
        if p >= 0.05:
            labels.append("ns")
        elif zi >= 0 and li >= 0:
            labels.append("HH")
        elif zi < 0 and li < 0:
            labels.append("LL")
        elif zi >= 0:
            labels.append("HL")
        else:
            labels.append("LH")
    return LocalMoranResult(
        statistics=stats, p_values=p_values, labels=labels,
        diagnostics=trace.diagnostics,
    )
