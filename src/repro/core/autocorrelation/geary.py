"""Geary's C — the contrast statistic complementing Moran's I.

Geary's C measures autocorrelation through squared *differences* between
neighbours rather than cross-products:

    C = (n - 1) sum_ij w_ij (z_i - z_j)^2 / ( 2 S0 sum_i (z_i - z_bar)^2 ).

Expectation under no autocorrelation is 1; ``C < 1`` indicates positive
autocorrelation (similar neighbours), ``C > 1`` negative.  C is more
sensitive to local differences than Moran's I, which is why GIS suites
ship both.  Inference follows Cliff & Ord's normality moments, plus an
optional permutation test.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ... import obs
from ..._validation import as_values
from ...errors import DataError
from ...parallel import parallel_map, spawn_rngs
from .moran import _normal_sf
from .weights import SpatialWeights

__all__ = ["GearyCResult", "gearys_c"]


@dataclass(frozen=True)
class GearyCResult:
    """Geary's C with analytic and permutation inference."""

    statistic: float
    expected: float  # always 1.0
    variance: float
    z_score: float
    p_value: float  # two-sided, normality assumption
    p_permutation: float | None
    n_permutations: int
    diagnostics: "obs.Diagnostics | None" = None

    @property
    def positive_autocorrelation(self) -> bool:
        """Similar values cluster (C < 1, significant at 5%)."""
        return self.statistic < 1.0 and self.p_value < 0.05


def _weighted_square_diffs(weights: SpatialWeights, z: np.ndarray) -> float:
    total = 0.0
    for i in range(weights.n):
        cols, w = weights.row(i)
        if cols.size:
            diff = z[i] - z[cols]
            total += float((w * diff * diff).sum())
    return total


def _geary_perm_task(task):
    """One Geary permutation draw: is it at least as extreme as observed?"""
    rng, z, weights, n, s0, observed = task
    obs.count("geary.permutations")
    perm = rng.permutation(z)
    pc = perm - perm.mean()
    sim = (
        (n - 1.0)
        * _weighted_square_diffs(weights, perm)
        / (2.0 * s0 * float(pc @ pc))
    )
    # One-sided toward the observed deviation from 1.
    if observed <= 1.0:
        return sim <= observed
    return sim >= observed


def gearys_c(
    values,
    weights: SpatialWeights,
    permutations: int = 0,
    seed=None,
    workers: int | None = None,
    backend: str | None = None,
) -> GearyCResult:
    """Geary's C with optional permutation inference.

    Permutation draws use one RNG stream each (see
    :mod:`repro.parallel`), so ``p_permutation`` is bit-identical for
    every ``workers``/``backend`` choice.
    """
    n = weights.n
    z = as_values(values, n)
    zc = z - z.mean()
    denom = float(zc @ zc)
    if denom == 0.0:
        raise DataError("values are constant; Geary's C is undefined")
    s0 = weights.s0()
    if s0 <= 0.0:
        raise DataError("weight matrix has no links")

    def stat(vec: np.ndarray) -> float:
        vc = vec - vec.mean()
        return (
            (n - 1.0)
            * _weighted_square_diffs(weights, vec)
            / (2.0 * s0 * float(vc @ vc))
        )

    with obs.task("geary") as trace:
        obs.count("geary.sites", n)
        observed = stat(z)

        # Cliff-Ord variance under normality.
        s1 = weights.s1()
        s2 = weights.s2()
        var = ((2.0 * s1 + s2) * (n - 1.0) - 4.0 * s0 * s0) / (
            2.0 * (n + 1.0) * s0 * s0
        )
        if var <= 0.0:
            raise DataError(
                "degenerate weight structure: non-positive Geary variance"
            )
        z_score = (observed - 1.0) / np.sqrt(var)
        p_value = 2.0 * float(_normal_sf(abs(z_score)))

        p_perm = None
        permutations = int(permutations)
        if permutations > 0:
            tasks = [
                (rng, z, weights, n, s0, observed)
                for rng in spawn_rngs(seed, permutations)
            ]
            flags = parallel_map(
                _geary_perm_task, tasks, workers=workers, backend=backend,
                chunksize=16,
            )
            p_perm = (sum(flags) + 1) / (permutations + 1)

    return GearyCResult(
        statistic=float(observed),
        expected=1.0,
        variance=float(var),
        z_score=float(z_score),
        p_value=min(p_value, 1.0),
        p_permutation=p_perm,
        n_permutations=permutations,
        diagnostics=trace.diagnostics,
    )
