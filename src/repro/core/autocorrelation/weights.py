"""Spatial weight matrices — the substrate of Moran's I and Getis-Ord.

A :class:`SpatialWeights` object is a sparse row-compressed weight matrix
``W`` over n observations.  Constructors cover the three standard recipes:

* :func:`knn_weights` — each observation's k nearest neighbours,
* :func:`distance_band_weights` — all neighbours within a radius (the
  binary weights Getis-Ord General G is defined over),
* :func:`lattice_weights` — rook/queen contiguity on a regular grid
  (for raster-valued analyses).

The helpers ``s0``, ``s1``, ``s2`` expose the summary sums that the
analytic (normality) variances of Moran's I and General G require.
"""

from __future__ import annotations

import numpy as np

from ..._validation import as_points, check_positive
from ...errors import DataError, ParameterError
from ...index import KDTree

__all__ = [
    "SpatialWeights",
    "knn_weights",
    "distance_band_weights",
    "lattice_weights",
]


class SpatialWeights:
    """Sparse (CSR) spatial weight matrix with zero diagonal."""

    def __init__(self, row_ptr, cols, weights, n: int):
        self.row_ptr = np.asarray(row_ptr, dtype=np.int64)
        self.cols = np.asarray(cols, dtype=np.int64)
        self.weights = np.asarray(weights, dtype=np.float64)
        self.n = int(n)
        if self.row_ptr.shape[0] != self.n + 1:
            raise DataError("row_ptr must have length n + 1")
        if self.cols.shape[0] != self.weights.shape[0]:
            raise DataError("cols and weights must have the same length")
        if self.cols.size and (self.cols.min() < 0 or self.cols.max() >= self.n):
            raise DataError("column index out of range")
        if np.any(self.weights < 0):
            raise DataError("weights must be non-negative")
        for i in range(self.n):
            row_cols = self.row(i)[0]
            if np.any(row_cols == i):
                raise DataError("the weight matrix diagonal must be zero")

    # -- accessors ------------------------------------------------------------

    def row(self, i: int) -> tuple[np.ndarray, np.ndarray]:
        """(neighbor indices, weights) of observation ``i``."""
        a, b = self.row_ptr[i], self.row_ptr[i + 1]
        return self.cols[a:b], self.weights[a:b]

    def n_links(self) -> int:
        return int(self.cols.shape[0])

    def cardinalities(self) -> np.ndarray:
        return np.diff(self.row_ptr)

    def dense(self) -> np.ndarray:
        """Full (n, n) matrix — for tests and tiny problems only."""
        out = np.zeros((self.n, self.n), dtype=np.float64)
        for i in range(self.n):
            cols, w = self.row(i)
            out[i, cols] = w
        return out

    def lag(self, values: np.ndarray) -> np.ndarray:
        """Spatial lag ``W z`` (weighted neighbour sums)."""
        z = np.asarray(values, dtype=np.float64).ravel()
        if z.shape[0] != self.n:
            raise DataError(f"values must have length {self.n}")
        out = np.zeros(self.n, dtype=np.float64)
        for i in range(self.n):
            cols, w = self.row(i)
            if cols.size:
                out[i] = (w * z[cols]).sum()
        return out

    def row_standardized(self) -> "SpatialWeights":
        """Copy with each row rescaled to sum to one (isolates keep zero)."""
        new_w = self.weights.copy()
        for i in range(self.n):
            a, b = self.row_ptr[i], self.row_ptr[i + 1]
            total = new_w[a:b].sum()
            if total > 0:
                new_w[a:b] /= total
        return SpatialWeights(self.row_ptr, self.cols, new_w, self.n)

    # -- moment sums (Cliff-Ord notation) -----------------------------------------

    def s0(self) -> float:
        """Sum of all weights."""
        return float(self.weights.sum())

    def s1(self) -> float:
        """``0.5 * sum_ij (w_ij + w_ji)^2``."""
        dense_needed = {}
        for i in range(self.n):
            cols, w = self.row(i)
            for j, wij in zip(cols, w):
                dense_needed[(i, int(j))] = float(wij)
        total = 0.0
        for (i, j), wij in dense_needed.items():
            wji = dense_needed.get((j, i), 0.0)
            total += (wij + wji) ** 2
        return 0.5 * total

    def s2(self) -> float:
        """``sum_i (w_i. + w_.i)^2`` (row-sum + column-sum squared)."""
        row_sums = np.zeros(self.n, dtype=np.float64)
        col_sums = np.zeros(self.n, dtype=np.float64)
        for i in range(self.n):
            cols, w = self.row(i)
            row_sums[i] = w.sum()
            np.add.at(col_sums, cols, w)
        return float(((row_sums + col_sums) ** 2).sum())


def _from_neighbor_lists(neighbors: list[np.ndarray], weights: list[np.ndarray], n: int) -> SpatialWeights:
    counts = np.array([len(c) for c in neighbors], dtype=np.int64)
    row_ptr = np.concatenate([[0], np.cumsum(counts)])
    cols = np.concatenate(neighbors) if n and row_ptr[-1] else np.empty(0, dtype=np.int64)
    vals = np.concatenate(weights) if n and row_ptr[-1] else np.empty(0, dtype=np.float64)
    return SpatialWeights(row_ptr, cols, vals, n)


def knn_weights(points, k: int, row_standardize: bool = True) -> SpatialWeights:
    """k-nearest-neighbour weights (binary, optionally row-standardised).

    Note kNN weights are generally asymmetric.
    """
    pts = as_points(points)
    n = pts.shape[0]
    k = int(k)
    if not (1 <= k < n):
        raise ParameterError(f"k must be in [1, n), got k={k} with n={n}")
    tree = KDTree(pts)
    neighbors: list[np.ndarray] = []
    weights: list[np.ndarray] = []
    for i in range(n):
        _, idx = tree.knn(pts[i], k + 1)  # +1: the query matches itself
        idx = idx[idx != i][:k]
        neighbors.append(idx.astype(np.int64))
        weights.append(np.ones(idx.shape[0], dtype=np.float64))
    w = _from_neighbor_lists(neighbors, weights, n)
    return w.row_standardized() if row_standardize else w


def distance_band_weights(
    points,
    threshold: float,
    binary: bool = True,
    row_standardize: bool = False,
) -> SpatialWeights:
    """All-neighbours-within-``threshold`` weights.

    ``binary=True`` gives the 0/1 weights of Getis-Ord's General G;
    ``binary=False`` uses inverse distance within the band.
    """
    pts = as_points(points)
    n = pts.shape[0]
    threshold = check_positive(threshold, "threshold")
    tree = KDTree(pts)
    neighbors: list[np.ndarray] = []
    weights: list[np.ndarray] = []
    for i in range(n):
        idx = tree.range_indices(pts[i], threshold)
        idx = idx[idx != i]
        neighbors.append(idx.astype(np.int64))
        if binary:
            weights.append(np.ones(idx.shape[0], dtype=np.float64))
        else:
            d = np.sqrt(((pts[idx] - pts[i]) ** 2).sum(axis=1))
            weights.append(1.0 / np.maximum(d, 1e-12))
    w = _from_neighbor_lists(neighbors, weights, n)
    return w.row_standardized() if row_standardize else w


def lattice_weights(nx: int, ny: int, contiguity: str = "queen") -> SpatialWeights:
    """Rook/queen contiguity on an ``nx x ny`` lattice (row-major ids).

    Cell (i, j) has id ``i * ny + j`` — matching the ``values[i, j]``
    layout of :class:`~repro.raster.DensityGrid`, so a flattened raster can
    be fed straight into Moran's I.
    """
    nx, ny = int(nx), int(ny)
    if nx < 1 or ny < 1:
        raise ParameterError(f"lattice must be at least 1x1, got {nx}x{ny}")
    if contiguity == "rook":
        moves = [(-1, 0), (1, 0), (0, -1), (0, 1)]
    elif contiguity == "queen":
        moves = [
            (-1, -1), (-1, 0), (-1, 1),
            (0, -1), (0, 1),
            (1, -1), (1, 0), (1, 1),
        ]
    else:
        raise ParameterError(f"contiguity must be 'rook' or 'queen', got {contiguity!r}")

    n = nx * ny
    neighbors: list[np.ndarray] = []
    weights: list[np.ndarray] = []
    for i in range(nx):
        for j in range(ny):
            nbrs = [
                (i + di) * ny + (j + dj)
                for di, dj in moves
                if 0 <= i + di < nx and 0 <= j + dj < ny
            ]
            arr = np.asarray(nbrs, dtype=np.int64)
            neighbors.append(arr)
            weights.append(np.ones(arr.shape[0], dtype=np.float64))
    return _from_neighbor_lists(neighbors, weights, n)
