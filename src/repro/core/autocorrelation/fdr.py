"""Multiple-testing control for local spatial statistics.

Local Moran / Gi* produce one test per location; at alpha = 0.05 a map of
2 000 locations shows ~100 "significant" cells under the null.  Modern GIS
practice (ArcGIS's hot-spot tool, recent LISA literature) applies the
Benjamini-Hochberg false-discovery-rate step-up to the local p-values.

:func:`fdr_mask` implements BH exactly: sort the p-values, find the
largest ``k`` with ``p_(k) <= k alpha / m``, and reject the first ``k``.
"""

from __future__ import annotations

import numpy as np

from ..._validation import check_probability
from ...errors import DataError

__all__ = ["fdr_mask", "fdr_threshold"]


def fdr_threshold(p_values, alpha: float = 0.05) -> float:
    """The Benjamini-Hochberg rejection threshold for the given p-values.

    Returns 0.0 when nothing can be rejected (then no p-value qualifies).
    """
    alpha = check_probability(alpha, "alpha")
    p = np.asarray(p_values, dtype=np.float64).ravel()
    if p.size == 0:
        raise DataError("p_values must not be empty")
    if np.any(p < 0) or np.any(p > 1) or not np.all(np.isfinite(p)):
        raise DataError("p_values must lie in [0, 1]")
    m = p.size
    order = np.sort(p)
    ladder = alpha * (np.arange(1, m + 1) / m)
    passing = np.flatnonzero(order <= ladder)
    if passing.size == 0:
        return 0.0
    return float(order[passing[-1]])


def fdr_mask(p_values, alpha: float = 0.05) -> np.ndarray:
    """Boolean rejection mask under Benjamini-Hochberg FDR control."""
    p = np.asarray(p_values, dtype=np.float64).ravel()
    cut = fdr_threshold(p, alpha)
    if cut == 0.0:
        return np.zeros(p.shape, dtype=bool)
    return p <= cut
