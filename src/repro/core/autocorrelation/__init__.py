"""Correlation-analysis tools of Table 1: Moran's I and Getis-Ord."""

from .fdr import fdr_mask, fdr_threshold
from .geary import GearyCResult, gearys_c
from .getis import GeneralGResult, general_g, gi_star_scores, local_gi_star
from .moran import LocalMoranResult, MoranResult, local_morans_i, morans_i
from .weights import (
    SpatialWeights,
    distance_band_weights,
    knn_weights,
    lattice_weights,
)

__all__ = [
    "GearyCResult",
    "GeneralGResult",
    "gearys_c",
    "LocalMoranResult",
    "MoranResult",
    "SpatialWeights",
    "distance_band_weights",
    "fdr_mask",
    "fdr_threshold",
    "general_g",
    "gi_star_scores",
    "knn_weights",
    "lattice_weights",
    "local_gi_star",
    "local_morans_i",
    "morans_i",
]
