"""Empirical semivariograms and variogram model fitting (kriging substrate).

Kriging (Table 1's third hotspot-detection tool) needs a fitted variogram:
a model of how sample dissimilarity grows with distance.  This module
computes the binned empirical semivariogram

    gamma(h) = 0.5 * mean{ (z_i - z_j)^2 : dist(p_i, p_j) in bin(h) }

and fits the classical bounded models (spherical, exponential, Gaussian,
linear) by weighted least squares.  The fit is pure NumPy: for each
candidate range the model is *linear* in (nugget, partial sill), so an
exact 2x2 weighted solve per range plus a coarse-to-fine range search
finds the optimum without external optimisers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..._validation import as_points, as_values, check_positive, resolve_rng
from ...errors import ConvergenceError, DataError, ParameterError

__all__ = [
    "empirical_variogram",
    "VariogramModel",
    "fit_variogram",
    "VARIOGRAM_MODELS",
]


def _spherical(h: np.ndarray, rng: float) -> np.ndarray:
    u = np.minimum(h / rng, 1.0)
    return 1.5 * u - 0.5 * u ** 3


def _exponential(h: np.ndarray, rng: float) -> np.ndarray:
    return 1.0 - np.exp(-3.0 * h / rng)


def _gaussian_model(h: np.ndarray, rng: float) -> np.ndarray:
    return 1.0 - np.exp(-3.0 * (h / rng) ** 2)


def _linear(h: np.ndarray, rng: float) -> np.ndarray:
    return np.minimum(h / rng, 1.0)


VARIOGRAM_MODELS: dict[str, Callable[[np.ndarray, float], np.ndarray]] = {
    "spherical": _spherical,
    "exponential": _exponential,
    "gaussian": _gaussian_model,
    "linear": _linear,
}


def empirical_variogram(
    points,
    values,
    n_bins: int = 15,
    max_dist: float | None = None,
    max_pairs: int = 500_000,
    seed=None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Binned empirical semivariogram.

    Returns ``(lags, gamma, counts)``: bin-centre distances, semivariances
    and pair counts (zero-pair bins are dropped).  When the number of pairs
    exceeds ``max_pairs`` a uniform random subset of pairs is used — the
    standard practice for large n.
    """
    pts = as_points(points)
    z = as_values(values, pts.shape[0])
    n = pts.shape[0]
    if n < 2:
        raise DataError("variogram needs at least two samples")
    n_bins = int(n_bins)
    if n_bins < 1:
        raise ParameterError(f"n_bins must be >= 1, got {n_bins}")

    total_pairs = n * (n - 1) // 2
    rng = resolve_rng(seed)
    if total_pairs <= max_pairs:
        iu, ju = np.triu_indices(n, k=1)
    else:
        iu = rng.integers(0, n, size=max_pairs)
        ju = rng.integers(0, n, size=max_pairs)
        keep = iu != ju
        iu, ju = iu[keep], ju[keep]

    d = np.sqrt(((pts[iu] - pts[ju]) ** 2).sum(axis=1))
    sq = 0.5 * (z[iu] - z[ju]) ** 2

    if max_dist is None:
        max_dist = float(d.max()) / 2.0  # variograms are unreliable past half-extent
        if max_dist <= 0.0:
            raise DataError("all samples are co-located; variogram undefined")
    else:
        max_dist = check_positive(max_dist, "max_dist")

    inside = d <= max_dist
    d, sq = d[inside], sq[inside]
    if d.size == 0:
        raise DataError(f"no pairs within max_dist={max_dist}")

    edges = np.linspace(0.0, max_dist, n_bins + 1)
    which = np.clip(np.digitize(d, edges) - 1, 0, n_bins - 1)
    counts = np.bincount(which, minlength=n_bins)
    sums = np.bincount(which, weights=sq, minlength=n_bins)
    nonzero = counts > 0
    lags = 0.5 * (edges[:-1] + edges[1:])[nonzero]
    gamma = sums[nonzero] / counts[nonzero]
    return lags, gamma, counts[nonzero]


@dataclass(frozen=True)
class VariogramModel:
    """A fitted variogram ``gamma(h) = nugget + psill * g(h / range)``."""

    model: str
    nugget: float
    psill: float
    range_: float

    def __post_init__(self) -> None:
        if self.model not in VARIOGRAM_MODELS:
            known = ", ".join(sorted(VARIOGRAM_MODELS))
            raise ParameterError(f"unknown variogram model {self.model!r}; known: {known}")
        if self.nugget < 0 or self.psill < 0 or self.range_ <= 0:
            raise ParameterError(
                "variogram requires nugget >= 0, psill >= 0, range > 0; got "
                f"nugget={self.nugget}, psill={self.psill}, range={self.range_}"
            )

    @property
    def sill(self) -> float:
        return self.nugget + self.psill

    def __call__(self, h) -> np.ndarray:
        """Semivariance at distance(s) ``h`` (gamma(0) = 0 by convention)."""
        h = np.asarray(h, dtype=np.float64)
        shape = VARIOGRAM_MODELS[self.model](np.abs(h), self.range_)
        out = self.nugget + self.psill * shape
        return np.where(h == 0.0, 0.0, out)

    def covariance(self, h) -> np.ndarray:
        """Covariance form ``C(h) = sill - gamma(h)`` used by kriging."""
        return self.sill - self(h)


def fit_variogram(
    lags,
    gamma,
    model: str = "spherical",
    counts=None,
    n_range_candidates: int = 64,
) -> VariogramModel:
    """Weighted least-squares fit of a variogram model.

    ``counts`` (pair counts per bin) weight the residuals when provided.
    The range is searched over a geometric candidate grid; nugget and
    partial sill are solved exactly per candidate.
    """
    lags = np.asarray(lags, dtype=np.float64).ravel()
    gamma = np.asarray(gamma, dtype=np.float64).ravel()
    if lags.shape != gamma.shape or lags.size < 3:
        raise DataError("need matching lags/gamma with at least 3 bins")
    if model not in VARIOGRAM_MODELS:
        known = ", ".join(sorted(VARIOGRAM_MODELS))
        raise ParameterError(f"unknown variogram model {model!r}; known: {known}")
    if counts is None:
        w = np.ones_like(gamma)
    else:
        w = np.asarray(counts, dtype=np.float64).ravel()
        if w.shape != gamma.shape or np.any(w < 0):
            raise DataError("counts must be non-negative and match the bins")
        w = np.maximum(w, 1e-9)

    shape_fn = VARIOGRAM_MODELS[model]
    h_max = float(lags.max())
    candidates = h_max * np.geomspace(0.05, 2.0, int(n_range_candidates))

    best = None
    for rng_c in candidates:
        g = shape_fn(lags, float(rng_c))
        # Weighted LS for gamma ~ nugget + psill * g  (2x2 normal equations).
        a11 = w.sum()
        a12 = (w * g).sum()
        a22 = (w * g * g).sum()
        b1 = (w * gamma).sum()
        b2 = (w * g * gamma).sum()
        det = a11 * a22 - a12 * a12
        if det <= 1e-12 * max(a11 * a22, 1.0):
            continue
        nugget = (b1 * a22 - b2 * a12) / det
        psill = (a11 * b2 - a12 * b1) / det
        nugget = max(nugget, 0.0)
        psill = max(psill, 0.0)
        resid = gamma - (nugget + psill * g)
        sse = float((w * resid * resid).sum())
        if best is None or sse < best[0]:
            best = (sse, nugget, psill, float(rng_c))
    if best is None:
        raise ConvergenceError("variogram fit failed on every candidate range")
    _, nugget, psill, rng_best = best
    if psill == 0.0 and nugget == 0.0:
        raise ConvergenceError("degenerate variogram fit (zero sill)")
    return VariogramModel(model=model, nugget=nugget, psill=psill, range_=rng_best)
