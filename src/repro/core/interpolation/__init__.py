"""Interpolation tools of Table 1: IDW and Kriging (with variograms)."""

from .idw import IDW_METHODS, idw_grid, idw_predict
from .kriging import (
    KrigingResult,
    kriging_grid,
    loocv_kriging,
    ordinary_kriging,
    simple_kriging,
    universal_kriging,
)
from .variogram import (
    VARIOGRAM_MODELS,
    VariogramModel,
    empirical_variogram,
    fit_variogram,
)

__all__ = [
    "IDW_METHODS",
    "KrigingResult",
    "VARIOGRAM_MODELS",
    "VariogramModel",
    "empirical_variogram",
    "fit_variogram",
    "idw_grid",
    "idw_predict",
    "kriging_grid",
    "loocv_kriging",
    "ordinary_kriging",
    "simple_kriging",
    "universal_kriging",
]
