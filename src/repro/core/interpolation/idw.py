"""Inverse distance weighting (IDW) — Table 1's second hotspot-detection tool.

IDW interpolates a value surface from scattered samples:

    Z(q) = sum_i w_i(q) z_i / sum_i w_i(q),     w_i(q) = 1 / dist(q, p_i)^p.

The paper (§2.4) quotes the naive cost O(XYn) [20] and calls for
accelerated versions; this module provides the naive gather plus the two
standard accelerations:

* ``knn`` — only the k nearest samples contribute (kd-tree backed);
* ``cutoff`` — only samples within a radius contribute, with a
  nearest-neighbour fallback for pixels whose disc is empty.

Exactness note: IDW is an *exact interpolator* — at a sample location the
surface equals the sample value; all three backends honour this by
snapping when a distance underflows.
"""

from __future__ import annotations

import numpy as np

from ... import obs
from ..._validation import as_points, as_values, check_positive, chunk_ranges
from ...errors import ParameterError
from ...geometry import BoundingBox
from ...index import KDTree
from ...parallel import parallel_map
from ...raster import DensityGrid

__all__ = ["idw_grid", "idw_predict", "IDW_METHODS"]

IDW_METHODS = ("naive", "knn", "cutoff")

_SNAP_EPS = 1e-12


def _weights_to_values(d2: np.ndarray, z: np.ndarray, power: float) -> np.ndarray:
    """Blend sample values by inverse-distance weights, row-wise.

    ``d2`` is an (nq, m) squared-distance block; rows containing a
    (near-)zero distance snap to that sample's value.
    """
    with np.errstate(divide="ignore"):
        w = d2 ** (-power / 2.0)
    hits = d2 <= _SNAP_EPS
    any_hit = hits.any(axis=1)
    w_sum = np.where(any_hit, 1.0, w.sum(axis=1))
    out = np.empty(d2.shape[0], dtype=np.float64)
    safe = ~any_hit
    out[safe] = (w[safe] * z[None, :]).sum(axis=1) / w_sum[safe]
    if any_hit.any():
        first_hit = hits[any_hit].argmax(axis=1)
        out[any_hit] = z[first_hit]
    return out


def _idw_naive_block(task):
    """Naive IDW gather for one query block (module-level for pickling)."""
    block, pts, p_sq, z, power = task
    obs.count("idw.queries", block.shape[0])
    d2 = (
        np.sum(block * block, axis=1)[:, None]
        + p_sq[None, :]
        - 2.0 * (block @ pts.T)
    )
    np.maximum(d2, 0.0, out=d2)
    return _weights_to_values(d2, z, power)


def _idw_knn_block(task):
    """kNN IDW for one query block via the shared kd-tree."""
    block, tree, z, power, k = task
    obs.count("idw.queries", block.shape[0])
    out = np.empty(block.shape[0], dtype=np.float64)
    for j, row in enumerate(block):
        dists, idx = tree.knn(row, k)
        d2 = (dists * dists)[None, :]
        out[j] = _weights_to_values(d2, z[idx], power)[0]
    return out


def _idw_cutoff_block(task):
    """Cutoff IDW for one query block via the shared kd-tree."""
    block, tree, pts, z, power, radius = task
    obs.count("idw.queries", block.shape[0])
    out = np.empty(block.shape[0], dtype=np.float64)
    for j, row in enumerate(block):
        idx = tree.range_indices(row, radius)
        if idx.size == 0:
            # Empty disc: fall back to the nearest sample.
            _, nn = tree.knn(row, 1)
            out[j] = z[nn[0]]
            continue
        d2 = ((pts[idx] - row) ** 2).sum(axis=1)[None, :]
        out[j] = _weights_to_values(d2, z[idx], power)[0]
    return out


def idw_predict(
    points,
    values,
    queries,
    power: float = 2.0,
    method: str = "naive",
    k: int = 12,
    radius: float | None = None,
    chunk: int = 2048,
    workers: int | None = None,
    backend: str | None = None,
) -> np.ndarray:
    """IDW prediction at arbitrary query locations.

    Query blocks of ``chunk`` rows (256 for the per-query ``knn``/
    ``cutoff`` backends) fan out over the shared executor
    (``workers``/``backend``, see :mod:`repro.parallel`); every block
    writes its own output slice, so results match the serial evaluation
    exactly at any worker count.
    """
    pts = as_points(points)
    z = as_values(values, pts.shape[0])
    q = as_points(queries, name="queries")
    power = check_positive(power, "power")

    obs.count("idw.samples", pts.shape[0])
    obs.count(f"idw.method.{method}" if method in IDW_METHODS else
              "idw.method.unknown")

    if method == "naive":
        p_sq = np.sum(pts * pts, axis=1)
        spans = chunk_ranges(q.shape[0], int(chunk))
        tasks = [(q[a:b], pts, p_sq, z, power) for a, b in spans]
        with obs.span("idw.predict.naive"):
            return np.concatenate(
                parallel_map(
                    _idw_naive_block, tasks, workers=workers, backend=backend
                )
            )

    if method == "knn":
        k = int(k)
        if k < 1:
            raise ParameterError(f"k must be >= 1, got {k}")
        tree = KDTree(pts)
        spans = chunk_ranges(q.shape[0], 256)
        tasks = [(q[a:b], tree, z, power, k) for a, b in spans]
        with obs.span("idw.predict.knn"):
            return np.concatenate(
                parallel_map(
                    _idw_knn_block, tasks, workers=workers, backend=backend
                )
            )

    if method == "cutoff":
        if radius is None:
            raise ParameterError("method='cutoff' requires a radius")
        radius = check_positive(radius, "radius")
        tree = KDTree(pts)
        spans = chunk_ranges(q.shape[0], 256)
        tasks = [(q[a:b], tree, pts, z, power, radius) for a, b in spans]
        with obs.span("idw.predict.cutoff"):
            return np.concatenate(
                parallel_map(
                    _idw_cutoff_block, tasks, workers=workers, backend=backend
                )
            )

    raise ParameterError(
        f"unknown IDW method {method!r}; available: {', '.join(IDW_METHODS)}"
    )


def _idw_grid_cutoff(points, values, bbox, nx, ny, power, radius):
    """Vectorised cutoff IDW on a pixel lattice by *scattering* samples.

    IDW's numerator and denominator are both plain sums over in-range
    samples, so — like the cutoff KDV backend — each sample can scatter
    its weights onto the O((r/dx)^2) pixel patch it covers.  This turns
    the O(XYn) gather into O(n * patch + XY) and is what makes cutoff the
    fast backend at scale (Ablation E).
    """
    pts = as_points(points)
    z = as_values(values, pts.shape[0])
    xs, ys = bbox.pixel_centers(nx, ny)
    dx, dy = bbox.pixel_size(nx, ny)
    x0, y0 = xs[0], ys[0]
    r2 = radius * radius

    num = np.zeros((nx, ny), dtype=np.float64)
    den = np.zeros((nx, ny), dtype=np.float64)
    snap_val = np.zeros((nx, ny), dtype=np.float64)
    snap_hit = np.zeros((nx, ny), dtype=bool)

    scatters = 0
    for row in range(pts.shape[0]):
        px, py = pts[row]
        ix_lo = max(int(np.ceil((px - radius - x0) / dx)), 0)
        ix_hi = min(int(np.floor((px + radius - x0) / dx)), nx - 1)
        iy_lo = max(int(np.ceil((py - radius - y0) / dy)), 0)
        iy_hi = min(int(np.floor((py + radius - y0) / dy)), ny - 1)
        if ix_lo > ix_hi or iy_lo > iy_hi:
            continue
        scatters += 1
        local_x = xs[ix_lo:ix_hi + 1] - px
        local_y = ys[iy_lo:iy_hi + 1] - py
        d2 = local_x[:, None] ** 2 + local_y[None, :] ** 2
        inside = d2 <= r2
        with np.errstate(divide="ignore"):
            w = np.where(inside, d2 ** (-power / 2.0), 0.0)
        patch = (slice(ix_lo, ix_hi + 1), slice(iy_lo, iy_hi + 1))
        exact = inside & (d2 <= _SNAP_EPS)
        if exact.any():
            # snap_val[patch] is a basic-slice view, so fancy assignment
            # into it writes through to the full array.
            newly = exact & ~snap_hit[patch]
            snap_val[patch][newly] = z[row]
            snap_hit[patch][newly] = True
            w = np.where(exact, 0.0, w)
        num[patch] += w * z[row]
        den[patch] += w

    obs.count("idw.scatters", scatters)
    out = np.empty((nx, ny), dtype=np.float64)
    covered = den > 0
    out[covered] = num[covered] / den[covered]
    out[snap_hit] = snap_val[snap_hit]
    empty = ~covered & ~snap_hit
    if empty.any():
        # Pixels with an empty disc fall back to the nearest sample.
        tree = KDTree(pts)
        for i, j in np.argwhere(empty):
            _, idx = tree.knn((xs[i], ys[j]), 1)
            out[i, j] = z[idx[0]]
    return out


def idw_grid(
    points,
    values,
    bbox: BoundingBox,
    size: tuple[int, int],
    power: float = 2.0,
    method: str = "naive",
    k: int = 12,
    radius: float | None = None,
    workers: int | None = None,
    backend: str | None = None,
) -> DensityGrid:
    """IDW surface over an ``nx x ny`` pixel grid (the raster use-case).

    ``method="cutoff"`` on a grid uses a vectorised scatter formulation
    (see :func:`_idw_grid_cutoff`) rather than per-pixel range queries
    (the scatter's running pixel sums stay serial; the gather backends
    honour ``workers``/``backend`` via :func:`idw_predict`).
    """
    nx, ny = int(size[0]), int(size[1])
    with obs.task("idw") as trace:
        if method == "cutoff":
            if radius is None:
                raise ParameterError("method='cutoff' requires a radius")
            radius = check_positive(radius, "radius")
            power = check_positive(power, "power")
            obs.count("idw.method.cutoff")
            obs.count("idw.queries", nx * ny)
            vals = _idw_grid_cutoff(points, values, bbox, nx, ny, power, radius)
        else:
            xs, ys = bbox.pixel_centers(nx, ny)
            gx, gy = np.meshgrid(xs, ys, indexing="ij")
            queries = np.column_stack([gx.ravel(), gy.ravel()])
            vals = idw_predict(
                points, values, queries, power=power, method=method, k=k,
                radius=radius, workers=workers, backend=backend,
            ).reshape(nx, ny)
    return DensityGrid(bbox, vals, diagnostics=trace.diagnostics)
