"""Ordinary kriging (Table 1's third hotspot-detection tool).

Given samples ``(p_i, z_i)`` and a fitted variogram, ordinary kriging
predicts ``Z(q)`` as the best linear unbiased estimator: the weight vector
solves the OK system

    [ C   1 ] [ w      ]   [ c(q) ]
    [ 1^T 0 ] [ lambda ] = [ 1    ]

where ``C`` is the sample covariance matrix and ``c(q)`` the query-sample
covariance vector.  The implementation uses local neighbourhoods (k
nearest samples via the library kd-tree) — the standard way to make
kriging tractable, and what the GPU papers the tutorial cites [36, 109]
parallelise.

The kriging *variance* ``sill - w.c(q) - lambda`` is returned alongside
the prediction; it is the tool's distinguishing feature over IDW.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ... import obs
from ..._validation import as_points, as_values, chunk_ranges
from ...errors import DataError, ParameterError
from ...geometry import BoundingBox
from ...index import KDTree
from ...parallel import parallel_map
from ...raster import DensityGrid
from .variogram import VariogramModel, empirical_variogram, fit_variogram

__all__ = [
    "KrigingResult",
    "ordinary_kriging",
    "simple_kriging",
    "universal_kriging",
    "loocv_kriging",
    "kriging_grid",
]

_JITTER = 1e-10  # diagonal regularisation against near-duplicate samples


@dataclass(frozen=True)
class KrigingResult:
    """Kriging predictions with their variances (and the model used).

    ``diagnostics`` carries the :class:`repro.obs.Diagnostics` of the
    producing call; ``None`` when tracing was disabled.
    """

    predictions: np.ndarray
    variances: np.ndarray
    model: VariogramModel
    diagnostics: "obs.Diagnostics | None" = None


def _solve_ok(
    cov_mat: np.ndarray, cov_vec: np.ndarray, z: np.ndarray, sill: float
) -> tuple[float, float]:
    """Solve one ordinary-kriging system; returns (prediction, variance)."""
    m = cov_mat.shape[0]
    lhs = np.empty((m + 1, m + 1), dtype=np.float64)
    lhs[:m, :m] = cov_mat
    lhs[:m, :m].flat[:: m + 1] += _JITTER
    lhs[m, :m] = 1.0
    lhs[:m, m] = 1.0
    lhs[m, m] = 0.0
    rhs = np.empty(m + 1, dtype=np.float64)
    rhs[:m] = cov_vec
    rhs[m] = 1.0
    try:
        sol = np.linalg.solve(lhs, rhs)
    except np.linalg.LinAlgError:
        sol, *_ = np.linalg.lstsq(lhs, rhs, rcond=None)
    w = sol[:m]
    lam = sol[m]
    pred = float(w @ z)
    var = float(sill - w @ cov_vec - lam)
    return pred, max(var, 0.0)


#: Queries per parallel kriging task (fixed, worker-count-invariant).
_QUERIES_PER_TASK = 256


def _ok_global_block(task):
    """Global-neighbourhood OK for one query block (module-level)."""
    block, pts, z, cov_mat, model, sill = task
    obs.count("kriging.queries", block.shape[0])
    obs.count("kriging.systems_solved", block.shape[0])
    preds = np.empty(block.shape[0], dtype=np.float64)
    vars_ = np.empty(block.shape[0], dtype=np.float64)
    for j, row in enumerate(block):
        dq = np.sqrt(((pts - row) ** 2).sum(axis=1))
        preds[j], vars_[j] = _solve_ok(cov_mat, model.covariance(dq), z, sill)
    return preds, vars_


def _ok_local_block(task):
    """k-nearest-neighbourhood OK for one query block (module-level)."""
    block, pts, z, tree, model, sill, k = task
    obs.count("kriging.queries", block.shape[0])
    obs.count("kriging.systems_solved", block.shape[0])
    preds = np.empty(block.shape[0], dtype=np.float64)
    vars_ = np.empty(block.shape[0], dtype=np.float64)
    for j, row in enumerate(block):
        dists, idx = tree.knn(row, k)
        local = pts[idx]
        d_mat = np.sqrt(((local[:, None, :] - local[None, :, :]) ** 2).sum(axis=2))
        cov_mat = model.covariance(d_mat)
        cov_vec = model.covariance(dists)
        preds[j], vars_[j] = _solve_ok(cov_mat, cov_vec, z[idx], sill)
    return preds, vars_


def ordinary_kriging(
    points,
    values,
    queries,
    model: VariogramModel,
    k_neighbors: int | None = 16,
    workers: int | None = None,
    backend: str | None = None,
) -> KrigingResult:
    """Ordinary kriging at arbitrary query locations.

    ``k_neighbors=None`` uses *all* samples for every query (global
    kriging, O(n^3) once + O(n) per query) — only sensible for small n.
    Query blocks fan out over the shared executor (``workers``/
    ``backend``, see :mod:`repro.parallel`); each block solves its own
    OK systems and writes its own output slice, so predictions are
    identical to the serial evaluation at any worker count.
    """
    pts = as_points(points)
    z = as_values(values, pts.shape[0])
    q = as_points(queries, name="queries")
    n = pts.shape[0]
    if n < 2:
        raise DataError("kriging needs at least two samples")
    sill = model.sill
    spans = chunk_ranges(q.shape[0], _QUERIES_PER_TASK)

    with obs.task("kriging") as trace:
        obs.count("kriging.samples", n)
        if k_neighbors is None:
            d_mat = np.sqrt(
                ((pts[:, None, :] - pts[None, :, :]) ** 2).sum(axis=2)
            )
            cov_mat = model.covariance(d_mat)
            tasks = [(q[a:b], pts, z, cov_mat, model, sill) for a, b in spans]
            blocks = parallel_map(
                _ok_global_block, tasks, workers=workers, backend=backend
            )
        else:
            k = int(k_neighbors)
            if k < 2:
                raise ParameterError(f"k_neighbors must be >= 2, got {k}")
            k = min(k, n)
            tree = KDTree(pts)
            tasks = [(q[a:b], pts, z, tree, model, sill, k) for a, b in spans]
            blocks = parallel_map(
                _ok_local_block, tasks, workers=workers, backend=backend
            )
        preds = np.concatenate([p for p, _ in blocks])
        vars_ = np.concatenate([v for _, v in blocks])
    return KrigingResult(preds, vars_, model, diagnostics=trace.diagnostics)


def simple_kriging(
    points,
    values,
    queries,
    model: VariogramModel,
    mean: float,
    k_neighbors: int | None = 16,
) -> KrigingResult:
    """Simple kriging: the process mean is *known* a priori.

    With a known mean there is no unbiasedness constraint — the weights
    solve ``C w = c(q)`` directly and the prediction is
    ``mean + w . (z - mean)``.  Variance is ``sill - w . c(q)``.  Use when
    an external calibration fixes the mean (e.g. a long-run background
    level); otherwise prefer :func:`ordinary_kriging`.
    """
    pts = as_points(points)
    z = as_values(values, pts.shape[0])
    q = as_points(queries, name="queries")
    n = pts.shape[0]
    if n < 1:
        raise DataError("simple kriging needs at least one sample")
    mean = float(mean)
    resid = z - mean
    sill = model.sill

    preds = np.empty(q.shape[0], dtype=np.float64)
    vars_ = np.empty(q.shape[0], dtype=np.float64)
    k = n if k_neighbors is None else min(int(k_neighbors), n)
    if k < 1:
        raise ParameterError(f"k_neighbors must be >= 1, got {k_neighbors}")
    tree = KDTree(pts)
    for i, row in enumerate(q):
        dists, idx = tree.knn(row, k)
        local = pts[idx]
        d_mat = np.sqrt(((local[:, None, :] - local[None, :, :]) ** 2).sum(axis=2))
        cov_mat = model.covariance(d_mat)
        cov_mat.flat[:: k + 1] += _JITTER
        cov_vec = model.covariance(dists)
        try:
            w = np.linalg.solve(cov_mat, cov_vec)
        except np.linalg.LinAlgError:
            w, *_ = np.linalg.lstsq(cov_mat, cov_vec, rcond=None)
        preds[i] = mean + float(w @ resid[idx])
        vars_[i] = max(float(sill - w @ cov_vec), 0.0)
    return KrigingResult(preds, vars_, model)


def universal_kriging(
    points,
    values,
    queries,
    model: VariogramModel,
    k_neighbors: int | None = 24,
) -> KrigingResult:
    """Universal kriging with a first-order (linear) drift.

    Extends the ordinary-kriging system with drift constraints
    ``sum w_i = 1``, ``sum w_i x_i = x_q``, ``sum w_i y_i = y_q`` so the
    estimator stays unbiased under a linear spatial trend — the right tool
    when the field has a gradient (the situation :func:`inhomogeneous_k
    <repro.core.kfunction.inhomogeneous_k>` flags on the point side).
    """
    pts = as_points(points)
    z = as_values(values, pts.shape[0])
    q = as_points(queries, name="queries")
    n = pts.shape[0]
    if n < 4:
        raise DataError("universal kriging needs at least four samples")
    sill = model.sill

    preds = np.empty(q.shape[0], dtype=np.float64)
    vars_ = np.empty(q.shape[0], dtype=np.float64)
    k = n if k_neighbors is None else min(int(k_neighbors), n)
    if k < 4:
        raise ParameterError("k_neighbors must be >= 4 for a linear drift")
    tree = KDTree(pts)
    for i, row in enumerate(q):
        dists, idx = tree.knn(row, k)
        local = pts[idx]
        d_mat = np.sqrt(((local[:, None, :] - local[None, :, :]) ** 2).sum(axis=2))
        m = k + 3  # weights + 3 Lagrange multipliers (1, x, y)
        lhs = np.zeros((m, m), dtype=np.float64)
        lhs[:k, :k] = model.covariance(d_mat)
        lhs[:k, :k].flat[:: k + 1] += _JITTER
        drift = np.column_stack([np.ones(k), local[:, 0], local[:, 1]])
        lhs[:k, k:] = drift
        lhs[k:, :k] = drift.T
        rhs = np.empty(m, dtype=np.float64)
        rhs[:k] = model.covariance(dists)
        rhs[k:] = [1.0, row[0], row[1]]
        try:
            sol = np.linalg.solve(lhs, rhs)
        except np.linalg.LinAlgError:
            sol, *_ = np.linalg.lstsq(lhs, rhs, rcond=None)
        w = sol[:k]
        preds[i] = float(w @ z[idx])
        vars_[i] = max(float(sill - sol @ rhs), 0.0)
    return KrigingResult(preds, vars_, model)


def loocv_kriging(
    points,
    values,
    model: VariogramModel,
    k_neighbors: int | None = 16,
) -> tuple[np.ndarray, float]:
    """Leave-one-out cross-validation of an ordinary-kriging model.

    Each sample is predicted from the remaining samples; returns the
    per-sample residuals and the RMSE — the standard geostatistical check
    of a fitted variogram before committing to a map.
    """
    pts = as_points(points)
    z = as_values(values, pts.shape[0])
    n = pts.shape[0]
    if n < 3:
        raise DataError("LOOCV needs at least three samples")
    residuals = np.empty(n, dtype=np.float64)
    mask = np.ones(n, dtype=bool)
    for i in range(n):
        mask[i] = False
        res = ordinary_kriging(
            pts[mask], z[mask], pts[i:i + 1], model, k_neighbors=k_neighbors
        )
        residuals[i] = float(res.predictions[0]) - z[i]
        mask[i] = True
    rmse = float(np.sqrt((residuals ** 2).mean()))
    return residuals, rmse


def kriging_grid(
    points,
    values,
    bbox: BoundingBox,
    size: tuple[int, int],
    model: VariogramModel | None = None,
    variogram_model: str = "spherical",
    k_neighbors: int | None = 16,
    seed=None,
    workers: int | None = None,
    backend: str | None = None,
) -> tuple[DensityGrid, DensityGrid, VariogramModel]:
    """Kriging surface over a pixel grid.

    When ``model`` is omitted, an empirical variogram is estimated from the
    samples and fitted with ``variogram_model``.  Returns
    ``(prediction_grid, variance_grid, fitted_model)``.  Pixel-query
    blocks run on the shared executor (``workers``/``backend``).
    """
    pts = as_points(points)
    z = as_values(values, pts.shape[0])
    if model is None:
        lags, gamma, counts = empirical_variogram(pts, z, seed=seed)
        model = fit_variogram(lags, gamma, model=variogram_model, counts=counts)

    nx, ny = int(size[0]), int(size[1])
    xs, ys = bbox.pixel_centers(nx, ny)
    gx, gy = np.meshgrid(xs, ys, indexing="ij")
    queries = np.column_stack([gx.ravel(), gy.ravel()])
    result = ordinary_kriging(
        pts, z, queries, model, k_neighbors=k_neighbors,
        workers=workers, backend=backend,
    )
    pred_grid = DensityGrid(
        bbox, result.predictions.reshape(nx, ny),
        diagnostics=result.diagnostics,
    )
    var_grid = DensityGrid(bbox, result.variances.reshape(nx, ny))
    return pred_grid, var_grid, model
