"""Cache-blocked kernel-scatter core shared by every density backend.

The paper's central performance complaint (§2.2) is that per-point Python
loops leave orders of magnitude on the table.  Before this module, four
independently written scatter loops lived in the tree: the streaming
accumulator's per-point patch loop, the grid-cutoff backend's per-point
patch loop, the dual-tree execute phase's per-pair leaf scans, and the
NKDV per-event lixel scatter.  They all now dispatch through the three
primitives here:

* :class:`PatchScatter` — planar patch scatter of a point batch onto one
  or more ``(nx, ny)`` surfaces.  Events are batched into
  structure-of-arrays layout (one vectorised window computation, one
  ``evaluate_sq`` call per batch instead of one per point) and applied
  per point in **input order**, so the ``dtype=float64`` default is
  bit-identical to the historical per-point loops — PR 2's
  worker-invariance contract and the PR 3 shared-STKDV equivalences
  survive unchanged.  ``dtype=float32`` sorts events into grid-aligned
  buckets (output tiles stay cache-resident) and evaluates through the
  precomputed :class:`~repro.core.kernels.KernelTable` under the
  documented bounded-error contract ``|err| <= eps_rel * max + eps_abs``
  (see ``docs/PERFORMANCE.md``).
* :func:`accumulate_rect_blocks` — batched leaf-leaf evaluation for the
  dual-tree execute phase: contributions grouped by output rectangle,
  one separable rank-1 evaluation + BLAS product per rectangle for the
  Gaussian kernel, one batched ``evaluate_sq`` per chunk otherwise.
* :func:`scatter_line` — the 1-D masked kernel scatter NKDV applies per
  event along the lixelised network.

Observability: when a trace is active the core reports
``scatter.points`` (events scattered), ``scatter.buckets`` (batch/bucket
groups evaluated) and ``scatter.patch_pixels`` (pixels/lixels written).
All three are totals over fixed-partition batches, so they are
worker-invariant like every other counter in the library.
"""

from __future__ import annotations

import numpy as np

from .. import obs
from .._validation import check_positive, check_probability
from ..errors import ParameterError
from ..geometry import BoundingBox
from .kernels import Kernel, KernelTable, build_kernel_table, get_kernel

__all__ = [
    "PatchScatter",
    "SCATTER_DTYPES",
    "accumulate_rect_blocks",
    "resolve_dtype",
    "scatter_line",
]

#: Accepted ``dtype=`` spellings for the two accuracy modes.
SCATTER_DTYPES = ("float64", "float32")

#: Patch-buffer element budget per evaluate_sq batch.  A fixed constant —
#: never derived from worker count or machine size — so batch boundaries
#: (and the float32 accumulation order) are identical everywhere.
_BATCH_ELEMS = 1 << 20

#: Output-tile edge (pixels) used to bucket events in float32 mode; one
#: bucket's working set (tile + patch halo) is what stays cache-resident.
_BUCKET_TILE = 64

#: Contribution budget per rect-block evaluation chunk (see above re:
#: fixed constants).
_RECT_CHUNK = 1 << 18


def resolve_dtype(dtype) -> np.dtype:
    """Validate a scatter-core ``dtype=`` argument (float64/float32)."""
    if dtype is None:
        return np.dtype(np.float64)
    try:
        resolved = np.dtype(dtype)
    except TypeError:
        raise ParameterError(
            f"dtype must be one of {'/'.join(SCATTER_DTYPES)}, got {dtype!r}"
        ) from None
    if resolved not in (np.dtype(np.float64), np.dtype(np.float32)):
        raise ParameterError(
            f"dtype must be one of {'/'.join(SCATTER_DTYPES)}, got {dtype!r}"
        )
    return resolved


class PatchScatter:
    """Precomputed patch scatterer for one window/lattice/kernel/bandwidth.

    Everything invariant across calls — pixel centres, pixel size, the
    cutoff radius, whether the kernel is truncated at that radius, and
    (in float32 mode) the kernel lookup table — is computed once here, so
    per-call work is only the batched window math and kernel evaluation.

    ``scatter`` accumulates into a caller-owned ``(nx, ny)`` or
    ``(S, nx, ny)`` array; signed weights make removal the same operation
    as insertion, which is what the streaming accumulator and the
    temporal-sharing STKDV backend build on.
    """

    def __init__(
        self,
        bbox: BoundingBox,
        size: tuple[int, int],
        bandwidth: float,
        kernel: str | Kernel = "quartic",
        tail: float = 1e-12,
        dtype=np.float64,
    ):
        if not isinstance(bbox, BoundingBox):
            raise ParameterError("bbox must be a BoundingBox")
        nx, ny = int(size[0]), int(size[1])
        if nx < 1 or ny < 1:
            raise ParameterError(f"grid size must be positive, got {nx}x{ny}")
        self.bbox = bbox
        self.nx = nx
        self.ny = ny
        self.bandwidth = check_positive(bandwidth, "bandwidth")
        self.kernel = get_kernel(kernel)
        self.tail = check_probability(tail, "tail")
        self.dtype = resolve_dtype(dtype)

        support = self.kernel.support_radius(self.bandwidth)
        if np.isfinite(support):
            self.radius = float(support)
        else:
            self.radius = float(
                self.kernel.effective_radius(self.bandwidth, self.tail)
            )
        #: True when the cutoff radius truncates an infinite-support
        #: kernel (hoisted here from the per-call hot path).
        self.truncated = self.radius < support
        self._r2 = self.radius * self.radius
        self._xs, self._ys = bbox.pixel_centers(nx, ny)
        self._dx, self._dy = bbox.pixel_size(nx, ny)
        self.table: KernelTable | None = None
        if self.dtype == np.dtype(np.float32):
            self.table = build_kernel_table(
                self.kernel, self.bandwidth, cutoff=self.radius
            )

    def windows(self, points: np.ndarray):
        """Clipped pixel-index windows covered by each point's cutoff disc.

        Vectorised, but element-for-element the same arithmetic as the
        historical per-point loop, so the windows (and everything
        downstream) are bit-identical to it.
        """
        px = points[:, 0]
        py = points[:, 1]
        radius = self.radius
        ix_lo = np.maximum(
            np.ceil((px - radius - self._xs[0]) / self._dx).astype(np.int64), 0
        )
        ix_hi = np.minimum(
            np.floor((px + radius - self._xs[0]) / self._dx).astype(np.int64),
            self.nx - 1,
        )
        iy_lo = np.maximum(
            np.ceil((py - radius - self._ys[0]) / self._dy).astype(np.int64), 0
        )
        iy_hi = np.minimum(
            np.floor((py + radius - self._ys[0]) / self._dy).astype(np.int64),
            self.ny - 1,
        )
        return ix_lo, ix_hi, iy_lo, iy_hi

    def scatter(self, values: np.ndarray, points, weights=None) -> tuple[int, int]:
        """Accumulate every point's kernel patch into ``values``.

        Parameters
        ----------
        values:
            ``(nx, ny)`` or ``(S, nx, ny)`` accumulation target of this
            scatterer's dtype.
        points:
            ``(n, 2)`` event locations (may lie outside the window;
            points whose patch misses the grid contribute nothing).
        weights:
            ``None`` (unweighted: the raw patch is added), ``(n,)``
            per-point factors, or ``(n, S)`` per-point per-surface
            factors.  Signed values are allowed (removal = negated
            insertion).

        Returns
        -------
        ``(n_scattered, patch_pixels)`` — points with a non-empty patch
        and total pixels written (the historical ``kdv.scatters`` /
        ``kdv.patch_pixels`` counters).
        """
        pts = np.asarray(points, dtype=np.float64)
        if pts.ndim != 2 or (pts.size and pts.shape[1] != 2):
            raise ParameterError(f"points must be (n, 2), got {pts.shape}")
        vals = values if values.ndim == 3 else values[None]
        if vals.shape[1:] != (self.nx, self.ny):
            raise ParameterError(
                f"values must be (..., {self.nx}, {self.ny}), got {values.shape}"
            )
        n_surfaces = vals.shape[0]
        w = None
        if weights is not None:
            w = np.asarray(weights, dtype=np.float64)
            if w.ndim == 1:
                w = w[:, None]
            if w.shape != (pts.shape[0], n_surfaces):
                raise ParameterError(
                    f"weights must have shape ({pts.shape[0]}, {n_surfaces}), "
                    f"got {np.asarray(weights).shape}"
                )
        if pts.shape[0] == 0:
            return 0, 0

        ix_lo, ix_hi, iy_lo, iy_hi = self.windows(pts)
        live = np.flatnonzero((ix_lo <= ix_hi) & (iy_lo <= iy_hi))
        if live.size == 0:
            return 0, 0

        buckets = 0
        if self.table is not None:
            # float32 mode: sort events into grid-aligned output buckets
            # so consecutive patch writes hit the same cache-resident
            # tile.  lexsort is stable, so within a bucket the input
            # order survives — the accumulation order is a pure function
            # of the event set, never of workers or machine.
            tx = ix_lo[live] // _BUCKET_TILE
            ty = iy_lo[live] // _BUCKET_TILE
            order = np.lexsort((tx, ty))
            live = live[order]
            key = ty[order] * ((self.nx // _BUCKET_TILE) + 1) + tx[order]
            buckets = int(np.count_nonzero(np.diff(key)) + 1)

        widths = ix_hi[live] - ix_lo[live] + 1
        heights = iy_hi[live] - iy_lo[live] + 1
        patch_pixels = int((widths * heights).sum())
        p_max = int(widths.max())
        q_max = int(heights.max())
        batch = max(1, _BATCH_ELEMS // (p_max * q_max))
        offs_x = np.arange(p_max)
        offs_y = np.arange(q_max)

        for c0 in range(0, live.size, batch):
            rows = live[c0:c0 + batch]
            cx = ix_lo[rows][:, None] + offs_x[None, :]
            cy = iy_lo[rows][:, None] + offs_y[None, :]
            # Clip the gather only: columns beyond a point's own window
            # land at patch positions >= its width and are sliced away
            # below, so no masking is needed.
            lx = self._xs[np.minimum(cx, self.nx - 1)] - pts[rows, 0][:, None]
            ly = self._ys[np.minimum(cy, self.ny - 1)] - pts[rows, 1][:, None]
            d2 = lx[:, :, None] ** 2 + ly[:, None, :] ** 2
            if self.table is None:
                patch = self.kernel.evaluate_sq(d2, self.bandwidth)
                if self.truncated:
                    patch = np.where(d2 <= self._r2, patch, 0.0)
            else:
                patch = self.table.lookup_sq_clipped(d2.astype(np.float32))
                if self.truncated or self.kernel.finite_support:
                    # Truncation decided in float64 — the same test as
                    # the float64 path, so the two modes cover exactly
                    # the same pixels.
                    patch = np.where(d2 <= self._r2, patch, np.float32(0.0))
            for j, i in enumerate(rows):
                pw = patch[j, : ix_hi[i] - ix_lo[i] + 1, : iy_hi[i] - iy_lo[i] + 1]
                target = vals[
                    :, ix_lo[i]:ix_hi[i] + 1, iy_lo[i]:iy_hi[i] + 1
                ]
                if w is None:
                    target += pw
                else:
                    # Per-surface 2-D adds beat one strided 3-D
                    # broadcast: the patch is small and S is a handful.
                    w_row = w[i]
                    for s in range(n_surfaces):
                        target[s] += w_row[s] * pw
        if buckets == 0:
            buckets = (live.size + batch - 1) // batch
        if obs.is_active():
            obs.count("scatter.points", int(live.size))
            obs.count("scatter.buckets", buckets)
            obs.count("scatter.patch_pixels", patch_pixels)
        return int(live.size), patch_pixels


def accumulate_rect_blocks(
    local: np.ndarray,
    origin: tuple[int, int],
    rects: tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray],
    starts: np.ndarray,
    px: np.ndarray,
    py: np.ndarray,
    pw: np.ndarray | None,
    grid_x0: float,
    grid_y0: float,
    dx: float,
    dy: float,
    kernel: Kernel,
    bandwidth: float,
    rect_span: int,
) -> int:
    """Batched exact kernel scans of point groups onto output rectangles.

    The dual-tree execute phase's leaf-leaf pairs arrive here as flat
    structure-of-arrays contributions: ``px/py/pw`` hold every (rect,
    point) contribution contiguously, ``starts`` (length ``R + 1``) marks
    each rectangle's contribution range, and ``rects = (rx0, rx1, ry0,
    ry1)`` gives each rectangle's absolute pixel window (at most
    ``rect_span`` pixels on a side).  Rectangle groups must be
    contiguous; duplicated rectangles are allowed and accumulate in
    order.

    Patch coordinates are reconstructed arithmetically from the lattice
    origin and pixel size (``grid_x0 + dx * index``) instead of gathered
    per contribution — within one ulp of the pixel-centre arrays and an
    order of magnitude cheaper.  The Gaussian kernel separates as
    ``exp(-u^2/b^2) * exp(-v^2/b^2)``, so each rectangle costs two
    ``(m, rect_span)`` factor tables and one BLAS product; every other
    kernel takes one batched ``evaluate_sq`` per chunk.  Returns the
    number of patch pixels written.
    """
    rx0, rx1, ry0, ry1 = rects
    n_rects = rx0.shape[0]
    if n_rects == 0:
        return 0
    jx0, jy0 = origin
    offs = np.arange(rect_span)
    separable = kernel.name == "gaussian"
    if separable:
        inv_b2 = 1.0 / (bandwidth * bandwidth)
    patch_pixels = 0

    r0 = 0
    while r0 < n_rects:
        # Grow the chunk rect-by-rect up to the fixed contribution budget
        # (always at least one rect, so huge groups still process).
        r1 = r0 + 1
        while r1 < n_rects and starts[r1 + 1] - starts[r0] <= _RECT_CHUNK:
            r1 += 1
        a, z = int(starts[r0]), int(starts[r1])
        counts = (starts[r0 + 1:r1 + 1] - starts[r0:r1]).astype(np.int64)
        rect_of = np.repeat(np.arange(r0, r1), counts)
        u0 = (grid_x0 + dx * rx0[rect_of]) - px[a:z]
        v0 = (grid_y0 + dy * ry0[rect_of]) - py[a:z]
        u = u0[:, None] + (dx * offs)[None, :]
        v = v0[:, None] + (dy * offs)[None, :]
        if separable:
            u *= u
            u *= -inv_b2
            ex = np.exp(u, out=u)
            v *= v
            v *= -inv_b2
            ey = np.exp(v, out=v)
            if pw is not None:
                ex *= pw[a:z][:, None]
            bounds = starts[r0:r1 + 1] - a
            for k in range(r1 - r0):
                s0, s1 = int(bounds[k]), int(bounds[k + 1])
                block = ex[s0:s1].T @ ey[s0:s1]
                r = r0 + k
                w_r = int(rx1[r] - rx0[r])
                h_r = int(ry1[r] - ry0[r])
                local[
                    rx0[r] - jx0:rx1[r] - jx0, ry0[r] - jy0:ry1[r] - jy0
                ] += block[:w_r, :h_r]
                patch_pixels += w_r * h_r
        else:
            d2 = u[:, :, None] ** 2 + v[:, None, :] ** 2
            vals = kernel.evaluate_sq(d2, bandwidth)
            if pw is not None:
                vals *= pw[a:z][:, None, None]
            sums = np.add.reduceat(vals, starts[r0:r1] - a, axis=0)
            for k in range(r1 - r0):
                r = r0 + k
                w_r = int(rx1[r] - rx0[r])
                h_r = int(ry1[r] - ry0[r])
                local[
                    rx0[r] - jx0:rx1[r] - jx0, ry0[r] - jy0:ry1[r] - jy0
                ] += sums[k, :w_r, :h_r]
                patch_pixels += w_r * h_r
        r0 = r1
    if obs.is_active():
        obs.count("scatter.points", int(px.shape[0]))
        obs.count("scatter.buckets", int(n_rects))
        obs.count("scatter.patch_pixels", patch_pixels)
    return patch_pixels


def scatter_line(
    densities: np.ndarray,
    distances: np.ndarray,
    kernel: Kernel,
    bandwidth: float,
    cutoff: float,
    weight: float = 1.0,
    factors: np.ndarray | None = None,
) -> int:
    """1-D masked kernel scatter along a lixelised network.

    Adds ``weight * [factors *] K(distances)`` to every entry of
    ``densities`` whose distance is within ``cutoff`` (and whose split
    factor is positive, when ``factors`` is given) — the NKDV per-event
    scatter, shared by the unsplit and equal-split variants.  Returns the
    number of lixels written.
    """
    near = distances <= cutoff
    if factors is not None:
        near &= factors > 0.0
    if not near.any():
        return 0
    if factors is None:
        densities[near] += weight * kernel.evaluate(distances[near], bandwidth)
    else:
        densities[near] += (
            weight * factors[near] * kernel.evaluate(distances[near], bandwidth)
        )
    hits = int(near.sum())
    if obs.is_active():
        obs.count("scatter.points", 1)
        obs.count("scatter.buckets", 1)
        obs.count("scatter.patch_pixels", hits)
    return hits
