"""Spatiotemporal kernel density visualisation (STKDV, paper §2.2, Figure 4).

The spatiotemporal density at pixel ``q`` and time ``t`` is

    F(q, t) = sum_i  K_s(dist(q, p_i); b_s) * K_t(|t - t_i|; b_t),

a separable product of a spatial and a temporal kernel — the standard
formulation of [41, 57, 69] the paper builds on.  The output is a stack of
density frames, one per requested timestamp; Figure 4's two panels are two
frames of such a stack.

Backends:

* ``naive`` — every frame weights *all* n points by the temporal kernel
  and evaluates the O(XYn) sum: O(T * XY * n) total;
* ``window`` — the sliding-window sharing of SWS [27]: points are sorted
  by time once, each frame touches only the points inside its temporal
  support via binary search, and the spatial pass uses the exact cutoff
  scatter: O(T * (XY + n_window * patch)).

Both are exact (up to the 1e-12 truncation of infinite kernels).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._validation import as_points, as_timestamps, check_positive
from ..errors import ParameterError
from ..geometry import BoundingBox
from ..parallel import parallel_map
from ..raster import DensityGrid
from .kdv.base import KDVProblem
from .kdv.gridcut import kde_gridcut
from .kdv.naive import kde_naive
from .kdv.sweep import kde_sweep
from .kernels import Kernel, get_kernel

__all__ = ["STKDVResult", "stkdv", "STKDV_METHODS"]

STKDV_METHODS = ("auto", "naive", "window")


@dataclass(frozen=True)
class STKDVResult:
    """A stack of density frames over a common window and pixel lattice."""

    bbox: BoundingBox
    times: np.ndarray
    values: np.ndarray  # (nx, ny, T)

    @property
    def n_frames(self) -> int:
        return int(self.values.shape[2])

    def frame(self, j: int) -> DensityGrid:
        """Frame ``j`` as a standalone density grid."""
        return DensityGrid(self.bbox, self.values[:, :, j])

    def frame_at(self, t: float) -> DensityGrid:
        """The frame whose timestamp is closest to ``t``."""
        j = int(np.argmin(np.abs(self.times - t)))
        return self.frame(j)

    def hotspot_track(self) -> np.ndarray:
        """(T, 2) coordinates of the densest pixel in each frame.

        The movement of this track across frames is Figure 4's message:
        outbreak regions change with time.
        """
        return np.array([self.frame(j).argmax_coords() for j in range(self.n_frames)])

    def total_mass(self) -> np.ndarray:
        """Per-frame sum of the raw kernel mass (case-load proxy)."""
        return self.values.sum(axis=(0, 1))


def _temporal_cutoff(kernel: Kernel, bandwidth: float) -> float:
    radius = kernel.support_radius(bandwidth)
    if np.isfinite(radius):
        return float(radius)
    return float(kernel.effective_radius(bandwidth))


def _naive_frame_task(task):
    """One naive STKDV frame (module-level for process-backend pickling)."""
    t, pts, ts_vals, bbox, size, b_s, b_t, k_s, k_t = task
    w = k_t.evaluate(np.abs(ts_vals - t), b_t)
    problem = KDVProblem(pts, bbox, size, b_s, k_s, weights=w)
    return kde_naive(problem).values


def _window_frame_task(task):
    """One sliding-window STKDV frame over its temporal support."""
    (t, sorted_pts, sorted_ts, bbox, size, b_s, b_t, k_s, k_t, cutoff,
     spatial_method) = task
    nx, ny = size
    lo = np.searchsorted(sorted_ts, t - cutoff, side="left")
    hi = np.searchsorted(sorted_ts, t + cutoff, side="right")
    if lo >= hi:
        return np.zeros((nx, ny), dtype=np.float64)
    w = k_t.evaluate(np.abs(sorted_ts[lo:hi] - t), b_t)
    active = w > 0.0
    if not active.any():
        return np.zeros((nx, ny), dtype=np.float64)
    problem = KDVProblem(
        sorted_pts[lo:hi][active], bbox, size, b_s, k_s, weights=w[active]
    )
    spatial_pass = kde_sweep if spatial_method == "sweep" else kde_gridcut
    return spatial_pass(problem).values


def stkdv(
    points,
    times,
    bbox: BoundingBox,
    size: tuple[int, int],
    frame_times,
    bandwidth_space: float,
    bandwidth_time: float,
    kernel_space: str | Kernel = "quartic",
    kernel_time: str | Kernel = "epanechnikov",
    method: str = "auto",
    spatial_method: str = "auto",
    workers: int | None = None,
    backend: str | None = None,
) -> STKDVResult:
    """Spatiotemporal KDV over the given frame timestamps.

    Parameters
    ----------
    points, times:
        Event locations and timestamps.
    bbox, size:
        Window and per-frame pixel resolution (X x Y).
    frame_times:
        Timestamps at which density frames are evaluated.
    bandwidth_space, bandwidth_time:
        The spatial ``b_s`` and temporal ``b_t`` bandwidths.
    kernel_space, kernel_time:
        Spatial and temporal kernels (any library kernel; the temporal one
        is applied to ``|t - t_i|``).
    method:
        ``naive``, ``window``, or ``auto`` (window).
    spatial_method:
        Spatial pass of the ``window`` backend: ``"grid"`` (cutoff
        scatter), ``"sweep"`` (sweep line — polynomial spatial kernels
        only), or ``"auto"`` (sweep when the kernel supports it and the
        bandwidth spans at least two pixels; grid otherwise).
    workers, backend:
        Frame evaluation fans out over the shared executor
        (:mod:`repro.parallel`); each frame writes its own slice of the
        stack, so the result is identical at every worker count.
    """
    pts = as_points(points)
    ts_vals = as_timestamps(times, pts.shape[0])
    frames = np.asarray(frame_times, dtype=np.float64).ravel()
    if frames.size == 0:
        raise ParameterError("frame_times must contain at least one timestamp")
    b_s = check_positive(bandwidth_space, "bandwidth_space")
    b_t = check_positive(bandwidth_time, "bandwidth_time")
    k_s = get_kernel(kernel_space)
    k_t = get_kernel(kernel_time)
    nx, ny = int(size[0]), int(size[1])

    if method == "auto":
        method = "window"
    if method not in ("naive", "window"):
        raise ParameterError(
            f"unknown STKDV method {method!r}; available: {', '.join(STKDV_METHODS)}"
        )
    if spatial_method == "auto":
        dx, dy = bbox.pixel_size(nx, ny)
        use_sweep = (
            k_s.poly_coeffs(b_s) is not None and b_s >= 2.0 * max(dx, dy)
        )
        spatial_method = "sweep" if use_sweep else "grid"
    if spatial_method not in ("grid", "sweep"):
        raise ParameterError(
            f"spatial_method must be 'grid' or 'sweep', got {spatial_method!r}"
        )
    if method == "naive":
        tasks = [
            (float(t), pts, ts_vals, bbox, (nx, ny), b_s, b_t, k_s, k_t)
            for t in frames
        ]
        frame_values = parallel_map(
            _naive_frame_task, tasks, workers=workers, backend=backend
        )
    else:
        cutoff = _temporal_cutoff(k_t, b_t)
        order = np.argsort(ts_vals, kind="stable")
        sorted_pts = pts[order]
        sorted_ts = ts_vals[order]
        tasks = [
            (float(t), sorted_pts, sorted_ts, bbox, (nx, ny), b_s, b_t, k_s,
             k_t, cutoff, spatial_method)
            for t in frames
        ]
        frame_values = parallel_map(
            _window_frame_task, tasks, workers=workers, backend=backend
        )

    values = np.stack(frame_values, axis=2)
    return STKDVResult(bbox=bbox, times=frames, values=values)
