"""Spatiotemporal kernel density visualisation (STKDV, paper §2.2, Figure 4).

The spatiotemporal density at pixel ``q`` and time ``t`` is

    F(q, t) = sum_i  K_s(dist(q, p_i); b_s) * K_t(|t - t_i|; b_t),

a separable product of a spatial and a temporal kernel — the standard
formulation of [41, 57, 69] the paper builds on.  The output is a stack of
density frames, one per requested timestamp; Figure 4's two panels are two
frames of such a stack.

Backends:

* ``naive`` — every frame weights *all* n points by the temporal kernel
  and evaluates the O(XYn) sum: O(T * XY * n) total;
* ``window`` — the sliding-window sharing of SWS [27]: points are sorted
  by time once, each frame touches only the points inside its temporal
  support via binary search, and the spatial pass uses the exact cutoff
  scatter: O(T * (XY + n_window * patch));
* ``shared`` — incremental temporal sharing (the SWS [27] line of work):
  frames are processed in time order and the density surface is *updated*
  instead of rebuilt.  For a polynomial temporal kernel,
  ``K_t(|t - t_i|; b_t) = sum_m alpha_m(t) * t_i^m`` inside the support
  (see :func:`repro.core.kernels.temporal_expansion_matrix`), so the
  backend maintains a bank of moment grids
  ``M_m(q) = sum_{i in window} t_i^m * patch_i(q)`` via cutoff-scatter
  add/remove of only the events entering/leaving the temporal support
  between consecutive frames, and emits each frame as the per-pixel
  polynomial combination ``sum_m alpha_m(t) * M_m(q)``.  Each event is
  scattered at most once per monotone pass — O(n * patch * M + T * XY * M)
  total — instead of once per overlapping frame.  Requires a polynomial
  temporal kernel (uniform, epanechnikov, quartic); other temporal
  kernels fall back to ``window``.  Sharing is inherently serial across
  frames, so ``workers``/``backend`` are ignored and the result is
  bit-identical to ``workers=1`` by construction (the PR 2 determinism
  contract holds trivially).

All are exact (up to the 1e-12 truncation of infinite kernels, and
float rounding in the ``shared`` moment combination, well below 1e-8
relative).
"""

from __future__ import annotations

from dataclasses import dataclass
from math import comb

import numpy as np

from .. import obs
from .._validation import as_points, as_timestamps, check_positive
from ..errors import ParameterError
from ..geometry import BoundingBox
from ..parallel import parallel_map
from ..raster import DensityGrid
from .kdv.base import KDVProblem
from .kdv.gridcut import kde_gridcut
from .kdv.naive import kde_naive
from .kdv.streaming import MultiSurfaceAccumulator
from .kdv.sweep import kde_sweep
from .kernels import Kernel, get_kernel, temporal_expansion_matrix
from .scatter import resolve_dtype

__all__ = ["STKDVResult", "stkdv", "STKDV_METHODS"]

STKDV_METHODS = ("auto", "naive", "window", "shared")

#: The shared backend re-references its moment grids whenever the frame
#: time drifts further than this many temporal cutoffs from the current
#: origin; it bounds the magnitude of the accumulated time powers (and
#: hence the cancellation in the moment combination) by a constant.
_RECENTER_CUTOFFS = 4.0


@dataclass(frozen=True)
class STKDVResult:
    """A stack of density frames over a common window and pixel lattice.

    ``diagnostics`` is the optional :class:`repro.obs.Diagnostics` record
    of the producing call (populated when tracing is enabled); it never
    participates in numeric behaviour.
    """

    bbox: BoundingBox
    times: np.ndarray
    values: np.ndarray  # (nx, ny, T)
    diagnostics: obs.Diagnostics | None = None

    @property
    def n_frames(self) -> int:
        return int(self.values.shape[2])

    def frame(self, j: int) -> DensityGrid:
        """Frame ``j`` as a standalone density grid (a defensive copy).

        The copy means mutating the returned grid's ``values`` can never
        corrupt the stack (or vice versa), matching
        :meth:`repro.core.kdv.KDVAccumulator.grid`.
        """
        return DensityGrid(self.bbox, self.values[:, :, j].copy())

    def frame_at(self, t: float) -> DensityGrid:
        """The frame whose timestamp is closest to ``t``."""
        j = int(np.argmin(np.abs(self.times - t)))
        return self.frame(j)

    def hotspot_track(self) -> np.ndarray:
        """(T, 2) coordinates of the densest pixel in each frame.

        The movement of this track across frames is Figure 4's message:
        outbreak regions change with time.
        """
        return np.array([self.frame(j).argmax_coords() for j in range(self.n_frames)])

    def total_mass(self) -> np.ndarray:
        """Per-frame sum of the raw kernel mass (case-load proxy)."""
        return self.values.sum(axis=(0, 1))


def _temporal_cutoff(kernel: Kernel, bandwidth: float) -> float:
    radius = kernel.support_radius(bandwidth)
    if np.isfinite(radius):
        return float(radius)
    return float(kernel.effective_radius(bandwidth))


def _naive_frame_task(task):
    """One naive STKDV frame (module-level for process-backend pickling)."""
    t, pts, ts_vals, bbox, size, b_s, b_t, k_s, k_t = task
    with obs.span("stkdv.frame"):
        obs.count("stkdv.frames")
        obs.count("stkdv.points_scattered", pts.shape[0])
        w = k_t.evaluate(np.abs(ts_vals - t), b_t)
        problem = KDVProblem(pts, bbox, size, b_s, k_s, weights=w)
        return kde_naive(problem).values


def _window_frame_task(task):
    """One sliding-window STKDV frame over its temporal support."""
    (t, sorted_pts, sorted_ts, bbox, size, b_s, b_t, k_s, k_t, cutoff,
     spatial_method, dtype) = task
    nx, ny = size
    with obs.span("stkdv.frame"):
        obs.count("stkdv.frames")
        lo = np.searchsorted(sorted_ts, t - cutoff, side="left")
        hi = np.searchsorted(sorted_ts, t + cutoff, side="right")
        if lo >= hi:
            return np.zeros((nx, ny), dtype=dtype)
        w = k_t.evaluate(np.abs(sorted_ts[lo:hi] - t), b_t)
        active = w > 0.0
        if not active.any():
            return np.zeros((nx, ny), dtype=dtype)
        obs.count("stkdv.points_scattered", int(active.sum()))
        problem = KDVProblem(
            sorted_pts[lo:hi][active], bbox, size, b_s, k_s, weights=w[active]
        )
        if spatial_method == "sweep":
            return kde_sweep(problem).values
        return kde_gridcut(problem, dtype=dtype).values


def _recenter_matrix(n_moments: int, delta: float) -> np.ndarray:
    """Moment re-referencing map for the origin shift ``t' = t - delta``.

    ``sum_i (t_i - delta)^m patch_i = sum_j C(m, j) (-delta)^(m-j) M_j``,
    so new moments are a lower-triangular recombination of the old ones.
    """
    matrix = np.zeros((n_moments, n_moments), dtype=np.float64)
    for m in range(n_moments):
        for j in range(m + 1):
            matrix[m, j] = comb(m, j) * (-delta) ** (m - j)
    return matrix


def _shared_frames(
    frames: np.ndarray,
    sorted_pts: np.ndarray,
    sorted_ts: np.ndarray,
    bbox: BoundingBox,
    size: tuple[int, int],
    b_s: float,
    k_s: Kernel,
    cutoff: float,
    expansion: np.ndarray,
    dtype=np.float64,
) -> list[np.ndarray]:
    """Temporal-sharing STKDV: incremental moment grids over sorted frames.

    Serial across frames by construction — each frame's window is derived
    from the previous one's, so the output cannot depend on worker count.
    """
    nx, ny = size
    n_moments = expansion.shape[0]
    acc = MultiSurfaceAccumulator(
        bbox, size, b_s, kernel=k_s, n_surfaces=n_moments, dtype=dtype
    )
    order = np.argsort(frames, kind="stable")
    out: list[np.ndarray | None] = [None] * frames.shape[0]
    lo = hi = 0
    entering_n = leaving_n = recenterings = resets = 0
    # Temporal origin of the moment bank; drift-triggered re-referencing
    # keeps |t - origin| (and every accumulated time power) O(cutoff).
    origin = float(frames[order[0]])
    for j in order:
        t = float(frames[j])
        new_lo = int(np.searchsorted(sorted_ts, t - cutoff, side="left"))
        new_hi = int(np.searchsorted(sorted_ts, t + cutoff, side="right"))
        if new_lo >= new_hi:
            # Empty window: drop any residue and re-anchor the origin.
            acc.reset()
            resets += 1
            origin = t
            lo, hi = new_lo, new_hi
            out[j] = np.zeros((nx, ny), dtype=dtype)
            continue
        if acc.n_points and abs(t - origin) > _RECENTER_CUTOFFS * cutoff:
            acc.recombine(_recenter_matrix(n_moments, t - origin))
            recenterings += 1
            origin = t
        elif not acc.n_points:
            origin = t
        # Events leaving the support: in the old window but left of the new.
        drop_hi = min(new_lo, hi)
        if lo < drop_hi:
            leaving_n += drop_hi - lo
            leaving = sorted_ts[lo:drop_hi] - origin
            acc.remove_weighted(
                sorted_pts[lo:drop_hi],
                leaving[:, None] ** np.arange(n_moments)[None, :],
            )
        # Events entering the support: in the new window but right of the old.
        add_lo = max(new_lo, hi)
        if add_lo < new_hi:
            entering_n += new_hi - add_lo
            entering = sorted_ts[add_lo:new_hi] - origin
            acc.add_weighted(
                sorted_pts[add_lo:new_hi],
                entering[:, None] ** np.arange(n_moments)[None, :],
            )
        lo, hi = new_lo, new_hi
        tau = t - origin
        alpha = expansion @ (tau ** np.arange(n_moments))
        # Cancellation in the moment combination can leave tiny negative
        # residue where the true density is ~0; clip it like the streaming
        # accumulator does.
        # combine() runs in float64 (the factors are f64); fold back to
        # the bank's dtype — a no-op in the default float64 mode.
        out[j] = np.maximum(acc.combine(alpha), 0.0).astype(dtype, copy=False)
    obs.count("stkdv.frames", frames.shape[0])
    obs.count("stkdv.events_entering", entering_n)
    obs.count("stkdv.events_leaving", leaving_n)
    obs.count("stkdv.points_scattered", entering_n)
    obs.count("stkdv.recenterings", recenterings)
    obs.count("stkdv.window_resets", resets)
    return out


def stkdv(
    points,
    times,
    bbox: BoundingBox,
    size: tuple[int, int],
    frame_times,
    bandwidth_space: float,
    bandwidth_time: float,
    kernel_space: str | Kernel = "quartic",
    kernel_time: str | Kernel = "epanechnikov",
    method: str = "auto",
    spatial_method: str = "auto",
    dtype=None,
    workers: int | None = None,
    backend: str | None = None,
) -> STKDVResult:
    """Spatiotemporal KDV over the given frame timestamps.

    Parameters
    ----------
    points, times:
        Event locations and timestamps.
    bbox, size:
        Window and per-frame pixel resolution (X x Y).
    frame_times:
        Timestamps at which density frames are evaluated (any order;
        must be finite).
    bandwidth_space, bandwidth_time:
        The spatial ``b_s`` and temporal ``b_t`` bandwidths.
    kernel_space, kernel_time:
        Spatial and temporal kernels (any library kernel; the temporal one
        is applied to ``|t - t_i|``).
    method:
        ``naive``, ``window``, ``shared``, or ``auto`` (window).
        ``shared`` requires a temporal kernel that is polynomial in the
        squared distance (uniform, epanechnikov, quartic) and falls back
        to ``window`` otherwise.
    spatial_method:
        Spatial pass of the ``window`` backend: ``"grid"`` (cutoff
        scatter), ``"sweep"`` (sweep line — polynomial spatial kernels
        only), or ``"auto"`` (sweep when the kernel supports it and the
        bandwidth spans at least two pixels; grid otherwise).  The
        ``shared`` backend always scatters (its moment grids are
        incremental cutoff-scatter surfaces), so this argument only
        affects ``window`` (including the ``shared`` fallback).
    dtype:
        Accuracy mode of the scatter core (``"float64"`` default,
        bit-identical; ``"float32"`` table-driven under the bounded-error
        contract in ``docs/PERFORMANCE.md``).  ``float32`` requires a
        scatter path: it is rejected for ``method="naive"`` and for
        ``spatial_method="sweep"``, and forces ``spatial_method="auto"``
        to resolve to ``"grid"``.
    workers, backend:
        ``naive``/``window`` frame evaluation fans out over the shared
        executor (:mod:`repro.parallel`); each frame writes its own slice
        of the stack, so the result is identical at every worker count.
        The ``shared`` backend is inherently serial across frames and
        ignores both arguments (trivially worker-invariant).
    """
    pts = as_points(points)
    ts_vals = as_timestamps(times, pts.shape[0])
    frames = np.asarray(frame_times, dtype=np.float64).ravel()
    if frames.size == 0:
        raise ParameterError("frame_times must contain at least one timestamp")
    if not np.all(np.isfinite(frames)):
        raise ParameterError("frame_times contains non-finite entries")
    b_s = check_positive(bandwidth_space, "bandwidth_space")
    b_t = check_positive(bandwidth_time, "bandwidth_time")
    k_s = get_kernel(kernel_space)
    k_t = get_kernel(kernel_time)
    nx, ny = int(size[0]), int(size[1])

    if method == "auto":
        method = "window"
    if method not in ("naive", "window", "shared"):
        raise ParameterError(
            f"unknown STKDV method {method!r}; available: {', '.join(STKDV_METHODS)}"
        )
    expansion = None
    if method == "shared":
        expansion = temporal_expansion_matrix(k_t, b_t)
        if expansion is None:
            # Non-polynomial temporal kernel: no finite moment bank exists;
            # fall back to per-frame windowing (documented contract).
            method = "window"
    resolved_dtype = resolve_dtype(dtype)
    if resolved_dtype == np.dtype(np.float32):
        if method == "naive":
            raise ParameterError(
                "dtype='float32' requires a scatter path; the naive STKDV "
                "method has none (use method='window' or 'shared')"
            )
        if spatial_method == "sweep":
            raise ParameterError(
                "dtype='float32' requires the scatter spatial pass; "
                "spatial_method='sweep' is float64-only (use 'grid')"
            )
        if spatial_method == "auto":
            spatial_method = "grid"
    if spatial_method == "auto":
        dx, dy = bbox.pixel_size(nx, ny)
        use_sweep = (
            k_s.poly_coeffs(b_s) is not None and b_s >= 2.0 * max(dx, dy)
        )
        spatial_method = "sweep" if use_sweep else "grid"
    if spatial_method not in ("grid", "sweep"):
        raise ParameterError(
            f"spatial_method must be 'grid' or 'sweep', got {spatial_method!r}"
        )
    with obs.task("stkdv") as trace:
        obs.count("stkdv.points", pts.shape[0])
        obs.count(f"stkdv.method.{method}")
        if method == "naive":
            tasks = [
                (float(t), pts, ts_vals, bbox, (nx, ny), b_s, b_t, k_s, k_t)
                for t in frames
            ]
            frame_values = parallel_map(
                _naive_frame_task, tasks, workers=workers, backend=backend
            )
        elif method == "shared":
            cutoff = _temporal_cutoff(k_t, b_t)
            order = np.argsort(ts_vals, kind="stable")
            frame_values = _shared_frames(
                frames, pts[order], ts_vals[order], bbox, (nx, ny),
                b_s, k_s, cutoff, expansion, dtype=resolved_dtype,
            )
        else:
            cutoff = _temporal_cutoff(k_t, b_t)
            order = np.argsort(ts_vals, kind="stable")
            sorted_pts = pts[order]
            sorted_ts = ts_vals[order]
            tasks = [
                (float(t), sorted_pts, sorted_ts, bbox, (nx, ny), b_s, b_t, k_s,
                 k_t, cutoff, spatial_method, resolved_dtype)
                for t in frames
            ]
            frame_values = parallel_map(
                _window_frame_task, tasks, workers=workers, backend=backend
            )

        values = np.stack(frame_values, axis=2)
    return STKDVResult(bbox=bbox, times=frames, values=values,
                       diagnostics=trace.diagnostics)
