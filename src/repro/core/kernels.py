"""Kernel functions (paper Table 2, plus the "future work" kernels of §2.4).

Each kernel follows the paper's parameterisation: it is a function of the
Euclidean distance ``dist(q, p)`` and a bandwidth ``b``.  The four Table 2
kernels (uniform, Epanechnikov, quartic, Gaussian) are implemented exactly
as printed; the triangular, cosine and exponential kernels cover the
"other important kernel functions" the paper lists as future work.

A kernel exposes:

* ``evaluate(d, b)`` / ``evaluate_sq(d2, b)`` — vectorised values,
* ``support_radius(b)`` — the cutoff beyond which the kernel is zero
  (``inf`` for Gaussian/exponential),
* ``integral(b)`` — the integral of the kernel over the plane, from which
  the normalisation constant ``w`` of Equation 1 is derived,
* ``poly_coeffs(b)`` — for finite-support kernels that are polynomials in
  the *squared* distance (uniform, Epanechnikov, quartic), the coefficients
  ``c_k`` such that ``K = sum_k c_k * (d^2)^k`` inside the support.  These
  drive the sweep-line (computational sharing) backend, which is exactly
  the class of kernels the paper says SLAM-style algorithms handle.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from math import comb

import numpy as np

from .._validation import check_positive
from ..errors import ParameterError

__all__ = [
    "Kernel",
    "KernelTable",
    "build_kernel_table",
    "clamp_non_negative",
    "temporal_expansion_matrix",
    "UniformKernel",
    "EpanechnikovKernel",
    "QuarticKernel",
    "GaussianKernel",
    "TriangularKernel",
    "CosineKernel",
    "ExponentialKernel",
    "get_kernel",
    "KERNELS",
]


def clamp_non_negative(values: np.ndarray) -> np.ndarray:
    """Clamp kernel values to ``>= 0`` against floating-point cancellation.

    Finite-support kernels are mathematically non-negative on their
    support, but evaluating them in float64 can dip a few ulp below zero
    at the boundary (e.g. ``cos(pi*d/(2b))`` at ``d == b`` rounds to
    ``~-1.6e-16``).  Negative densities violate the library's numerical
    contract (and downstream ``log``/``sqrt`` consumers), so every
    finite-support ``evaluate_sq`` routes its result through this clamp.
    """
    return np.maximum(values, 0.0)


class Kernel(ABC):
    """Base class for radial kernels ``K(q, p) = K(dist(q, p); b)``."""

    #: Registry / lookup name.
    name: str = ""
    #: True when the kernel vanishes beyond a finite radius.
    finite_support: bool = True

    def evaluate(self, d, bandwidth: float) -> np.ndarray:
        """Kernel value at distance(s) ``d`` with the given bandwidth."""
        d = np.asarray(d, dtype=np.float64)
        return self.evaluate_sq(d * d, bandwidth)

    @abstractmethod
    def evaluate_sq(self, d2, bandwidth: float) -> np.ndarray:
        """Kernel value from *squared* distances (the fast path)."""

    @abstractmethod
    def support_radius(self, bandwidth: float) -> float:
        """Distance beyond which the kernel is exactly zero (may be inf)."""

    @abstractmethod
    def integral(self, bandwidth: float) -> float:
        """Integral of the kernel over the whole plane.

        The Equation 1 normalisation constant for a probability density is
        ``w = 1 / (n * integral(b))``.
        """

    def poly_coeffs(self, bandwidth: float) -> np.ndarray | None:
        """Coefficients of K as a polynomial in d^2 inside the support.

        Returns ``None`` for kernels that are not polynomial in the squared
        distance (Gaussian, exponential, triangular, cosine); those cannot
        use the sweep-line backend, matching the limitation the paper
        highlights in §2.4.
        """
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}()"


class UniformKernel(Kernel):
    """Table 2 uniform kernel: ``1/b`` inside the bandwidth disc."""

    name = "uniform"
    finite_support = True

    def evaluate_sq(self, d2, bandwidth: float) -> np.ndarray:
        b = check_positive(bandwidth, "bandwidth")
        d2 = np.asarray(d2, dtype=np.float64)
        return np.where(d2 <= b * b, 1.0 / b, 0.0)

    def support_radius(self, bandwidth: float) -> float:
        return check_positive(bandwidth, "bandwidth")

    def integral(self, bandwidth: float) -> float:
        b = check_positive(bandwidth, "bandwidth")
        return np.pi * b  # (1/b) * pi b^2

    def poly_coeffs(self, bandwidth: float) -> np.ndarray:
        b = check_positive(bandwidth, "bandwidth")
        return np.array([1.0 / b])


class EpanechnikovKernel(Kernel):
    """Table 2 Epanechnikov kernel: ``1 - d^2/b^2`` inside the disc."""

    name = "epanechnikov"
    finite_support = True

    def evaluate_sq(self, d2, bandwidth: float) -> np.ndarray:
        b = check_positive(bandwidth, "bandwidth")
        d2 = np.asarray(d2, dtype=np.float64)
        vals = 1.0 - d2 / (b * b)
        return clamp_non_negative(np.where(d2 <= b * b, vals, 0.0))

    def support_radius(self, bandwidth: float) -> float:
        return check_positive(bandwidth, "bandwidth")

    def integral(self, bandwidth: float) -> float:
        b = check_positive(bandwidth, "bandwidth")
        return np.pi * b * b / 2.0

    def poly_coeffs(self, bandwidth: float) -> np.ndarray:
        b = check_positive(bandwidth, "bandwidth")
        return np.array([1.0, -1.0 / (b * b)])


class QuarticKernel(Kernel):
    """Table 2 quartic (biweight) kernel: ``(1 - d^2/b^2)^2`` inside the disc."""

    name = "quartic"
    finite_support = True

    def evaluate_sq(self, d2, bandwidth: float) -> np.ndarray:
        b = check_positive(bandwidth, "bandwidth")
        d2 = np.asarray(d2, dtype=np.float64)
        u = 1.0 - d2 / (b * b)
        return np.where(d2 <= b * b, u * u, 0.0)

    def support_radius(self, bandwidth: float) -> float:
        return check_positive(bandwidth, "bandwidth")

    def integral(self, bandwidth: float) -> float:
        b = check_positive(bandwidth, "bandwidth")
        return np.pi * b * b / 3.0

    def poly_coeffs(self, bandwidth: float) -> np.ndarray:
        b = check_positive(bandwidth, "bandwidth")
        b2 = b * b
        return np.array([1.0, -2.0 / b2, 1.0 / (b2 * b2)])


class GaussianKernel(Kernel):
    """Table 2 Gaussian kernel: ``exp(-d^2/b^2)`` (infinite support).

    Note the paper's convention puts ``b^2`` (not ``2 sigma^2``) in the
    exponent; ``b = sqrt(2) * sigma`` relative to the statistics convention.
    """

    name = "gaussian"
    finite_support = False

    def evaluate_sq(self, d2, bandwidth: float) -> np.ndarray:
        b = check_positive(bandwidth, "bandwidth")
        d2 = np.asarray(d2, dtype=np.float64)
        return np.exp(-d2 / (b * b))

    def support_radius(self, bandwidth: float) -> float:
        check_positive(bandwidth, "bandwidth")
        return np.inf

    def effective_radius(self, bandwidth: float, tail: float = 1e-12) -> float:
        """Radius beyond which the kernel value drops below ``tail``."""
        b = check_positive(bandwidth, "bandwidth")
        return b * float(np.sqrt(-np.log(tail)))

    def integral(self, bandwidth: float) -> float:
        b = check_positive(bandwidth, "bandwidth")
        return np.pi * b * b


class TriangularKernel(Kernel):
    """Triangular kernel ``1 - d/b`` inside the disc (§2.4 extension)."""

    name = "triangular"
    finite_support = True

    def evaluate_sq(self, d2, bandwidth: float) -> np.ndarray:
        b = check_positive(bandwidth, "bandwidth")
        d = np.sqrt(np.asarray(d2, dtype=np.float64))
        return clamp_non_negative(np.where(d <= b, 1.0 - d / b, 0.0))

    def support_radius(self, bandwidth: float) -> float:
        return check_positive(bandwidth, "bandwidth")

    def integral(self, bandwidth: float) -> float:
        b = check_positive(bandwidth, "bandwidth")
        return np.pi * b * b / 3.0


class CosineKernel(Kernel):
    """Cosine kernel ``cos(pi d / (2 b))`` inside the disc (§2.4 extension)."""

    name = "cosine"
    finite_support = True

    def evaluate_sq(self, d2, bandwidth: float) -> np.ndarray:
        b = check_positive(bandwidth, "bandwidth")
        d = np.sqrt(np.asarray(d2, dtype=np.float64))
        return clamp_non_negative(
            np.where(d <= b, np.cos(np.pi * d / (2.0 * b)), 0.0)
        )

    def support_radius(self, bandwidth: float) -> float:
        return check_positive(bandwidth, "bandwidth")

    def integral(self, bandwidth: float) -> float:
        # 2 pi * int_0^b cos(pi r / 2b) r dr = 4 b^2 (1 - 2/pi)
        b = check_positive(bandwidth, "bandwidth")
        return 4.0 * b * b * (1.0 - 2.0 / np.pi)


class ExponentialKernel(Kernel):
    """Exponential kernel ``exp(-d/b)`` (infinite support, §2.4 extension)."""

    name = "exponential"
    finite_support = False

    def evaluate_sq(self, d2, bandwidth: float) -> np.ndarray:
        b = check_positive(bandwidth, "bandwidth")
        d = np.sqrt(np.asarray(d2, dtype=np.float64))
        return np.exp(-d / b)

    def support_radius(self, bandwidth: float) -> float:
        check_positive(bandwidth, "bandwidth")
        return np.inf

    def effective_radius(self, bandwidth: float, tail: float = 1e-12) -> float:
        """Radius beyond which the kernel value drops below ``tail``."""
        b = check_positive(bandwidth, "bandwidth")
        return b * float(-np.log(tail))

    def integral(self, bandwidth: float) -> float:
        b = check_positive(bandwidth, "bandwidth")
        return 2.0 * np.pi * b * b


KERNELS: dict[str, Kernel] = {
    k.name: k
    for k in (
        UniformKernel(),
        EpanechnikovKernel(),
        QuarticKernel(),
        GaussianKernel(),
        TriangularKernel(),
        CosineKernel(),
        ExponentialKernel(),
    )
}


#: Interpolation nodes per kernel table (float32 values; the node count
#: trades table size against the published interpolation bound).
_TABLE_SIZE = 4096

#: Oversampling factor of the probe grid that certifies ``max_abs_error``.
_TABLE_PROBE = 8


class KernelTable:
    """Precomputed float32 lookup table for one ``(kernel, bandwidth)`` pair.

    The table holds kernel values at evenly spaced nodes of an axis
    variable ``x`` — the *squared* distance for kernels that are smooth in
    ``d^2`` (polynomial kernels, Gaussian), the plain distance for the
    square-root family (triangular, cosine, exponential), whose derivative
    in ``d^2`` blows up at zero and would wreck a linear-in-``d^2``
    interpolant.  :meth:`lookup_sq` evaluates by linear interpolation and
    returns exact ``0`` beyond the cutoff.

    ``max_abs_error`` is the *certified* absolute interpolation bound:
    the maximum deviation from the exact float64 kernel measured on a
    probe grid oversampling every node interval, plus one float32 ulp of
    headroom.  The float32 scatter mode publishes its error contract in
    terms of this number (see ``docs/PERFORMANCE.md``).
    """

    def __init__(
        self,
        kernel_name: str,
        bandwidth: float,
        cutoff: float,
        axis: str,
        values: np.ndarray,
        max_abs_error: float,
    ):
        if axis not in ("d", "d2"):
            raise ParameterError(f"table axis must be 'd' or 'd2', got {axis!r}")
        self.kernel_name = kernel_name
        self.bandwidth = float(bandwidth)
        self.cutoff = float(cutoff)
        self.axis = axis
        self.values = np.asarray(values, dtype=np.float32)
        self.max_abs_error = float(max_abs_error)
        x_max = self.cutoff if axis == "d" else self.cutoff * self.cutoff
        self._x_max = np.float32(x_max)
        self._scale = np.float32((self.values.shape[0] - 1) / x_max)

    @property
    def n_nodes(self) -> int:
        return int(self.values.shape[0])

    def lookup_sq(self, d2: np.ndarray) -> np.ndarray:
        """Interpolated kernel values from squared distances (float32).

        Distances beyond the cutoff return exact ``0``; the boundary test
        happens in float32, so callers that must match a float64
        truncation decision bit-for-bit should test in float64 themselves
        and use :meth:`lookup_sq_clipped` on the surviving entries.
        """
        d2 = np.asarray(d2, dtype=np.float32)
        x = np.sqrt(d2) if self.axis == "d" else d2
        out = self._interpolate(x)
        return np.where(x <= self._x_max, out, np.float32(0.0))

    def lookup_sq_clipped(self, d2: np.ndarray) -> np.ndarray:
        """Like :meth:`lookup_sq` but clipped to the last node beyond the
        cutoff instead of zeroed — the caller owns the truncation mask."""
        d2 = np.asarray(d2, dtype=np.float32)
        x = np.sqrt(d2) if self.axis == "d" else d2
        return self._interpolate(x)

    def _interpolate(self, x: np.ndarray) -> np.ndarray:
        t = x * self._scale
        np.minimum(t, np.float32(self.values.shape[0] - 1), out=t)
        i0 = np.minimum(t.astype(np.int32), self.values.shape[0] - 2)
        frac = t - i0.astype(np.float32)
        lo = self.values[i0]
        return lo + frac * (self.values[i0 + 1] - lo)


def build_kernel_table(
    kernel: str | Kernel,
    bandwidth: float,
    cutoff: float | None = None,
    size: int = _TABLE_SIZE,
) -> KernelTable:
    """Build the float32 lookup table used by the scatter core's f32 mode.

    ``cutoff`` defaults to the kernel's support radius; infinite-support
    kernels must pass their truncation radius explicitly.  The returned
    table's ``max_abs_error`` is certified against the exact float64
    kernel on a probe grid oversampling every node interval
    ``_TABLE_PROBE`` times.
    """
    k = get_kernel(kernel)
    b = check_positive(bandwidth, "bandwidth")
    if cutoff is None:
        cutoff = k.support_radius(b)
    cutoff = float(cutoff)
    if not np.isfinite(cutoff) or cutoff <= 0.0:
        raise ParameterError(
            f"kernel table cutoff must be finite and positive, got {cutoff}"
        )
    size = int(size)
    if size < 2:
        raise ParameterError(f"kernel table size must be >= 2, got {size}")
    axis = "d2" if (k.poly_coeffs(b) is not None or k.name == "gaussian") else "d"
    x_max = cutoff if axis == "d" else cutoff * cutoff
    nodes = np.linspace(0.0, x_max, size)
    d2_nodes = nodes * nodes if axis == "d" else nodes
    values = k.evaluate_sq(d2_nodes, b).astype(np.float32)

    # Certify the interpolation bound on an oversampled probe grid inside
    # the support, evaluating the interpolant exactly as the scatter
    # core's float32 mode does (clipped lookup in float32, truncation
    # masked by the caller in float64).
    probe = np.linspace(0.0, x_max, _TABLE_PROBE * (size - 1) + 1)
    d2_probe = probe * probe if axis == "d" else probe
    exact = k.evaluate_sq(d2_probe, b)
    table = KernelTable(k.name, b, cutoff, axis, values, 0.0)
    approx = table.lookup_sq_clipped(d2_probe.astype(np.float32))
    measured = float(np.max(np.abs(approx.astype(np.float64) - exact)))
    headroom = float(np.finfo(np.float32).eps) * float(np.max(np.abs(values), initial=0.0))
    table.max_abs_error = measured + headroom
    return table


def temporal_expansion_matrix(
    kernel: str | Kernel, bandwidth: float
) -> np.ndarray | None:
    """Binomial expansion of a polynomial kernel in event-time powers.

    A finite-support kernel that is polynomial in the squared distance
    (``poly_coeffs`` non-``None``) applied to a *temporal* offset
    ``|t - t_i|`` is a polynomial in ``(t - t_i)``, so it separates into
    powers of the frame time ``t`` and the event time ``t_i``::

        K(|t - t_i|; b) = sum_{m, p} B[m, p] * t^p * t_i^m
                        (valid for |t - t_i| <= support_radius(b))

    with ``B[m, p] = (-1)^m * C(m + p, m) * c_{(m+p)/2}`` when ``m + p``
    is even and ``(m + p) / 2`` indexes a ``poly_coeffs`` entry, else 0.
    ``B`` is the ``(M, M)`` matrix with ``M = 2 * degree + 1``; the
    temporal-sharing STKDV backend maintains one *moment grid* per row
    ``m`` (``M_m(q) = sum_i t_i^m patch_i(q)``) and reconstructs a frame
    at time ``t`` as ``sum_m (B @ [t^p])_m * M_m``.

    Returns ``None`` for kernels that are not polynomial in the squared
    distance (Gaussian, exponential, triangular, cosine) — exactly the
    kernels the sharing backend must fall back to windowing for.
    """
    k = get_kernel(kernel)
    coeffs = k.poly_coeffs(bandwidth)
    if coeffs is None:
        return None
    degree = coeffs.shape[0] - 1
    n = 2 * degree + 1
    matrix = np.zeros((n, n), dtype=np.float64)
    for m in range(n):
        for p in range(n - m):
            if (m + p) % 2:
                continue
            matrix[m, p] = ((-1.0) ** m) * comb(m + p, m) * coeffs[(m + p) // 2]
    return matrix


def get_kernel(kernel: str | Kernel) -> Kernel:
    """Resolve a kernel by name or pass an instance through."""
    if isinstance(kernel, Kernel):
        return kernel
    try:
        return KERNELS[kernel]
    except KeyError:
        known = ", ".join(sorted(KERNELS))
        raise ParameterError(f"unknown kernel {kernel!r}; available: {known}") from None
