"""Network K-function (paper §2.3): K-function under shortest-path distance.

Replaces ``dist(p_i, p_j)`` in Equation 2 by the network distance
``dist_G(p_i, p_j)`` between two positions on a road network, following
Okabe & Yamada [74] and the fast algorithms of [33].

Two backends:

* ``naive`` — one bounded Dijkstra *per event* (the baseline of [74]);
* ``shared`` — one pair of bounded Dijkstras *per edge that hosts events*
  (endpoint-distance sharing, the batching idea behind [33]): every event
  on an edge reuses the same two endpoint distance maps, so co-located
  events — the common case for accident/crime data — cost almost nothing
  extra.

Both backends bound the traversal at the largest threshold, which is safe:
any path of total length <= s_max visits only nodes within s_max of the
source.  Both fan their per-edge / per-event scans out over the shared
executor (``workers``/``backend``, see :mod:`repro.parallel`); the
reduction is an integer sum over fixed-size chunks, so the counts are
bit-identical for every worker count and backend.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ... import obs
from ..._validation import check_thresholds
from ...errors import ParameterError
from ...network import NetworkPosition, RoadNetwork, node_distances
from ...parallel import parallel_map, spawn_rngs
from .result import NetworkKResult

__all__ = [
    "NetworkKResult",
    "network_k_function",
    "network_ripley_k",
    "NetworkKFunctionPlot",
    "network_k_function_plot",
    "NETWORK_K_METHODS",
]

NETWORK_K_METHODS = ("auto", "naive", "shared")

# Fixed chunk sizes for the per-edge / per-event fan-out.  Constants (never
# derived from ``workers``) keep the chunk partition — and hence the merged
# trace — worker-invariant; the integer count reduction is order-invariant
# anyway.
_EDGE_CHUNK = 4
_EVENT_CHUNK = 8


def _event_arrays(network: RoadNetwork, events) -> tuple[np.ndarray, np.ndarray]:
    edges = np.empty(len(events), dtype=np.int64)
    offsets = np.empty(len(events), dtype=np.float64)
    for i, ev in enumerate(events):
        network.check_position(ev)
        edges[i] = ev.edge
        offsets[i] = ev.offset
    return edges, offsets


def _shared_edge_task(task):
    """Pair counts contributed by the events on one edge (module-level)."""
    network, edge, edges, offsets, thresholds, smax = task
    edge_u = network.edge_nodes[:, 0]
    edge_v = network.edge_nodes[:, 1]
    lengths = network.edge_lengths

    target_u = edge_u[edges]
    target_v = edge_v[edges]
    target_len = lengths[edges]

    on_edge = edges == edge
    o_a = offsets[on_edge]  # (m,)
    u, v = int(edge_u[edge]), int(edge_v[edge])
    length = float(lengths[edge])
    du = node_distances(network, u, cutoff=smax)
    dv = node_distances(network, v, cutoff=smax)

    # Distance from each source event (rows) to the endpoints of every
    # target event's edge (columns).
    d_src_u = np.minimum(
        o_a[:, None] + du[target_u][None, :],
        (length - o_a)[:, None] + dv[target_u][None, :],
    )
    d_src_v = np.minimum(
        o_a[:, None] + du[target_v][None, :],
        (length - o_a)[:, None] + dv[target_v][None, :],
    )
    dij = np.minimum(
        d_src_u + offsets[None, :],
        d_src_v + (target_len - offsets)[None, :],
    )
    # Same-edge pairs can go directly along the edge.
    same = np.flatnonzero(on_edge)
    if same.size:
        direct = np.abs(o_a[:, None] - offsets[same][None, :])
        dij[:, same] = np.minimum(dij[:, same], direct)

    obs.count("netk.edges_processed")
    flat = np.sort(dij, axis=None)
    return np.searchsorted(flat, thresholds, side="right").astype(np.int64)


def _pair_distance_counts_shared(
    network: RoadNetwork,
    edges: np.ndarray,
    offsets: np.ndarray,
    thresholds: np.ndarray,
    workers: int | None,
    backend: str | None,
) -> np.ndarray:
    """Ordered-pair counts (including self-pairs) via per-edge sharing."""
    smax = float(thresholds.max())
    tasks = [
        (network, int(edge), edges, offsets, thresholds, smax)
        for edge in np.unique(edges)
    ]
    with obs.span("netk.pairs.shared"):
        partials = parallel_map(
            _shared_edge_task, tasks, workers=workers, backend=backend,
            chunksize=_EDGE_CHUNK,
        )
    counts = np.zeros(thresholds.shape[0], dtype=np.int64)
    for part in partials:
        counts += part
    return counts


def _naive_event_task(task):
    """Pair counts from one source event's bounded Dijkstra (module-level)."""
    network, i, edges, offsets, thresholds, smax = task
    edge_u = network.edge_nodes[:, 0][edges]
    edge_v = network.edge_nodes[:, 1][edges]
    target_len = network.edge_lengths[edges]

    u, v = network.edge_nodes[edges[i]]
    length = float(network.edge_lengths[edges[i]])
    dist = node_distances(
        network,
        [(int(u), float(offsets[i])), (int(v), length - float(offsets[i]))],
        cutoff=smax,
    )
    dij = np.minimum(
        dist[edge_u] + offsets,
        dist[edge_v] + (target_len - offsets),
    )
    same = edges == edges[i]
    dij[same] = np.minimum(dij[same], np.abs(offsets[same] - offsets[i]))
    return np.searchsorted(np.sort(dij), thresholds, side="right").astype(
        np.int64
    )


def _pair_distance_counts_naive(
    network: RoadNetwork,
    edges: np.ndarray,
    offsets: np.ndarray,
    thresholds: np.ndarray,
    workers: int | None,
    backend: str | None,
) -> np.ndarray:
    """Ordered-pair counts (including self-pairs): one Dijkstra per event."""
    smax = float(thresholds.max())
    tasks = [
        (network, i, edges, offsets, thresholds, smax)
        for i in range(edges.shape[0])
    ]
    with obs.span("netk.pairs.naive"):
        partials = parallel_map(
            _naive_event_task, tasks, workers=workers, backend=backend,
            chunksize=_EVENT_CHUNK,
        )
    counts = np.zeros(thresholds.shape[0], dtype=np.int64)
    for part in partials:
        counts += part
    return counts


def network_k_function(
    network: RoadNetwork,
    events,
    thresholds,
    method: str = "auto",
    include_self: bool = False,
    workers: int | None = None,
    backend: str | None = None,
) -> NetworkKResult:
    """Raw network K-function counts for every threshold.

    ``events`` is a sequence of :class:`~repro.network.NetworkPosition`.
    Returns a :class:`NetworkKResult` — an ``np.ndarray`` subclass of
    ordered-pair counts (each unordered pair contributes 2, self-pairs
    excluded unless ``include_self=True``, paper Equation 2 literal form)
    that additionally carries ``thresholds`` and ``diagnostics``.

    ``workers``/``backend`` fan the per-edge (``shared``) or per-event
    (``naive``) scans out over the shared executor (``None`` uses the
    :mod:`repro.parallel` defaults, i.e. ``REPRO_WORKERS`` /
    ``REPRO_BACKEND``); counts are bit-identical for every combination.
    """
    ts = check_thresholds(thresholds)
    if len(events) == 0:
        raise ParameterError("events must not be empty")
    edges, offsets = _event_arrays(network, events)

    if method == "auto":
        method = "shared"
    with obs.task("netk") as trace:
        obs.count("netk.events", edges.shape[0])
        obs.count(f"netk.method.{method}")
        if method == "shared":
            counts = _pair_distance_counts_shared(
                network, edges, offsets, ts, workers, backend
            )
        elif method == "naive":
            counts = _pair_distance_counts_naive(
                network, edges, offsets, ts, workers, backend
            )
        else:
            raise ParameterError(
                f"unknown network K method {method!r}; "
                f"available: {', '.join(NETWORK_K_METHODS)}"
            )
        if not include_self:
            counts = counts - edges.shape[0]
    return NetworkKResult(
        counts.astype(np.int64), thresholds=ts, diagnostics=trace.diagnostics
    )


def network_ripley_k(
    network: RoadNetwork,
    events,
    thresholds,
    method: str = "auto",
    workers: int | None = None,
    backend: str | None = None,
) -> np.ndarray:
    """Network Ripley normalisation ``|L| / (n (n - 1)) * pair_counts``.

    ``|L|`` is the total network length; under uniform-on-network events
    the curve grows roughly linearly in ``s`` (tree-like regime).
    """
    n = len(events)
    if n < 2:
        raise ParameterError("network_ripley_k needs at least two events")
    counts = network_k_function(
        network, events, thresholds, method=method, workers=workers,
        backend=backend,
    )
    return network.total_length * counts.astype(np.float64) / (n * (n - 1))


@dataclass(frozen=True)
class NetworkKFunctionPlot:
    """Observed network K curve with its uniform-on-network envelope."""

    thresholds: np.ndarray
    observed: np.ndarray
    lower: np.ndarray
    upper: np.ndarray
    n_simulations: int
    diagnostics: "obs.Diagnostics | None" = None

    def clustered_mask(self) -> np.ndarray:
        return self.observed > self.upper

    def dispersed_mask(self) -> np.ndarray:
        return self.observed < self.lower

    def classify(self) -> list[str]:
        out = []
        for observed, lo, hi in zip(self.observed, self.lower, self.upper):
            if observed > hi:
                out.append("clustered")
            elif observed < lo:
                out.append("dispersed")
            else:
                out.append("random")
        return out


def _network_csr_k_task(task):
    """One uniform-on-network simulation of the K-curve (module-level)."""
    rng, network, n, ts, method = task
    with obs.span("simulation"):
        obs.count("netk.simulations")
        sim = network.sample_positions(n, rng)
        return network_k_function(network, sim, ts, method=method).astype(
            np.float64
        )


def network_k_function_plot(
    network: RoadNetwork,
    events,
    thresholds,
    n_simulations: int = 99,
    method: str = "auto",
    seed=None,
    workers: int | None = None,
    backend: str | None = None,
) -> NetworkKFunctionPlot:
    """Network K-function plot: envelope from uniform-on-network CSR.

    The null model places the same number of events uniformly *by length*
    on the network (the network analogue of Definition 3's random
    datasets).  Simulations fan out over the shared executor
    (``workers``/``backend``, see :mod:`repro.parallel`) with one RNG
    stream per simulation, so the envelope is bit-identical for every
    worker count.
    """
    ts = check_thresholds(thresholds)
    n_simulations = int(n_simulations)
    if n_simulations < 1:
        raise ParameterError(f"n_simulations must be >= 1, got {n_simulations}")

    with obs.task("netk.plot") as trace:
        observed = network_k_function(
            network, events, ts, method=method, workers=workers, backend=backend
        )
        n = len(events)
        tasks = [
            (rng, network, n, ts, method)
            for rng in spawn_rngs(seed, n_simulations)
        ]
        sims = np.vstack(
            parallel_map(
                _network_csr_k_task, tasks, workers=workers, backend=backend
            )
        )
    return NetworkKFunctionPlot(
        thresholds=ts,
        observed=observed.astype(np.float64),
        lower=sims.min(axis=0),
        upper=sims.max(axis=0),
        n_simulations=n_simulations,
        diagnostics=trace.diagnostics,
    )
