"""Network K-function (paper §2.3): K-function under shortest-path distance.

Replaces ``dist(p_i, p_j)`` in Equation 2 by the network distance
``dist_G(p_i, p_j)`` between two positions on a road network, following
Okabe & Yamada [74] and the fast algorithms of [33].

Two backends:

* ``naive`` — one bounded Dijkstra *per event* (the baseline of [74]);
* ``shared`` — one pair of bounded Dijkstras *per edge that hosts events*
  (endpoint-distance sharing, the batching idea behind [33]): every event
  on an edge reuses the same two endpoint distance maps, so co-located
  events — the common case for accident/crime data — cost almost nothing
  extra.

Both backends bound the traversal at the largest threshold, which is safe:
any path of total length <= s_max visits only nodes within s_max of the
source.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..._validation import check_thresholds
from ...errors import ParameterError
from ...network import NetworkPosition, RoadNetwork, node_distances
from ...parallel import parallel_map, spawn_rngs

__all__ = [
    "network_k_function",
    "network_ripley_k",
    "NetworkKFunctionPlot",
    "network_k_function_plot",
    "NETWORK_K_METHODS",
]

NETWORK_K_METHODS = ("auto", "naive", "shared")


def _event_arrays(network: RoadNetwork, events) -> tuple[np.ndarray, np.ndarray]:
    edges = np.empty(len(events), dtype=np.int64)
    offsets = np.empty(len(events), dtype=np.float64)
    for i, ev in enumerate(events):
        network.check_position(ev)
        edges[i] = ev.edge
        offsets[i] = ev.offset
    return edges, offsets


def _pair_distance_counts_shared(
    network: RoadNetwork,
    edges: np.ndarray,
    offsets: np.ndarray,
    thresholds: np.ndarray,
) -> np.ndarray:
    """Ordered-pair counts (including self-pairs) via per-edge sharing."""
    smax = float(thresholds.max())
    n = edges.shape[0]
    counts = np.zeros(thresholds.shape[0], dtype=np.int64)

    edge_u = network.edge_nodes[:, 0]
    edge_v = network.edge_nodes[:, 1]
    lengths = network.edge_lengths

    target_u = edge_u[edges]
    target_v = edge_v[edges]
    target_len = lengths[edges]

    for edge in np.unique(edges):
        on_edge = edges == edge
        o_a = offsets[on_edge]  # (m,)
        u, v = int(edge_u[edge]), int(edge_v[edge])
        length = float(lengths[edge])
        du = node_distances(network, u, cutoff=smax)
        dv = node_distances(network, v, cutoff=smax)

        # Distance from each source event (rows) to the endpoints of every
        # target event's edge (columns).
        d_src_u = np.minimum(
            o_a[:, None] + du[target_u][None, :],
            (length - o_a)[:, None] + dv[target_u][None, :],
        )
        d_src_v = np.minimum(
            o_a[:, None] + du[target_v][None, :],
            (length - o_a)[:, None] + dv[target_v][None, :],
        )
        dij = np.minimum(
            d_src_u + offsets[None, :],
            d_src_v + (target_len - offsets)[None, :],
        )
        # Same-edge pairs can go directly along the edge.
        same = np.flatnonzero(edges == edge)
        if same.size:
            direct = np.abs(o_a[:, None] - offsets[same][None, :])
            dij[:, same] = np.minimum(dij[:, same], direct)

        flat = np.sort(dij, axis=None)
        counts += np.searchsorted(flat, thresholds, side="right")
    return counts


def _pair_distance_counts_naive(
    network: RoadNetwork,
    edges: np.ndarray,
    offsets: np.ndarray,
    thresholds: np.ndarray,
) -> np.ndarray:
    """Ordered-pair counts (including self-pairs): one Dijkstra per event."""
    smax = float(thresholds.max())
    counts = np.zeros(thresholds.shape[0], dtype=np.int64)
    edge_u = network.edge_nodes[:, 0][edges]
    edge_v = network.edge_nodes[:, 1][edges]
    target_len = network.edge_lengths[edges]

    for i in range(edges.shape[0]):
        u, v = network.edge_nodes[edges[i]]
        length = float(network.edge_lengths[edges[i]])
        dist = node_distances(
            network,
            [(int(u), float(offsets[i])), (int(v), length - float(offsets[i]))],
            cutoff=smax,
        )
        dij = np.minimum(
            dist[edge_u] + offsets,
            dist[edge_v] + (target_len - offsets),
        )
        same = edges == edges[i]
        dij[same] = np.minimum(dij[same], np.abs(offsets[same] - offsets[i]))
        counts += np.searchsorted(np.sort(dij), thresholds, side="right")
    return counts


def network_k_function(
    network: RoadNetwork,
    events,
    thresholds,
    method: str = "auto",
    include_self: bool = False,
) -> np.ndarray:
    """Raw network K-function counts for every threshold.

    ``events`` is a sequence of :class:`~repro.network.NetworkPosition`.
    Returns ordered-pair counts (each unordered pair contributes 2), with
    self-pairs excluded unless ``include_self=True`` (paper Equation 2
    literal form).
    """
    ts = check_thresholds(thresholds)
    if len(events) == 0:
        raise ParameterError("events must not be empty")
    edges, offsets = _event_arrays(network, events)

    if method == "auto":
        method = "shared"
    if method == "shared":
        counts = _pair_distance_counts_shared(network, edges, offsets, ts)
    elif method == "naive":
        counts = _pair_distance_counts_naive(network, edges, offsets, ts)
    else:
        raise ParameterError(
            f"unknown network K method {method!r}; "
            f"available: {', '.join(NETWORK_K_METHODS)}"
        )
    if not include_self:
        counts = counts - edges.shape[0]
    return counts.astype(np.int64)


def network_ripley_k(
    network: RoadNetwork,
    events,
    thresholds,
    method: str = "auto",
) -> np.ndarray:
    """Network Ripley normalisation ``|L| / (n (n - 1)) * pair_counts``.

    ``|L|`` is the total network length; under uniform-on-network events
    the curve grows roughly linearly in ``s`` (tree-like regime).
    """
    n = len(events)
    if n < 2:
        raise ParameterError("network_ripley_k needs at least two events")
    counts = network_k_function(network, events, thresholds, method=method)
    return network.total_length * counts.astype(np.float64) / (n * (n - 1))


@dataclass(frozen=True)
class NetworkKFunctionPlot:
    """Observed network K curve with its uniform-on-network envelope."""

    thresholds: np.ndarray
    observed: np.ndarray
    lower: np.ndarray
    upper: np.ndarray
    n_simulations: int

    def clustered_mask(self) -> np.ndarray:
        return self.observed > self.upper

    def dispersed_mask(self) -> np.ndarray:
        return self.observed < self.lower

    def classify(self) -> list[str]:
        out = []
        for obs, lo, hi in zip(self.observed, self.lower, self.upper):
            if obs > hi:
                out.append("clustered")
            elif obs < lo:
                out.append("dispersed")
            else:
                out.append("random")
        return out


def _network_csr_k_task(task):
    """One uniform-on-network simulation of the K-curve (module-level)."""
    rng, network, n, ts, method = task
    sim = network.sample_positions(n, rng)
    return network_k_function(network, sim, ts, method=method).astype(np.float64)


def network_k_function_plot(
    network: RoadNetwork,
    events,
    thresholds,
    n_simulations: int = 99,
    method: str = "auto",
    seed=None,
    workers: int | None = None,
    backend: str | None = None,
) -> NetworkKFunctionPlot:
    """Network K-function plot: envelope from uniform-on-network CSR.

    The null model places the same number of events uniformly *by length*
    on the network (the network analogue of Definition 3's random
    datasets).  Simulations fan out over the shared executor
    (``workers``/``backend``, see :mod:`repro.parallel`) with one RNG
    stream per simulation, so the envelope is bit-identical for every
    worker count.
    """
    ts = check_thresholds(thresholds)
    n_simulations = int(n_simulations)
    if n_simulations < 1:
        raise ParameterError(f"n_simulations must be >= 1, got {n_simulations}")

    observed = network_k_function(network, events, ts, method=method)
    n = len(events)
    tasks = [
        (rng, network, n, ts, method) for rng in spawn_rngs(seed, n_simulations)
    ]
    sims = np.vstack(
        parallel_map(_network_csr_k_task, tasks, workers=workers, backend=backend)
    )
    return NetworkKFunctionPlot(
        thresholds=ts,
        observed=observed.astype(np.float64),
        lower=sims.min(axis=0),
        upper=sims.max(axis=0),
        n_simulations=n_simulations,
    )
