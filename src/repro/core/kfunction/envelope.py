"""K-function plots with Monte-Carlo envelopes (paper Definition 3, Figure 2).

A :class:`KFunctionPlot` holds the observed curve ``K_P(s_d)`` together
with the pointwise envelope ``[L(s_d), U(s_d)]`` obtained from ``L``
simulated CSR datasets of the same size (Equations 4-5).  Thresholds where
the observed curve exceeds the upper envelope are the "meaningful
clusters/hotspots" regime; below the lower envelope is "dispersed";
in between is "random" — the three regimes annotated in Figure 2.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ... import obs
from ..._validation import as_points, check_thresholds
from ...errors import ParameterError
from ...geometry import BoundingBox
from ...parallel import parallel_map, spawn_rngs
from .planar import k_function

__all__ = [
    "KFunctionPlot",
    "k_function_plot",
    "GlobalEnvelopeResult",
    "global_envelope_test",
]


@dataclass(frozen=True)
class KFunctionPlot:
    """Observed K-function curve with its CSR envelope.

    ``diagnostics`` carries the :class:`repro.obs.Diagnostics` of the
    producing call (per-simulation spans aggregated, counters summed);
    ``None`` when tracing was disabled.
    """

    thresholds: np.ndarray
    observed: np.ndarray
    lower: np.ndarray
    upper: np.ndarray
    n_simulations: int
    diagnostics: obs.Diagnostics | None = None

    def __post_init__(self) -> None:
        shapes = {
            arr.shape
            for arr in (self.thresholds, self.observed, self.lower, self.upper)
        }
        if len(shapes) != 1:
            raise ParameterError("plot arrays must share one shape")

    def clustered_mask(self) -> np.ndarray:
        """Thresholds where the dataset shows significant clustering."""
        return self.observed > self.upper

    def dispersed_mask(self) -> np.ndarray:
        """Thresholds where the dataset is significantly dispersed."""
        return self.observed < self.lower

    def classify(self) -> list[str]:
        """Per-threshold regime: ``clustered`` / ``random`` / ``dispersed``."""
        out = []
        for obs, lo, hi in zip(self.observed, self.lower, self.upper):
            if obs > hi:
                out.append("clustered")
            elif obs < lo:
                out.append("dispersed")
            else:
                out.append("random")
        return out

    def clustered_thresholds(self) -> np.ndarray:
        """The ``s_d`` values in the clustered regime.

        The paper (§2.1) suggests feeding these back as KDV bandwidths.
        """
        return self.thresholds[self.clustered_mask()]

    def rows(self) -> list[tuple[float, float, float, float, str]]:
        """(s, K, L, U, regime) rows — the printable form of Figure 2."""
        return [
            (float(s), float(k), float(lo), float(hi), regime)
            for s, k, lo, hi, regime in zip(
                self.thresholds, self.observed, self.lower, self.upper, self.classify()
            )
        ]


@dataclass(frozen=True)
class GlobalEnvelopeResult:
    """Simultaneous (MAD) envelope test over all thresholds at once.

    Pointwise envelopes (Definition 3) test each threshold separately, so
    with D thresholds the family-wise level is inflated.  The global test
    ranks the *maximum absolute deviation* of each curve from the
    simulation mean; the observed curve is significant when its MAD exceeds
    the ``(1 - alpha)`` quantile of the simulated MADs.
    """

    thresholds: np.ndarray
    observed: np.ndarray
    sim_mean: np.ndarray
    mad_observed: float
    mad_critical: float
    p_value: float
    alpha: float
    diagnostics: obs.Diagnostics | None = None

    @property
    def significant(self) -> bool:
        return self.mad_observed > self.mad_critical


def _csr_k_task(task):
    """One CSR simulation of the K-curve (module-level for process pools)."""
    rng, bbox, n, ts, method, include_self = task
    with obs.span("simulation"):
        obs.count("kfunction.simulations")
        return k_function(
            bbox.sample_uniform(n, rng), ts, method=method,
            include_self=include_self,
        ).astype(np.float64)


def _simulate_csr_curves(
    bbox: BoundingBox,
    n: int,
    ts: np.ndarray,
    n_simulations: int,
    method: str,
    include_self: bool,
    seed,
    workers: int | None,
    backend: str | None,
) -> np.ndarray:
    """(L, D) float64 matrix of simulated CSR K-curves.

    Simulation ``k`` always consumes RNG stream ``k`` (SeedSequence
    child ``k`` of ``seed``) and lands in row ``k``, so the matrix — and
    everything reduced from it — is bit-identical for every worker
    count and backend.
    """
    rngs = spawn_rngs(seed, n_simulations)
    tasks = [(rng, bbox, n, ts, method, include_self) for rng in rngs]
    with obs.span("kfunction.simulate"):
        curves = parallel_map(
            _csr_k_task, tasks, workers=workers, backend=backend
        )
    return np.vstack(curves)


def global_envelope_test(
    points,
    bbox: BoundingBox,
    thresholds,
    n_simulations: int = 99,
    alpha: float = 0.05,
    method: str = "auto",
    seed=None,
    workers: int | None = None,
    backend: str | None = None,
) -> GlobalEnvelopeResult:
    """Simultaneous K-function test against CSR (MAD global envelope).

    Deviations are standardised by the per-threshold simulation standard
    deviation so every scale contributes comparably.  The simulations
    fan out over the shared executor (``workers``/``backend``, see
    :mod:`repro.parallel`); results are identical for any worker count.
    """
    pts = as_points(points)
    ts = check_thresholds(thresholds)
    n_simulations = int(n_simulations)
    if n_simulations < 19:
        raise ParameterError(
            "the global envelope needs at least 19 simulations for a 5% test"
        )
    if not (0.0 < alpha < 1.0):
        raise ParameterError(f"alpha must be in (0, 1), got {alpha}")

    with obs.task("kfunction.global_envelope") as trace:
        observed = k_function(pts, ts, method=method).astype(np.float64)
        n = pts.shape[0]
        sims = _simulate_csr_curves(
            bbox, n, ts, n_simulations, method, False, seed, workers, backend
        )

        mean = sims.mean(axis=0)
        sd = np.maximum(sims.std(axis=0, ddof=1), 1e-12)
        sim_mads = np.abs((sims - mean[None, :]) / sd[None, :]).max(axis=1)
        obs_mad = float(np.abs((observed - mean) / sd).max())

        critical = float(np.quantile(sim_mads, 1.0 - alpha))
        # Monte-Carlo p-value: rank of the observed MAD among the simulated.
        p = (1.0 + float((sim_mads >= obs_mad).sum())) / (n_simulations + 1.0)
    return GlobalEnvelopeResult(
        thresholds=ts,
        observed=observed,
        sim_mean=mean,
        mad_observed=obs_mad,
        mad_critical=critical,
        p_value=p,
        alpha=float(alpha),
        diagnostics=trace.diagnostics,
    )


def k_function_plot(
    points,
    bbox: BoundingBox,
    thresholds,
    n_simulations: int = 99,
    method: str = "auto",
    include_self: bool = False,
    seed=None,
    workers: int | None = None,
    backend: str | None = None,
) -> KFunctionPlot:
    """Generate a K-function plot per Definition 3.

    ``n_simulations`` CSR datasets of the same size are generated inside
    ``bbox``; the envelope is their pointwise min/max (Equations 4-5).
    With 99 simulations the pointwise test has the conventional 2% level
    (1% each tail).  Simulations run on the shared executor
    (``workers``/``backend``, see :mod:`repro.parallel`); for a fixed
    seed the envelope is bit-identical at every worker count.  The
    envelope accumulates in float64 from the start, so float-valued K
    variants are never truncated.
    """
    pts = as_points(points)
    ts = check_thresholds(thresholds)
    n_simulations = int(n_simulations)
    if n_simulations < 1:
        raise ParameterError(f"n_simulations must be >= 1, got {n_simulations}")

    with obs.task("kfunction.plot") as trace:
        observed = k_function(pts, ts, method=method, include_self=include_self)

        n = pts.shape[0]
        sims = _simulate_csr_curves(
            bbox, n, ts, n_simulations, method, include_self, seed, workers,
            backend,
        )

    return KFunctionPlot(
        thresholds=ts,
        observed=observed.astype(np.float64),
        lower=sims.min(axis=0),
        upper=sims.max(axis=0),
        n_simulations=n_simulations,
        diagnostics=trace.diagnostics,
    )


def _k_function_plot_from_request(points, request, bbox=None) -> KFunctionPlot:
    """Run a :class:`~repro.core.request.KFunctionRequest` on a point set.

    The request-object twin of the kwarg signature
    (``k_function_plot.from_request``); thresholds default to the
    request's ladder over the resolved window.
    """
    from ..request import KFunctionRequest, execute_request

    if not isinstance(request, KFunctionRequest):
        raise ParameterError(
            f"k_function_plot.from_request needs a KFunctionRequest, got "
            f"{type(request).__name__}"
        )
    return execute_request(request, points, bbox=bbox)


k_function_plot.from_request = _k_function_plot_from_request
