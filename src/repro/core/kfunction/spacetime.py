"""Spatiotemporal K-function (paper Equation 8, Figure 6).

Counts pairs that are simultaneously within a spatial threshold ``s`` and
a temporal threshold ``t``, over an ``M x T`` grid of thresholds; the
result is the surface of Figure 6, with lower/upper envelope surfaces from
simulated space-time CSR (Equations 9-10).

The multi-threshold grid is computed by **joint histogramming**: each
pair's ``(distance, |dt|)`` lands in a 2-D bin, and a double cumulative sum
turns the histogram into threshold counts — every (s, t) cell for the
price of one pass over the pairs.  The ``grid`` backend restricts the pair
enumeration to spatial candidates within ``s_max`` via the grid index.
Both backends fan their row/point blocks out over the shared executor
(``workers``/``backend``, see :mod:`repro.parallel`); the reduction is an
integer sum over fixed-size blocks, so the counts are bit-identical for
every worker count and backend.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ... import obs
from ..._validation import as_points, as_timestamps, check_thresholds
from ...errors import ParameterError
from ...geometry import BoundingBox
from ...index import GridIndex
from ...parallel import parallel_map, spawn_rngs
from .result import STKResult

__all__ = [
    "STKResult",
    "st_k_function",
    "STKFunctionPlot",
    "st_k_function_plot",
    "ST_K_METHODS",
]

ST_K_METHODS = ("auto", "naive", "grid")

# Points per grid-backend block.  A fixed constant (never derived from
# ``workers``) keeps the block partition — and hence the merged trace —
# worker-invariant; the integer count reduction is order-invariant anyway.
_GRID_BLOCK = 256


def _hist_counts(
    d: np.ndarray,
    dt: np.ndarray,
    s_ts: np.ndarray,
    t_ts: np.ndarray,
) -> np.ndarray:
    """Pair counts per (s, t) threshold cell from raw pair measures.

    ``searchsorted`` on the sorted thresholds maps each pair to the first
    threshold that admits it; the double cumulative sum then accumulates
    "first admitted at <= (alpha, beta)".
    """
    hist = np.zeros((s_ts.shape[0] + 1, t_ts.shape[0] + 1), dtype=np.int64)
    si = np.searchsorted(s_ts, d, side="left")  # first s index with s >= d
    ti = np.searchsorted(t_ts, dt, side="left")
    np.add.at(hist, (si, ti), 1)
    grid = hist[:-1, :-1].cumsum(axis=0).cumsum(axis=1)
    return grid


def _st_naive_block_task(task):
    """Counts from one row block of the naive O(n^2) scan (module-level)."""
    pts, ts_vals, s_ts, t_ts, start, stop = task
    block = pts[start:stop]
    # Difference form, not the |a|^2 + |b|^2 - 2ab expansion: the latter
    # loses ulps, so a pair at distance exactly equal to a threshold can
    # land in a different cell than under the grid backend's (exact for
    # representable coordinates) difference form.
    diff = block[:, None, :] - pts[None, :, :]
    d = np.sqrt((diff * diff).sum(axis=2)).ravel()
    dt = np.abs(ts_vals[start:stop, None] - ts_vals[None, :]).ravel()
    obs.count("stk.pairs_binned", d.shape[0])
    return _hist_counts(d, dt, s_ts, t_ts)


def _st_grid_block_task(task):
    """Counts from one point block of the grid-index scan (module-level)."""
    index, pts, ts_vals, s_ts, t_ts, smax, tmax, start, stop = task
    counts = np.zeros((s_ts.shape[0], t_ts.shape[0]), dtype=np.int64)
    pairs = 0
    for i in range(start, stop):
        nbr = index.range_indices(pts[i], smax)
        if nbr.size == 0:
            continue
        dvec = np.sqrt(((pts[nbr] - pts[i]) ** 2).sum(axis=1))
        dtvec = np.abs(ts_vals[nbr] - ts_vals[i])
        near = dtvec <= tmax
        if obs.is_active():
            pairs += int(near.sum())
        counts += _hist_counts(dvec[near], dtvec[near], s_ts, t_ts)
    if pairs:
        obs.count("stk.pairs_binned", pairs)
    return counts


def _st_counts(
    pts: np.ndarray,
    ts_vals: np.ndarray,
    s_ts: np.ndarray,
    t_ts: np.ndarray,
    method: str,
    chunk: int,
    workers: int | None,
    backend: str | None,
) -> np.ndarray:
    """Raw ordered-pair counts (self-pairs included) for one backend."""
    n = pts.shape[0]
    if method == "naive":
        chunk = int(chunk)
        if chunk < 1:
            raise ParameterError(f"chunk must be >= 1, got {chunk}")
        tasks = [
            (pts, ts_vals, s_ts, t_ts, start, min(start + chunk, n))
            for start in range(0, n, chunk)
        ]
        with obs.span("stk.counts.naive"):
            partials = parallel_map(
                _st_naive_block_task, tasks, workers=workers, backend=backend
            )
    else:  # "grid" — validated by the caller
        smax = float(s_ts.max())
        tmax = float(t_ts.max())
        if smax <= 0.0:
            # Only coincident points count; the naive scan is cheap there.
            return _st_counts(
                pts, ts_vals, s_ts, t_ts, "naive", chunk, workers, backend
            )
        index = GridIndex(pts, cell_size=smax)
        tasks = [
            (index, pts, ts_vals, s_ts, t_ts, smax, tmax, start,
             min(start + _GRID_BLOCK, n))
            for start in range(0, n, _GRID_BLOCK)
        ]
        with obs.span("stk.counts.grid"):
            partials = parallel_map(
                _st_grid_block_task, tasks, workers=workers, backend=backend
            )
    counts = np.zeros((s_ts.shape[0], t_ts.shape[0]), dtype=np.int64)
    for part in partials:
        counts += part
    return counts


def st_k_function(
    points,
    times,
    s_thresholds,
    t_thresholds,
    method: str = "auto",
    include_self: bool = False,
    chunk: int = 1024,
    workers: int | None = None,
    backend: str | None = None,
) -> STKResult:
    """Raw spatiotemporal K counts ``K(s_alpha, t_beta)`` (Equation 8).

    Returns an ``(M, T)`` :class:`STKResult` — an ``np.ndarray`` subclass
    of int64 ordered-pair counts that additionally carries
    ``s_thresholds`` / ``t_thresholds`` / ``diagnostics``.  Self-pairs are
    excluded unless ``include_self=True`` (Equation 8 literal form).

    ``workers``/``backend`` fan the row/point blocks out over the shared
    executor (``None`` uses the :mod:`repro.parallel` defaults); counts
    are bit-identical for every combination.
    """
    pts = as_points(points)
    ts_vals = as_timestamps(times, pts.shape[0])
    s_ts = check_thresholds(s_thresholds, name="s_thresholds")
    t_ts = check_thresholds(t_thresholds, name="t_thresholds")
    n = pts.shape[0]

    if method == "auto":
        method = "grid"
    if method not in ("naive", "grid"):
        raise ParameterError(
            f"unknown ST K method {method!r}; available: {', '.join(ST_K_METHODS)}"
        )

    with obs.task("stk") as trace:
        obs.count("stk.points", n)
        obs.count(f"stk.method.{method}")
        counts = _st_counts(
            pts, ts_vals, s_ts, t_ts, method, chunk, workers, backend
        )
        if not include_self:
            counts = counts - n  # the diagonal satisfies every (s, t) cell
    return STKResult(
        counts.astype(np.int64),
        s_thresholds=s_ts,
        t_thresholds=t_ts,
        diagnostics=trace.diagnostics,
    )


@dataclass(frozen=True)
class STKFunctionPlot:
    """Observed ST-K surface with envelope surfaces (Figure 6)."""

    s_thresholds: np.ndarray
    t_thresholds: np.ndarray
    observed: np.ndarray
    lower: np.ndarray
    upper: np.ndarray
    n_simulations: int
    diagnostics: "obs.Diagnostics | None" = None

    def clustered_mask(self) -> np.ndarray:
        """(M, T) mask of threshold cells with significant ST clustering."""
        return self.observed > self.upper

    def dispersed_mask(self) -> np.ndarray:
        return self.observed < self.lower

    def fraction_clustered(self) -> float:
        """Share of the (s, t) grid in the clustered regime."""
        return float(self.clustered_mask().mean())


def _st_csr_k_task(task):
    """One space-time null simulation of the ST-K surface (module-level)."""
    rng, null, pts, ts_vals, bbox, t_lo, t_hi, s_ts, t_ts, method, n = task
    with obs.span("simulation"):
        obs.count("stk.simulations")
        if null == "csr":
            sim_pts = bbox.sample_uniform(n, rng)
            sim_times = rng.uniform(t_lo, t_hi, size=n)
        else:
            sim_pts = pts
            sim_times = rng.permutation(ts_vals)
        return st_k_function(sim_pts, sim_times, s_ts, t_ts, method=method).astype(
            np.float64
        )


def st_k_function_plot(
    points,
    times,
    bbox: BoundingBox,
    s_thresholds,
    t_thresholds,
    n_simulations: int = 39,
    method: str = "auto",
    null: str = "csr",
    seed=None,
    workers: int | None = None,
    backend: str | None = None,
) -> STKFunctionPlot:
    """Spatiotemporal K-function plot (Equations 8-10, Figure 6).

    ``null`` selects the simulation model:

    * ``"csr"`` — uniform space x uniform time over the observed ranges
      (the paper's "randomly generated datasets");
    * ``"permute"`` — keep the observed locations, permute timestamps:
      tests *space-time interaction* specifically, the classic Knox-style
      null used in epidemiology [55].

    Simulations fan out over the shared executor (``workers``/
    ``backend``, see :mod:`repro.parallel`) with one RNG stream per
    simulation, so the envelope surfaces are bit-identical for every
    worker count.
    """
    pts = as_points(points)
    ts_vals = as_timestamps(times, pts.shape[0])
    s_ts = check_thresholds(s_thresholds, name="s_thresholds")
    t_ts = check_thresholds(t_thresholds, name="t_thresholds")
    n_simulations = int(n_simulations)
    if n_simulations < 1:
        raise ParameterError(f"n_simulations must be >= 1, got {n_simulations}")
    if null not in ("csr", "permute"):
        raise ParameterError(f"null must be 'csr' or 'permute', got {null!r}")

    with obs.task("stk.plot") as trace:
        observed = st_k_function(
            pts, ts_vals, s_ts, t_ts, method=method,
            workers=workers, backend=backend,
        )
        n = pts.shape[0]
        t_lo, t_hi = float(ts_vals.min()), float(ts_vals.max())

        tasks = [
            (rng, null, pts, ts_vals, bbox, t_lo, t_hi, s_ts, t_ts, method, n)
            for rng in spawn_rngs(seed, n_simulations)
        ]
        sims = np.stack(
            parallel_map(_st_csr_k_task, tasks, workers=workers, backend=backend)
        )

    return STKFunctionPlot(
        s_thresholds=s_ts,
        t_thresholds=t_ts,
        observed=observed.astype(np.float64),
        lower=sims.min(axis=0),
        upper=sims.max(axis=0),
        n_simulations=n_simulations,
        diagnostics=trace.diagnostics,
    )
