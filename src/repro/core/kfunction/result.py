"""Rich K-count results that stay drop-in compatible with plain arrays.

``network_k_function`` and ``st_k_function`` historically returned bare
``np.ndarray`` count arrays, and a lot of downstream code leans on full
array semantics (``b - a``, ``np.diff``, indexing, ``tolist``,
``astype``).  :class:`NetworkKResult` and :class:`STKResult` therefore
subclass ``np.ndarray``: every existing consumer keeps working unchanged,
while the result now also carries the thresholds it was evaluated at and
the :class:`repro.obs.Diagnostics` of the computation.

Arithmetic and slicing propagate the metadata via ``__array_finalize__``
(views keep their provenance); reductions that change meaning (``np.diff``
etc.) simply carry it along, which is harmless — the metadata never
participates in numeric behaviour.
"""

from __future__ import annotations

import numpy as np

__all__ = ["NetworkKResult", "STKResult"]


class _KCountsResult(np.ndarray):
    """Base: an ndarray of pair counts with attached metadata fields."""

    _meta_fields: tuple[str, ...] = ()

    def __new__(cls, counts, **meta):
        obj = np.asarray(counts).view(cls)
        for name in cls._meta_fields:
            setattr(obj, name, meta.get(name))
        return obj

    def __array_finalize__(self, obj) -> None:
        if obj is None:
            return
        for name in self._meta_fields:
            setattr(self, name, getattr(obj, name, None))

    @property
    def counts(self) -> np.ndarray:
        """The raw count array (a plain ndarray view)."""
        return np.asarray(self)

    # ndarray pickling drops instance attributes; append them to the
    # state tuple so results survive the process backend.
    def __reduce__(self):
        reconstruct, args, state = super().__reduce__()
        meta = tuple(getattr(self, name) for name in self._meta_fields)
        return (reconstruct, args, (state, meta))

    def __setstate__(self, state) -> None:
        base, meta = state
        super().__setstate__(base)
        for name, value in zip(self._meta_fields, meta):
            setattr(self, name, value)


class NetworkKResult(_KCountsResult):
    """Network K-function counts per threshold.

    Behaves exactly like the ``(D,)`` int64 array of ordered-pair counts
    it used to be, plus:

    * ``thresholds`` — the distance thresholds evaluated;
    * ``diagnostics`` — the :class:`repro.obs.Diagnostics` of the run
      (``None`` when tracing was disabled);
    * ``counts`` — the values as a plain ``np.ndarray``.
    """

    _meta_fields = ("thresholds", "diagnostics")


class STKResult(_KCountsResult):
    """Spatiotemporal K-function counts over the ``(M, T)`` threshold grid.

    Behaves exactly like the ``(M, T)`` int64 matrix it used to be, plus
    ``s_thresholds`` / ``t_thresholds`` / ``diagnostics`` / ``counts``.
    """

    _meta_fields = ("s_thresholds", "t_thresholds", "diagnostics")
