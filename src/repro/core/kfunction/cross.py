"""Bivariate (cross) K-function.

The K-function family's standard extension for *two* event types — e.g.
"are crimes clustered around bars?", "do two disease strains co-locate?".
The cross-K counts type-B events within ``s`` of each type-A event:

    K_AB(s) = sum_{a in A} sum_{b in B} I(dist(a, b) <= s).

Significance uses the **random labelling** null: the combined point set is
fixed and the type labels are permuted, which tests association between
the types *given* the overall spatial pattern — the appropriate null when
both types live on the same streets/population.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..._validation import as_points, check_thresholds, resolve_rng
from ...errors import ParameterError
from ...index import GridIndex

__all__ = ["cross_k_function", "CrossKFunctionPlot", "cross_k_function_plot"]


def cross_k_function(points_a, points_b, thresholds) -> np.ndarray:
    """Raw cross-K counts of B-neighbours around A-events.

    Unlike the univariate K there are no self-pairs to exclude (the two
    sets are distinct by construction); coincident A/B points count.
    """
    a = as_points(points_a, name="points_a")
    b = as_points(points_b, name="points_b")
    ts = check_thresholds(thresholds)
    rmax = float(ts.max())
    if rmax <= 0.0:
        d2 = ((a[:, None, :] - b[None, :, :]) ** 2).sum(axis=2)
        flat = np.sort(d2, axis=None)
        return np.searchsorted(flat, ts * ts, side="right").astype(np.int64)
    index = GridIndex(b, cell_size=rmax)
    return index.count_within_thresholds(a, ts).sum(axis=0).astype(np.int64)


@dataclass(frozen=True)
class CrossKFunctionPlot:
    """Observed cross-K with its random-labelling envelope."""

    thresholds: np.ndarray
    observed: np.ndarray
    lower: np.ndarray
    upper: np.ndarray
    n_simulations: int

    def attraction_mask(self) -> np.ndarray:
        """Thresholds where the types co-locate more than labels predict."""
        return self.observed > self.upper

    def repulsion_mask(self) -> np.ndarray:
        """Thresholds where the types avoid each other."""
        return self.observed < self.lower

    def classify(self) -> list[str]:
        out = []
        for obs, lo, hi in zip(self.observed, self.lower, self.upper):
            if obs > hi:
                out.append("attraction")
            elif obs < lo:
                out.append("repulsion")
            else:
                out.append("independent")
        return out


def cross_k_function_plot(
    points_a,
    points_b,
    thresholds,
    n_simulations: int = 99,
    seed=None,
) -> CrossKFunctionPlot:
    """Cross-K plot under the random-labelling null.

    Each simulation shuffles the A/B labels over the combined point set
    (sizes preserved) and recomputes the cross-K.
    """
    a = as_points(points_a, name="points_a")
    b = as_points(points_b, name="points_b")
    ts = check_thresholds(thresholds)
    n_simulations = int(n_simulations)
    if n_simulations < 1:
        raise ParameterError(f"n_simulations must be >= 1, got {n_simulations}")
    rng = resolve_rng(seed)

    observed = cross_k_function(a, b, ts)
    combined = np.vstack([a, b])
    n_a = a.shape[0]
    total = combined.shape[0]

    lower = np.full(ts.shape[0], np.iinfo(np.int64).max, dtype=np.int64)
    upper = np.zeros(ts.shape[0], dtype=np.int64)
    for _ in range(n_simulations):
        perm = rng.permutation(total)
        sim_a = combined[perm[:n_a]]
        sim_b = combined[perm[n_a:]]
        k_sim = cross_k_function(sim_a, sim_b, ts)
        np.minimum(lower, k_sim, out=lower)
        np.maximum(upper, k_sim, out=upper)

    return CrossKFunctionPlot(
        thresholds=ts,
        observed=observed.astype(np.float64),
        lower=lower.astype(np.float64),
        upper=upper.astype(np.float64),
        n_simulations=n_simulations,
    )
