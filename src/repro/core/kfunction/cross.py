"""Bivariate (cross) K-function.

The K-function family's standard extension for *two* event types — e.g.
"are crimes clustered around bars?", "do two disease strains co-locate?".
The cross-K counts type-B events within ``s`` of each type-A event:

    K_AB(s) = sum_{a in A} sum_{b in B} I(dist(a, b) <= s).

Significance uses the **random labelling** null: the combined point set is
fixed and the type labels are permuted, which tests association between
the types *given* the overall spatial pattern — the appropriate null when
both types live on the same streets/population.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ... import obs
from ..._validation import as_points, check_thresholds
from ...errors import ParameterError
from ...index import GridIndex
from ...parallel import parallel_map, spawn_rngs

__all__ = ["cross_k_function", "CrossKFunctionPlot", "cross_k_function_plot"]


def cross_k_function(points_a, points_b, thresholds) -> np.ndarray:
    """Raw cross-K counts of B-neighbours around A-events.

    Unlike the univariate K there are no self-pairs to exclude (the two
    sets are distinct by construction); coincident A/B points count.
    """
    a = as_points(points_a, name="points_a")
    b = as_points(points_b, name="points_b")
    ts = check_thresholds(thresholds)
    rmax = float(ts.max())
    if rmax <= 0.0:
        d2 = ((a[:, None, :] - b[None, :, :]) ** 2).sum(axis=2)
        flat = np.sort(d2, axis=None)
        return np.searchsorted(flat, ts * ts, side="right").astype(np.int64)
    index = GridIndex(b, cell_size=rmax)
    return index.count_within_thresholds(a, ts).sum(axis=0).astype(np.int64)


@dataclass(frozen=True)
class CrossKFunctionPlot:
    """Observed cross-K with its random-labelling envelope."""

    thresholds: np.ndarray
    observed: np.ndarray
    lower: np.ndarray
    upper: np.ndarray
    n_simulations: int
    diagnostics: "obs.Diagnostics | None" = None

    def attraction_mask(self) -> np.ndarray:
        """Thresholds where the types co-locate more than labels predict."""
        return self.observed > self.upper

    def repulsion_mask(self) -> np.ndarray:
        """Thresholds where the types avoid each other."""
        return self.observed < self.lower

    def classify(self) -> list[str]:
        out = []
        for obs, lo, hi in zip(self.observed, self.lower, self.upper):
            if obs > hi:
                out.append("attraction")
            elif obs < lo:
                out.append("repulsion")
            else:
                out.append("independent")
        return out


def _cross_label_task(task):
    """One random-labelling simulation of the cross-K (module-level)."""
    rng, combined, n_a, ts = task
    with obs.span("simulation"):
        obs.count("crossk.permutations")
        perm = rng.permutation(combined.shape[0])
        return cross_k_function(combined[perm[:n_a]], combined[perm[n_a:]], ts)


def cross_k_function_plot(
    points_a,
    points_b,
    thresholds,
    n_simulations: int = 99,
    seed=None,
    workers: int | None = None,
    backend: str | None = None,
) -> CrossKFunctionPlot:
    """Cross-K plot under the random-labelling null.

    Each simulation shuffles the A/B labels over the combined point set
    (sizes preserved) and recomputes the cross-K.  Simulations fan out
    over the shared executor (``workers``/``backend``, see
    :mod:`repro.parallel`) with one RNG stream per simulation, so the
    envelope is bit-identical for every worker count.
    """
    a = as_points(points_a, name="points_a")
    b = as_points(points_b, name="points_b")
    ts = check_thresholds(thresholds)
    n_simulations = int(n_simulations)
    if n_simulations < 1:
        raise ParameterError(f"n_simulations must be >= 1, got {n_simulations}")

    with obs.task("crossk.plot") as trace:
        observed = cross_k_function(a, b, ts)
        combined = np.vstack([a, b])
        n_a = a.shape[0]

        tasks = [
            (rng, combined, n_a, ts) for rng in spawn_rngs(seed, n_simulations)
        ]
        sims = np.vstack(
            parallel_map(_cross_label_task, tasks, workers=workers,
                         backend=backend)
        )

    return CrossKFunctionPlot(
        thresholds=ts,
        observed=observed.astype(np.float64),
        lower=sims.min(axis=0).astype(np.float64),
        upper=sims.max(axis=0).astype(np.float64),
        n_simulations=n_simulations,
        diagnostics=trace.diagnostics,
    )
