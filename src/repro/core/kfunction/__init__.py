"""K-function and its variants (paper §2.3): planar, network, spatiotemporal."""

from .cross import CrossKFunctionPlot, cross_k_function, cross_k_function_plot
from .envelope import (
    GlobalEnvelopeResult,
    KFunctionPlot,
    global_envelope_test,
    k_function_plot,
)
from .inhomogeneous import inhomogeneous_k, intensity_at_points
from .local import LocalKResult, local_k_function
from .network import (
    NETWORK_K_METHODS,
    NetworkKFunctionPlot,
    network_k_function,
    network_k_function_plot,
    network_ripley_k,
)
from .pcf import pair_correlation
from .planar import (
    K_METHODS,
    border_ripley_k,
    k_function,
    l_function,
    ripley_k,
    ripley_normalize,
)
from .result import NetworkKResult, STKResult
from .spacetime import (
    ST_K_METHODS,
    STKFunctionPlot,
    st_k_function,
    st_k_function_plot,
)

__all__ = [
    "CrossKFunctionPlot",
    "GlobalEnvelopeResult",
    "global_envelope_test",
    "KFunctionPlot",
    "LocalKResult",
    "cross_k_function",
    "cross_k_function_plot",
    "border_ripley_k",
    "inhomogeneous_k",
    "intensity_at_points",
    "local_k_function",
    "K_METHODS",
    "NETWORK_K_METHODS",
    "NetworkKFunctionPlot",
    "NetworkKResult",
    "STKFunctionPlot",
    "STKResult",
    "ST_K_METHODS",
    "k_function",
    "k_function_plot",
    "l_function",
    "network_k_function",
    "network_k_function_plot",
    "network_ripley_k",
    "pair_correlation",
    "ripley_k",
    "ripley_normalize",
    "st_k_function",
    "st_k_function_plot",
]
