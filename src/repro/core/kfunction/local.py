"""Local K-function: per-point neighbourhood counts with CSR z-scores.

The global K-function answers "is the dataset clustered?"; the *local*
K-function (Getis & Franklin 1987) answers "which points sit in clusters?"
— the bridge between correlation analysis and hotspot detection that the
paper's §2.1 narrative builds.

For point ``p_i`` the local statistic is the neighbour count

    K_i(s) = #{ j != i : dist(p_i, p_j) <= s }.

Under CSR within the window each other point falls in the disc with
probability ``pi s^2 / |A|`` (ignoring edge effects), so

    K_i(s) ~ Binomial(n - 1, pi s^2 / |A|),

which yields a per-point z-score; points with large positive z are cluster
members.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..._validation import as_points, check_thresholds
from ...errors import ParameterError
from ...geometry import BoundingBox
from ...index import GridIndex

__all__ = ["LocalKResult", "local_k_function"]


@dataclass(frozen=True)
class LocalKResult:
    """Per-point local K counts and CSR z-scores."""

    thresholds: np.ndarray
    counts: np.ndarray  # (n, D)
    z_scores: np.ndarray  # (n, D)

    def cluster_members(self, threshold_index: int = -1, z_cut: float = 1.96) -> np.ndarray:
        """Boolean mask of points whose neighbourhood is significantly dense."""
        return self.z_scores[:, threshold_index] > z_cut


def local_k_function(
    points,
    thresholds,
    bbox: BoundingBox,
) -> LocalKResult:
    """Local K-function for every point at every threshold.

    Computed with one grid-index walk per point at the largest threshold
    (the same multi-threshold batching as the global tool).
    """
    pts = as_points(points)
    ts = check_thresholds(thresholds)
    n = pts.shape[0]
    if n < 2:
        raise ParameterError("local K-function needs at least two points")
    if not isinstance(bbox, BoundingBox):
        raise ParameterError("bbox must be a BoundingBox")

    rmax = float(ts.max())
    index = GridIndex(pts, cell_size=max(rmax, 1e-12))
    counts = index.count_within_thresholds(pts, ts) - 1  # drop self

    # Binomial CSR null per threshold.
    p = np.clip(np.pi * ts * ts / bbox.area, 0.0, 1.0)
    mean = (n - 1) * p
    var = (n - 1) * p * (1.0 - p)
    sd = np.sqrt(np.maximum(var, 1e-300))
    z = (counts - mean[None, :]) / sd[None, :]
    return LocalKResult(thresholds=ts, counts=counts.astype(np.int64), z_scores=z)
