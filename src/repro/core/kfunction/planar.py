"""Planar K-function (paper Definition 2) and Ripley's normalisation.

Three backends mirror the paper's §2.3 taxonomy:

* ``naive`` — the O(n^2) double sum the paper calls out as unscalable,
  evaluated in memory-bounded chunks (and the only backend that supports
  torus edge-correction, which needs raw displacements);
* ``grid`` / ``kdtree`` — the range-query-based methods: one index walk per
  point at the largest threshold, then multi-threshold batching via a
  sorted-distances ``searchsorted`` (all D thresholds for the price of one
  traversal).

By default self-pairs are excluded (the spatstat convention).  The paper's
Equation 2 literally sums over *all* ordered pairs including ``i = j``;
pass ``include_self=True`` to match it exactly — the difference is a
constant ``+n`` per threshold and does not change any conclusion.
"""

from __future__ import annotations

import numpy as np

from ... import obs
from ..._validation import as_points, check_thresholds
from ...errors import ParameterError
from ...geometry import BoundingBox
from ...index import GridIndex, KDTree

__all__ = [
    "k_function",
    "ripley_k",
    "ripley_normalize",
    "border_ripley_k",
    "l_function",
    "K_METHODS",
]

K_METHODS = ("auto", "naive", "grid", "kdtree")


def _k_naive(
    pts: np.ndarray,
    thresholds: np.ndarray,
    bbox: BoundingBox | None,
    torus: bool,
    chunk: int,
) -> np.ndarray:
    n = pts.shape[0]
    t2 = thresholds * thresholds
    counts = np.zeros(thresholds.shape[0], dtype=np.int64)
    for start in range(0, n, chunk):
        stop = min(start + chunk, n)
        dx = np.abs(pts[start:stop, 0][:, None] - pts[None, :, 0])
        dy = np.abs(pts[start:stop, 1][:, None] - pts[None, :, 1])
        if torus:
            dx, dy = bbox.torus_displacement(dx, dy)
        d2 = dx * dx + dy * dy
        # Self-pairs land in the first bin; they are subtracted by the caller.
        flat = np.sort(d2, axis=None)
        counts += np.searchsorted(flat, t2, side="right")
    return counts


def k_function(
    points,
    thresholds,
    method: str = "auto",
    bbox: BoundingBox | None = None,
    edge_correction: str = "none",
    include_self: bool = False,
    chunk: int = 1024,
) -> np.ndarray:
    """Raw K-function counts ``K_P(s_d)`` for every threshold.

    Parameters
    ----------
    points:
        ``(n, 2)`` event locations.
    thresholds:
        Sorted non-negative distance thresholds ``s_1 <= ... <= s_D``.
    method:
        ``naive`` (O(n^2)), ``grid``, ``kdtree``, or ``auto`` (grid).
    bbox:
        Study window; required for ``edge_correction="torus"``.
    edge_correction:
        ``"none"`` or ``"torus"`` (naive backend only): distances are
        measured on the torus induced by the window, removing the downward
        boundary bias of raw counts.
    include_self:
        Count the ``i = j`` pairs (paper Equation 2 literal form).
    chunk:
        Row-chunk size of the naive backend.

    Returns
    -------
    ``(D,)`` int64 array of pair counts (ordered pairs, i.e. each
    unordered pair contributes 2).
    """
    pts = as_points(points)
    ts = check_thresholds(thresholds)
    n = pts.shape[0]

    if edge_correction not in ("none", "torus"):
        raise ParameterError(
            f"edge_correction must be 'none' or 'torus', got {edge_correction!r}"
        )
    torus = edge_correction == "torus"
    if torus and bbox is None:
        raise ParameterError("torus edge correction requires bbox")
    if method == "auto":
        method = "grid"

    obs.count("kfunction.points", n)
    obs.count(f"kfunction.method.{method}")

    if method == "naive":
        counts = _k_naive(pts, ts, bbox, torus, int(chunk))
    elif method in ("grid", "kdtree"):
        if torus:
            raise ParameterError(
                "torus edge correction is only supported by method='naive'"
            )
        rmax = float(ts.max())
        if rmax <= 0.0:
            # Only coincident points count; fall back to naive logic cheaply.
            counts = _k_naive(pts, ts, bbox, False, int(chunk))
        else:
            if method == "grid":
                index = GridIndex(pts, cell_size=rmax)
            else:
                index = KDTree(pts)
            counts = index.count_within_thresholds(pts, ts).sum(axis=0)
    else:
        raise ParameterError(
            f"unknown K-function method {method!r}; available: {', '.join(K_METHODS)}"
        )

    # Ordered pairs (self-pairs included) admitted at the largest threshold.
    if ts.shape[0]:
        obs.count("kfunction.pairs_within_smax", int(counts[-1]))

    if not include_self:
        counts = counts - n  # every point matches itself at distance 0
    return counts.astype(np.int64)


def ripley_normalize(counts, n: int, bbox: BoundingBox) -> np.ndarray:
    """Turn ordered pair counts into Ripley's K: ``|A| counts / (n (n-1))``.

    Shared by the batch :func:`ripley_k` and the streaming K-function so
    maintained pair counts and freshly computed ones pass through the exact
    same arithmetic (the streamed-equals-batch contract reduces to the
    integer pair counts being equal).
    """
    if n < 2:
        raise ParameterError("Ripley's K needs at least two points")
    counts = np.asarray(counts)
    return bbox.area * counts.astype(np.float64) / (n * (n - 1))


def ripley_k(
    points,
    thresholds,
    bbox: BoundingBox,
    method: str = "auto",
    edge_correction: str = "none",
) -> np.ndarray:
    """Ripley's K estimate ``|A| / (n (n - 1)) * pair_counts``.

    Under CSR, ``K(s) ~ pi s^2``, which is what :func:`l_function`
    linearises.  Self-pairs are always excluded here.
    """
    pts = as_points(points)
    n = pts.shape[0]
    if n < 2:
        raise ParameterError("ripley_k needs at least two points")
    counts = k_function(
        pts, thresholds, method=method, bbox=bbox, edge_correction=edge_correction
    )
    return ripley_normalize(counts, n, bbox)


def border_ripley_k(
    points,
    thresholds,
    bbox: BoundingBox,
    method: str = "auto",
) -> np.ndarray:
    """Border-corrected (reduced-sample) Ripley K.

    At threshold ``s`` only the points at least ``s`` away from the window
    boundary act as *query* points — their ``s``-discs lie fully inside the
    window, so their neighbour counts are unbiased:

        K_b(s) = (|A| / n) * mean_{i interior(s)} count_i(s).

    Simpler than torus wrapping (and valid for point patterns that are not
    plausibly periodic), at the price of discarding boundary queries;
    thresholds for which no interior point remains yield ``nan``.
    """
    pts = as_points(points)
    ts = check_thresholds(thresholds)
    n = pts.shape[0]
    if n < 2:
        raise ParameterError("border_ripley_k needs at least two points")
    if method == "auto":
        method = "grid"
    if method == "grid":
        rmax = max(float(ts.max()), np.finfo(float).tiny)
        index = GridIndex(pts, cell_size=rmax)
        table = index.count_within_thresholds(pts, ts) - 1  # drop self
    elif method == "kdtree":
        table = KDTree(pts).count_within_thresholds(pts, ts) - 1
    elif method == "naive":
        d2 = np.empty((n, n))
        for start in range(0, n, 1024):
            stop = min(start + 1024, n)
            dx = pts[start:stop, 0][:, None] - pts[None, :, 0]
            dy = pts[start:stop, 1][:, None] - pts[None, :, 1]
            d2[start:stop] = dx * dx + dy * dy
        d_sorted = np.sort(np.sqrt(d2), axis=1)
        table = np.stack(
            [np.searchsorted(row, ts, side="right") for row in d_sorted]
        ) - 1
    else:
        raise ParameterError(
            f"unknown K-function method {method!r}; available: {', '.join(K_METHODS)}"
        )

    boundary_dist = np.minimum.reduce(
        [
            pts[:, 0] - bbox.xmin,
            bbox.xmax - pts[:, 0],
            pts[:, 1] - bbox.ymin,
            bbox.ymax - pts[:, 1],
        ]
    )
    out = np.empty(ts.shape[0], dtype=np.float64)
    for d, s in enumerate(ts):
        interior = boundary_dist >= s
        m = int(interior.sum())
        if m == 0:
            out[d] = np.nan
            continue
        out[d] = bbox.area / n * table[interior, d].mean()
    return out


def l_function(
    points,
    thresholds,
    bbox: BoundingBox,
    method: str = "auto",
    edge_correction: str = "none",
) -> np.ndarray:
    """Besag's L-function ``L(s) = sqrt(K(s) / pi)``.

    Under CSR, ``L(s) ~ s``; plotting ``L(s) - s`` centres the null at zero.
    """
    k = ripley_k(points, thresholds, bbox, method=method, edge_correction=edge_correction)
    return np.sqrt(k / np.pi)
