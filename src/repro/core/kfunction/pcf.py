"""Pair-correlation function g(r) — the K-function's derivative view.

Where Ripley's K is cumulative (pairs within ``s``), the pair-correlation
function is the density of pairs *at* distance ``r``:

    g(r) = K'(r) / (2 pi r),

with ``g = 1`` under CSR, ``g > 1`` at distances where points attract and
``g < 1`` where they repel.  Because it is not cumulative, g localises the
interaction scale far better than K — spatstat plots both, and analysts
read cluster radii off the g curve.

The estimator bins the pair distances and kernel-smooths them (Epanechnikov
smoothing over distance, the spatstat default):

    g(r) = |A| / (2 pi r n (n-1)) * sum_{i != j} k_h(r - d_ij).
"""

from __future__ import annotations

import numpy as np

from ..._validation import as_points, check_positive, check_thresholds
from ...errors import ParameterError
from ...geometry import BoundingBox
from ...index import GridIndex

__all__ = ["pair_correlation"]


def pair_correlation(
    points,
    radii,
    bbox: BoundingBox,
    smoothing: float | None = None,
) -> np.ndarray:
    """Estimate g(r) at the given radii.

    Parameters
    ----------
    points:
        ``(n, 2)`` event locations.
    radii:
        Sorted positive radii at which to evaluate g.
    bbox:
        Study window (provides |A| for the intensity normalisation).
    smoothing:
        Epanechnikov smoothing half-width ``h``; defaults to
        ``0.15 / sqrt(lambda)`` (a spatstat-style intensity-scaled rule).

    Returns
    -------
    ``(len(radii),)`` float array of g estimates.
    """
    pts = as_points(points)
    rs = check_thresholds(radii, name="radii")
    if rs[0] <= 0.0:
        raise ParameterError("radii must be strictly positive (g(0) diverges)")
    n = pts.shape[0]
    if n < 2:
        raise ParameterError("pair correlation needs at least two points")

    lam = n / bbox.area
    if smoothing is None:
        smoothing = 0.15 / np.sqrt(lam)
    else:
        smoothing = check_positive(smoothing, "smoothing")

    # Collect pair distances out to r_max + h via the grid index.
    reach = float(rs.max()) + smoothing
    index = GridIndex(pts, cell_size=reach)
    all_d: list[np.ndarray] = []
    for i in range(n):
        d = index.neighbor_distances(pts[i], reach)
        d = d[d > 0.0]  # drop the self-distance
        if d.size:
            all_d.append(d)
    if not all_d:
        return np.zeros(rs.shape[0], dtype=np.float64)
    dists = np.sort(np.concatenate(all_d))

    # Epanechnikov smoothing: k_h(u) = 0.75/h (1 - (u/h)^2) on |u| <= h.
    out = np.empty(rs.shape[0], dtype=np.float64)
    h = smoothing
    for k, r in enumerate(rs):
        lo = np.searchsorted(dists, r - h, side="left")
        hi = np.searchsorted(dists, r + h, side="right")
        window = dists[lo:hi]
        if window.size == 0:
            out[k] = 0.0
            continue
        u = (window - r) / h
        weights = 0.75 / h * (1.0 - u * u)
        total = float(weights.sum())
        out[k] = bbox.area * total / (2.0 * np.pi * r * n * (n - 1))
    return out
