"""Inhomogeneous K-function: clustering beyond first-order intensity.

The plain K-function confounds two effects: *interaction* between points
and *spatially varying intensity* (more points downtown does not mean
points attract each other).  Baddeley-Møller-Waagepetersen's
inhomogeneous K separates them by weighting each pair by the inverse
intensity at both ends:

    K_inhom(s) = (1 / |A|) * sum_{i != j} I(d_ij <= s) / (lambda(p_i) lambda(p_j)).

Under an inhomogeneous Poisson process (no interaction) it still satisfies
``K_inhom(s) ~ pi s^2`` — so a dataset that looks wildly clustered under
plain Ripley K but matches ``pi s^2`` under K_inhom has *trend, not
contagion*.  The intensity is estimated with the library's own KDV
(leave-one-out corrected) unless the caller supplies it.
"""

from __future__ import annotations

import numpy as np

from ..._validation import as_points, check_positive, check_thresholds
from ...errors import DataError, ParameterError
from ...geometry import BoundingBox
from ...index import GridIndex
from ..kernels import get_kernel

__all__ = ["intensity_at_points", "inhomogeneous_k"]


def intensity_at_points(
    points,
    bbox: BoundingBox,
    bandwidth: float,
    kernel: str = "quartic",
) -> np.ndarray:
    """Leave-one-out kernel intensity estimate at the data points.

    ``lambda(p_i) = sum_{j != i} K(d_ij; b) / integral(K)`` — the
    normalised KDE evaluated at each point with itself removed (keeping
    the self term biases K_inhom towards CSR).
    """
    pts = as_points(points)
    bandwidth = check_positive(bandwidth, "bandwidth")
    kern = get_kernel(kernel)
    radius = kern.support_radius(bandwidth)
    if not np.isfinite(radius):
        radius = kern.effective_radius(bandwidth)
    index = GridIndex(pts, cell_size=max(radius, 1e-12), bbox=bbox)
    norm = kern.integral(bandwidth)
    n = pts.shape[0]
    out = np.empty(n, dtype=np.float64)
    for i in range(n):
        d = index.neighbor_distances(pts[i], radius)
        total = float(kern.evaluate(d, bandwidth).sum())
        # Remove the self term (distance zero).
        total -= float(kern.evaluate(0.0, bandwidth))
        out[i] = max(total, 0.0) / norm
    return out


def inhomogeneous_k(
    points,
    thresholds,
    bbox: BoundingBox,
    intensity=None,
    bandwidth: float | None = None,
    min_intensity_quantile: float = 0.05,
) -> np.ndarray:
    """The inhomogeneous K estimate at every threshold.

    Parameters
    ----------
    points, thresholds, bbox:
        As in :func:`~repro.core.kfunction.ripley_k`.
    intensity:
        Optional per-point intensities ``lambda(p_i)``; computed with
        :func:`intensity_at_points` when omitted (then ``bandwidth`` is
        required).
    bandwidth:
        Intensity-estimation bandwidth for the default estimator.
    min_intensity_quantile:
        Intensities are floored at this quantile of the estimates so a
        point in an empty region cannot blow up the statistic (spatstat
        applies the same kind of clamping).

    Returns
    -------
    ``(D,)`` float array; compare against ``pi s^2``.
    """
    pts = as_points(points)
    ts = check_thresholds(thresholds)
    n = pts.shape[0]
    if n < 2:
        raise ParameterError("inhomogeneous K needs at least two points")

    if intensity is None:
        if bandwidth is None:
            raise ParameterError(
                "provide either per-point intensity or a bandwidth to estimate it"
            )
        intensity = intensity_at_points(pts, bbox, bandwidth)
    else:
        intensity = np.asarray(intensity, dtype=np.float64).ravel()
        if intensity.shape[0] != n:
            raise DataError(f"intensity must have length {n}")
        if np.any(intensity < 0) or not np.all(np.isfinite(intensity)):
            raise DataError("intensity must be finite and non-negative")

    positive = intensity[intensity > 0]
    if positive.size == 0:
        raise DataError("all intensity estimates are zero")
    floor = float(np.quantile(positive, min_intensity_quantile))
    lam = np.maximum(intensity, floor)
    inv = 1.0 / lam

    rmax = float(ts.max())
    index = GridIndex(pts, cell_size=max(rmax, 1e-12))
    out = np.zeros(ts.shape[0], dtype=np.float64)
    for i in range(n):
        idx = index.range_indices(pts[i], max(rmax, 1e-300))
        idx = idx[idx != i]
        if idx.size == 0:
            continue
        d = np.sqrt(((pts[idx] - pts[i]) ** 2).sum(axis=1))
        w = inv[i] * inv[idx]
        order = np.argsort(d)
        d_sorted = d[order]
        w_cum = np.concatenate([[0.0], np.cumsum(w[order])])
        pos = np.searchsorted(d_sorted, ts, side="right")
        out += w_cum[pos]
    return out / bbox.area
