"""Unified analytics requests: one serialisable shape per tool.

The paper frames large-scale geospatial analytics as a *serving*
problem — millions of users issuing repeated KDV / hotspot / K-function
queries over shared datasets — and a service cannot be built on a sprawl
of per-backend keyword arguments.  This module gives every analytic one
frozen, JSON-round-trippable request object:

* :class:`KDVRequest`, :class:`HotspotRequest` and
  :class:`KFunctionRequest` capture exactly the keyword surface of
  :func:`~repro.core.kdv.kde_grid`,
  :meth:`~repro.core.pipeline.HotspotAnalysis.run` and
  :func:`~repro.core.kfunction.k_function_plot`; the kwarg signatures
  keep working unchanged, and each entry point gains a ``from_request``
  constructor that executes a request against a point set;
* ``to_dict()`` / :func:`request_from_dict` round-trip a request through
  plain JSON-safe dicts (the wire format of :mod:`repro.serve`);
* :meth:`AnalyticsRequest.fingerprint` derives a canonical SHA-256 of
  the request — two requests with equal parameters fingerprint
  identically regardless of construction order, which is what lets the
  server coalesce identical concurrent queries and key its caches;
* :func:`plan_request` generalises the PR 8 ``kde_grid`` planner into a
  shape every tool shares: a request plus a dataset resolves to a
  :class:`RequestPlan` (predicted cost, chosen backend, rationale) and
  :func:`execute_request` is the one auditable plan → execute path the
  server dispatches through.

Requests deliberately do **not** carry point coordinates: a request is
the *question*, the dataset is looked up by the execution context (the
server's :class:`~repro.serve.DatasetStore`, or the ``points`` argument
of the library helpers).  That keeps fingerprints cheap and stable and
mirrors the deployed systems the paper surveys, where the dataset lives
server-side and the client ships parameters only.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import math
from dataclasses import dataclass
from typing import ClassVar, Mapping

import numpy as np

from .. import obs, parallel
from ..errors import ParameterError
from ..geometry import BoundingBox

__all__ = [
    "AnalyticsRequest",
    "HotspotRequest",
    "KDVRequest",
    "KFunctionRequest",
    "RequestPlan",
    "REQUEST_KINDS",
    "execute_request",
    "plan_request",
    "request_from_dict",
]

#: Registered request classes by their ``kind`` tag (wire-format dispatch).
_KINDS: dict[str, type] = {}


def _register_kind(cls: type) -> type:
    """Class decorator adding a request class to the wire-format registry."""
    _KINDS[cls.kind] = cls
    return cls


def _as_float_or_none(value, name: str):
    if value is None:
        return None
    try:
        out = float(value)
    except (TypeError, ValueError) as exc:
        raise ParameterError(f"{name} must be a number, got {value!r}") from exc
    if not math.isfinite(out):
        raise ParameterError(f"{name} must be finite, got {value!r}")
    return out


def _as_int_or_none(value, name: str):
    if value is None:
        return None
    try:
        out = int(value)
    except (TypeError, ValueError) as exc:
        raise ParameterError(f"{name} must be an integer, got {value!r}") from exc
    return out


@dataclass(frozen=True)
class AnalyticsRequest:
    """Base of every request: the dataset reference plus shared plumbing.

    ``dataset`` names a server-side dataset (empty for direct library
    use, where the caller supplies ``points`` explicitly).  Subclasses
    add their tool's parameters; all of them are frozen, hashable and
    JSON-round-trippable through :meth:`to_dict` /
    :func:`request_from_dict`.
    """

    kind: ClassVar[str] = ""

    dataset: str = ""

    def to_dict(self) -> dict:
        """JSON-safe dict form: the ``kind`` tag plus every non-None field.

        Tuples become lists (JSON has no tuples); ``from_dict`` converts
        them back, so ``request_from_dict(r.to_dict()) == r`` holds for
        every request.
        """
        out: dict = {"kind": self.kind}
        for field_ in dataclasses.fields(self):
            value = getattr(self, field_.name)
            if value is None:
                continue
            if isinstance(value, tuple):
                value = list(value)
            out[field_.name] = value
        return out

    @classmethod
    def from_dict(cls, payload: Mapping) -> "AnalyticsRequest":
        """Rebuild a request from its :meth:`to_dict` form (see
        :func:`request_from_dict` for the kind-dispatching variant)."""
        if not isinstance(payload, Mapping):
            raise ParameterError(
                f"request payload must be a mapping, got {type(payload).__name__}"
            )
        data = dict(payload)
        kind = data.pop("kind", cls.kind)
        if cls is AnalyticsRequest:
            return request_from_dict({**data, "kind": kind})
        if kind != cls.kind:
            raise ParameterError(
                f"payload kind {kind!r} does not match {cls.__name__} "
                f"(kind {cls.kind!r})"
            )
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ParameterError(
                f"unknown field(s) for {cls.__name__}: "
                f"{', '.join(sorted(unknown))}"
            )
        try:
            return cls(**data)
        except TypeError as exc:
            raise ParameterError(
                f"invalid {cls.__name__} payload: {exc}"
            ) from exc

    def fingerprint(self) -> str:
        """Canonical SHA-256 hex digest of the request.

        Computed over the sorted-key JSON of :meth:`to_dict`, so two
        requests constructed with equal parameters (in any order, from
        kwargs or from a wire dict) fingerprint identically — the
        coalescing and cache key of :mod:`repro.serve`.
        """
        canonical = json.dumps(
            self.to_dict(), sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    def replace(self, **changes) -> "AnalyticsRequest":
        """A copy of the request with ``changes`` applied (frozen-safe)."""
        return dataclasses.replace(self, **changes)

    def resolve_bbox(self, bbox: BoundingBox | None) -> BoundingBox:
        """The study window this request runs in.

        Subclasses carrying an explicit ``bbox`` field override it; the
        base resolution just validates the caller-supplied window.
        """
        if bbox is None:
            raise ParameterError(
                f"{type(self).__name__} needs a bbox (none on the request, "
                "none supplied by the caller)"
            )
        return bbox


@_register_kind
@dataclass(frozen=True)
class KDVRequest(AnalyticsRequest):
    """One :func:`~repro.core.kdv.kde_grid` call as a value object.

    Field-for-field the keyword surface of ``kde_grid`` minus the point
    data: ``bbox`` (optional — defaults to the dataset's window), grid
    ``size``, ``bandwidth``, ``kernel``, ``method`` and the
    method-specific keywords, which under ``method="auto"`` act as
    planning hints exactly as they do on ``kde_grid`` itself.
    """

    kind: ClassVar[str] = "kdv"

    bandwidth: float = 0.0
    size: tuple[int, int] = (256, 192)
    bbox: tuple[float, float, float, float] | None = None
    kernel: str = "quartic"
    method: str = "auto"
    normalize: bool = False
    eps: float | None = None
    delta: float | None = None
    sample: int | None = None
    seed: int | None = None
    index: str | None = None
    tau: float | None = None
    dtype: str | None = None
    workers: int | None = None
    backend: str | None = None

    def __post_init__(self) -> None:
        bandwidth = _as_float_or_none(self.bandwidth, "bandwidth")
        if bandwidth is None or bandwidth <= 0.0:
            raise ParameterError(
                f"bandwidth must be a positive number, got {self.bandwidth!r}"
            )
        object.__setattr__(self, "bandwidth", bandwidth)
        size = tuple(int(v) for v in self.size)
        if len(size) != 2 or size[0] < 1 or size[1] < 1:
            raise ParameterError(f"size must be (nx, ny) positive, got {self.size!r}")
        object.__setattr__(self, "size", size)
        if self.bbox is not None:
            box = tuple(float(v) for v in self.bbox)
            if len(box) != 4:
                raise ParameterError(
                    f"bbox must be (xmin, ymin, xmax, ymax), got {self.bbox!r}"
                )
            object.__setattr__(self, "bbox", box)
        object.__setattr__(self, "eps", _as_float_or_none(self.eps, "eps"))
        object.__setattr__(self, "delta", _as_float_or_none(self.delta, "delta"))
        object.__setattr__(self, "tau", _as_float_or_none(self.tau, "tau"))
        object.__setattr__(self, "sample", _as_int_or_none(self.sample, "sample"))
        object.__setattr__(self, "seed", _as_int_or_none(self.seed, "seed"))
        object.__setattr__(self, "workers", _as_int_or_none(self.workers, "workers"))

    def resolve_bbox(self, bbox: BoundingBox | None) -> BoundingBox:
        """The request's own window when set, else the caller's."""
        if self.bbox is not None:
            return BoundingBox(*self.bbox)
        return super().resolve_bbox(bbox)

    def kwargs(self) -> dict:
        """``kde_grid`` keyword arguments equivalent to this request."""
        return {
            "kernel": self.kernel,
            "method": self.method,
            "normalize": self.normalize,
            "eps": self.eps,
            "delta": self.delta,
            "sample": self.sample,
            "seed": self.seed,
            "index": self.index,
            "tau": self.tau,
            "dtype": self.dtype,
            "workers": self.workers,
            "backend": self.backend,
        }


@_register_kind
@dataclass(frozen=True)
class HotspotRequest(AnalyticsRequest):
    """One :meth:`~repro.core.pipeline.HotspotAnalysis.run` as a value object."""

    kind: ClassVar[str] = "hotspot"

    size: tuple[int, int] = (128, 128)
    kernel: str = "quartic"
    thresholds: tuple[float, ...] | None = None
    n_simulations: int = 99
    quantile: float = 0.95
    min_pixels: int = 2
    seed: int | None = None
    workers: int | None = None
    backend: str | None = None

    def __post_init__(self) -> None:
        size = tuple(int(v) for v in self.size)
        if len(size) != 2 or size[0] < 1 or size[1] < 1:
            raise ParameterError(f"size must be (nx, ny) positive, got {self.size!r}")
        object.__setattr__(self, "size", size)
        if self.thresholds is not None:
            object.__setattr__(
                self, "thresholds", tuple(float(t) for t in self.thresholds)
            )
        object.__setattr__(self, "n_simulations", int(self.n_simulations))
        object.__setattr__(self, "quantile", float(self.quantile))
        object.__setattr__(self, "min_pixels", int(self.min_pixels))
        object.__setattr__(self, "seed", _as_int_or_none(self.seed, "seed"))
        object.__setattr__(self, "workers", _as_int_or_none(self.workers, "workers"))

    def kwargs(self) -> dict:
        """``HotspotAnalysis.run`` keyword arguments for this request."""
        thresholds = (
            np.asarray(self.thresholds, dtype=np.float64)
            if self.thresholds is not None else None
        )
        return {
            "size": self.size,
            "thresholds": thresholds,
            "n_simulations": self.n_simulations,
            "quantile": self.quantile,
            "min_pixels": self.min_pixels,
            "seed": self.seed,
            "workers": self.workers,
            "backend": self.backend,
        }


@_register_kind
@dataclass(frozen=True)
class KFunctionRequest(AnalyticsRequest):
    """One :func:`~repro.core.kfunction.k_function_plot` as a value object.

    ``thresholds`` may be given explicitly; otherwise a ladder of
    ``n_thresholds`` values up to ``max_threshold`` (default a quarter of
    the window diagonal, the library-wide convention) is generated at
    execution time from the resolved bbox.
    """

    kind: ClassVar[str] = "kfunction"

    thresholds: tuple[float, ...] | None = None
    n_thresholds: int = 12
    max_threshold: float | None = None
    n_simulations: int = 99
    method: str = "auto"
    include_self: bool = False
    seed: int | None = None
    workers: int | None = None
    backend: str | None = None

    def __post_init__(self) -> None:
        if self.thresholds is not None:
            object.__setattr__(
                self, "thresholds", tuple(float(t) for t in self.thresholds)
            )
        n_thresholds = int(self.n_thresholds)
        if n_thresholds < 1:
            raise ParameterError(
                f"n_thresholds must be >= 1, got {self.n_thresholds!r}"
            )
        object.__setattr__(self, "n_thresholds", n_thresholds)
        object.__setattr__(
            self, "max_threshold",
            _as_float_or_none(self.max_threshold, "max_threshold"),
        )
        object.__setattr__(self, "n_simulations", int(self.n_simulations))
        object.__setattr__(self, "seed", _as_int_or_none(self.seed, "seed"))
        object.__setattr__(self, "workers", _as_int_or_none(self.workers, "workers"))

    def resolve_thresholds(self, bbox: BoundingBox) -> np.ndarray:
        """Explicit thresholds, or the default ladder over ``bbox``."""
        if self.thresholds is not None:
            return np.asarray(self.thresholds, dtype=np.float64)
        top = self.max_threshold
        if top is None:
            top = 0.25 * bbox.diagonal
        return np.linspace(top / self.n_thresholds, top, self.n_thresholds)

    def kwargs(self) -> dict:
        """``k_function_plot`` keyword arguments (minus thresholds/bbox)."""
        return {
            "n_simulations": self.n_simulations,
            "method": self.method,
            "include_self": self.include_self,
            "seed": self.seed,
            "workers": self.workers,
            "backend": self.backend,
        }


#: Registered request kinds (wire-format tags) in registration order.
REQUEST_KINDS = tuple(_KINDS)


def request_from_dict(payload: Mapping) -> AnalyticsRequest:
    """Rebuild any request from its wire dict, dispatching on ``kind``."""
    if not isinstance(payload, Mapping):
        raise ParameterError(
            f"request payload must be a mapping, got {type(payload).__name__}"
        )
    kind = payload.get("kind")
    cls = _KINDS.get(kind)
    if cls is None:
        raise ParameterError(
            f"unknown request kind {kind!r}; available: {', '.join(_KINDS)}"
        )
    return cls.from_dict(payload)


@dataclass(frozen=True)
class RequestPlan:
    """A resolved request: which backend runs it and what it should cost.

    Generalises :class:`~repro.core.kdv.planner.KDVPlan` beyond
    ``kde_grid``: every request kind resolves to one of these before
    execution, so the server (and any caller) audits one shape.  For KDV
    requests ``detail`` carries the full ``KDVPlan.as_dict()``; for the
    Monte-Carlo tools it carries the simulation/threshold counts the
    estimate was built from.
    """

    kind: str
    method: str
    cost: float
    rationale: str
    workers: int = 1
    detail: Mapping[str, object] | None = None

    def as_dict(self) -> dict:
        """JSON-serialisable form (recorded on ``Diagnostics``)."""
        return {
            "kind": self.kind,
            "method": self.method,
            "cost": self.cost,
            "rationale": self.rationale,
            "workers": self.workers,
            "detail": dict(self.detail) if self.detail is not None else None,
        }


#: Per-ordered-pair slope of the chunked K-function scan, and the
#: per-simulation CSR overhead — order-of-magnitude anchors in the same
#: spirit as the planner's seeded coefficients.
_K_PAIR_SECONDS = 6.0e-9
_K_SIM_BASE = 2.0e-4


def _monte_carlo_cost(n: int, n_simulations: int, n_thresholds: int,
                      workers: int) -> float:
    """Predicted wall seconds of a CSR-envelope K-function run."""
    eff = max(1.0, float(workers) ** 0.85)
    logn = math.log2(max(float(n), 2.0))
    per_curve = _K_SIM_BASE + _K_PAIR_SECONDS * n * logn * n_thresholds
    return per_curve * (n_simulations + 1) / eff


def plan_request(request: AnalyticsRequest, points,
                 bbox: BoundingBox | None = None) -> RequestPlan:
    """Resolve a request against a dataset into a :class:`RequestPlan`.

    KDV requests with ``method="auto"`` delegate to the calibrated
    :func:`~repro.core.kdv.planner.plan_kdv` cost model (sharing its LRU
    plan cache); explicit-method KDV requests and the Monte-Carlo tools
    get closed-form estimates so every request kind reports a predicted
    cost through the same shape.
    """
    from .kdv.base import KDVProblem
    from .kdv.planner import cost_model, plan_kdv

    pts = np.asarray(points, dtype=np.float64)
    n = int(pts.shape[0])
    window = request.resolve_bbox(bbox)

    if isinstance(request, KDVRequest):
        problem = KDVProblem(
            pts, window, request.size, request.bandwidth, request.kernel
        )
        if request.method == "auto":
            hints = {
                k: v for k, v in request.kwargs().items()
                if k in ("eps", "delta", "sample", "seed", "index", "tau",
                         "workers", "backend", "dtype") and v is not None
            }
            plan = plan_kdv(problem, hints)
            return RequestPlan(
                kind=request.kind, method=plan.method, cost=plan.cost,
                rationale=plan.rationale, workers=plan.workers,
                detail=plan.as_dict(),
            )
        workers = parallel.resolve_workers(request.workers)
        features = {
            "n": n, "nx": request.size[0], "ny": request.size[1],
            "patch": float(request.size[0] * request.size[1]),
            "workers": workers, "dtype": request.dtype, "tau": request.tau,
            "eps": request.eps, "sample": request.sample,
        }
        try:
            cost = cost_model().predict(request.method, features)
        except ParameterError:
            cost = 0.0  # adaptive and friends: no model row, execute anyway
        return RequestPlan(
            kind=request.kind, method=request.method, cost=cost,
            rationale=f"explicit method {request.method!r}", workers=workers,
        )

    if isinstance(request, HotspotRequest):
        workers = parallel.resolve_workers(request.workers)
        count = (len(request.thresholds) if request.thresholds is not None
                 else 12)
        cost = _monte_carlo_cost(n, request.n_simulations, count, workers)
        return RequestPlan(
            kind=request.kind, method="envelope+kdv", cost=cost,
            rationale=(
                f"K-envelope ({request.n_simulations} sims x {count} "
                f"thresholds) then KDV at the selected bandwidth"
            ),
            workers=workers,
            detail={"n_simulations": request.n_simulations,
                    "n_thresholds": count},
        )

    if isinstance(request, KFunctionRequest):
        workers = parallel.resolve_workers(request.workers)
        thresholds = request.resolve_thresholds(window)
        cost = _monte_carlo_cost(
            n, request.n_simulations, thresholds.shape[0], workers
        )
        return RequestPlan(
            kind=request.kind, method=request.method, cost=cost,
            rationale=(
                f"CSR envelope: {request.n_simulations} simulations x "
                f"{thresholds.shape[0]} thresholds"
            ),
            workers=workers,
            detail={"n_simulations": request.n_simulations,
                    "n_thresholds": int(thresholds.shape[0])},
        )

    raise ParameterError(
        f"no planner for request kind {type(request).__name__!r}"
    )


def execute_request(request: AnalyticsRequest, points,
                    bbox: BoundingBox | None = None, times=None,
                    weights=None):
    """Plan and run a request against a point set — the one dispatch path.

    Returns the tool's native result (:class:`~repro.raster.DensityGrid`,
    :class:`~repro.core.pipeline.HotspotReport` or
    :class:`~repro.core.kfunction.KFunctionPlot`).  The resolved
    :class:`RequestPlan` is recorded on the active trace under
    ``request.plan``, so the server's per-request diagnostics carry the
    same audit trail ``kde_grid(method="auto")`` always had.

    ``times`` is accepted for signature uniformity with spatiotemporal
    datasets; the current request kinds are purely spatial and ignore it.
    """
    from .kdv import kde_grid
    from .kfunction import k_function_plot
    from .pipeline import HotspotAnalysis

    del times  # spatial request kinds; field reserved for ST requests
    window = request.resolve_bbox(bbox)
    plan = plan_request(request, points, window)

    with obs.task(f"request.{request.kind}") as trace:
        trace.record("request.plan", plan.as_dict())
        obs.count(f"request.kind.{request.kind}")
        if isinstance(request, KDVRequest):
            return kde_grid(
                points, window, request.size, request.bandwidth,
                weights=weights, **request.kwargs(),
            )
        if isinstance(request, HotspotRequest):
            analysis = HotspotAnalysis(points, window, kernel=request.kernel)
            return analysis.run(**request.kwargs())
        if isinstance(request, KFunctionRequest):
            return k_function_plot(
                points, window, request.resolve_thresholds(window),
                **request.kwargs(),
            )
    raise ParameterError(
        f"no executor for request kind {type(request).__name__!r}"
    )
