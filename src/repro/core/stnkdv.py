"""Spatiotemporal *network* KDV: the composition of §2.2's two variants.

Events like traffic accidents are constrained to the road network *and*
time-stamped; their density is

    F(l, t) = sum_i K_net(dist_G(l, p_i); b_s) * K_t(|t - t_i|; b_t),

evaluated on lixels per output frame.  Each frame reuses the sliding-
time-window trick of STKDV (only events within the temporal support
contribute, found by binary search on sorted timestamps) and the per-edge
Dijkstra sharing of NKDV; the temporal kernel enters as per-event weights.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .. import obs
from .._validation import as_timestamps, check_positive
from ..errors import ParameterError
from ..network import Lixelization, NetworkPosition, RoadNetwork, lixelize
from .kernels import Kernel, get_kernel
from .nkdv import nkdv

__all__ = ["STNKDVResult", "stnkdv"]


@dataclass(frozen=True)
class STNKDVResult:
    """Per-frame lixel densities over a road network.

    ``diagnostics`` carries the :class:`repro.obs.Diagnostics` of the
    producing call; ``None`` when tracing was disabled.
    """

    lixels: Lixelization
    times: np.ndarray  # (T,)
    densities: np.ndarray  # (n_lixels, T)
    diagnostics: "obs.Diagnostics | None" = None

    @property
    def n_frames(self) -> int:
        return int(self.densities.shape[1])

    @property
    def n_lixels(self) -> int:
        return int(self.densities.shape[0])

    def frame(self, j: int) -> np.ndarray:
        """Lixel densities of frame ``j``."""
        return self.densities[:, j]

    def hottest_lixel_track(self) -> np.ndarray:
        """Per-frame id of the densest lixel (-1 for empty frames)."""
        out = np.full(self.n_frames, -1, dtype=np.int64)
        for j in range(self.n_frames):
            col = self.densities[:, j]
            if col.max() > 0:
                out[j] = int(np.argmax(col))
        return out

    def total_mass(self) -> np.ndarray:
        return self.densities.sum(axis=0)


def stnkdv(
    network: RoadNetwork,
    events,
    times,
    lixel_length: float,
    frame_times,
    bandwidth_space: float,
    bandwidth_time: float,
    kernel_space: str | Kernel = "quartic",
    kernel_time: str | Kernel = "epanechnikov",
    method: str = "auto",
    workers: int | None = None,
    backend: str | None = None,
) -> STNKDVResult:
    """Spatiotemporal network KDV over the given frame timestamps.

    Parameters
    ----------
    network, events:
        Road network and :class:`~repro.network.NetworkPosition` events.
    times:
        Per-event timestamps.
    lixel_length:
        Lixel size (shared across all frames).
    frame_times:
        Output frame timestamps.
    bandwidth_space, bandwidth_time:
        Network-distance and temporal bandwidths.
    kernel_space, kernel_time:
        Spatial (network) and temporal kernels.
    method:
        NKDV backend per frame (``naive`` / ``shared`` / ``auto``).
    workers, backend:
        Forwarded to the per-frame :func:`~repro.core.nkdv.nkdv` calls
        (see :mod:`repro.parallel`); ``None`` uses the shared defaults.
    """
    if len(events) == 0:
        raise ParameterError("events must not be empty")
    ts_vals = as_timestamps(times, len(events))
    frames = np.asarray(frame_times, dtype=np.float64).ravel()
    if frames.size == 0:
        raise ParameterError("frame_times must contain at least one timestamp")
    b_t = check_positive(bandwidth_time, "bandwidth_time")
    k_t = get_kernel(kernel_time)

    cutoff = k_t.support_radius(b_t)
    if not np.isfinite(cutoff):
        cutoff = k_t.effective_radius(b_t)

    lixels = lixelize(network, lixel_length)
    densities = np.zeros((lixels.n_lixels, frames.size), dtype=np.float64)

    order = np.argsort(ts_vals, kind="stable")
    sorted_events = [events[int(i)] for i in order]
    sorted_ts = ts_vals[order]

    with obs.task("stnkdv") as trace:
        obs.count("stnkdv.events", len(events))
        obs.count("stnkdv.frames", frames.size)
        for j, t in enumerate(frames):
            lo = int(np.searchsorted(sorted_ts, t - cutoff, side="left"))
            hi = int(np.searchsorted(sorted_ts, t + cutoff, side="right"))
            if lo >= hi:
                continue
            weights = k_t.evaluate(np.abs(sorted_ts[lo:hi] - t), b_t)
            active = weights > 0.0
            if not active.any():
                continue
            frame_events = [
                ev for ev, keep in zip(sorted_events[lo:hi], active) if keep
            ]
            result = nkdv(
                network,
                frame_events,
                lixel_length,
                bandwidth_space,
                kernel=kernel_space,
                method=method,
                lixels=lixels,
                event_weights=weights[active],
                workers=workers,
                backend=backend,
            )
            densities[:, j] = result.densities

    return STNKDVResult(
        lixels=lixels, times=frames, densities=densities,
        diagnostics=trace.diagnostics,
    )
