"""Classical CSR tests: quadrat counts and Clark-Evans nearest neighbours.

Before Monte-Carlo K-function envelopes, GIS practice tested complete
spatial randomness with two cheap statistics that every package in the
paper's Table 1 ecosystem (spatstat, CrimeStat, ArcGIS) still ships:

* the **quadrat test** — partition the window into an m x k grid of
  quadrats and chi-square the counts against the uniform expectation;
* the **Clark-Evans index** — the ratio of the observed mean
  nearest-neighbour distance to its CSR expectation ``1 / (2 sqrt(lambda))``;
  R < 1 means clustered, R > 1 dispersed.

Both complement the K-function: they are O(n log n) single-number
screens, useful before paying for envelope simulations.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from .._validation import as_points
from ..errors import DataError, ParameterError
from ..geometry import BoundingBox
from ..index import KDTree

__all__ = ["QuadratTestResult", "quadrat_test", "ClarkEvansResult", "clark_evans"]


def _chi2_sf(x: float, df: int) -> float:
    """Chi-square survival function via the regularised upper gamma.

    Series/continued-fraction evaluation (Numerical Recipes style) — keeps
    the library SciPy-free.
    """
    if x < 0 or df < 1:
        raise ParameterError("chi2_sf needs x >= 0 and df >= 1")
    a = df / 2.0
    x = x / 2.0
    if x == 0.0:
        return 1.0
    if x < a + 1.0:
        # Lower series: P(a, x), return 1 - P.
        term = 1.0 / a
        total = term
        k = a
        for _ in range(500):
            k += 1.0
            term *= x / k
            total += term
            if abs(term) < abs(total) * 1e-15:
                break
        p = total * math.exp(-x + a * math.log(x) - math.lgamma(a))
        return max(0.0, min(1.0, 1.0 - p))
    # Upper continued fraction: Q(a, x).
    tiny = 1e-300
    b = x + 1.0 - a
    c = 1.0 / tiny
    d = 1.0 / b
    h = d
    for i in range(1, 500):
        an = -i * (i - a)
        b += 2.0
        d = an * d + b
        if abs(d) < tiny:
            d = tiny
        c = b + an / c
        if abs(c) < tiny:
            c = tiny
        d = 1.0 / d
        delta = d * c
        h *= delta
        if abs(delta - 1.0) < 1e-15:
            break
    q = h * math.exp(-x + a * math.log(x) - math.lgamma(a))
    return max(0.0, min(1.0, q))


def _normal_sf(z: float) -> float:
    return 0.5 * math.erfc(z / math.sqrt(2.0))


@dataclass(frozen=True)
class QuadratTestResult:
    """Chi-square quadrat test of CSR."""

    counts: np.ndarray  # (mx, my) quadrat counts
    statistic: float
    df: int
    p_value: float

    @property
    def is_csr(self) -> bool:
        """Fails to reject CSR at the 5% level."""
        return self.p_value >= 0.05


def quadrat_test(
    points,
    bbox: BoundingBox,
    nx: int = 5,
    ny: int = 5,
) -> QuadratTestResult:
    """Quadrat-count chi-square test against CSR.

    The window is split into ``nx x ny`` equal quadrats; under CSR each
    holds ``n / (nx ny)`` points in expectation and the index of dispersion
    is chi-square with ``nx ny - 1`` degrees of freedom.
    """
    pts = as_points(points)
    nx, ny = int(nx), int(ny)
    if nx < 1 or ny < 1 or nx * ny < 2:
        raise ParameterError("need at least two quadrats")
    n = pts.shape[0]
    expected = n / (nx * ny)
    if expected < 2.0:
        raise DataError(
            f"only {expected:.2f} points expected per quadrat; use fewer "
            "quadrats (chi-square needs >= ~2 per cell)"
        )

    ix = np.clip(
        ((pts[:, 0] - bbox.xmin) / bbox.width * nx).astype(int), 0, nx - 1
    )
    iy = np.clip(
        ((pts[:, 1] - bbox.ymin) / bbox.height * ny).astype(int), 0, ny - 1
    )
    counts = np.zeros((nx, ny), dtype=np.int64)
    np.add.at(counts, (ix, iy), 1)

    stat = float(((counts - expected) ** 2 / expected).sum())
    df = nx * ny - 1
    return QuadratTestResult(
        counts=counts, statistic=stat, df=df, p_value=_chi2_sf(stat, df)
    )


@dataclass(frozen=True)
class ClarkEvansResult:
    """Clark-Evans nearest-neighbour index with its normal z-test."""

    index: float  # R = observed / expected mean NN distance
    z_score: float
    p_value: float  # two-sided

    @property
    def pattern(self) -> str:
        if self.p_value >= 0.05:
            return "random"
        return "clustered" if self.index < 1.0 else "dispersed"


def clark_evans(
    points,
    bbox: BoundingBox,
    edge_correction: str = "donnelly",
) -> ClarkEvansResult:
    """Clark-Evans aggregation index R.

    ``R = mean_NN / E[mean_NN under CSR]``.  Without edge correction the
    boundary inflates nearest-neighbour distances and biases R upward
    (CSR reads as "dispersed"); Donnelly's (1978) correction — the default,
    and what spatstat's ``clarkevans.test`` uses for rectangles — adjusts
    the expectation and standard error with the window perimeter.
    """
    pts = as_points(points)
    n = pts.shape[0]
    if n < 2:
        raise DataError("Clark-Evans needs at least two points")
    if edge_correction not in ("none", "donnelly"):
        raise ParameterError(
            f"edge_correction must be 'none' or 'donnelly', got {edge_correction!r}"
        )
    tree = KDTree(pts)
    nn = np.empty(n, dtype=np.float64)
    for i in range(n):
        d, _ = tree.knn(pts[i], 2)  # the first hit is the point itself
        nn[i] = d[1]
    observed = float(nn.mean())
    area = bbox.area
    if edge_correction == "donnelly":
        perimeter = 2.0 * (bbox.width + bbox.height)
        expected = 0.5 * math.sqrt(area / n) + (
            0.0514 + 0.041 / math.sqrt(n)
        ) * perimeter / n
        se = math.sqrt(
            0.0703 * area / (n * n) + 0.037 * perimeter * math.sqrt(area / n ** 5)
        )
    else:
        lam = n / area
        expected = 1.0 / (2.0 * math.sqrt(lam))
        se = 0.26136 / math.sqrt(n * lam)
    z = (observed - expected) / se
    return ClarkEvansResult(
        index=observed / expected,
        z_score=float(z),
        p_value=min(1.0, 2.0 * _normal_sf(abs(z))),
    )
