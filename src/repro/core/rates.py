"""Rate smoothing for areal counts (disease/crime mapping substrate).

Raw rates ``count / population`` are wildly unstable where the population
is small — the classic small-numbers problem of epidemiological maps.
Empirical Bayes smoothing shrinks each unit's rate toward a reference
rate, with the shrinkage weight growing as the local population shrinks:

    smoothed_i = w_i * raw_i + (1 - w_i) * prior,
    w_i = s2 / (s2 + m / pop_i),

where ``prior`` is the population-weighted mean rate, ``m`` its mean and
``s2`` the between-unit rate variance (method-of-moments estimates,
Marshall 1991 — the estimator PySAL ships as ``Empirical_Bayes``).

Two flavours:

* :func:`empirical_bayes` — global prior;
* :func:`spatial_empirical_bayes` — each unit's prior comes from its
  spatial-weights neighbourhood, preserving regional trends.
"""

from __future__ import annotations

import numpy as np

from ..errors import DataError
from .autocorrelation.weights import SpatialWeights

__all__ = ["empirical_bayes", "spatial_empirical_bayes"]


def _validate(counts, populations) -> tuple[np.ndarray, np.ndarray]:
    counts = np.asarray(counts, dtype=np.float64).ravel()
    pops = np.asarray(populations, dtype=np.float64).ravel()
    if counts.shape != pops.shape:
        raise DataError("counts and populations must have the same length")
    if counts.size == 0:
        raise DataError("need at least one areal unit")
    if np.any(counts < 0) or not np.all(np.isfinite(counts)):
        raise DataError("counts must be finite and non-negative")
    if np.any(pops <= 0) or not np.all(np.isfinite(pops)):
        raise DataError("populations must be finite and positive")
    return counts, pops


def _moments(counts: np.ndarray, pops: np.ndarray) -> tuple[float, float, float]:
    """(prior rate, mean population, between-unit variance) estimates."""
    total_pop = pops.sum()
    prior = float(counts.sum() / total_pop)
    raw = counts / pops
    mean_pop = float(pops.mean())
    # Marshall's method-of-moments variance (floored at zero).
    s2 = float((pops * (raw - prior) ** 2).sum() / total_pop - prior / mean_pop)
    return prior, mean_pop, max(s2, 0.0)


def empirical_bayes(counts, populations) -> np.ndarray:
    """Globally-smoothed rates (Marshall's empirical Bayes)."""
    counts, pops = _validate(counts, populations)
    prior, mean_pop, s2 = _moments(counts, pops)
    raw = counts / pops
    if s2 == 0.0:
        return np.full_like(raw, prior)
    w = s2 / (s2 + prior / pops)
    return w * raw + (1.0 - w) * prior


def spatial_empirical_bayes(counts, populations, weights: SpatialWeights) -> np.ndarray:
    """Rates shrunk toward each unit's *neighbourhood* rate.

    The prior for unit ``i`` is the pooled rate of ``i`` and its
    spatial-weights neighbours, so smoothing respects regional gradients
    instead of flattening everything toward the global mean.
    """
    counts, pops = _validate(counts, populations)
    if weights.n != counts.shape[0]:
        raise DataError(
            f"weights cover {weights.n} units but {counts.shape[0]} were given"
        )
    raw = counts / pops
    out = np.empty_like(raw)
    for i in range(weights.n):
        cols, _ = weights.row(i)
        ring = np.concatenate([[i], cols])
        c = counts[ring]
        p = pops[ring]
        prior = float(c.sum() / p.sum())
        mean_pop = float(p.mean())
        s2 = max(
            float((p * (c / p - prior) ** 2).sum() / p.sum() - prior / mean_pop),
            0.0,
        )
        if s2 == 0.0:
            out[i] = prior
        else:
            w = s2 / (s2 + prior / pops[i])
            out[i] = w * raw[i] + (1.0 - w) * prior
    return out
