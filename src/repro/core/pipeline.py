"""End-to-end hotspot analysis — the workflow the tutorial walks through.

The paper's §2.1 story: a KDV heatmap alone cannot tell meaningful
hotspots from noise; the K-function plot supplies the significance test
*and* a principled bandwidth (the clustered ``s_d`` range feeds the kernel
bandwidth ``b``).  :class:`HotspotAnalysis` wires the two together:

1. K-function plot against CSR envelopes (Definition 3) — is the dataset
   clustered at all, and at which scales?
2. Bandwidth selection — the median clustered threshold, falling back to
   Scott's rule when nothing is significant.
3. KDV at that bandwidth (fastest exact backend).
4. Hotspot extraction from the density surface.

The result object mirrors what the deployed COVID hotspot maps [6, 8]
surface: a heatmap, a list of ranked hotspots, and a significance verdict.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._validation import as_points, check_in_range, resolve_rng
from ..errors import ParameterError
from ..geometry import BoundingBox
from ..raster import DensityGrid
from .clustering import Hotspot, extract_hotspots
from .kdv import kde_grid, scott_bandwidth
from .kfunction import KFunctionPlot, k_function_plot

__all__ = ["HotspotReport", "HotspotAnalysis"]


@dataclass(frozen=True)
class HotspotReport:
    """Everything the hotspot workflow produced."""

    k_plot: KFunctionPlot
    bandwidth: float
    bandwidth_source: str  # "k-function" or "scott"
    density: DensityGrid
    hotspots: list[Hotspot]
    significant: bool  # clustered at some threshold per the envelope test

    def summary(self) -> str:
        """Human-readable digest (what a dashboard would display)."""
        lines = [
            f"significant clustering: {'yes' if self.significant else 'no'}",
            f"bandwidth: {self.bandwidth:.4g} (from {self.bandwidth_source})",
            f"hotspots found: {len(self.hotspots)}",
        ]
        for rank, spot in enumerate(self.hotspots[:5], start=1):
            lines.append(
                f"  #{rank}: centroid=({spot.centroid[0]:.3g}, "
                f"{spot.centroid[1]:.3g}) mass={spot.mass:.4g} "
                f"area={spot.area:.4g}"
            )
        return "\n".join(lines)


class HotspotAnalysis:
    """Configured hotspot workflow over one dataset.

    Parameters
    ----------
    points:
        ``(n, 2)`` event locations.
    bbox:
        Study window.
    kernel:
        KDV kernel (default quartic, the paper's running example).
    """

    def __init__(self, points, bbox: BoundingBox, kernel: str = "quartic"):
        self.points = as_points(points)
        if not isinstance(bbox, BoundingBox):
            raise ParameterError("bbox must be a BoundingBox")
        self.bbox = bbox
        self.kernel = kernel

    @classmethod
    def from_request(cls, points, request, bbox: BoundingBox | None = None
                     ) -> "HotspotAnalysis":
        """Configure an analysis from a :class:`~repro.core.request.HotspotRequest`.

        ``bbox`` supplies the study window (requests reference datasets,
        not geometry).  Pair with :meth:`run_request` to execute::

            HotspotAnalysis.from_request(pts, req, bbox).run_request(req)
        """
        from .request import HotspotRequest

        if not isinstance(request, HotspotRequest):
            raise ParameterError(
                f"HotspotAnalysis.from_request needs a HotspotRequest, got "
                f"{type(request).__name__}"
            )
        return cls(points, request.resolve_bbox(bbox), kernel=request.kernel)

    def run_request(self, request) -> HotspotReport:
        """Execute :meth:`run` with a request's parameters (kwargs unchanged)."""
        from .request import HotspotRequest

        if not isinstance(request, HotspotRequest):
            raise ParameterError(
                f"run_request needs a HotspotRequest, got "
                f"{type(request).__name__}"
            )
        return self.run(**request.kwargs())

    def default_thresholds(self, count: int = 12) -> np.ndarray:
        """Threshold ladder up to a quarter of the window diagonal."""
        count = int(count)
        if count < 2:
            raise ParameterError(f"threshold count must be >= 2, got {count}")
        top = 0.25 * self.bbox.diagonal
        return np.linspace(top / count, top, count)

    def run(
        self,
        size: tuple[int, int] = (128, 128),
        thresholds=None,
        n_simulations: int = 99,
        quantile: float = 0.95,
        min_pixels: int = 2,
        seed=None,
        workers: int | None = None,
        backend: str | None = None,
    ) -> HotspotReport:
        """Execute the four-step workflow and return the report.

        ``workers``/``backend`` parallelise the CSR envelope simulations
        on the shared executor (:mod:`repro.parallel`); the report is
        bit-identical for every worker count.
        """
        check_in_range(quantile, "quantile", 0.0, 0.999999)
        rng = resolve_rng(seed)
        if thresholds is None:
            thresholds = self.default_thresholds()

        k_plot = k_function_plot(
            self.points,
            self.bbox,
            thresholds,
            n_simulations=n_simulations,
            seed=rng,
            workers=workers,
            backend=backend,
        )
        clustered = k_plot.clustered_thresholds()
        if clustered.size:
            bandwidth = float(np.median(clustered))
            source = "k-function"
        else:
            bandwidth = float(scott_bandwidth(self.points))
            source = "scott"

        density = kde_grid(
            self.points, self.bbox, size, bandwidth, kernel=self.kernel
        )
        hotspots = extract_hotspots(density, quantile=quantile, min_pixels=min_pixels)
        return HotspotReport(
            k_plot=k_plot,
            bandwidth=bandwidth,
            bandwidth_source=source,
            density=density,
            hotspots=hotspots,
            significant=bool(clustered.size),
        )
