"""Grid-accelerated DBSCAN.

The paper's introduction lists spatial clustering [18, 88] among the
quadratic-cost tools, and §2.4 cites the DBSCAN hardness results [48, 49].
This implementation uses the library's uniform grid index so each
eps-neighbourhood query inspects only the 3x3 cell block — the standard
practical acceleration.

Labels follow the scikit-learn convention: ``-1`` marks noise, clusters
are numbered from 0 in discovery order.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from ..._validation import as_points, check_positive
from ...errors import ParameterError
from ...index import GridIndex

__all__ = ["dbscan"]


def dbscan(points, eps: float, min_pts: int = 5) -> np.ndarray:
    """Density-based clustering; returns an (n,) int label array.

    Parameters
    ----------
    points:
        ``(n, 2)`` locations.
    eps:
        Neighbourhood radius.
    min_pts:
        Minimum neighbourhood size (including the point itself) for a core
        point.
    """
    pts = as_points(points)
    eps = check_positive(eps, "eps")
    min_pts = int(min_pts)
    if min_pts < 1:
        raise ParameterError(f"min_pts must be >= 1, got {min_pts}")

    n = pts.shape[0]
    index = GridIndex(pts, cell_size=eps)

    # Pre-compute neighbourhoods once: DBSCAN visits each at most twice.
    neighborhoods = [index.range_indices(pts[i], eps) for i in range(n)]
    core = np.array([nbr.shape[0] >= min_pts for nbr in neighborhoods])

    labels = np.full(n, -1, dtype=np.int64)
    cluster = 0
    for seed in range(n):
        if labels[seed] != -1 or not core[seed]:
            continue
        labels[seed] = cluster
        queue = deque(neighborhoods[seed])
        while queue:
            j = int(queue.popleft())
            if labels[j] == -1:
                labels[j] = cluster
                if core[j]:
                    queue.extend(neighborhoods[j])
        cluster += 1
    return labels
