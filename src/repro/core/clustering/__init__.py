"""Spatial clustering and hotspot extraction."""

from .dbscan import dbscan
from .hotspots import Hotspot, extract_hotspots, label_components

__all__ = ["Hotspot", "dbscan", "extract_hotspots", "label_components"]
