"""Hotspot extraction from density grids.

A hotspot — the "red region" of the paper's Figure 1/Figure 5 heatmaps —
is a connected component of pixels whose density is at or above a chosen
quantile of the surface.  Components are found with a 4-connected flood
fill; each is summarised by its peak, centroid, pixel count and share of
total kernel mass.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from ..._validation import check_in_range
from ...errors import ParameterError
from ...raster import DensityGrid

__all__ = ["Hotspot", "extract_hotspots", "label_components"]


@dataclass(frozen=True)
class Hotspot:
    """One connected high-density region of a density grid."""

    pixels: np.ndarray  # (m, 2) integer pixel indices (i, j)
    centroid: tuple[float, float]  # planar coordinates (mass-weighted)
    peak: tuple[float, float]  # planar coordinates of the hottest pixel
    peak_value: float
    mass: float  # summed density over the component
    area: float  # planar area covered by the component's pixels

    @property
    def n_pixels(self) -> int:
        return int(self.pixels.shape[0])


def label_components(mask: np.ndarray) -> tuple[np.ndarray, int]:
    """4-connected component labels of a boolean mask.

    Returns ``(labels, count)`` with ``-1`` outside the mask and components
    numbered from 0.
    """
    mask = np.asarray(mask, dtype=bool)
    if mask.ndim != 2:
        raise ParameterError(f"mask must be 2-D, got shape {mask.shape}")
    nx, ny = mask.shape
    labels = np.full(mask.shape, -1, dtype=np.int64)
    current = 0
    for si in range(nx):
        for sj in range(ny):
            if not mask[si, sj] or labels[si, sj] != -1:
                continue
            queue = deque([(si, sj)])
            labels[si, sj] = current
            while queue:
                i, j = queue.popleft()
                for di, dj in ((-1, 0), (1, 0), (0, -1), (0, 1)):
                    a, b = i + di, j + dj
                    if 0 <= a < nx and 0 <= b < ny and mask[a, b] and labels[a, b] == -1:
                        labels[a, b] = current
                        queue.append((a, b))
            current += 1
    return labels, current


def extract_hotspots(
    grid: DensityGrid,
    quantile: float = 0.95,
    min_pixels: int = 1,
) -> list[Hotspot]:
    """Hotspots of a density grid, sorted by descending mass.

    Parameters
    ----------
    grid:
        The density surface (KDV output).
    quantile:
        Density quantile defining "hot"; ``0.95`` marks the top 5%.
    min_pixels:
        Components smaller than this are discarded (speckle removal).
    """
    quantile = check_in_range(quantile, "quantile", 0.0, 0.999999)
    min_pixels = int(min_pixels)
    if min_pixels < 1:
        raise ParameterError(f"min_pixels must be >= 1, got {min_pixels}")

    mask = grid.threshold_mask(quantile)
    labels, count = label_components(mask)
    xs, ys = grid.pixel_centers()
    dx, dy = grid.bbox.pixel_size(grid.nx, grid.ny)
    pixel_area = dx * dy

    hotspots: list[Hotspot] = []
    for c in range(count):
        sel = np.argwhere(labels == c)
        if sel.shape[0] < min_pixels:
            continue
        vals = grid.values[sel[:, 0], sel[:, 1]]
        mass = float(vals.sum())
        cx = float((xs[sel[:, 0]] * vals).sum() / mass) if mass > 0 else float(
            xs[sel[:, 0]].mean()
        )
        cy = float((ys[sel[:, 1]] * vals).sum() / mass) if mass > 0 else float(
            ys[sel[:, 1]].mean()
        )
        top = int(np.argmax(vals))
        hotspots.append(
            Hotspot(
                pixels=sel,
                centroid=(cx, cy),
                peak=(float(xs[sel[top, 0]]), float(ys[sel[top, 1]])),
                peak_value=float(vals[top]),
                mass=mass,
                area=float(sel.shape[0] * pixel_area),
            )
        )
    hotspots.sort(key=lambda h: h.mass, reverse=True)
    return hotspots
