"""Shared plumbing for the KDV backends.

Every backend computes the same quantity — the kernel density surface of
Definition 1 evaluated at the centres of an ``nx x ny`` pixel grid — and
returns a :class:`~repro.raster.DensityGrid`.  This module holds the common
argument handling so the algorithmic files contain only their algorithm.
"""

from __future__ import annotations

import numpy as np

from ..._validation import as_points, as_weights, check_positive
from ...errors import ParameterError
from ...geometry import BoundingBox
from ...raster import DensityGrid
from ..kernels import Kernel, get_kernel

__all__ = ["KDVProblem", "effective_radius"]


class KDVProblem:
    """A fully validated KDV instance shared by all backends.

    Parameters
    ----------
    points:
        ``(n, 2)`` event locations.
    bbox:
        Study window; pixels tile this box.
    size:
        ``(nx, ny)`` pixel resolution.
    bandwidth:
        Kernel bandwidth ``b`` of Table 2.
    kernel:
        Kernel name or instance (default the paper's running example,
        quartic).
    weights:
        Optional per-point weights ``w_i`` (Equation 7's reweighted subset);
        default all ones.
    """

    def __init__(
        self,
        points,
        bbox: BoundingBox,
        size: tuple[int, int],
        bandwidth: float,
        kernel: str | Kernel = "quartic",
        weights=None,
    ):
        self.points = as_points(points)
        if not isinstance(bbox, BoundingBox):
            raise ParameterError("bbox must be a BoundingBox")
        self.bbox = bbox
        nx, ny = int(size[0]), int(size[1])
        if nx < 1 or ny < 1:
            raise ParameterError(f"grid size must be positive, got {nx}x{ny}")
        self.nx = nx
        self.ny = ny
        self.bandwidth = check_positive(bandwidth, "bandwidth")
        self.kernel = get_kernel(kernel)
        n = self.points.shape[0]
        if weights is None:
            self.weights = None
        else:
            self.weights = as_weights(weights, n)

    @property
    def n(self) -> int:
        return int(self.points.shape[0])

    def pixel_centers(self) -> tuple[np.ndarray, np.ndarray]:
        return self.bbox.pixel_centers(self.nx, self.ny)

    def total_weight(self) -> float:
        return float(self.n if self.weights is None else self.weights.sum())

    def make_grid(self, values: np.ndarray, diagnostics=None) -> DensityGrid:
        return DensityGrid(self.bbox, values, diagnostics=diagnostics)

    def normalization(self) -> float:
        """Equation 1's ``w`` for a probability density: 1 / (W * integral)."""
        total = self.total_weight()
        if total <= 0.0:
            raise ParameterError("total point weight must be positive to normalise")
        return 1.0 / (total * self.kernel.integral(self.bandwidth))


def effective_radius(kernel: Kernel, bandwidth: float, tail: float = 1e-12) -> float:
    """Cutoff radius for a kernel: exact support, or the ``tail`` quantile.

    Finite-support kernels return their true support radius.  Infinite
    kernels (Gaussian, exponential) return the radius beyond which the
    kernel value is below ``tail``; truncating there bounds the absolute
    density error by ``n * tail``.
    """
    r = kernel.support_radius(bandwidth)
    if np.isfinite(r):
        return float(r)
    return float(kernel.effective_radius(bandwidth, tail))
