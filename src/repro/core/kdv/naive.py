"""Naive KDV: the O(XYn) baseline of Definition 1.

Evaluates the kernel density function at every pixel centre against every
data point.  This is the algorithm "off-the-shelf software packages" use —
the paper's motivating inefficiency — and the exactness reference every
accelerated backend is tested against.

The pixel loop is chunked so memory stays bounded at ``chunk * n`` doubles
regardless of grid size.
"""

from __future__ import annotations

import numpy as np

from ... import obs
from ..._validation import check_positive
from .base import KDVProblem

__all__ = ["kde_naive"]


def kde_naive(problem: KDVProblem, chunk_pixels: int = 4096):
    """Exact KDV by brute-force kernel summation.

    Parameters
    ----------
    problem:
        The validated KDV instance.
    chunk_pixels:
        Number of pixels whose distance rows are materialised at once.

    Returns
    -------
    :class:`~repro.raster.DensityGrid` of raw kernel sums (Equation 1 with
    ``w = 1``; apply :meth:`KDVProblem.normalization` for a density).
    """
    chunk_pixels = int(check_positive(chunk_pixels, "chunk_pixels"))
    xs, ys = problem.pixel_centers()
    gx, gy = np.meshgrid(xs, ys, indexing="ij")
    queries = np.column_stack([gx.ravel(), gy.ravel()])

    pts = problem.points
    weights = problem.weights
    b = problem.bandwidth
    kernel = problem.kernel

    out = np.empty(queries.shape[0], dtype=np.float64)
    for start in range(0, queries.shape[0], chunk_pixels):
        stop = min(start + chunk_pixels, queries.shape[0])
        q = queries[start:stop]
        # Difference form, NOT the expanded |q|^2 + |p|^2 - 2 q.p: the
        # expansion loses ulps to cancellation exactly where d ~ the
        # kernel-support boundary, which silently flips boundary pixels —
        # this is the exactness reference, so it must get those right.
        d2 = (q[:, 0][:, None] - pts[:, 0][None, :]) ** 2 + (
            q[:, 1][:, None] - pts[:, 1][None, :]
        ) ** 2
        vals = kernel.evaluate_sq(d2, b)
        if weights is None:
            out[start:stop] = vals.sum(axis=1)
        else:
            out[start:stop] = vals @ weights
    obs.count("kdv.distance_evals", queries.shape[0] * pts.shape[0])
    return problem.make_grid(out.reshape(problem.nx, problem.ny))
