"""Naive KDV: the O(XYn) baseline of Definition 1.

Evaluates the kernel density function at every pixel centre against every
data point.  This is the algorithm "off-the-shelf software packages" use —
the paper's motivating inefficiency — and the exactness reference every
accelerated backend is tested against.

The pixel loop is chunked so memory stays bounded at ``chunk * n`` doubles
regardless of grid size.
"""

from __future__ import annotations

import numpy as np

from ... import obs
from ..._validation import check_positive
from .base import KDVProblem

__all__ = ["kde_naive"]


def kde_naive(problem: KDVProblem, chunk_pixels: int = 4096):
    """Exact KDV by brute-force kernel summation.

    Parameters
    ----------
    problem:
        The validated KDV instance.
    chunk_pixels:
        Number of pixels whose distance rows are materialised at once.

    Returns
    -------
    :class:`~repro.raster.DensityGrid` of raw kernel sums (Equation 1 with
    ``w = 1``; apply :meth:`KDVProblem.normalization` for a density).
    """
    chunk_pixels = int(check_positive(chunk_pixels, "chunk_pixels"))
    xs, ys = problem.pixel_centers()
    gx, gy = np.meshgrid(xs, ys, indexing="ij")
    queries = np.column_stack([gx.ravel(), gy.ravel()])

    pts = problem.points
    p_sq = np.sum(pts * pts, axis=1)
    weights = problem.weights
    b = problem.bandwidth
    kernel = problem.kernel

    out = np.empty(queries.shape[0], dtype=np.float64)
    for start in range(0, queries.shape[0], chunk_pixels):
        stop = min(start + chunk_pixels, queries.shape[0])
        q = queries[start:stop]
        d2 = (
            np.sum(q * q, axis=1)[:, None]
            + p_sq[None, :]
            - 2.0 * (q @ pts.T)
        )
        np.maximum(d2, 0.0, out=d2)
        vals = kernel.evaluate_sq(d2, b)
        if weights is None:
            out[start:stop] = vals.sum(axis=1)
        else:
            out[start:stop] = vals @ weights
    obs.count("kdv.distance_evals", queries.shape[0] * pts.shape[0])
    return problem.make_grid(out.reshape(problem.nx, problem.ny))
