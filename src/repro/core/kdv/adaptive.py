"""Adaptive-bandwidth KDV (the variable-kernel method of [107]).

Fixed-bandwidth KDV oversmooths dense regions and undersmooths sparse
ones.  The adaptive estimator of Abramson/Silverman — the method the
GPU-accelerated system [107] in the paper's §2.2 survey implements —
gives every point its own bandwidth

    b_i = b0 * (pilot(p_i) / g) ** (-alpha),

where ``pilot`` is a fixed-bandwidth pilot density at the data points,
``g`` is its geometric mean, and ``alpha`` (usually 1/2) is the
sensitivity.  Dense clusters get sharp kernels, sparse outskirts get wide
ones.

The evaluation reuses the cutoff *scatter* strategy: each point scatters
onto the pixel patch of its own support radius, so cost stays
O(sum_i patch_i + XY).
"""

from __future__ import annotations

import numpy as np

from ... import obs
from ..._validation import check_in_range, check_positive
from ...errors import ParameterError
from .base import KDVProblem, effective_radius

__all__ = ["adaptive_bandwidths", "kde_adaptive"]


def adaptive_bandwidths(
    problem: KDVProblem,
    alpha: float = 0.5,
    pilot_bandwidth: float | None = None,
    clip: tuple[float, float] = (0.2, 5.0),
) -> np.ndarray:
    """Per-point bandwidths from a pilot density (Abramson's rule).

    Parameters
    ----------
    problem:
        The KDV instance; ``problem.bandwidth`` is the base bandwidth b0.
    alpha:
        Sensitivity exponent in [0, 1]; 0 reduces to fixed bandwidth,
        0.5 is Abramson's square-root law.
    pilot_bandwidth:
        Bandwidth of the pilot estimate (defaults to b0).
    clip:
        Relative clamp ``(lo, hi)``: each ``b_i`` is kept within
        ``[lo * b0, hi * b0]`` so isolated points cannot blow up the
        support radius.
    """
    alpha = check_in_range(alpha, "alpha", 0.0, 1.0)
    lo, hi = float(clip[0]), float(clip[1])
    if not (0.0 < lo <= 1.0 <= hi):
        raise ParameterError(f"clip must satisfy 0 < lo <= 1 <= hi, got {clip}")
    b0 = problem.bandwidth
    pilot_b = b0 if pilot_bandwidth is None else check_positive(
        pilot_bandwidth, "pilot_bandwidth"
    )

    # Pilot density at the data points (leave-self-in is fine for a pilot).
    kernel = problem.kernel
    pts = problem.points
    n = pts.shape[0]
    radius = effective_radius(kernel, pilot_b)
    from ...index import GridIndex

    index = GridIndex(pts, cell_size=max(radius, 1e-12))
    pilot = np.empty(n, dtype=np.float64)
    for i in range(n):
        d = index.neighbor_distances(pts[i], radius)
        pilot[i] = float(kernel.evaluate(d, pilot_b).sum())
    pilot = np.maximum(pilot, 1e-300)

    log_g = float(np.mean(np.log(pilot)))
    factors = np.exp(-alpha * (np.log(pilot) - log_g))
    factors = np.clip(factors, lo, hi)
    return b0 * factors


def kde_adaptive(
    problem: KDVProblem,
    alpha: float = 0.5,
    pilot_bandwidth: float | None = None,
    clip: tuple[float, float] = (0.2, 5.0),
):
    """Adaptive-bandwidth KDV by per-point scatter.

    Returns a :class:`~repro.raster.DensityGrid` of
    ``sum_i K(dist(q, p_i); b_i)`` with ``b_i`` from
    :func:`adaptive_bandwidths`.  Point weights are honoured.
    """
    bandwidths = adaptive_bandwidths(
        problem, alpha=alpha, pilot_bandwidth=pilot_bandwidth, clip=clip
    )

    xs, ys = problem.pixel_centers()
    dx, dy = problem.bbox.pixel_size(problem.nx, problem.ny)
    x0, y0 = xs[0], ys[0]
    nx, ny = problem.nx, problem.ny
    kernel = problem.kernel
    pts = problem.points
    weights = problem.weights

    values = np.zeros((nx, ny), dtype=np.float64)
    scatters = patch_pixels = 0
    for row in range(pts.shape[0]):
        b = float(bandwidths[row])
        radius = effective_radius(kernel, b)
        px, py = pts[row]
        ix_lo = max(int(np.ceil((px - radius - x0) / dx)), 0)
        ix_hi = min(int(np.floor((px + radius - x0) / dx)), nx - 1)
        iy_lo = max(int(np.ceil((py - radius - y0) / dy)), 0)
        iy_hi = min(int(np.floor((py + radius - y0) / dy)), ny - 1)
        if ix_lo > ix_hi or iy_lo > iy_hi:
            continue
        local_x = xs[ix_lo:ix_hi + 1] - px
        local_y = ys[iy_lo:iy_hi + 1] - py
        d2 = local_x[:, None] ** 2 + local_y[None, :] ** 2
        patch = kernel.evaluate_sq(d2, b)
        if radius < kernel.support_radius(b):
            patch = np.where(d2 <= radius * radius, patch, 0.0)
        if weights is not None:
            patch = patch * weights[row]
        values[ix_lo:ix_hi + 1, iy_lo:iy_hi + 1] += patch
        scatters += 1
        patch_pixels += patch.size
    obs.count("kdv.scatters", scatters)
    obs.count("kdv.patch_pixels", patch_pixels)
    return problem.make_grid(values)
