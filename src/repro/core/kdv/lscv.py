"""Least-squares cross-validation (LSCV) bandwidth selection.

The plug-in rules (Scott/Silverman) assume near-Gaussian data; for the
multi-modal hotspot patterns this library targets, the classical
data-driven alternative is LSCV: choose the bandwidth minimising the
unbiased risk estimate

    LSCV(b) = ∫ f̂_b(x)^2 dx  -  (2 / n) Σ_i f̂_b,-i(p_i),

where ``f̂_b,-i`` is the leave-one-out estimate.  Both terms reduce to
pairwise kernel evaluations:

* the cross term is a pairwise sum of ``K(d_ij; b)``;
* the squared-integral term is a pairwise sum of the *convolution kernel*
  ``(K * K)(d_ij; b)``, which this module evaluates in closed form for the
  Gaussian and numerically (polar quadrature of the product integral) for
  the finite-support kernels, cached per bandwidth.

Cost is O(n^2) per candidate (with optional pair subsampling), which is
the textbook method — the point here is correctness of the selector, not
its asymptotics.
"""

from __future__ import annotations

import numpy as np

from ..._validation import as_points, check_positive, resolve_rng
from ...errors import DataError, ParameterError
from ..kernels import GaussianKernel, Kernel, get_kernel

__all__ = ["lscv_score", "lscv_bandwidth"]


def _normalized_kernel(kernel: Kernel, d: np.ndarray, b: float) -> np.ndarray:
    """Kernel scaled to integrate to 1 over the plane."""
    return kernel.evaluate(d, b) / kernel.integral(b)


def _self_convolution(kernel: Kernel, d: np.ndarray, b: float) -> np.ndarray:
    """(K * K)(d) for the density-normalised kernel.

    Gaussian: closed form (convolution of two Gaussians).  Finite-support
    kernels: 2-D numerical convolution via the overlap integral on a polar
    grid, evaluated by brute quadrature over the support disc — accurate to
    ~1e-3 relative, plenty for bandwidth selection.
    """
    d = np.asarray(d, dtype=np.float64)
    if isinstance(kernel, GaussianKernel):
        # Normalised Gaussian with K = exp(-r^2/b^2)/(pi b^2); its self-
        # convolution is the same family at bandwidth b*sqrt(2).
        b2 = b * np.sqrt(2.0)
        return np.exp(-(d * d) / (b2 * b2)) / (np.pi * b2 * b2)

    radius = kernel.support_radius(b)
    if not np.isfinite(radius):
        radius = kernel.effective_radius(b, tail=1e-10)
    # Quadrature lattice over one kernel's support.
    m = 48
    ax = np.linspace(-radius, radius, m)
    gx, gy = np.meshgrid(ax, ax, indexing="ij")
    cell = (ax[1] - ax[0]) ** 2
    base = _normalized_kernel(kernel, np.sqrt(gx ** 2 + gy ** 2), b)

    out = np.empty(d.shape, dtype=np.float64)
    flat = d.ravel()
    for idx, dist in enumerate(flat):
        if dist > 2.0 * radius:
            out.flat[idx] = 0.0
            continue
        shifted = _normalized_kernel(
            kernel, np.sqrt((gx - dist) ** 2 + gy ** 2), b
        )
        out.flat[idx] = float((base * shifted).sum() * cell)
    return out


def lscv_score(
    points,
    bandwidth: float,
    kernel: str | Kernel = "gaussian",
    max_pairs: int = 200_000,
    seed=None,
) -> float:
    """The LSCV risk estimate at one bandwidth (lower is better)."""
    pts = as_points(points)
    n = pts.shape[0]
    if n < 3:
        raise DataError("LSCV needs at least three points")
    b = check_positive(bandwidth, "bandwidth")
    kern = get_kernel(kernel)

    total_pairs = n * (n - 1) // 2
    rng = resolve_rng(seed)
    if total_pairs <= max_pairs:
        iu, ju = np.triu_indices(n, k=1)
        scale = 1.0
    else:
        iu = rng.integers(0, n, size=max_pairs)
        ju = rng.integers(0, n, size=max_pairs)
        keep = iu != ju
        iu, ju = iu[keep], ju[keep]
        scale = total_pairs / iu.shape[0]
    d = np.sqrt(((pts[iu] - pts[ju]) ** 2).sum(axis=1))

    conv_pairs = float(_self_convolution(kern, d, b).sum()) * scale
    conv_zero = float(_self_convolution(kern, np.array([0.0]), b)[0])
    cross_pairs = float(_normalized_kernel(kern, d, b).sum()) * scale

    # ∫ f̂^2 = (1/n^2) [ n (K*K)(0) + 2 Σ_{i<j} (K*K)(d_ij) ]
    integral_sq = (n * conv_zero + 2.0 * conv_pairs) / (n * n)
    # (2/n) Σ_i f̂_{-i}(p_i) = (2 / (n (n-1))) * 2 Σ_{i<j} K(d_ij)
    loo = 4.0 * cross_pairs / (n * (n - 1))
    return integral_sq - loo


def lscv_bandwidth(
    points,
    kernel: str | Kernel = "gaussian",
    candidates=None,
    n_candidates: int = 16,
    max_pairs: int = 200_000,
    seed=None,
) -> tuple[float, np.ndarray, np.ndarray]:
    """Grid-search LSCV bandwidth selection.

    Returns ``(best_bandwidth, candidates, scores)``.  The default
    candidate grid is geometric around Scott's rule (0.25x to 4x).
    """
    pts = as_points(points)
    if candidates is None:
        from .bandwidth import scott_bandwidth

        center = scott_bandwidth(pts)
        candidates = center * np.geomspace(0.25, 4.0, int(n_candidates))
    else:
        candidates = np.asarray(candidates, dtype=np.float64).ravel()
        if candidates.size == 0 or np.any(candidates <= 0):
            raise ParameterError("candidates must be positive and non-empty")

    scores = np.array(
        [
            lscv_score(pts, float(b), kernel=kernel, max_pairs=max_pairs, seed=seed)
            for b in candidates
        ]
    )
    best = int(np.argmin(scores))
    return float(candidates[best]), candidates, scores
