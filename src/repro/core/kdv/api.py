"""Public KDV entry point: one function, nine interchangeable backends.

``kde_grid`` is the library's Definition 1: colour every pixel of an
``nx x ny`` grid by the kernel density value of Equation 1.  The
``method`` argument selects an acceleration family from §2.2:

============  ====================================================  ============
method        algorithm                                             result
============  ====================================================  ============
``naive``     brute-force O(XYn) gather                             exact
``grid``      support-cutoff scatter                                exact*
``sweep``     SLAM-style sweep line, O(Y(X + n))                    exact
``bounds``    per-pixel kd/ball-tree function approximation         (1±eps)
``dualtree``  parallel tile-vs-node block refinement                |err|<=tau/2
``sampling``  reweighted uniform subset (Equation 7)                prob.
``parallel``  thread-parallel exact gather                          exact
``adaptive``  Abramson/Silverman per-point bandwidths               exact**
``auto``      cost-based planner over the exact family              as chosen
============  ====================================================  ============

(*) for infinite-support kernels, ``grid``/``auto`` truncate below a
``1e-12`` kernel tail; the absolute error is bounded by ``n * 1e-12``.
(**) exact for the *adaptive* estimator, which is a different surface
from the fixed-bandwidth Definition 1.

Per-point ``weights`` are honoured by ``naive``, ``grid``, ``sweep``,
``parallel``, ``adaptive``, ``auto`` and — since the plan/execute
refactor — ``dualtree``, whose kd-tree carries per-node weight sums so
the ``|err| <= tau/2`` guarantee is spent against the total weight.
``bounds`` and ``sampling`` reject weights (their analyses assume unit
mass).  ``dualtree`` and ``parallel`` additionally accept ``workers`` /
``backend`` and route their hot loop through :mod:`repro.parallel` under
the bit-identical worker-invariance contract; ``dualtree`` attaches a
:class:`~repro.core.kdv.dualtree.RefinementStats` record to the result's
``diagnostics.records["refinement"]``.  Every backend reports into
:mod:`repro.obs` when tracing is active, and the task's span tree rides
on the returned grid's ``diagnostics``.

``auto`` resolves through the cost-based planner of
:mod:`repro.core.kdv.planner` — a calibrated per-backend cost model over
``(n, nx*ny, bandwidth/pixel ratio, kernel family, workers)`` picks the
cheapest backend among the exact family (``grid``/``sweep``/``naive``/
``parallel``/``dualtree``), honours the :mod:`repro.parallel` worker
default (``REPRO_WORKERS``), and caches plans by problem signature.  The
decision is recorded on the result's ``diagnostics.records["kdv.plan"]``
(method, rationale, per-backend predicted costs).

Method-specific parameters (``eps``, ``delta``, ``sample``, ``seed``,
``index``, ``tau``, ``workers``, ``backend``, ``dtype``) raise
:class:`~repro.errors.ParameterError` when combined with an *explicit*
method that would silently ignore them.  With ``method="auto"`` they are
planning hints instead: the audit runs against the planner-*resolved*
method, which by construction honours as many of them as any single
backend can (hints no backend can jointly honour are recorded under the
plan's ``dropped`` mapping, never silently swallowed).
"""

from __future__ import annotations

from ... import obs
from ...errors import ParameterError
from ...geometry import BoundingBox
from ...raster import DensityGrid
from ..kernels import Kernel
from .adaptive import kde_adaptive
from .base import KDVProblem
from .bounds import kde_bounds
from .dualtree import kde_dualtree
from .gridcut import kde_gridcut
from .naive import kde_naive
from .parallel import kde_parallel
from .planner import _METHOD_ONLY_PARAMS, plan_kdv
from .sampling import kde_sampling
from .sweep import kde_sweep

__all__ = ["kde_grid", "KDV_METHODS"]

KDV_METHODS = (
    "auto", "naive", "grid", "sweep", "bounds", "dualtree", "sampling", "parallel",
    "adaptive",
)


def kde_grid(
    points,
    bbox: BoundingBox,
    size: tuple[int, int],
    bandwidth: float,
    kernel: str | Kernel = "quartic",
    method: str = "auto",
    weights=None,
    normalize: bool = False,
    eps: float | None = None,
    delta: float | None = None,
    sample: int | None = None,
    index: str | None = None,
    tau: float | None = None,
    dtype=None,
    seed=None,
    workers: int | None = None,
    backend: str | None = None,
) -> DensityGrid:
    """Kernel density visualisation (paper Definition 1).

    Parameters
    ----------
    points:
        ``(n, 2)`` event locations.
    bbox:
        Study window the pixel grid tiles.
    size:
        ``(nx, ny)`` pixel resolution (the paper's X x Y).
    bandwidth:
        Kernel bandwidth ``b``.
    kernel:
        A Table 2 kernel name (``"uniform"``, ``"epanechnikov"``,
        ``"quartic"``, ``"gaussian"``) or one of the extension kernels
        (``"triangular"``, ``"cosine"``, ``"exponential"``), or a
        :class:`~repro.core.kernels.Kernel` instance.
    method:
        Backend selector; see the module table.
    weights:
        Optional per-point weights (all methods except ``bounds`` and
        ``sampling``, which raise).
    normalize:
        When true, scale the raw kernel sums by Equation 1's ``w`` so the
        surface integrates to one.
    eps, delta, sample, seed:
        Guarantee / sample-size parameters for ``bounds`` (``eps`` only)
        and ``sampling``; defaults ``eps=0.05``, ``delta=0.05``.
    workers, backend:
        Worker count and executor backend for ``parallel`` and
        ``dualtree`` (see :mod:`repro.parallel`; ``workers=None`` uses
        the shared default, i.e. ``REPRO_WORKERS`` /
        :func:`repro.parallel.set_default_workers`, falling back to 1).
    index:
        Carrier index for ``bounds``: ``"kdtree"`` (default) or
        ``"balltree"``.
    tau:
        Absolute error budget for ``dualtree`` (per-pixel error
        <= tau/2; default ``1e-3``).
    dtype:
        Accuracy mode of the ``grid`` scatter core: ``"float64"``
        (default when omitted; bit-identical to the historical per-point
        loop) or ``"float32"`` (bucketed kernel-table evaluation under
        the bounded-error contract in ``docs/PERFORMANCE.md``).  Only
        honoured by ``method="grid"``; with ``method="auto"`` it is a
        planning hint (see :mod:`repro.core.kdv.planner`), as are all
        the method-specific keywords above.

    Returns
    -------
    :class:`~repro.raster.DensityGrid` (with a ``RefinementStats`` record
    on ``.diagnostics.records["refinement"]`` when ``method="dualtree"``,
    and a populated span tree whenever tracing is enabled).
    """
    if method not in KDV_METHODS:
        raise ParameterError(
            f"unknown KDV method {method!r}; available: {', '.join(KDV_METHODS)}"
        )
    requested = {
        "eps": eps, "delta": delta, "sample": sample, "seed": seed,
        "workers": workers, "backend": backend, "index": index, "tau": tau,
        "dtype": dtype,
    }
    explicit = {k: v for k, v in requested.items() if v is not None}

    problem = KDVProblem(points, bbox, size, bandwidth, kernel, weights=weights)

    with obs.task("kdv") as trace:
        # Plan -> audit -> execute.  ``auto`` resolves through the
        # planner *first*, so the audit always runs against a concrete
        # backend and only sees the keywords the plan forwards (the
        # pre-PR-8 ordering rejected legal calls like auto + workers=2).
        if method == "auto":
            plan = plan_kdv(problem, explicit)
            method = plan.method
            requested = dict.fromkeys(requested)
            requested.update(plan.kwargs)
            trace.record("kdv.plan", plan.as_dict())
        for name, accepted_by in _METHOD_ONLY_PARAMS.items():
            if requested[name] is not None and method not in accepted_by:
                raise ParameterError(
                    f"{name}= is only honoured by method "
                    f"{' / '.join(repr(m) for m in accepted_by)}, not {method!r}"
                )
        grid = _dispatch(problem, method, **requested)
        values = grid.values
        if normalize:
            values = values * problem.normalization()
        if grid.diagnostics is not None:
            for key, value in grid.diagnostics.records.items():
                trace.record(key, value)

    diagnostics = (trace.diagnostics if trace.diagnostics is not None
                   else grid.diagnostics)
    if normalize or diagnostics is not grid.diagnostics:
        grid = DensityGrid(grid.bbox, values, diagnostics=diagnostics)
    return grid


def _kde_grid_from_request(points, request, bbox=None, weights=None) -> DensityGrid:
    """Run a :class:`~repro.core.request.KDVRequest` on a point set.

    The request-object twin of the kwarg signature (``kde_grid.from_request``):
    ``request.bbox`` wins when set, else the caller's ``bbox``.  Dispatches
    through :func:`~repro.core.request.execute_request`, so the resolved
    :class:`~repro.core.request.RequestPlan` lands on the trace.
    """
    from ..request import KDVRequest, execute_request

    if not isinstance(request, KDVRequest):
        raise ParameterError(
            f"kde_grid.from_request needs a KDVRequest, got "
            f"{type(request).__name__}"
        )
    return execute_request(request, points, bbox=bbox, weights=weights)


kde_grid.from_request = _kde_grid_from_request


def _dispatch(
    problem: KDVProblem,
    method: str,
    eps, delta, sample, seed, workers, backend, index, tau, dtype,
) -> DensityGrid:
    """Run one resolved backend on a validated problem (tracing by caller)."""
    obs.count("kdv.points", problem.n)
    obs.count("kdv.pixels", problem.nx * problem.ny)
    obs.count(f"kdv.method.{method}")

    if method == "naive":
        grid = kde_naive(problem)
    elif method == "grid":
        grid = kde_gridcut(problem, dtype=dtype)
    elif method == "sweep":
        grid = kde_sweep(problem)
    elif method == "bounds":
        grid = kde_bounds(
            problem,
            eps=0.05 if eps is None else eps,
            index="kdtree" if index is None else index,
        )
    elif method == "dualtree":
        grid = kde_dualtree(
            problem,
            tau=1e-3 if tau is None else tau,
            workers=workers,
            backend=backend,
        )
    elif method == "sampling":
        grid = kde_sampling(
            problem,
            eps=0.05 if eps is None else eps,
            delta=0.05 if delta is None else delta,
            sample=sample,
            seed=seed,
        )
    elif method == "parallel":
        grid = kde_parallel(problem, workers=workers, backend=backend)
    else:  # "adaptive" — the method name was validated above
        grid = kde_adaptive(problem)
    return grid
