"""Public KDV entry point: one function, nine interchangeable backends.

``kde_grid`` is the library's Definition 1: colour every pixel of an
``nx x ny`` grid by the kernel density value of Equation 1.  The
``method`` argument selects an acceleration family from §2.2:

============  ====================================================  ============
method        algorithm                                             result
============  ====================================================  ============
``naive``     brute-force O(XYn) gather                             exact
``grid``      support-cutoff scatter                                exact*
``sweep``     SLAM-style sweep line, O(Y(X + n))                    exact
``bounds``    per-pixel kd/ball-tree function approximation         (1±eps)
``dualtree``  parallel tile-vs-node block refinement                |err|<=tau/2
``sampling``  reweighted uniform subset (Equation 7)                prob.
``parallel``  thread-parallel exact gather                          exact
``adaptive``  Abramson/Silverman per-point bandwidths               exact**
``auto``      sweep for polynomial kernels, grid otherwise          exact*
============  ====================================================  ============

(*) for infinite-support kernels, ``grid``/``auto`` truncate below a
``1e-12`` kernel tail; the absolute error is bounded by ``n * 1e-12``.
(**) exact for the *adaptive* estimator, which is a different surface
from the fixed-bandwidth Definition 1.

Per-point ``weights`` are honoured by ``naive``, ``grid``, ``sweep``,
``parallel``, ``adaptive``, ``auto`` and — since the plan/execute
refactor — ``dualtree``, whose kd-tree carries per-node weight sums so
the ``|err| <= tau/2`` guarantee is spent against the total weight.
``bounds`` and ``sampling`` reject weights (their analyses assume unit
mass).  ``dualtree`` and ``parallel`` additionally accept ``workers`` /
``backend`` and route their hot loop through :mod:`repro.parallel` under
the bit-identical worker-invariance contract; ``dualtree`` attaches a
:class:`~repro.core.kdv.dualtree.RefinementStats` record to the result's
``diagnostics.records["refinement"]``.  Every backend reports into
:mod:`repro.obs` when tracing is active, and the task's span tree rides
on the returned grid's ``diagnostics``.

Method-specific parameters (``eps``, ``delta``, ``sample``, ``seed``,
``index``, ``tau``, ``workers``, ``backend``, ``dtype``) raise
:class:`~repro.errors.ParameterError` when combined with a method that
would silently ignore them.
"""

from __future__ import annotations

from ... import obs
from ...errors import ParameterError
from ...geometry import BoundingBox
from ...raster import DensityGrid
from ..kernels import Kernel
from .adaptive import kde_adaptive
from .base import KDVProblem
from .bounds import kde_bounds
from .dualtree import kde_dualtree
from .gridcut import kde_gridcut
from .naive import kde_naive
from .parallel import kde_parallel
from .sampling import kde_sampling
from .sweep import kde_sweep

__all__ = ["kde_grid", "KDV_METHODS"]

KDV_METHODS = (
    "auto", "naive", "grid", "sweep", "bounds", "dualtree", "sampling", "parallel",
    "adaptive",
)

# Which methods honour each method-specific keyword.  ``None`` (the
# argument default) always means "not requested"; an explicit value with
# a method outside its row is an error rather than a silent no-op.
_METHOD_ONLY_PARAMS: dict[str, tuple[str, ...]] = {
    "eps": ("bounds", "sampling"),
    "delta": ("sampling",),
    "sample": ("sampling",),
    "seed": ("sampling",),
    "index": ("bounds",),
    "tau": ("dualtree",),
    "workers": ("parallel", "dualtree"),
    "backend": ("parallel", "dualtree"),
    "dtype": ("grid",),
}


def kde_grid(
    points,
    bbox: BoundingBox,
    size: tuple[int, int],
    bandwidth: float,
    kernel: str | Kernel = "quartic",
    method: str = "auto",
    weights=None,
    normalize: bool = False,
    eps: float | None = None,
    delta: float | None = None,
    sample: int | None = None,
    index: str | None = None,
    tau: float | None = None,
    dtype=None,
    seed=None,
    workers: int | None = None,
    backend: str | None = None,
) -> DensityGrid:
    """Kernel density visualisation (paper Definition 1).

    Parameters
    ----------
    points:
        ``(n, 2)`` event locations.
    bbox:
        Study window the pixel grid tiles.
    size:
        ``(nx, ny)`` pixel resolution (the paper's X x Y).
    bandwidth:
        Kernel bandwidth ``b``.
    kernel:
        A Table 2 kernel name (``"uniform"``, ``"epanechnikov"``,
        ``"quartic"``, ``"gaussian"``) or one of the extension kernels
        (``"triangular"``, ``"cosine"``, ``"exponential"``), or a
        :class:`~repro.core.kernels.Kernel` instance.
    method:
        Backend selector; see the module table.
    weights:
        Optional per-point weights (all methods except ``bounds`` and
        ``sampling``, which raise).
    normalize:
        When true, scale the raw kernel sums by Equation 1's ``w`` so the
        surface integrates to one.
    eps, delta, sample, seed:
        Guarantee / sample-size parameters for ``bounds`` (``eps`` only)
        and ``sampling``; defaults ``eps=0.05``, ``delta=0.05``.
    workers, backend:
        Worker count and executor backend for ``parallel`` and
        ``dualtree`` (see :mod:`repro.parallel`; ``workers=None`` uses
        the shared default, i.e. ``REPRO_WORKERS`` /
        :func:`repro.parallel.set_default_workers`, falling back to 1).
    index:
        Carrier index for ``bounds``: ``"kdtree"`` (default) or
        ``"balltree"``.
    tau:
        Absolute error budget for ``dualtree`` (per-pixel error
        <= tau/2; default ``1e-3``).
    dtype:
        Accuracy mode of the ``grid`` scatter core: ``"float64"``
        (default when omitted; bit-identical to the historical per-point
        loop) or ``"float32"`` (bucketed kernel-table evaluation under
        the bounded-error contract in ``docs/PERFORMANCE.md``).  Only
        honoured by ``method="grid"``.

    Returns
    -------
    :class:`~repro.raster.DensityGrid` (with a ``RefinementStats`` record
    on ``.diagnostics.records["refinement"]`` when ``method="dualtree"``,
    and a populated span tree whenever tracing is enabled).
    """
    if method not in KDV_METHODS:
        raise ParameterError(
            f"unknown KDV method {method!r}; available: {', '.join(KDV_METHODS)}"
        )
    requested = {
        "eps": eps, "delta": delta, "sample": sample, "seed": seed,
        "workers": workers, "backend": backend, "index": index, "tau": tau,
        "dtype": dtype,
    }
    for name, accepted_by in _METHOD_ONLY_PARAMS.items():
        if requested[name] is not None and method not in accepted_by:
            raise ParameterError(
                f"{name}= is only honoured by method "
                f"{' / '.join(repr(m) for m in accepted_by)}, not {method!r}"
            )

    problem = KDVProblem(points, bbox, size, bandwidth, kernel, weights=weights)

    with obs.task("kdv") as trace:
        grid = _dispatch(
            problem, method, eps=eps, delta=delta, sample=sample, seed=seed,
            workers=workers, backend=backend, index=index, tau=tau,
            dtype=dtype,
        )
        values = grid.values
        if normalize:
            values = values * problem.normalization()
        if grid.diagnostics is not None:
            for key, value in grid.diagnostics.records.items():
                trace.record(key, value)

    diagnostics = (trace.diagnostics if trace.diagnostics is not None
                   else grid.diagnostics)
    if normalize or diagnostics is not grid.diagnostics:
        grid = DensityGrid(grid.bbox, values, diagnostics=diagnostics)
    return grid


def _dispatch(
    problem: KDVProblem,
    method: str,
    eps, delta, sample, seed, workers, backend, index, tau, dtype,
) -> DensityGrid:
    """Run one backend on a validated problem (tracing handled by caller)."""
    obs.count("kdv.points", problem.n)
    obs.count("kdv.pixels", problem.nx * problem.ny)

    if method == "auto":
        has_poly = problem.kernel.poly_coeffs(problem.bandwidth) is not None
        dx, dy = problem.bbox.pixel_size(problem.nx, problem.ny)
        # Sub-pixel bandwidths stress the sweep's polynomial cancellation
        # and each point touches O(1) pixels anyway, so scatter wins there.
        sub_pixel = problem.bandwidth < 2.0 * max(dx, dy)
        method = "sweep" if has_poly and not sub_pixel else "grid"

    obs.count(f"kdv.method.{method}")

    if method == "naive":
        grid = kde_naive(problem)
    elif method == "grid":
        grid = kde_gridcut(problem, dtype=dtype)
    elif method == "sweep":
        grid = kde_sweep(problem)
    elif method == "bounds":
        grid = kde_bounds(
            problem,
            eps=0.05 if eps is None else eps,
            index="kdtree" if index is None else index,
        )
    elif method == "dualtree":
        grid = kde_dualtree(
            problem,
            tau=1e-3 if tau is None else tau,
            workers=workers,
            backend=backend,
        )
    elif method == "sampling":
        grid = kde_sampling(
            problem,
            eps=0.05 if eps is None else eps,
            delta=0.05 if delta is None else delta,
            sample=sample,
            seed=seed,
        )
    elif method == "parallel":
        grid = kde_parallel(problem, workers=workers, backend=backend)
    else:  # "adaptive" — the method name was validated above
        grid = kde_adaptive(problem)
    return grid
