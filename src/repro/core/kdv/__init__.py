"""Kernel density visualisation (KDV) with the paper's four method families."""

from .adaptive import adaptive_bandwidths, kde_adaptive
from .anisotropic import kde_grid_anisotropic
from .api import KDV_METHODS, kde_grid
from .bandwidth import scott_bandwidth, silverman_bandwidth
from .lscv import lscv_bandwidth, lscv_score
from .base import KDVProblem, effective_radius
from .bounds import kde_bounds, kde_point_bounds
from .dualtree import RefinementStats, kde_dualtree
from .gridcut import kde_gridcut
from .naive import kde_naive
from .parallel import kde_parallel
from .planner import (
    CostModel,
    KDVPlan,
    calibrate,
    clear_plan_cache,
    plan_cache_info,
    plan_kdv,
)
from .sampling import kde_sampling, sample_size
from .streaming import KDVAccumulator, MultiSurfaceAccumulator
from .sweep import kde_sweep

__all__ = [
    "CostModel",
    "KDVAccumulator",
    "KDVPlan",
    "MultiSurfaceAccumulator",
    "KDVProblem",
    "RefinementStats",
    "calibrate",
    "clear_plan_cache",
    "plan_cache_info",
    "plan_kdv",
    "adaptive_bandwidths",
    "kde_adaptive",
    "lscv_bandwidth",
    "lscv_score",
    "KDV_METHODS",
    "effective_radius",
    "kde_bounds",
    "kde_dualtree",
    "kde_grid",
    "kde_grid_anisotropic",
    "kde_gridcut",
    "kde_naive",
    "kde_parallel",
    "kde_point_bounds",
    "kde_sampling",
    "kde_sweep",
    "sample_size",
    "scott_bandwidth",
    "silverman_bandwidth",
]
