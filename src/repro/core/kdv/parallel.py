"""Thread-parallel KDV: the paper's parallel/hardware method family.

The GPU/FPGA methods the tutorial surveys [50, 67, 105, 107] are
represented here by a CPU thread pool: the pixel grid is split into row
bands and each band is evaluated independently with the exact naive
formula.  NumPy releases the GIL inside its BLAS-backed matrix products,
so threads deliver genuine parallel speedup without pickling overhead.

The same worker decomposition also composes with sampling (sample first,
then parallel evaluation), mirroring the combined methods in [110].
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor

import numpy as np

from ..._validation import check_positive
from .base import KDVProblem

__all__ = ["kde_parallel"]


def _band(problem: KDVProblem, xs: np.ndarray, ys: np.ndarray, j_lo: int, j_hi: int) -> np.ndarray:
    """Exact kernel sums for pixel rows ``j_lo:j_hi`` (a y-band)."""
    pts = problem.points
    p_sq = np.sum(pts * pts, axis=1)
    gx, gy = np.meshgrid(xs, ys[j_lo:j_hi], indexing="ij")
    q = np.column_stack([gx.ravel(), gy.ravel()])
    d2 = np.sum(q * q, axis=1)[:, None] + p_sq[None, :] - 2.0 * (q @ pts.T)
    np.maximum(d2, 0.0, out=d2)
    vals = problem.kernel.evaluate_sq(d2, problem.bandwidth)
    if problem.weights is None:
        summed = vals.sum(axis=1)
    else:
        summed = vals @ problem.weights
    return summed.reshape(len(xs), j_hi - j_lo)


def kde_parallel(problem: KDVProblem, workers: int = 4):
    """Exact KDV evaluated by ``workers`` threads over row bands."""
    workers = int(check_positive(workers, "workers"))
    xs, ys = problem.pixel_centers()
    ny = problem.ny
    bands = min(workers * 4, ny)  # oversplit for load balance
    edges = np.linspace(0, ny, bands + 1).astype(int)
    spans = [(int(a), int(b)) for a, b in zip(edges[:-1], edges[1:]) if b > a]

    values = np.empty((problem.nx, ny), dtype=np.float64)
    if workers == 1:
        for j_lo, j_hi in spans:
            values[:, j_lo:j_hi] = _band(problem, xs, ys, j_lo, j_hi)
    else:
        with ThreadPoolExecutor(max_workers=workers) as pool:
            futures = {
                pool.submit(_band, problem, xs, ys, j_lo, j_hi): (j_lo, j_hi)
                for j_lo, j_hi in spans
            }
            for future, (j_lo, j_hi) in futures.items():
                values[:, j_lo:j_hi] = future.result()
    return problem.make_grid(values)
