"""Thread-parallel KDV: the paper's parallel/hardware method family.

The GPU/FPGA methods the tutorial surveys [50, 67, 105, 107] are
represented here by CPU worker lanes: the pixel grid is split into row
bands and each band is evaluated independently with the exact naive
formula.  NumPy releases the GIL inside its BLAS-backed matrix products,
so the default ``thread`` backend delivers genuine parallel speedup
without pickling overhead.

The band decomposition rides on the shared executor
(:mod:`repro.parallel`) — the same layer that runs the Monte-Carlo
envelopes and permutation tests — instead of a private thread pool.
Each band writes a disjoint output slice, so the result is exactly the
serial evaluation for every worker count and backend.

The same worker decomposition also composes with sampling (sample first,
then parallel evaluation), mirroring the combined methods in [110].
"""

from __future__ import annotations

import numpy as np

from ... import obs
from ..._validation import check_positive
from ...parallel import parallel_starmap
from .base import KDVProblem

__all__ = ["kde_parallel"]


def _band(problem: KDVProblem, xs: np.ndarray, ys: np.ndarray, j_lo: int, j_hi: int) -> np.ndarray:
    """Exact kernel sums for pixel rows ``j_lo:j_hi`` (a y-band)."""
    pts = problem.points
    gx, gy = np.meshgrid(xs, ys[j_lo:j_hi], indexing="ij")
    q = np.column_stack([gx.ravel(), gy.ravel()])
    # Difference form (see kde_naive): the expanded form loses ulps at
    # kernel-support boundaries.
    d2 = (q[:, 0][:, None] - pts[:, 0][None, :]) ** 2 + (
        q[:, 1][:, None] - pts[:, 1][None, :]
    ) ** 2
    # Total over all bands is nx*ny*n — invariant even though the band
    # split itself follows the requested worker count.
    obs.count("kdv.distance_evals", d2.size)
    vals = problem.kernel.evaluate_sq(d2, problem.bandwidth)
    if problem.weights is None:
        summed = vals.sum(axis=1)
    else:
        summed = vals @ problem.weights
    return summed.reshape(len(xs), j_hi - j_lo)


def kde_parallel(problem: KDVProblem, workers: int | None = 4, backend: str | None = None):
    """Exact KDV evaluated over row bands by the shared executor.

    ``workers=None`` uses the :mod:`repro.parallel` default
    (``REPRO_WORKERS`` or 1); the historical default of 4 keeps the
    ``method="parallel"`` backend parallel out of the box.
    """
    if workers is not None:
        workers = int(check_positive(workers, "workers"))
    xs, ys = problem.pixel_centers()
    ny = problem.ny
    # Oversplit for load balance; the split depends only on the requested
    # worker count, and bands write disjoint slices, so any executor
    # configuration reproduces the serial result exactly.
    lanes = workers if workers is not None else 4
    bands = min(lanes * 4, ny)
    edges = np.linspace(0, ny, bands + 1).astype(int)
    spans = [(int(a), int(b)) for a, b in zip(edges[:-1], edges[1:]) if b > a]

    with obs.span("kdv.bands"):
        results = parallel_starmap(
            _band,
            [(problem, xs, ys, j_lo, j_hi) for j_lo, j_hi in spans],
            workers=workers,
            backend=backend,
        )
    values = np.empty((problem.nx, ny), dtype=np.float64)
    for (j_lo, j_hi), band in zip(spans, results):
        values[:, j_lo:j_hi] = band
    return problem.make_grid(values)
