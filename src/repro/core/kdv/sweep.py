"""Sweep-line KDV: the paper's computational-sharing method (SLAM [32]).

For the finite-support kernels that are polynomials in the squared
distance (uniform, Epanechnikov, quartic — exactly the kernel class the
paper says SLAM-style algorithms support), the kernel sum along one pixel
row is a *piecewise polynomial in x*:

    K(q, p) = sum_k c_k * (d^2)^k,    d^2 = (x - px)^2 + dy^2

so each point contributes a polynomial of degree ``2k_max`` in ``x`` over
the x-interval where it is within the support radius.  Sweeping a row from
left to right, we maintain the *aggregate polynomial coefficients* of all
currently active points: a point adds its expanded coefficients when the
sweep enters its interval and subtracts them on exit.  Between events the
aggregate polynomial is evaluated on the pixel lattice in one vectorised
pass.

Complexity: each of the ``Y`` rows costs O(X + n_band) where ``n_band`` is
the number of points within the bandwidth of the row — the O(Y(X + n))
bound the paper quotes for the state of the art [32].

Numerical note: coefficients are expanded around the *row centre* so the
polynomial argument stays O(window width / 2); with quartic kernels this
keeps relative error near 1e-9 on realistic windows (tests compare against
the naive backend at 1e-6).
"""

from __future__ import annotations

import numpy as np

from ... import obs
from ...errors import ParameterError
from .base import KDVProblem

__all__ = ["kde_sweep"]


def _expanded_coeffs(pu: np.ndarray, a: np.ndarray, c: np.ndarray, w) -> np.ndarray:
    """Per-point polynomial coefficients in the (centred) pixel coordinate.

    ``pu`` are centred point x-coordinates, ``a = dy^2`` their squared row
    offsets, ``c`` the kernel's coefficients in d^2 (ascending), and ``w``
    per-point weights (scalar 1.0 or an array).  Returns an ``(m, deg+1)``
    array of ascending coefficients, where ``deg = 2 * (len(c) - 1)``.

    The expansion is hand-coded for the three supported degrees; these are
    the only finite-support polynomial kernels in the library.
    """
    m = pu.shape[0]
    k_max = len(c) - 1
    out = np.zeros((m, 2 * k_max + 1), dtype=np.float64)
    if k_max == 0:  # uniform: constant c0
        out[:, 0] = c[0]
    elif k_max == 1:  # epanechnikov: c0 + c1 * ((x - pu)^2 + a)
        bq = pu * pu + a
        out[:, 0] = c[0] + c[1] * bq
        out[:, 1] = -2.0 * c[1] * pu
        out[:, 2] = c[1]
    elif k_max == 2:  # quartic: c0 + c1*q + c2*q^2 with q = (x - pu)^2 + a
        bq = pu * pu + a
        out[:, 0] = c[0] + c[1] * bq + c[2] * bq * bq
        out[:, 1] = -2.0 * pu * (c[1] + 2.0 * c[2] * bq)
        out[:, 2] = c[1] + c[2] * (4.0 * pu * pu + 2.0 * bq)
        out[:, 3] = -4.0 * c[2] * pu
        out[:, 4] = c[2]
    else:  # pragma: no cover - guarded by kde_sweep
        raise ParameterError(f"unsupported polynomial degree {k_max}")
    if not np.isscalar(w) or w != 1.0:
        out *= np.asarray(w, dtype=np.float64).reshape(-1, 1)
    return out


def kde_sweep(problem: KDVProblem):
    """Exact sweep-line KDV for polynomial finite-support kernels.

    Raises :class:`~repro.errors.ParameterError` for kernels without a
    squared-distance polynomial form (Gaussian etc.) — use the bound-based
    or cutoff backends for those, as the paper's §2.4 discussion notes.
    """
    coeffs = problem.kernel.poly_coeffs(problem.bandwidth)
    if coeffs is None:
        raise ParameterError(
            f"kernel {problem.kernel.name!r} is not polynomial in the squared "
            "distance; the sweep-line backend supports uniform, epanechnikov "
            "and quartic kernels"
        )
    coeffs = np.asarray(coeffs, dtype=np.float64)
    deg = 2 * (coeffs.shape[0] - 1)

    xs, ys = problem.pixel_centers()
    dx, _ = problem.bbox.pixel_size(problem.nx, problem.ny)
    nx, ny = problem.nx, problem.ny
    b = problem.bandwidth
    b2 = b * b

    pts = problem.points
    weights = problem.weights

    # Sort points by y so each row's bandwidth band is a contiguous slice.
    order = np.argsort(pts[:, 1], kind="stable")
    sx = pts[order, 0]
    sy = pts[order, 1]
    sw = None if weights is None else weights[order]

    x_mid = 0.5 * (xs[0] + xs[-1])
    xc = xs - x_mid  # centred pixel coordinates
    # Power matrix for vectorised polynomial evaluation: (nx, deg+1).
    xpow = np.ones((nx, deg + 1), dtype=np.float64)
    for k in range(1, deg + 1):
        xpow[:, k] = xpow[:, k - 1] * xc

    values = np.empty((nx, ny), dtype=np.float64)
    lo = 0
    hi = 0
    n = sx.shape[0]
    band_points = 0
    for j in range(ny):
        y = ys[j]
        # Advance the y-band [y - b, y + b] over the y-sorted points.
        lo = np.searchsorted(sy, y - b, side="left")
        hi = np.searchsorted(sy, y + b, side="right")
        if lo >= hi:
            values[:, j] = 0.0
            continue
        dyv = sy[lo:hi] - y
        dy2 = dyv * dyv
        inside = dy2 <= b2
        if not inside.all():
            dy2 = dy2[inside]
        if dy2.size == 0:
            values[:, j] = 0.0
            continue
        px = (sx[lo:hi][inside] if not inside.all() else sx[lo:hi]) - x_mid
        w = 1.0 if sw is None else (sw[lo:hi][inside] if not inside.all() else sw[lo:hi])

        # Active x-interval of each point: |x - px| <= rx.
        rx = np.sqrt(b2 - dy2)
        i_in = np.ceil((px - rx - xc[0]) / dx - 1e-12).astype(np.int64)
        i_out = np.floor((px + rx - xc[0]) / dx + 1e-12).astype(np.int64) + 1
        keep = (i_in < nx) & (i_out > 0) & (i_in < i_out)
        if not keep.all():
            i_in, i_out, px, dy2 = i_in[keep], i_out[keep], px[keep], dy2[keep]
            if not np.isscalar(w):
                w = w[keep]
        if px.shape[0] == 0:
            values[:, j] = 0.0
            continue
        np.clip(i_in, 0, nx, out=i_in)
        np.clip(i_out, 0, nx, out=i_out)

        band_points += px.shape[0]
        point_coeffs = _expanded_coeffs(px, dy2, coeffs, w)

        # Delta table: +coeffs at entry pixel, -coeffs at exit pixel;
        # prefix-summing along x yields the active aggregate at every pixel.
        delta = np.zeros((nx + 1, deg + 1), dtype=np.float64)
        np.add.at(delta, i_in, point_coeffs)
        np.subtract.at(delta, i_out, point_coeffs)
        active = np.cumsum(delta[:nx], axis=0)

        values[:, j] = np.einsum("ik,ik->i", active, xpow)
    obs.count("kdv.rows_swept", ny)
    obs.count("kdv.band_points", band_points)
    return problem.make_grid(values)
