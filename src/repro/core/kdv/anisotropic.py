"""Axis-aligned anisotropic KDV.

Urban phenomena often spread differently along the two axes (a coastal
strip city, events along an avenue grid).  With per-axis bandwidths
``(b_x, b_y)`` the kernel argument becomes the *scaled* distance

    d'^2 = ((q_x - p_x) / b_x)^2 + ((q_y - p_y) / b_y)^2,

evaluated at bandwidth 1.  Because the scaling is axis-aligned, it maps
pixel lattices to pixel lattices — so the whole computation reduces to an
isotropic KDV on coordinates divided by ``(b_x, b_y)``, and every backend
(sweep included) is reused unchanged.  Values are returned on the original
lattice.
"""

from __future__ import annotations

import numpy as np

from ..._validation import as_points, check_positive
from ...geometry import BoundingBox
from ...raster import DensityGrid
from ..kernels import Kernel
from .api import kde_grid

__all__ = ["kde_grid_anisotropic"]

def kde_grid_anisotropic(
    points,
    bbox: BoundingBox,
    size: tuple[int, int],
    bandwidths: tuple[float, float],
    kernel: str | Kernel = "quartic",
    method: str = "auto",
    **kwargs,
) -> DensityGrid:
    """KDV with separate x/y bandwidths (axis-aligned anisotropy).

    Parameters are those of :func:`~repro.core.kdv.kde_grid` except
    ``bandwidths = (b_x, b_y)``.  The result's values equal
    ``sum_i K(d'_i; 1)`` with the scaled distance above, on the original
    pixel lattice and window.
    """
    b_x = check_positive(bandwidths[0], "bandwidths[0]")
    b_y = check_positive(bandwidths[1], "bandwidths[1]")
    pts = as_points(points)

    scaled_pts = pts / np.array([b_x, b_y])
    scaled_bbox = BoundingBox(
        bbox.xmin / b_x, bbox.ymin / b_y, bbox.xmax / b_x, bbox.ymax / b_y
    )
    grid = kde_grid(
        scaled_pts, scaled_bbox, size, 1.0, kernel=kernel, method=method, **kwargs
    )
    # Same values, original window: scaling is a bijection between lattices.
    return DensityGrid(bbox, grid.values)
