"""Bandwidth selection rules.

The paper points out (§2.1) that the K-function's "clustered" threshold
range is a principled source of KDV bandwidths; that route is implemented
by :meth:`repro.core.pipeline.HotspotAnalysis`.  This module provides the
classical plug-in rules as the convenient default.

All rules return bandwidths in the *paper's* Gaussian convention
(``K = exp(-d^2 / b^2)``, i.e. ``b = sqrt(2) * sigma``) so the same number
can be passed to any kernel in Table 2.
"""

from __future__ import annotations

import numpy as np

from ..._validation import as_points
from ...errors import DataError

__all__ = ["scott_bandwidth", "silverman_bandwidth"]

_SQRT2 = float(np.sqrt(2.0))


def _pooled_sigma(points) -> tuple[float, int]:
    pts = as_points(points)
    n = pts.shape[0]
    if n < 2:
        raise DataError("bandwidth rules need at least two points")
    var = pts.var(axis=0, ddof=1)
    sigma = float(np.sqrt(var.mean()))
    if sigma == 0.0:
        raise DataError("all points are identical; bandwidth is undefined")
    return sigma, n


def scott_bandwidth(points) -> float:
    """Scott's rule for d = 2: ``sigma * n^(-1/6)``, in the b-convention."""
    sigma, n = _pooled_sigma(points)
    return _SQRT2 * sigma * n ** (-1.0 / 6.0)


def silverman_bandwidth(points) -> float:
    """Silverman's rule for d = 2: ``(4 / (d + 2))^(1/(d+4)) sigma n^(-1/6)``.

    For d = 2 the prefactor is exactly 1, so the rule coincides with
    Scott's; both are provided because user code refers to them by name.
    """
    sigma, n = _pooled_sigma(points)
    return _SQRT2 * sigma * n ** (-1.0 / 6.0)
