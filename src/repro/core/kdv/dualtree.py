"""Dual-tree KDV: block function approximation with an absolute guarantee.

The per-pixel bound refinement of :mod:`.bounds` answers one pixel at a
time; the dual-tree formulation (the structure actually used by QUAD [25]
and the classic Gray-Moore dual-tree KDE [51, 52]) refines *pixel tiles*
against *kd-tree nodes* simultaneously:

* for a (tile, node) pair, the distance between the tile's rectangle and
  the node's bounding box brackets every pixel-point distance, so

      node.count * K(dmax)  <=  contribution to each pixel  <=  node.count * K(dmin);

* if the per-point gap ``K(dmin) - K(dmax)`` is at most ``tau / n``, the
  midpoint is added to the whole tile at once — each pixel's total error
  is then at most ``tau / 2`` because the accepted nodes partition the
  point set;
* otherwise the pair recurses on whichever side is wider (tile split or
  node split); leaf-leaf pairs are evaluated exactly.

The guarantee is *absolute* (``|F̂(q) - F(q)| <= tau/2`` for every pixel),
which composes cleanly across tiles; pass ``tau=0`` for exact evaluation.
Works with every kernel in the library.
"""

from __future__ import annotations

import numpy as np

from ..._validation import check_non_negative
from ...errors import ParameterError
from ...index import KDTree
from .base import KDVProblem

__all__ = ["kde_dualtree"]

_TILE_LEAF = 8  # tiles at most this many pixels wide are scanned exactly


def _box_distance_bounds(
    tx0: float, tx1: float, ty0: float, ty1: float,
    nx0: float, nx1: float, ny0: float, ny1: float,
) -> tuple[float, float]:
    """(min, max) distance between two axis-aligned rectangles."""
    dx_min = max(nx0 - tx1, 0.0, tx0 - nx1)
    dy_min = max(ny0 - ty1, 0.0, ty0 - ny1)
    dx_max = max(nx1 - tx0, tx1 - nx0)
    dy_max = max(ny1 - ty0, ty1 - ny0)
    return float(np.hypot(dx_min, dy_min)), float(np.hypot(dx_max, dy_max))


def kde_dualtree(
    problem: KDVProblem,
    tau: float = 1e-3,
    leaf_size: int = 32,
):
    """KDV with per-pixel absolute error at most ``tau / 2``.

    Parameters
    ----------
    problem:
        The KDV instance (per-point weights are not supported: node counts
        are the bound multipliers).
    tau:
        Absolute error budget; ``0`` gives exact evaluation through
        leaf-leaf scans.  A good default for visualisation is a small
        fraction of the expected peak (e.g. ``1e-3 * n * K_max``) — but
        even ``tau ~ 1`` is invisible on a colour-mapped heatmap.
    leaf_size:
        kd-tree leaf size.
    """
    if problem.weights is not None:
        raise ParameterError("the dual-tree backend does not support point weights")
    tau = check_non_negative(tau, "tau")

    tree = KDTree(problem.points, leaf_size=leaf_size)
    kernel = problem.kernel
    b = problem.bandwidth
    n = problem.n
    per_point_tol = tau / n

    xs, ys = problem.pixel_centers()
    nx, ny = problem.nx, problem.ny
    values = np.zeros((nx, ny), dtype=np.float64)

    # Tiles are half-open pixel index ranges [ix0, ix1) x [iy0, iy1).
    stack: list[tuple[int, int, int, int, int]] = [(0, nx, 0, ny, 0)]
    while stack:
        ix0, ix1, iy0, iy1, node = stack.pop()
        tx0, tx1 = xs[ix0], xs[ix1 - 1]
        ty0, ty1 = ys[iy0], ys[iy1 - 1]
        nmin = tree.node_min[node]
        nmax = tree.node_max[node]
        dmin, dmax = _box_distance_bounds(
            tx0, tx1, ty0, ty1, nmin[0], nmax[0], nmin[1], nmax[1]
        )
        k_hi = float(kernel.evaluate(dmin, b))
        if k_hi == 0.0:
            continue  # the whole pair is outside the kernel support
        k_lo = float(kernel.evaluate(dmax, b))
        count = tree.node_count(node)
        if k_hi - k_lo <= per_point_tol:
            values[ix0:ix1, iy0:iy1] += count * 0.5 * (k_hi + k_lo)
            continue

        tile_w = ix1 - ix0
        tile_h = iy1 - iy0
        node_is_leaf = tree.is_leaf(node)
        tile_is_leaf = tile_w <= _TILE_LEAF and tile_h <= _TILE_LEAF

        if node_is_leaf and tile_is_leaf:
            block = tree.node_points(node)
            gx = xs[ix0:ix1][:, None, None]
            gy = ys[iy0:iy1][None, :, None]
            d2 = (gx - block[:, 0][None, None, :]) ** 2 + (
                gy - block[:, 1][None, None, :]
            ) ** 2
            values[ix0:ix1, iy0:iy1] += kernel.evaluate_sq(d2, b).sum(axis=2)
            continue

        # Split whichever side is wider (in coordinate units).
        tile_extent = max(tx1 - tx0, ty1 - ty0)
        node_extent = float(max(nmax[0] - nmin[0], nmax[1] - nmin[1]))
        split_tile = not tile_is_leaf and (node_is_leaf or tile_extent >= node_extent)
        if split_tile:
            if tile_w >= tile_h:
                mid = (ix0 + ix1) // 2
                stack.append((ix0, mid, iy0, iy1, node))
                stack.append((mid, ix1, iy0, iy1, node))
            else:
                mid = (iy0 + iy1) // 2
                stack.append((ix0, ix1, iy0, mid, node))
                stack.append((ix0, ix1, mid, iy1, node))
        else:
            left, right = tree.children(node)
            stack.append((ix0, ix1, iy0, iy1, left))
            stack.append((ix0, ix1, iy0, iy1, right))
    return problem.make_grid(values)
