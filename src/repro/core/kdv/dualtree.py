"""Dual-tree KDV: parallel block function approximation with an absolute guarantee.

The per-pixel bound refinement of :mod:`.bounds` answers one pixel at a
time; the dual-tree formulation (the structure actually used by QUAD [25]
and the classic Gray-Moore dual-tree KDE [51, 52]) refines *pixel tiles*
against *kd-tree nodes* simultaneously:

* for a (tile, node) pair, the distance between the tile's rectangle and
  the node's bounding box brackets every pixel-point distance, so

      W_node * K(dmax)  <=  contribution to each pixel  <=  W_node * K(dmin)

  where ``W_node`` is the total point weight below the node (the point
  count for unweighted input);
* if the per-unit-weight gap ``K(dmin) - K(dmax)`` is at most
  ``tau / W_total``, the midpoint is added to the whole tile at once —
  each pixel's total error is then at most ``tau / 2`` because the
  accepted nodes partition the point set;
* otherwise the pair recurses on whichever side is wider (tile split or
  node split); leaf-leaf pairs are evaluated exactly.

The guarantee is *absolute* (``|F̂(q) - F(q)| <= tau/2`` for every pixel),
which composes cleanly across tiles; pass ``tau=0`` for exact evaluation.
Works with every kernel in the library.

**Plan/execute split.**  Refinement runs in two phases so the hot loop can
ride :mod:`repro.parallel`:

1. a cheap serial *plan* descent splits the root (tile, node) pair
   tile-first into a partition of the pixel grid whose shape depends only
   on the grid geometry — never on the worker count — and prunes each
   tile's kd-node frontier at the top of the tree (far-field bulk accepts
   become a per-tile scalar, out-of-support nodes are dropped);
2. the *execute* phase runs one refinement job per tile through
   :func:`repro.parallel.parallel_starmap`; each job owns a disjoint
   ``values[ix0:ix1, iy0:iy1]`` slice.

Because the tile partition and every job's work are worker-invariant, the
output is **bit-identical for every ``workers``/``backend`` combination,
including serial** — parallelism changes wall-time only.  A
:class:`RefinementStats` record describing the refinement (pair counts,
bulk accepts, exact scans, per-phase wall time) rides on the returned
grid's ``diagnostics`` record under ``records["refinement"]``, and the
same counters feed the :mod:`repro.obs` trace when one is active.
"""

from __future__ import annotations

import math
from dataclasses import asdict, dataclass

import numpy as np

from ... import obs
from ..._validation import check_non_negative
from ...index import KDTree
from ...parallel import parallel_starmap
from ..scatter import accumulate_rect_blocks
from .base import KDVProblem

__all__ = ["RefinementStats", "kde_dualtree"]

_TILE_LEAF = 8  # tiles at most this many pixels wide are scanned exactly

# The plan phase stops splitting once it holds this many tiles: four times
# a generous worker ceiling, so every realistic pool finds enough
# independent jobs to balance load.  It is a FIXED constant — deriving it
# from ``workers`` or ``os.cpu_count()`` would make the partition (and the
# per-pixel float summation order) depend on the machine, breaking the
# bit-identical determinism contract of ``repro.parallel``.
_PLAN_TILE_CAP = 32


@dataclass(frozen=True)
class RefinementStats:
    """Observability record for one dual-tree refinement run.

    Carried on the returned grid as
    ``grid.diagnostics.records["refinement"]`` (``grid.stats`` remains a
    deprecated alias); all counters cover the plan and execute phases
    together.
    """

    pairs_visited: int
    """(tile, node) pairs popped from a refinement stack."""

    pairs_pruned: int
    """Pairs discarded because the whole pair lies outside the kernel
    support (or carries zero weight)."""

    tiles_bulk_accepted: int
    """Pairs whose bound midpoint was added to an entire tile at once."""

    leaf_leaf_scans: int
    """Exact leaf-tile vs leaf-node block evaluations."""

    points_touched: int
    """Point entries scanned across all exact leaf-leaf evaluations."""

    n_tiles: int
    """Tiles in the worker-invariant plan partition."""

    n_jobs: int
    """Tiles that still had refinement work after the plan prune."""

    plan_seconds: float
    """Wall time of the serial plan descent (tree build included)."""

    execute_seconds: float
    """Wall time of the parallel execute phase."""

    def as_dict(self) -> dict:
        """Plain-dict form (for benchmark JSON and logging)."""
        return asdict(self)


def _box_distance_bounds(
    tx0: float, tx1: float, ty0: float, ty1: float,
    nx0: float, nx1: float, ny0: float, ny1: float,
) -> tuple[float, float]:
    """(min, max) distance between two axis-aligned rectangles."""
    dx_min = max(nx0 - tx1, 0.0, tx0 - nx1)
    dy_min = max(ny0 - ty1, 0.0, ty0 - ny1)
    dx_max = max(nx1 - tx0, tx1 - nx0)
    dy_max = max(ny1 - ty0, ty1 - ny0)
    return math.hypot(dx_min, dy_min), math.hypot(dx_max, dy_max)


def _partition_tiles(nx: int, ny: int, cap: int) -> list[tuple[int, int, int, int]]:
    """Split the pixel grid into at most ``cap`` half-open tiles.

    Pure function of the grid shape: the largest tile is bisected along
    its wider pixel dimension until the cap is reached (ties broken by
    list position), so the partition — and therefore the per-pixel
    summation order of the whole backend — never depends on the worker
    count, the backend, or the machine.
    """
    tiles = [(0, nx, 0, ny)]
    while len(tiles) < cap:
        best = -1
        best_area = 1  # tiles of area 1 (single pixels) cannot split
        for i, (ix0, ix1, iy0, iy1) in enumerate(tiles):
            area = (ix1 - ix0) * (iy1 - iy0)
            if area > best_area:
                best, best_area = i, area
        if best < 0:
            break
        ix0, ix1, iy0, iy1 = tiles.pop(best)
        if ix1 - ix0 >= iy1 - iy0:
            mid = (ix0 + ix1) // 2
            first, second = (ix0, mid, iy0, iy1), (mid, ix1, iy0, iy1)
        else:
            mid = (iy0 + iy1) // 2
            first, second = (ix0, ix1, iy0, mid), (ix0, ix1, mid, iy1)
        tiles.insert(best, second)
        tiles.insert(best, first)
    return tiles


def _plan_tile(
    tree: KDTree,
    kernel,
    bandwidth: float,
    per_w_tol: float,
    xs: np.ndarray,
    ys: np.ndarray,
    tile: tuple[int, int, int, int],
) -> tuple[list[int], float, tuple[int, int, int]]:
    """Prune the kd-node frontier of one tile at the top of the tree.

    Descends *nodes only* (the tile is fixed): pairs whose recursion rule
    would next split the tile — or that are leaf-leaf — stop and join the
    frontier; out-of-support and zero-weight nodes are dropped; pairs
    already tight over the whole tile are folded into a scalar ``base``
    added uniformly to every pixel of the tile.  Returns
    ``(frontier, base, (pairs, pruned, accepted))``.
    """
    ix0, ix1, iy0, iy1 = tile
    tx0, tx1 = xs[ix0], xs[ix1 - 1]
    ty0, ty1 = ys[iy0], ys[iy1 - 1]
    tile_is_leaf = (ix1 - ix0) <= _TILE_LEAF and (iy1 - iy0) <= _TILE_LEAF
    tile_extent = max(tx1 - tx0, ty1 - ty0)

    node_min = tree.node_min
    node_max = tree.node_max
    wsum = tree.node_weight_sum

    frontier: list[int] = []
    base = 0.0
    pairs = pruned = accepted = 0
    stack = [0]
    while stack:
        node = stack.pop()
        pairs += 1
        w_node = wsum[node]
        if w_node == 0.0:
            pruned += 1
            continue
        nmin = node_min[node]
        nmax = node_max[node]
        dmin, dmax = _box_distance_bounds(
            tx0, tx1, ty0, ty1, nmin[0], nmax[0], nmin[1], nmax[1]
        )
        k_hi = float(kernel.evaluate(dmin, bandwidth))
        if k_hi == 0.0:
            pruned += 1
            continue
        k_lo = float(kernel.evaluate(dmax, bandwidth))
        if k_hi - k_lo <= per_w_tol:
            base += w_node * (0.5 * (k_hi + k_lo))
            accepted += 1
            continue
        node_is_leaf = tree.is_leaf(node)
        node_extent = float(max(nmax[0] - nmin[0], nmax[1] - nmin[1]))
        split_tile = not tile_is_leaf and (node_is_leaf or tile_extent >= node_extent)
        if split_tile or node_is_leaf:
            # The recursion would split the tile next (or scan leaf-leaf):
            # either way the execute job owns it from here.
            frontier.append(node)
            continue
        left, right = tree.children(node)
        stack.append(left)
        stack.append(right)
    return frontier, base, (pairs, pruned, accepted)


def _refine_tile(
    tree: KDTree,
    kernel,
    bandwidth: float,
    per_w_tol: float,
    xs: np.ndarray,
    ys: np.ndarray,
    dx: float,
    dy: float,
    tile: tuple[int, int, int, int],
    frontier: list[int],
    base: float,
) -> tuple[np.ndarray, tuple[int, int, int, int, int]]:
    """Execute-phase job: fully refine one tile against its frontier.

    Runs the dual-tree recursion restricted to the tile as a
    *wave-vectorised* breadth-first sweep: every live (sub-tile, node)
    pair of a wave is bounded, pruned, accepted, or split with whole-array
    numpy operations instead of one Python iteration per pair.  The
    recursion tree — and therefore every counter — is identical to the
    classic depth-first formulation; only the traversal order changes.
    Leaf-leaf pairs are collected across the whole sweep and evaluated in
    one batch through
    :func:`repro.core.scatter.accumulate_rect_blocks`, grouped by output
    rectangle.  Accumulates into a local ``(tile_w, tile_h)`` array seeded
    with the plan's bulk-accepted ``base``.  Module-level (and
    argument-picklable) so the job runs on any :mod:`repro.parallel`
    backend.  Returns the local array and a counter tuple
    ``(pairs, pruned, accepted, leaf_scans, points_touched)``.
    """
    jx0, jx1, jy0, jy1 = tile
    local = np.full((jx1 - jx0, jy1 - jy0), base, dtype=np.float64)
    b = bandwidth
    node_min = tree.node_min
    node_max = tree.node_max
    wsum = tree.node_weight_sum
    left_of = tree.node_left
    right_of = tree.node_right

    ix0 = np.full(len(frontier), jx0, dtype=np.int64)
    ix1 = np.full(len(frontier), jx1, dtype=np.int64)
    iy0 = np.full(len(frontier), jy0, dtype=np.int64)
    iy1 = np.full(len(frontier), jy1, dtype=np.int64)
    node = np.asarray(frontier, dtype=np.int64)

    leaf_parts: list[tuple[np.ndarray, ...]] = []
    pairs = pruned = accepted = 0
    while node.size:
        pairs += node.size
        tx0 = xs[ix0]
        tx1 = xs[ix1 - 1]
        ty0 = ys[iy0]
        ty1 = ys[iy1 - 1]
        nmin = node_min[node]
        nmax = node_max[node]
        nbx0 = nmin[:, 0]
        nby0 = nmin[:, 1]
        nbx1 = nmax[:, 0]
        nby1 = nmax[:, 1]
        # Vectorised _box_distance_bounds over the whole wave.
        dx_min = np.maximum(np.maximum(nbx0 - tx1, 0.0), tx0 - nbx1)
        dy_min = np.maximum(np.maximum(nby0 - ty1, 0.0), ty0 - nby1)
        dx_max = np.maximum(nbx1 - tx0, tx1 - nbx0)
        dy_max = np.maximum(nby1 - ty0, ty1 - nby0)
        k_hi = kernel.evaluate(np.hypot(dx_min, dy_min), b)
        k_lo = kernel.evaluate(np.hypot(dx_max, dy_max), b)
        w_node = wsum[node]

        prune = (w_node == 0.0) | (k_hi == 0.0)
        accept = ~prune & (k_hi - k_lo <= per_w_tol)
        pruned += int(prune.sum())
        n_accept = int(np.count_nonzero(accept))
        if n_accept:
            accepted += n_accept
            mid = w_node * (0.5 * (k_hi + k_lo))
            for i in np.flatnonzero(accept):
                local[ix0[i] - jx0:ix1[i] - jx0,
                      iy0[i] - jy0:iy1[i] - jy0] += mid[i]

        rest = ~(prune | accept)
        node_is_leaf = left_of[node] < 0
        tw = ix1 - ix0
        th = iy1 - iy0
        tile_is_leaf = (tw <= _TILE_LEAF) & (th <= _TILE_LEAF)

        leafleaf = rest & node_is_leaf & tile_is_leaf
        if leafleaf.any():
            leaf_parts.append(
                (ix0[leafleaf], ix1[leafleaf], iy0[leafleaf], iy1[leafleaf],
                 node[leafleaf])
            )
        rest &= ~leafleaf
        # Split whichever side is wider (in coordinate units).
        tile_extent = np.maximum(tx1 - tx0, ty1 - ty0)
        node_extent = np.maximum(nbx1 - nbx0, nby1 - nby0)
        split_tile = rest & ~tile_is_leaf & (
            node_is_leaf | (tile_extent >= node_extent)
        )
        split_node = rest & ~split_tile

        parts = []
        if split_tile.any():
            st = np.flatnonzero(split_tile)
            along_x = tw[st] >= th[st]
            stx = st[along_x]
            if stx.size:
                mid_x = (ix0[stx] + ix1[stx]) // 2
                parts.append((ix0[stx], mid_x, iy0[stx], iy1[stx], node[stx]))
                parts.append((mid_x, ix1[stx], iy0[stx], iy1[stx], node[stx]))
            sty = st[~along_x]
            if sty.size:
                mid_y = (iy0[sty] + iy1[sty]) // 2
                parts.append((ix0[sty], ix1[sty], iy0[sty], mid_y, node[sty]))
                parts.append((ix0[sty], ix1[sty], mid_y, iy1[sty], node[sty]))
        if split_node.any():
            sn = np.flatnonzero(split_node)
            parts.append((ix0[sn], ix1[sn], iy0[sn], iy1[sn], left_of[node[sn]]))
            parts.append((ix0[sn], ix1[sn], iy0[sn], iy1[sn], right_of[node[sn]]))
        if parts:
            ix0 = np.concatenate([p[0] for p in parts])
            ix1 = np.concatenate([p[1] for p in parts])
            iy0 = np.concatenate([p[2] for p in parts])
            iy1 = np.concatenate([p[3] for p in parts])
            node = np.concatenate([p[4] for p in parts])
        else:
            node = np.empty(0, dtype=np.int64)

    leaf_scans = points = 0
    if leaf_parts:
        lx0 = np.concatenate([p[0] for p in leaf_parts])
        lx1 = np.concatenate([p[1] for p in leaf_parts])
        ly0 = np.concatenate([p[2] for p in leaf_parts])
        ly1 = np.concatenate([p[3] for p in leaf_parts])
        lnode = np.concatenate([p[4] for p in leaf_parts])
        leaf_scans = int(lnode.size)
        # Group leaf pairs by output rectangle so the scatter core
        # evaluates each rectangle's point set in one shot.  Within one
        # job equal (lx0, ly0) implies an equal rectangle: the tile
        # bisection hierarchy is fixed and leaves are never split
        # further.  lexsort is stable, so the grouping is deterministic.
        order = np.lexsort((lnode, ly0, lx0))
        lx0 = lx0[order]
        lx1 = lx1[order]
        ly0 = ly0[order]
        ly1 = ly1[order]
        lnode = lnode[order]

        pt_starts = tree.node_start[lnode]
        counts = (tree.node_stop[lnode] - pt_starts).astype(np.int64)
        points = int(counts.sum())
        pair_off = np.concatenate([[0], np.cumsum(counts)])
        pos = np.repeat(pt_starts - pair_off[:-1], counts) + np.arange(points)
        sorted_pts = tree._sorted_points
        px = sorted_pts[pos, 0]
        py = sorted_pts[pos, 1]
        sw = tree._sorted_weights
        pw = sw[pos] if sw is not None else None

        change = np.empty(lnode.size, dtype=bool)
        change[0] = True
        change[1:] = (lx0[1:] != lx0[:-1]) | (ly0[1:] != ly0[:-1])
        rect_idx = np.flatnonzero(change)
        rects = (lx0[rect_idx], lx1[rect_idx], ly0[rect_idx], ly1[rect_idx])
        rect_starts = np.concatenate([pair_off[rect_idx], [points]])
        accumulate_rect_blocks(
            local, (jx0, jy0), rects, rect_starts, px, py, pw,
            float(xs[0]), float(ys[0]), dx, dy, kernel, b, _TILE_LEAF,
        )
    return local, (pairs, pruned, accepted, leaf_scans, points)


def kde_dualtree(
    problem: KDVProblem,
    tau: float = 1e-3,
    leaf_size: int = 32,
    workers: int | None = None,
    backend: str | None = None,
):
    """KDV with per-pixel absolute error at most ``tau / 2``.

    Parameters
    ----------
    problem:
        The KDV instance.  Per-point weights are supported: node weight
        sums replace point counts as the bound multipliers and the error
        budget is spent against the total weight.
    tau:
        Absolute error budget; ``0`` gives exact evaluation through
        leaf-leaf scans.  A good default for visualisation is a small
        fraction of the expected peak (e.g. ``1e-3 * n * K_max``) — but
        even ``tau ~ 1`` is invisible on a colour-mapped heatmap.
    leaf_size:
        kd-tree leaf size.
    workers, backend:
        Worker count and executor backend for the execute phase (see
        :mod:`repro.parallel`; ``None`` uses the shared defaults).  The
        refinement loop is Python-bound, so the ``process`` backend is
        the one that buys multi-core speedup; any combination returns
        bit-identical values.

    Returns
    -------
    :class:`~repro.raster.DensityGrid` with a :class:`RefinementStats`
    record on ``grid.diagnostics.records["refinement"]``.
    """
    tau = check_non_negative(tau, "tau")

    with obs.task("kdv.dualtree") as trace:
        plan_watch = obs.Stopwatch()
        with plan_watch, obs.span("plan"):
            tree = KDTree(problem.points, leaf_size=leaf_size,
                          weights=problem.weights)
            kernel = problem.kernel
            b = problem.bandwidth
            nx, ny = problem.nx, problem.ny
            values = np.zeros((nx, ny), dtype=np.float64)

            total_weight = tree.total_weight
            if total_weight == 0.0:
                jobs = None  # zero total mass: density identically zero
            else:
                per_w_tol = tau / total_weight
                xs, ys = problem.pixel_centers()
                dx, dy = problem.bbox.pixel_size(nx, ny)
                tiles = _partition_tiles(nx, ny, _PLAN_TILE_CAP)

                pairs = pruned = accepted = 0
                jobs = []
                job_tiles: list[tuple[int, int, int, int]] = []
                for tile in tiles:
                    frontier, base, (t_pairs, t_pruned, t_accepted) = _plan_tile(
                        tree, kernel, b, per_w_tol, xs, ys, tile
                    )
                    pairs += t_pairs
                    pruned += t_pruned
                    accepted += t_accepted
                    if frontier:
                        jobs.append((tree, kernel, b, per_w_tol, xs, ys,
                                     dx, dy, tile, frontier, base))
                        job_tiles.append(tile)
                    elif base != 0.0:
                        ix0, ix1, iy0, iy1 = tile
                        values[ix0:ix1, iy0:iy1] = base

        if jobs is None:
            stats = RefinementStats(0, 0, 0, 0, 0, 0, 0,
                                    plan_watch.seconds, 0.0)
        else:
            exec_watch = obs.Stopwatch()
            leaf_scans = points = 0
            with exec_watch, obs.span("execute"):
                results = parallel_starmap(_refine_tile, jobs,
                                           workers=workers, backend=backend)
                for (ix0, ix1, iy0, iy1), (local, counters) in zip(job_tiles,
                                                                   results):
                    values[ix0:ix1, iy0:iy1] = local
                    pairs += counters[0]
                    pruned += counters[1]
                    accepted += counters[2]
                    leaf_scans += counters[3]
                    points += counters[4]

            stats = RefinementStats(
                pairs_visited=pairs,
                pairs_pruned=pruned,
                tiles_bulk_accepted=accepted,
                leaf_leaf_scans=leaf_scans,
                points_touched=points,
                n_tiles=len(tiles),
                n_jobs=len(jobs),
                plan_seconds=plan_watch.seconds,
                execute_seconds=exec_watch.seconds,
            )
            # Mirror the counters into the ambient trace (no-ops when
            # tracing is off); the structured record rides along either way.
            obs.count("kdv.pairs_visited", pairs)
            obs.count("kdv.pairs_pruned", pruned)
            obs.count("kdv.tiles_bulk_accepted", accepted)
            obs.count("kdv.leaf_leaf_scans", leaf_scans)
            obs.count("kdv.points_touched", points)
            obs.count("kdv.tiles", len(tiles))
            obs.count("kdv.jobs", len(jobs))
        trace.record("refinement", stats)
    return problem.make_grid(values, diagnostics=trace.diagnostics)
