"""Streaming / incremental KDV.

The interactive systems the paper describes (KDV-Explorer [28], the live
COVID hotspot maps [6, 8]) must refresh heatmaps as new events arrive and
old ones expire.  Recomputing from scratch per update wastes the work on
the unchanged points; a :class:`KDVAccumulator` maintains the density grid
under point insertions and deletions at the cost of one kernel *patch* per
changed point (the cutoff-scatter update, which is exact).

Typical sliding-window use::

    acc = KDVAccumulator(bbox, (256, 192), bandwidth=2.0)
    acc.add(first_batch)
    ...
    acc.add(new_events)
    acc.remove(expired_events)   # must be points previously added
    grid = acc.grid()
"""

from __future__ import annotations

import numpy as np

from ..._validation import as_points, check_positive
from ...errors import ParameterError
from ...geometry import BoundingBox
from ...raster import DensityGrid
from ..kernels import Kernel, get_kernel
from .base import effective_radius

__all__ = ["KDVAccumulator"]


class KDVAccumulator:
    """Exact incremental KDV over a fixed window/lattice/kernel/bandwidth."""

    def __init__(
        self,
        bbox: BoundingBox,
        size: tuple[int, int],
        bandwidth: float,
        kernel: str | Kernel = "quartic",
        tail: float = 1e-12,
    ):
        if not isinstance(bbox, BoundingBox):
            raise ParameterError("bbox must be a BoundingBox")
        self.bbox = bbox
        nx, ny = int(size[0]), int(size[1])
        if nx < 1 or ny < 1:
            raise ParameterError(f"grid size must be positive, got {nx}x{ny}")
        self.nx = nx
        self.ny = ny
        self.bandwidth = check_positive(bandwidth, "bandwidth")
        self.kernel = get_kernel(kernel)
        self._radius = effective_radius(self.kernel, self.bandwidth, tail)
        self._xs, self._ys = bbox.pixel_centers(nx, ny)
        self._dx, self._dy = bbox.pixel_size(nx, ny)
        self._values = np.zeros((nx, ny), dtype=np.float64)
        self._count = 0

    @property
    def n_points(self) -> int:
        """Number of points currently contributing to the grid."""
        return self._count

    def _scatter(self, points: np.ndarray, sign: float) -> None:
        xs, ys = self._xs, self._ys
        x0, y0 = xs[0], ys[0]
        radius = self._radius
        r2 = radius * radius
        b = self.bandwidth
        kernel = self.kernel
        truncated = radius < kernel.support_radius(b)
        for px, py in points:
            ix_lo = max(int(np.ceil((px - radius - x0) / self._dx)), 0)
            ix_hi = min(int(np.floor((px + radius - x0) / self._dx)), self.nx - 1)
            iy_lo = max(int(np.ceil((py - radius - y0) / self._dy)), 0)
            iy_hi = min(int(np.floor((py + radius - y0) / self._dy)), self.ny - 1)
            if ix_lo > ix_hi or iy_lo > iy_hi:
                continue
            local_x = xs[ix_lo:ix_hi + 1] - px
            local_y = ys[iy_lo:iy_hi + 1] - py
            d2 = local_x[:, None] ** 2 + local_y[None, :] ** 2
            patch = kernel.evaluate_sq(d2, b)
            if truncated:
                patch = np.where(d2 <= r2, patch, 0.0)
            self._values[ix_lo:ix_hi + 1, iy_lo:iy_hi + 1] += sign * patch

    def add(self, points) -> "KDVAccumulator":
        """Add events to the surface; returns self for chaining."""
        pts = as_points(points, allow_empty=True)
        self._scatter(pts, +1.0)
        self._count += pts.shape[0]
        return self

    def remove(self, points) -> "KDVAccumulator":
        """Remove previously-added events (caller tracks membership)."""
        pts = as_points(points, allow_empty=True)
        if pts.shape[0] > self._count:
            raise ParameterError(
                f"cannot remove {pts.shape[0]} points; only {self._count} present"
            )
        self._scatter(pts, -1.0)
        self._count -= pts.shape[0]
        if self._count == 0:
            # Snap accumulated float noise back to exactly empty.
            self._values[:] = 0.0
        return self

    def grid(self) -> DensityGrid:
        """The current density surface (a defensive copy)."""
        # Scattered subtraction can leave tiny negative residue; clip it.
        values = np.maximum(self._values, 0.0)
        return DensityGrid(self.bbox, values.copy())

    def reset(self) -> "KDVAccumulator":
        """Drop all points."""
        self._values[:] = 0.0
        self._count = 0
        return self

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"KDVAccumulator(n={self._count}, grid={self.nx}x{self.ny}, "
            f"kernel={self.kernel.name}, b={self.bandwidth:g})"
        )
