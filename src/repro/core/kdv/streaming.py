"""Streaming / incremental KDV.

The interactive systems the paper describes (KDV-Explorer [28], the live
COVID hotspot maps [6, 8]) must refresh heatmaps as new events arrive and
old ones expire.  Recomputing from scratch per update wastes the work on
the unchanged points; a :class:`KDVAccumulator` maintains the density grid
under point insertions and deletions at the cost of one kernel *patch* per
changed point (the cutoff-scatter update, which is exact).

Typical sliding-window use::

    acc = KDVAccumulator(bbox, (256, 192), bandwidth=2.0)
    acc.add(first_batch)
    ...
    acc.add(new_events)
    acc.remove(expired_events)   # must be points previously added
    grid = acc.grid()

:class:`MultiSurfaceAccumulator` is the weighted generalisation that the
temporal-sharing STKDV backend builds on: it maintains ``S`` surfaces at
once, scattering each point's kernel patch onto surface ``s`` scaled by a
per-point, per-surface weight.  ``KDVAccumulator`` is its ``S = 1``,
weight ``±1`` specialisation.
"""

from __future__ import annotations

import numpy as np

from ... import obs
from ..._validation import as_points
from ...errors import DataError, ParameterError
from ...geometry import BoundingBox
from ...parallel import parallel_starmap
from ...raster import DensityGrid
from ..kernels import Kernel
from ..scatter import PatchScatter

__all__ = ["KDVAccumulator", "MultiSurfaceAccumulator"]

#: Event-chunk size of :meth:`MultiSurfaceAccumulator.rescatter`.  A fixed
#: constant — never derived from the worker count — so the chunk
#: partition, the per-chunk scatters and the chunk-order summation are
#: identical for every ``workers``/``backend`` combination (the same
#: fixed-partition rule as ``repro.parallel``).
_RESCATTER_CHUNK = 4096

#: Empirical safety factor of :attr:`MultiSurfaceAccumulator.
#: drift_tolerance`.  Worst-case rounding analysis gives error
#: ``<= ops * eps * running_magnitude`` per pixel; measured drift over
#: thousands of add/remove cycles sits two to three orders of magnitude
#: below ``eps * K(0) * gross_weight``, so 64 leaves ample headroom while
#: keeping the bound tight enough to be a meaningful contract.
_DRIFT_SAFETY = 64.0


def _rescatter_chunk(
    scatterer: PatchScatter, pts: np.ndarray, w: np.ndarray, n_surfaces: int
) -> np.ndarray:
    """Scatter one fixed chunk onto a fresh zero bank (worker callable)."""
    bank = np.zeros((n_surfaces, scatterer.nx, scatterer.ny),
                    dtype=scatterer.dtype)
    scatterer.scatter(bank, pts, w)
    return bank


class MultiSurfaceAccumulator:
    """Weighted cutoff-scatter accumulation onto ``S`` parallel surfaces.

    Maintains ``S`` grids ``V_s(q) = sum_i w[i, s] * patch_i(q)`` over a
    fixed window/lattice/kernel/bandwidth, where ``patch_i`` is the exact
    spatial kernel patch of point ``i``.  Signed weights make removal the
    same operation as insertion (scatter with negated weights), which is
    what the STKDV temporal-sharing backend uses to slide its moment
    grids along the time axis.
    """

    def __init__(
        self,
        bbox: BoundingBox,
        size: tuple[int, int],
        bandwidth: float,
        kernel: str | Kernel = "quartic",
        n_surfaces: int = 1,
        tail: float = 1e-12,
        dtype=np.float64,
    ):
        n_surfaces = int(n_surfaces)
        if n_surfaces < 1:
            raise ParameterError(
                f"n_surfaces must be >= 1, got {n_surfaces}"
            )
        # The scatter core owns everything invariant for the accumulator's
        # lifetime: pixel lattice, cutoff radius, whether the kernel is
        # truncated at that radius, and (float32) the kernel table.
        self._scatterer = PatchScatter(
            bbox, size, bandwidth, kernel=kernel, tail=tail, dtype=dtype
        )
        self.bbox = self._scatterer.bbox
        self.nx = self._scatterer.nx
        self.ny = self._scatterer.ny
        self.n_surfaces = n_surfaces
        self.bandwidth = self._scatterer.bandwidth
        self.kernel = self._scatterer.kernel
        self.dtype = self._scatterer.dtype
        self._radius = self._scatterer.radius
        self._values = np.zeros((n_surfaces, self.nx, self.ny),
                                dtype=self.dtype)
        self._count = 0
        self._gross = 0.0
        self._net = 0.0

    @property
    def n_points(self) -> int:
        """Number of points currently contributing to the surfaces."""
        return self._count

    @property
    def scatterer(self) -> PatchScatter:
        """The shared scatter core this accumulator writes through."""
        return self._scatterer

    # -- float-drift accounting ---------------------------------------------
    #
    # Every scatter rounds; insert-then-remove cancels exactly in real
    # arithmetic but leaves rounding residue on the surface.  The residue
    # grows with the *gross* weight ever scattered, not with the *net*
    # weight currently present, so a long-lived sliding window drifts away
    # from a fresh scatter of its contents even though the contents are
    # small.  These counters quantify that: callers (repro.stream) watch
    # ``drift_ratio`` and re-scatter when it crosses their policy ratio —
    # the same shape as the STKDV shared backend's drift-triggered
    # re-centering.

    @property
    def gross_weight(self) -> float:
        """Total ``sum |w|`` scattered since construction/reset/rescatter."""
        return self._gross

    @property
    def net_weight(self) -> float:
        """``sum |w|`` of the points currently present (adds minus removes)."""
        return self._net

    @property
    def drift_ratio(self) -> float:
        """Gross-over-net weight ratio — the cancellation-pressure gauge."""
        return self._gross / max(self._net, 1.0)

    @property
    def drift_tolerance(self) -> float:
        """Published bound on ``|maintained - fresh scatter|`` per pixel.

        ``64 * eps(dtype) * K(0) * max(gross_weight, 1)`` — rounding
        residue scales with the machine epsilon of the surface dtype, the
        per-unit-weight patch peak ``K(0)``, and the gross weight ever
        scattered.  The float32 mode adds its kernel-table term
        (``table.max_abs_error``) because incremental and fresh scatters
        may batch lookups differently.  Guaranteed by the drift
        regression tests in ``tests/test_streaming_contours_hawkes.py``.
        """
        eps = float(np.finfo(self.dtype).eps)
        peak = float(self.kernel.evaluate(np.zeros(1), self.bandwidth)[0])
        tol = _DRIFT_SAFETY * eps * peak * max(self._gross, 1.0)
        table = self._scatterer.table
        if table is not None:
            tol += 2.0 * table.max_abs_error * max(self._gross, 1.0)
        return tol

    def scatter(self, points, weights) -> "MultiSurfaceAccumulator":
        """Scatter each point's patch onto every surface, scaled by weights.

        ``weights`` is an ``(n, S)`` array of signed per-point, per-surface
        factors; surface ``s`` receives ``weights[i, s] * patch_i``.  The
        point count tracks the *net* signed mass on surface 0's convention:
        callers doing add/remove bookkeeping should use
        :meth:`add_weighted` / :meth:`remove_weighted` instead.
        """
        pts = as_points(points, allow_empty=True)
        w = np.asarray(weights, dtype=np.float64)
        if w.ndim == 1:
            w = w[:, None]
        if w.shape != (pts.shape[0], self.n_surfaces):
            raise DataError(
                f"weights must have shape ({pts.shape[0]}, {self.n_surfaces}), "
                f"got {w.shape}"
            )
        if w.size and not np.all(np.isfinite(w)):
            raise DataError("weights contain non-finite entries")
        self._scatterer.scatter(self._values, pts, w)
        self._gross += float(np.abs(w).sum())
        return self

    def add_weighted(self, points, weights) -> "MultiSurfaceAccumulator":
        """Insert points with the given ``(n, S)`` weights."""
        self.scatter(points, weights)
        self._count += as_points(points, allow_empty=True).shape[0]
        self._net += float(np.abs(np.asarray(weights, dtype=np.float64)).sum())
        return self

    def remove_weighted(self, points, weights) -> "MultiSurfaceAccumulator":
        """Remove previously-inserted points (same weights as insertion)."""
        pts = as_points(points, allow_empty=True)
        if pts.shape[0] > self._count:
            raise ParameterError(
                f"cannot remove {pts.shape[0]} points; only {self._count} present"
            )
        w = np.asarray(weights, dtype=np.float64)
        if w.ndim == 1:
            w = w[:, None]
        self.scatter(pts, -w)
        self._count -= pts.shape[0]
        self._net = max(self._net - float(np.abs(w).sum()), 0.0)
        if self._count == 0:
            # Snap accumulated float noise back to exactly empty.
            self._values[:] = 0.0
            self._net = 0.0
        return self

    def rescatter(
        self, points, weights, workers: int | None = None,
        backend: str | None = None,
    ) -> "MultiSurfaceAccumulator":
        """Rebuild the bank from scratch as if only ``points`` were added.

        The cancellation-residue escape hatch: replaces the maintained
        surfaces with a fresh scatter of the given points/weights and
        resets the gross-weight counter, so the drift clock restarts.
        The event list is split into fixed ``_RESCATTER_CHUNK`` chunks
        scattered concurrently through :func:`repro.parallel.
        parallel_starmap` and summed in chunk order — the result is
        bit-identical for every ``workers``/``backend`` combination, and
        bit-identical to a fresh serial ``add_weighted`` whenever the
        window fits a single chunk.
        """
        pts = as_points(points, allow_empty=True)
        w = np.asarray(weights, dtype=np.float64)
        if w.ndim == 1:
            w = w[:, None]
        if w.shape != (pts.shape[0], self.n_surfaces):
            raise DataError(
                f"weights must have shape ({pts.shape[0]}, {self.n_surfaces}), "
                f"got {w.shape}"
            )
        if w.size and not np.all(np.isfinite(w)):
            raise DataError("weights contain non-finite entries")
        n = pts.shape[0]
        if n <= _RESCATTER_CHUNK:
            self.reset()
            if n:
                self.add_weighted(pts, w)
            return self
        jobs = [
            (self._scatterer, pts[c0:c0 + _RESCATTER_CHUNK],
             w[c0:c0 + _RESCATTER_CHUNK], self.n_surfaces)
            for c0 in range(0, n, _RESCATTER_CHUNK)
        ]
        with obs.span("rescatter"):
            banks = parallel_starmap(
                _rescatter_chunk, jobs, workers=workers, backend=backend
            )
        fresh = banks[0]
        for bank in banks[1:]:
            fresh += bank
        self._values = fresh
        self._count = n
        total = float(np.abs(w).sum())
        self._gross = total
        self._net = total
        return self

    def surface_view(self, s: int) -> np.ndarray:
        """Surface ``s`` as a *live read-only view* (no copy).

        For delta-cost inspection of the maintained bank — the streaming
        KDV's dirty-tile compare reads candidate tile regions through this
        without copying the whole surface per refresh.  Callers must not
        write through it; mutate via the scatter methods only.
        """
        s = int(s)
        if not (0 <= s < self.n_surfaces):
            raise ParameterError(
                f"surface index must lie in [0, {self.n_surfaces}), got {s}"
            )
        return self._values[s]

    def surface(self, s: int) -> np.ndarray:
        """Surface ``s`` as a defensive ``(nx, ny)`` copy."""
        s = int(s)
        if not (0 <= s < self.n_surfaces):
            raise ParameterError(
                f"surface index must lie in [0, {self.n_surfaces}), got {s}"
            )
        return self._values[s].copy()

    def combine(self, factors) -> np.ndarray:
        """Linear combination ``sum_s factors[s] * V_s`` as an (nx, ny) array."""
        f = np.asarray(factors, dtype=np.float64).ravel()
        if f.shape[0] != self.n_surfaces:
            raise DataError(
                f"factors must have length {self.n_surfaces}, got {f.shape[0]}"
            )
        return np.tensordot(f, self._values, axes=(0, 0))

    def recombine(self, matrix) -> "MultiSurfaceAccumulator":
        """Replace the surface bank with ``V'_m = sum_j matrix[m, j] * V_j``.

        The STKDV backend uses this to re-reference its moment grids
        (a change of temporal origin is a triangular linear map on the
        moments), which keeps the accumulated powers well conditioned
        without re-scattering any point.
        """
        m = np.asarray(matrix, dtype=np.float64)
        if m.shape != (self.n_surfaces, self.n_surfaces):
            raise DataError(
                f"matrix must have shape ({self.n_surfaces}, {self.n_surfaces}), "
                f"got {m.shape}"
            )
        self._values = np.tensordot(m, self._values, axes=(1, 0)).astype(
            self.dtype, copy=False
        )
        return self

    def reset(self) -> "MultiSurfaceAccumulator":
        """Drop all points and clear the drift accounting."""
        self._values[:] = 0.0
        self._count = 0
        self._gross = 0.0
        self._net = 0.0
        return self

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"{type(self).__name__}(n={self._count}, "
            f"surfaces={self.n_surfaces}, grid={self.nx}x{self.ny}, "
            f"kernel={self.kernel.name}, b={self.bandwidth:g})"
        )


class KDVAccumulator(MultiSurfaceAccumulator):
    """Exact incremental KDV over a fixed window/lattice/kernel/bandwidth."""

    def __init__(
        self,
        bbox: BoundingBox,
        size: tuple[int, int],
        bandwidth: float,
        kernel: str | Kernel = "quartic",
        tail: float = 1e-12,
        dtype=np.float64,
    ):
        super().__init__(
            bbox, size, bandwidth, kernel=kernel, n_surfaces=1, tail=tail,
            dtype=dtype,
        )

    def add(self, points) -> "KDVAccumulator":
        """Add events to the surface; returns self for chaining."""
        pts = as_points(points, allow_empty=True)
        self.add_weighted(pts, np.ones((pts.shape[0], 1)))
        return self

    def remove(self, points) -> "KDVAccumulator":
        """Remove previously-added events (caller tracks membership)."""
        pts = as_points(points, allow_empty=True)
        self.remove_weighted(pts, np.ones((pts.shape[0], 1)))
        return self

    def grid(self) -> DensityGrid:
        """The current density surface (a defensive copy)."""
        # Scattered subtraction can leave tiny negative residue; clip it.
        return DensityGrid(self.bbox, np.maximum(self.surface(0), 0.0))
