"""Cost-based planner behind ``kde_grid(method="auto")``.

The paper's §2.2 observation is that no single acceleration family wins
everywhere: the crossovers between the nine ``kde_grid`` backends depend
on the event count, the pixel resolution, the bandwidth-to-pixel ratio
and the kernel family.  Until PR 8 ``auto`` was a static two-way if/else
(sweep for polynomial kernels, grid otherwise) that could never select a
parallel backend — and, worse, the method-specific parameter audit ran
*before* auto resolution, so legal calls like
``kde_grid(..., method="auto", workers=2)`` crashed.

This module replaces that with an explicit *plan → audit → execute*
split (generalising the dual-tree backend's plan/execute refactor from
PR 4):

* :func:`plan_kdv` resolves a problem plus the caller's explicit
  method-specific keywords into a :class:`KDVPlan` — the chosen backend,
  the keyword subset that backend honours, the keywords that were
  dropped (with reasons), the predicted per-backend costs and a
  human-readable rationale;
* a small calibrated :class:`CostModel` predicts per-backend wall time
  from ``(n, nx*ny, bandwidth/pixel ratio, kernel family, workers)``.
  The shipped coefficients are seeded from the repository's own
  benchmark artefacts (``benchmarks/results/BENCH_*.json`` and
  ``ablation_kdv_methods.txt``) and can be refreshed from those files or
  from :mod:`repro.obs` traces via :func:`calibrate`;
* an LRU plan cache keyed by the problem signature lets repeated
  identical queries (the future serve layer's hot case) skip planning
  entirely — see :func:`plan_cache_info` / :func:`clear_plan_cache`.

Keyword semantics under ``auto``: an explicit method-specific keyword is
a *planning hint*, never an error.  The planner restricts the candidate
pool to the backends that honour the largest number of the requested
keywords (so ``workers=2`` steers planning to the parallel-capable
backends, ``tau=`` to dual-tree, ``seed=`` to sampling) and picks the
cheapest member by predicted cost.  Keywords the winning backend cannot
honour — possible only for contradictory combinations such as
``workers=2, dtype="float32"`` where no single backend honours both —
are recorded in ``KDVPlan.dropped`` and surfaced through
:class:`repro.obs.Diagnostics`, not silently ignored and not fatal.
With an explicit ``method=`` the strict audit still applies unchanged.
"""

from __future__ import annotations

import json
import math
import re
from collections import OrderedDict
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Iterable, Mapping

from ... import obs, parallel
from ...errors import ParameterError
from .base import KDVProblem, effective_radius

__all__ = [
    "AUTO_CANDIDATES",
    "CostModel",
    "KDVPlan",
    "PLAN_CACHE_MAXSIZE",
    "calibrate",
    "clear_plan_cache",
    "cost_model",
    "plan_cache_info",
    "plan_kdv",
]

# Which methods honour each method-specific keyword.  ``None`` (the
# argument default) always means "not requested"; with an explicit
# ``method=`` an explicit value outside its row is an error rather than
# a silent no-op, while under ``method="auto"`` it is a planning hint
# (see the module docstring).  ``kde_grid`` imports this table and runs
# its audit against the *resolved* method.
_METHOD_ONLY_PARAMS: dict[str, tuple[str, ...]] = {
    "eps": ("bounds", "sampling"),
    "delta": ("sampling",),
    "sample": ("sampling",),
    "seed": ("sampling",),
    "index": ("bounds",),
    "tau": ("dualtree",),
    "workers": ("parallel", "dualtree"),
    "backend": ("parallel", "dualtree"),
    "dtype": ("grid",),
}

#: Backends ``auto`` plans among when no keyword hint widens the pool:
#: the exact family (dual-tree's ``|err| <= tau/2`` with the default
#: ``tau=1e-3`` included).  Order is the deterministic cost tiebreak.
AUTO_CANDIDATES = ("grid", "sweep", "naive", "parallel", "dualtree")

#: Backends whose analyses assume unit mass and therefore reject weights.
_WEIGHT_REJECTING = ("bounds", "sampling")

#: Maximum number of cached plans (LRU eviction beyond this).
PLAN_CACHE_MAXSIZE = 256

#: Parallel scaling exponent: ``workers`` workers buy a
#: ``workers ** 0.85`` speedup on the divisible phase (thread dispatch
#: and memory bandwidth eat the rest; BENCH_envelope_parallel.json).
_PARALLEL_EFFICIENCY_EXPONENT = 0.85


@dataclass(frozen=True)
class KDVPlan:
    """A resolved ``method="auto"`` decision (the plan of plan → audit → execute).

    Attributes
    ----------
    method:
        The backend ``kde_grid`` will execute.
    kwargs:
        The method-specific keywords forwarded to that backend — always a
        subset of the caller's explicit keywords that ``method`` honours.
    dropped:
        Explicit keywords the chosen backend does not honour, mapped to a
        reason string.  Non-empty only for contradictory hint
        combinations (no single backend honours them all).
    cost:
        Predicted wall seconds of the chosen backend.
    costs:
        Predicted wall seconds of every feasible candidate.
    rationale:
        One human-readable sentence explaining the choice.
    features:
        The cost-model inputs (kept so :func:`calibrate` can replay the
        prediction against a measured trace).
    workers:
        The effective worker count the plan was made for (explicit
        ``workers=`` or the :mod:`repro.parallel` default).
    cache_hit:
        True when this plan came from the LRU cache.
    """

    method: str
    kwargs: Mapping[str, object] = field(default_factory=dict)
    dropped: Mapping[str, str] = field(default_factory=dict)
    cost: float = 0.0
    costs: Mapping[str, float] = field(default_factory=dict)
    rationale: str = ""
    features: Mapping[str, object] = field(default_factory=dict)
    workers: int = 1
    cache_hit: bool = False

    def as_dict(self) -> dict:
        """JSON-serialisable form (recorded on ``Diagnostics``)."""
        return {
            "method": self.method,
            "kwargs": {k: str(v) for k, v in self.kwargs.items()},
            "dropped": dict(self.dropped),
            "cost": self.cost,
            "costs": dict(self.costs),
            "rationale": self.rationale,
            "features": dict(self.features),
            "workers": self.workers,
            "cache_hit": self.cache_hit,
        }


@dataclass(frozen=True)
class CostModel:
    """Per-backend wall-time predictions from problem shape features.

    Each backend gets a closed-form cost in seconds built from a handful
    of named coefficients.  The default coefficients are *measured*, not
    guessed — they are fitted to this repository's committed benchmark
    artefacts:

    * ``naive_pp`` / ``parallel_pp`` / ``sweep_unit`` — the per-unit
      slopes of the gather and sweep rows of
      ``benchmarks/results/ablation_kdv_methods.txt`` (quartic kernel,
      128x96 grid; e.g. naive 1.923 s / (4000 * 12288) ≈ 3.9e-8 s per
      point-pixel distance evaluation);
    * ``dualtree_build`` / ``dualtree_refine`` — the plan and execute
      phases of ``BENCH_dualtree_parallel.json`` /
      ``BENCH_scatter_core.json`` (20k events, 256x192, gaussian,
      tau=1e-3) divided by ``n log2 n`` and ``npx log2 n``;
    * ``grid_f32_factor`` — the measured float32/float64 gridcut ratio
      of ``BENCH_scatter_core.json`` (the kernel-table mode pays
      bucketing overhead, it is not free);
    * the remaining scatter/base terms are order-of-magnitude anchors
      chosen so the model reproduces every row ordering of the ablation
      table.

    :func:`calibrate` refits the measurable subset from fresh benchmark
    artefacts or from :mod:`repro.obs` traces and installs the result as
    the process-wide model (invalidating the plan cache).
    """

    coefficients: Mapping[str, float] = field(default_factory=dict)
    source: str = "seeded from benchmarks/results (PR 8)"

    def coefficient(self, name: str) -> float:
        """One named coefficient, falling back to the shipped default."""
        value = self.coefficients.get(name)
        if value is None:
            value = _DEFAULT_COEFFICIENTS[name]
        return float(value)

    def predict(self, method: str, features: Mapping[str, object]) -> float:
        """Predicted wall seconds of ``method`` on a problem's features."""
        c = self.coefficient
        n = float(features["n"])
        nx = float(features["nx"])
        ny = float(features["ny"])
        npx = nx * ny
        patch = float(features["patch"])
        workers = float(features.get("workers", 1))
        logn = math.log2(max(n, 2.0))
        eff = max(1.0, workers ** _PARALLEL_EFFICIENCY_EXPONENT)

        if method == "naive":
            return c("naive_pp") * n * npx
        if method == "parallel":
            return (c("parallel_overhead") * workers
                    + c("parallel_pp") * n * npx / eff)
        if method == "grid":
            cost = (c("grid_base") + c("grid_pp") * n * patch
                    + c("grid_px") * npx)
            if features.get("dtype") == "float32":
                cost *= c("grid_f32_factor")
            return cost
        if method == "sweep":
            return c("sweep_base") + c("sweep_unit") * ny * (nx + n)
        if method == "dualtree":
            tau = features.get("tau")
            tau = 1e-3 if tau is None else max(float(tau), 1e-12)
            # Tighter budgets refine more pairs; the sqrt law is a
            # documented heuristic, clipped so a wild tau cannot blow
            # the prediction past physical plausibility.
            tau_factor = min(4.0, max(0.25, math.sqrt(1e-3 / tau)))
            return (c("dualtree_base")
                    + c("dualtree_build") * n * logn
                    + c("dualtree_refine") * npx * logn * tau_factor / eff)
        if method == "bounds":
            eps = features.get("eps")
            eps = 0.05 if eps is None else max(float(eps), 1e-3)
            return c("bounds_unit") * npx * logn / eps
        if method == "sampling":
            sample = features.get("sample")
            m = min(n, 2000.0 if sample is None else float(sample))
            return c("sampling_base") + c("naive_pp") * m * npx
        raise ParameterError(f"cost model has no backend named {method!r}")


_DEFAULT_COEFFICIENTS: dict[str, float] = {
    "naive_pp": 3.2e-8,
    "parallel_pp": 3.0e-8,
    "parallel_overhead": 2.0e-3,
    "grid_base": 4.0e-3,
    "grid_pp": 3.0e-9,
    "grid_px": 5.0e-9,
    "grid_f32_factor": 1.45,
    "sweep_base": 8.0e-3,
    "sweep_unit": 2.0e-8,
    "dualtree_base": 2.0e-2,
    "dualtree_build": 1.4e-7,
    "dualtree_refine": 5.1e-7,
    "bounds_unit": 4.6e-6,
    "sampling_base": 2.0e-2,
}

_model = CostModel()
#: Bumped on every model (re)installation; part of the plan-cache key so
#: recalibration invalidates every cached plan.
_model_generation = 0

_plan_cache: "OrderedDict[tuple, KDVPlan]" = OrderedDict()
_cache_hits = 0
_cache_misses = 0


def cost_model() -> CostModel:
    """The process-wide cost model the planner currently uses."""
    return _model


def _set_model(model: CostModel) -> None:
    global _model, _model_generation
    _model = model
    _model_generation += 1
    _plan_cache.clear()


def plan_cache_info() -> dict:
    """Plan-cache statistics: hits, misses, current size, max size."""
    return {
        "hits": _cache_hits,
        "misses": _cache_misses,
        "size": len(_plan_cache),
        "maxsize": PLAN_CACHE_MAXSIZE,
    }


def clear_plan_cache() -> None:
    """Drop every cached plan and reset the hit/miss counters."""
    global _cache_hits, _cache_misses
    _plan_cache.clear()
    _cache_hits = 0
    _cache_misses = 0


def _problem_features(problem: KDVProblem, requested: Mapping[str, object],
                      workers: int) -> dict:
    """Cost-model inputs from a problem plus the caller's keyword hints."""
    dx, dy = problem.bbox.pixel_size(problem.nx, problem.ny)
    radius = effective_radius(problem.kernel, problem.bandwidth)
    npx = problem.nx * problem.ny
    patch = min(float(npx),
                math.pi * (radius / dx + 1.0) * (radius / dy + 1.0))
    return {
        "n": problem.n,
        "nx": problem.nx,
        "ny": problem.ny,
        "patch": patch,
        "bandwidth": float(problem.bandwidth),
        "kernel": problem.kernel.name,
        "poly": problem.kernel.poly_coeffs(problem.bandwidth) is not None,
        "sub_pixel": problem.bandwidth < 2.0 * max(dx, dy),
        "weighted": problem.weights is not None,
        "workers": workers,
        "dtype": requested.get("dtype"),
        "tau": requested.get("tau"),
        "eps": requested.get("eps"),
        "sample": requested.get("sample"),
    }


def _infeasible_reason(method: str, features: Mapping[str, object]) -> str | None:
    """Why ``method`` cannot run this problem, or ``None`` if it can."""
    if method == "sweep":
        if not features["poly"]:
            return "kernel is not polynomial in d^2"
        if features["sub_pixel"]:
            return "sub-pixel bandwidth stresses the sweep's cancellation"
    if method in _WEIGHT_REJECTING and features["weighted"]:
        return "rejects per-point weights"
    return None


def _normalise_requested(requested: Mapping[str, object] | None) -> dict:
    requested = {} if requested is None else dict(requested)
    unknown = set(requested) - set(_METHOD_ONLY_PARAMS)
    if unknown:
        raise ParameterError(
            f"unknown method-specific parameter(s) for the auto planner: "
            f"{', '.join(sorted(unknown))}"
        )
    return {k: v for k, v in requested.items() if v is not None}


def _plan_key(problem: KDVProblem, requested: Mapping[str, object],
              workers: int) -> tuple:
    """Hashable problem signature for the LRU plan cache.

    Two problems with the same shape (n, grid, bandwidth, kernel,
    weightedness) and the same hints plan identically — the cost model
    never looks at the coordinates themselves — so the signature
    deliberately omits the point data.
    """
    return (
        problem.n, problem.nx, problem.ny, float(problem.bandwidth),
        problem.kernel.name, problem.weights is not None,
        tuple(sorted((k, str(v)) for k, v in requested.items())),
        workers, _model_generation,
    )


def _compute_plan(problem: KDVProblem, requested: Mapping[str, object],
                  workers: int) -> KDVPlan:
    """The cold planning path (cache miss)."""
    features = _problem_features(problem, requested, workers)

    # Candidate pool: the exact family, widened by any backend that
    # honours an explicitly requested keyword (eps= pulls in bounds and
    # sampling, seed= pulls in sampling, ...).
    candidates = list(AUTO_CANDIDATES)
    for name in requested:
        for method in _METHOD_ONLY_PARAMS[name]:
            if method not in candidates:
                candidates.append(method)

    infeasible: dict[str, str] = {}
    feasible: list[str] = []
    for method in candidates:
        reason = _infeasible_reason(method, features)
        if reason is None:
            feasible.append(method)
        else:
            infeasible[method] = reason
    # The exact family always leaves grid/naive/parallel/dualtree
    # feasible, so the pool can never be empty.

    def honoured(method: str) -> list[str]:
        return [k for k in requested if method in _METHOD_ONLY_PARAMS[k]]

    best_score = max(len(honoured(m)) for m in feasible)
    pool = [m for m in feasible if len(honoured(m)) == best_score]

    costs = {m: _model.predict(m, features) for m in feasible}
    method = min(pool, key=lambda m: (costs[m], candidates.index(m)))

    kwargs = {k: v for k, v in requested.items()
              if method in _METHOD_ONLY_PARAMS[k]}
    dropped = {
        k: (f"no single backend honours the full hint set; resolved "
            f"method {method!r} does not honour {k}=")
        for k in requested if k not in kwargs
    }

    bits = [f"predicted {costs[method] * 1e3:.1f} ms"]
    if best_score:
        bits.append(f"honours {'/'.join(sorted(kwargs))}=")
    runners = sorted((c, m) for m, c in costs.items() if m != method)
    if runners:
        bits.append(f"next {runners[0][1]} at {runners[0][0] * 1e3:.1f} ms")
    if workers > 1:
        bits.append(f"{workers} workers available")
    for m, reason in infeasible.items():
        bits.append(f"{m} infeasible ({reason})")
    rationale = f"{method}: " + "; ".join(bits)

    return KDVPlan(
        method=method, kwargs=kwargs, dropped=dropped,
        cost=costs[method], costs=costs, rationale=rationale,
        features=features, workers=workers,
    )


def plan_kdv(problem: KDVProblem,
             requested: Mapping[str, object] | None = None) -> KDVPlan:
    """Resolve ``method="auto"`` for a problem into a :class:`KDVPlan`.

    Parameters
    ----------
    problem:
        The validated KDV instance to plan for.
    requested:
        The caller's *explicit* method-specific keywords (a subset of
        ``eps/delta/sample/seed/index/tau/workers/backend/dtype``;
        ``None`` values are treated as "not requested").  They act as
        planning hints — see the module docstring for the semantics.

    Returns the cached plan when an identical problem signature was
    planned before (``plan.cache_hit`` is true, and the
    ``kdv.plan.cache_hit`` counter fires when tracing is active).
    """
    global _cache_hits, _cache_misses
    if not isinstance(problem, KDVProblem):
        raise ParameterError("plan_kdv expects a KDVProblem")
    requested = _normalise_requested(requested)
    workers = parallel.resolve_workers(requested.get("workers"))

    key = _plan_key(problem, requested, workers)
    cached = _plan_cache.get(key)
    if cached is not None:
        _plan_cache.move_to_end(key)
        _cache_hits += 1
        obs.count("kdv.plan.cache_hit")
        return cached

    with obs.span("kdv.plan"):
        plan = _compute_plan(problem, requested, workers)
    _cache_misses += 1
    obs.count("kdv.plan.cache_miss")
    obs.count(f"kdv.plan.method.{plan.method}")
    if plan.dropped:
        obs.count("kdv.plan.dropped_kwargs", len(plan.dropped))
    # The hit-marked twin is built once here so cache hits return a
    # ready-made object instead of paying dataclasses.replace per call.
    _plan_cache[key] = replace(plan, cache_hit=True)
    while len(_plan_cache) > PLAN_CACHE_MAXSIZE:
        _plan_cache.popitem(last=False)
    return plan


# --------------------------------------------------------------------------
# Calibration: refresh coefficients from benchmark artefacts / obs traces.
# --------------------------------------------------------------------------

_ABLATION_ROW = re.compile(
    r"^(?P<method>naive|grid|sweep|parallel)\s+(?P<n>\d+)\s+"
    r"(?P<ms>[0-9.]+)\s*ms"
)
_ABLATION_GRID = re.compile(r"(?P<nx>\d+)x(?P<ny>\d+)\s+grid")


def _fit_from_ablation_text(text: str, fitted: dict[str, float]) -> None:
    """Per-unit slopes from ``ablation_kdv_methods.txt`` rows."""
    grid_match = _ABLATION_GRID.search(text)
    if grid_match is None:
        return
    nx = int(grid_match.group("nx"))
    ny = int(grid_match.group("ny"))
    npx = nx * ny
    slopes: dict[str, list[float]] = {}
    for line in text.splitlines():
        row = _ABLATION_ROW.match(line.strip())
        if row is None:
            continue
        method = row.group("method")
        n = int(row.group("n"))
        seconds = float(row.group("ms")) / 1e3
        if method in ("naive", "parallel"):
            slopes.setdefault(f"{method}_pp", []).append(seconds / (n * npx))
        elif method == "sweep":
            slopes.setdefault("sweep_unit", []).append(
                seconds / (ny * (nx + n))
            )
    for name, values in slopes.items():
        # The largest n dominates the asymptotic slope; use the median
        # to stay robust to the setup-dominated small rows.
        values.sort()
        fitted[name] = values[len(values) // 2]


def _fit_from_bench_json(payload: dict, fitted: dict[str, float]) -> None:
    """Phase coefficients from ``BENCH_dualtree_parallel`` / ``BENCH_scatter_core``."""
    n = payload.get("n_events")
    grid = payload.get("grid")
    if not n or not grid:
        return
    npx = int(grid[0]) * int(grid[1])
    logn = math.log2(max(float(n), 2.0))
    plan_stats = payload.get("plan_stats") or {}
    if "plan_seconds" in plan_stats:
        fitted["dualtree_build"] = (
            float(plan_stats["plan_seconds"]) / (n * logn)
        )
    f64 = f32 = None
    for row in payload.get("results", ()):
        stage = row.get("stage")
        variant = row.get("variant")
        if stage == "dualtree_execute" and variant == "scatter_core":
            fitted["dualtree_refine"] = (
                float(row["mean_seconds"]) / (npx * logn)
            )
        elif stage == "gridcut" and variant == "scatter_core_float64":
            f64 = float(row["mean_seconds"])
        elif stage == "gridcut" and variant == "scatter_core_float32":
            f32 = float(row["mean_seconds"])
    if f64 and f32:
        fitted["grid_f32_factor"] = max(1.0, f32 / f64)


def _fit_from_traces(traces: Iterable, fitted: dict[str, float]) -> None:
    """Multiplicative per-backend rescale from measured ``kdv`` task traces.

    Each :class:`~repro.obs.Diagnostics` produced by a traced
    ``kde_grid(method="auto")`` run carries the plan (predicted cost +
    features) and the task's measured wall seconds.  The ratio
    measured/predicted, geometric-averaged per backend, rescales that
    backend's dominant coefficient — the "refresh from production
    traces" loop the serve layer will drive.
    """
    dominant = {
        "naive": "naive_pp", "parallel": "parallel_pp", "grid": "grid_pp",
        "sweep": "sweep_unit", "dualtree": "dualtree_refine",
        "bounds": "bounds_unit", "sampling": "sampling_base",
    }
    log_ratios: dict[str, list[float]] = {}
    for diagnostics in traces:
        record_ = getattr(diagnostics, "records", {}).get("kdv.plan")
        if not isinstance(record_, Mapping):
            continue
        predicted = float(record_.get("cost") or 0.0)
        root = getattr(diagnostics, "root", None)
        measured = float(getattr(root, "seconds", 0.0) or 0.0)
        method = record_.get("method")
        if predicted <= 0.0 or measured <= 0.0 or method not in dominant:
            continue
        log_ratios.setdefault(method, []).append(
            math.log(measured / predicted)
        )
    for method, ratios in log_ratios.items():
        scale = math.exp(sum(ratios) / len(ratios))
        name = dominant[method]
        fitted[name] = _model.coefficient(name) * scale


def calibrate(results_dir: str | Path | None = None,
              traces: Iterable | None = None) -> CostModel:
    """Refit the cost model and install it process-wide.

    Parameters
    ----------
    results_dir:
        A ``benchmarks/results`` directory.  ``ablation_kdv_methods.txt``
        seeds the gather/sweep slopes; ``BENCH_dualtree_parallel.json``
        and ``BENCH_scatter_core.json`` seed the dual-tree phase and
        float32 coefficients.  Missing or unparseable files are skipped.
    traces:
        Optional iterable of :class:`~repro.obs.Diagnostics` records from
        traced ``kde_grid(method="auto")`` runs; measured-vs-predicted
        ratios rescale each backend's dominant coefficient.

    Returns the installed :class:`CostModel`.  Installation bumps the
    model generation, invalidating every cached plan.
    """
    fitted = dict(_model.coefficients)
    sources = []
    if results_dir is not None:
        results_dir = Path(results_dir)
        ablation = results_dir / "ablation_kdv_methods.txt"
        if ablation.is_file():
            _fit_from_ablation_text(ablation.read_text(), fitted)
            sources.append(ablation.name)
        for name in ("BENCH_dualtree_parallel.json", "BENCH_scatter_core.json"):
            path = results_dir / name
            if not path.is_file():
                continue
            try:
                payload = json.loads(path.read_text())
            except ValueError:
                continue
            _fit_from_bench_json(payload, fitted)
            sources.append(name)
    if traces is not None:
        _fit_from_traces(traces, fitted)
        sources.append("obs traces")
    model = CostModel(
        coefficients=fitted,
        source="calibrated from " + (", ".join(sources) or "nothing new"),
    )
    _set_model(model)
    return model
