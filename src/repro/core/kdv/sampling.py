"""Sampling-based KDV: the paper's data-sampling method family.

Following the coreset line of work [77-79, 110, 111], a uniform random
subset ``S`` of size ``m`` is drawn and the reweighted estimator of
Equation 7 is evaluated:

    F_S(q) = (n / m) * sum_{p in S} K(q, p).

Each summand is an i.i.d. draw with mean ``F_P(q) / n`` and range
``[0, K_max]``, so Hoeffding's inequality gives, for every fixed pixel,

    P( |F_S(q) - F_P(q)| > eps * n * K_max ) <= 2 exp(-2 m eps^2),

which is the "theoretically close with a probabilistic guarantee" property
the paper describes.  :func:`sample_size` inverts the bound.

The subset itself is evaluated with the exact cutoff backend, so the only
error is the sampling error.
"""

from __future__ import annotations

import math

import numpy as np

from ... import obs
from ..._validation import check_probability, check_positive, resolve_rng
from ...errors import ParameterError
from .base import KDVProblem
from .gridcut import kde_gridcut

__all__ = ["sample_size", "kde_sampling"]


def sample_size(eps: float, delta: float) -> int:
    """Hoeffding sample size for error ``eps * n * K_max`` with prob. 1 - delta.

    ``m = ceil( ln(2 / delta) / (2 eps^2) )`` — independent of ``n``, which
    is exactly why sampling methods win at scale.
    """
    eps = check_positive(eps, "eps")
    delta = check_probability(delta, "delta")
    return int(math.ceil(math.log(2.0 / delta) / (2.0 * eps * eps)))


def kde_sampling(
    problem: KDVProblem,
    eps: float = 0.05,
    delta: float = 0.05,
    sample: int | None = None,
    seed=None,
):
    """KDV on a reweighted uniform sample (Equation 7).

    Parameters
    ----------
    problem:
        The KDV instance.  Pre-existing per-point weights are not supported
        (the Hoeffding analysis assumes unit weights).
    eps, delta:
        Per-pixel guarantee: absolute error at most ``eps * n * K_max``
        with probability ``1 - delta``, where ``K_max`` is the kernel's
        peak value.  Ignored when ``sample`` is given explicitly.
    sample:
        Explicit subset size; overrides the (eps, delta) computation.
    seed:
        RNG seed for the subset draw.
    """
    if problem.weights is not None:
        raise ParameterError("the sampling backend does not support point weights")
    n = problem.n
    m = sample_size(eps, delta) if sample is None else int(sample)
    if m < 1:
        raise ParameterError(f"sample size must be >= 1, got {m}")
    if m >= n:
        # Sampling cannot help; fall back to the exact cutoff backend.
        obs.count("kdv.sample_size", n)
        return kde_gridcut(problem)
    obs.count("kdv.sample_size", m)

    rng = resolve_rng(seed)
    idx = rng.choice(n, size=m, replace=False)
    weights = np.full(m, n / m, dtype=np.float64)
    sub = KDVProblem(
        problem.points[idx],
        problem.bbox,
        (problem.nx, problem.ny),
        problem.bandwidth,
        problem.kernel,
        weights=weights,
    )
    return kde_gridcut(sub)
