"""Cutoff ("scatter") KDV: exploit the kernel's bounded support.

For a finite-support kernel only the pixels within the support radius of a
point receive any mass, so instead of asking "which points affect this
pixel?" (gather) we ask "which pixels does this point affect?" (scatter).
Each point touches an O((r/dx) * (r/dy)) pixel patch, giving total cost
O(n * patch + XY) — the simplest of the paper's "range-restricted"
accelerations, and exact for every finite-support kernel.

Infinite-support kernels (Gaussian, exponential) are truncated at the
radius where the kernel falls below ``tail``; the absolute error is then at
most ``total_weight * tail``.
"""

from __future__ import annotations

import numpy as np

from ... import obs
from ..._validation import check_probability
from .base import KDVProblem, effective_radius

__all__ = ["kde_gridcut"]


def kde_gridcut(problem: KDVProblem, tail: float = 1e-12):
    """KDV by scattering each point onto its pixel patch.

    ``tail`` only matters for infinite-support kernels; see module docs.
    """
    tail = check_probability(tail, "tail")

    xs, ys = problem.pixel_centers()
    dx, dy = problem.bbox.pixel_size(problem.nx, problem.ny)
    x0, y0 = xs[0], ys[0]
    nx, ny = problem.nx, problem.ny
    b = problem.bandwidth
    kernel = problem.kernel
    radius = effective_radius(kernel, b, tail)
    r2 = radius * radius

    values = np.zeros((nx, ny), dtype=np.float64)
    pts = problem.points
    weights = problem.weights

    scatters = patch_pixels = 0
    for row in range(pts.shape[0]):
        px, py = pts[row]
        # Pixel index window covered by the disc of `radius` around (px, py).
        ix_lo = max(int(np.ceil((px - radius - x0) / dx)), 0)
        ix_hi = min(int(np.floor((px + radius - x0) / dx)), nx - 1)
        iy_lo = max(int(np.ceil((py - radius - y0) / dy)), 0)
        iy_hi = min(int(np.floor((py + radius - y0) / dy)), ny - 1)
        if ix_lo > ix_hi or iy_lo > iy_hi:
            continue
        local_x = xs[ix_lo:ix_hi + 1] - px
        local_y = ys[iy_lo:iy_hi + 1] - py
        d2 = local_x[:, None] ** 2 + local_y[None, :] ** 2
        patch = kernel.evaluate_sq(d2, b)
        if radius < kernel.support_radius(b):  # truncated infinite kernel
            patch = np.where(d2 <= r2, patch, 0.0)
        if weights is not None:
            patch = patch * weights[row]
        values[ix_lo:ix_hi + 1, iy_lo:iy_hi + 1] += patch
        scatters += 1
        patch_pixels += patch.size
    obs.count("kdv.scatters", scatters)
    obs.count("kdv.patch_pixels", patch_pixels)
    return problem.make_grid(values)
