"""Cutoff ("scatter") KDV: exploit the kernel's bounded support.

For a finite-support kernel only the pixels within the support radius of a
point receive any mass, so instead of asking "which points affect this
pixel?" (gather) we ask "which pixels does this point affect?" (scatter).
Each point touches an O((r/dx) * (r/dy)) pixel patch, giving total cost
O(n * patch + XY) — the simplest of the paper's "range-restricted"
accelerations, and exact for every finite-support kernel.

Infinite-support kernels (Gaussian, exponential) are truncated at the
radius where the kernel falls below ``tail``; the absolute error is then at
most ``total_weight * tail``.

The patch evaluation dispatches through the shared
:class:`repro.core.scatter.PatchScatter` core: ``dtype="float64"``
(default) is bit-identical to the historical per-point loop, while
``dtype="float32"`` buckets events by output tile and evaluates through a
precomputed kernel table under the bounded-error contract documented in
``docs/PERFORMANCE.md``.
"""

from __future__ import annotations

import numpy as np

from ... import obs
from ..scatter import PatchScatter
from .base import KDVProblem

__all__ = ["kde_gridcut"]


def kde_gridcut(problem: KDVProblem, tail: float = 1e-12, dtype=None):
    """KDV by scattering each point onto its pixel patch.

    ``tail`` only matters for infinite-support kernels; see module docs.
    ``dtype`` selects the scatter core's accuracy mode (``None`` means
    float64, the bit-exact default).
    """
    scatterer = PatchScatter(
        problem.bbox,
        (problem.nx, problem.ny),
        problem.bandwidth,
        kernel=problem.kernel,
        tail=tail,
        dtype=np.float64 if dtype is None else dtype,
    )
    values = np.zeros((problem.nx, problem.ny), dtype=scatterer.dtype)
    scatters, patch_pixels = scatterer.scatter(
        values, problem.points, problem.weights
    )
    obs.count("kdv.scatters", scatters)
    obs.count("kdv.patch_pixels", patch_pixels)
    return problem.make_grid(values)
