"""Bound-based KDV: the paper's function-approximation method family.

Following QUAD [25] / KARL [34], every tree node gives lower and upper
bounds on its points' kernel contribution: with ``m`` points under a node
and query-to-node distance bounds ``dmin <= dist <= dmax``, monotonicity of
the kernel yields

    m * K(dmax)  <=  contribution  <=  m * K(dmin).

Starting from the root, the pixel's density is bracketed by ``[LB, UB]``;
the frontier node with the largest bound gap is refined (its children
replace it, or its leaf points are summed exactly) until

    UB <= (1 + eps) * LB            (Equation 6)

at which point ``R(q) = (LB + UB) / 2`` satisfies
``(1 - eps) F(q) <= R(q) <= (1 + eps) F(q)``.

Works with any monotone non-increasing kernel — including the Gaussian,
which the sweep-line method cannot handle — and with either the kd-tree or
the ball-tree as carrier index (both cited by the paper).
"""

from __future__ import annotations

import heapq

import numpy as np

from ... import obs
from ...errors import ParameterError
from ...index import BallTree, KDTree
from .base import KDVProblem

__all__ = ["kde_bounds", "kde_point_bounds"]


def kde_point_bounds(tree, kernel, bandwidth: float, x: float, y: float, eps: float,
                     _counters: dict | None = None) -> float:
    """Approximate kernel sum at one query with the Equation 6 guarantee.

    ``_counters`` (internal) is a mutable dict the caller passes to
    accumulate ``refined`` / ``scanned`` observability counters without
    changing the return type.
    """
    b = bandwidth
    root = 0
    dmin, dmax = tree.node_bounds(root, x, y)
    m = tree.node_count(root)
    ub_root = m * float(kernel.evaluate(dmin, b))
    lb_root = m * float(kernel.evaluate(dmax, b))

    exact = 0.0  # mass resolved exactly (leaf scans, zero-width nodes)
    lb_total = lb_root
    ub_total = ub_root
    # Max-heap on the bound gap; entries: (-gap, counter, node, lb, ub).
    counter = 0
    heap = [(-(ub_root - lb_root), counter, root, lb_root, ub_root)]

    while heap:
        if ub_total <= (1.0 + eps) * lb_total:
            break
        neg_gap, _, node, lb, ub = heapq.heappop(heap)
        if -neg_gap <= 0.0:
            # Remaining frontier nodes are all tight; bounds are equal.
            heapq.heappush(heap, (neg_gap, counter, node, lb, ub))
            break
        lb_total -= lb
        ub_total -= ub
        if _counters is not None:
            _counters["refined"] += 1
        if tree.is_leaf(node):
            block = tree.node_points(node)
            d2 = (block[:, 0] - x) ** 2 + (block[:, 1] - y) ** 2
            exact += float(kernel.evaluate_sq(d2, b).sum())
            if _counters is not None:
                _counters["scanned"] += block.shape[0]
        else:
            for child in tree.children(node):
                cmin, cmax = tree.node_bounds(child, x, y)
                m = tree.node_count(child)
                c_ub = m * float(kernel.evaluate(cmin, b))
                c_lb = m * float(kernel.evaluate(cmax, b))
                lb_total += c_lb
                ub_total += c_ub
                counter += 1
                heapq.heappush(heap, (-(c_ub - c_lb), counter, child, c_lb, c_ub))
    return exact + 0.5 * (lb_total + ub_total)


def kde_bounds(
    problem: KDVProblem,
    eps: float = 0.05,
    index: str = "kdtree",
    leaf_size: int = 32,
):
    """KDV with a per-pixel multiplicative (1 +/- eps) guarantee.

    Parameters
    ----------
    problem:
        The KDV instance.  Per-point weights are not supported by this
        backend (the node bounds assume unit weights).
    eps:
        Relative approximation guarantee of Equation 6; ``eps = 0`` forces
        exact evaluation (every node refines down to leaves).
    index:
        ``"kdtree"`` or ``"balltree"`` — the carrier index structure.
    leaf_size:
        Leaf size of the carrier index.
    """
    if problem.weights is not None:
        raise ParameterError("the bound-based backend does not support point weights")
    eps = float(eps)
    if eps < 0.0:
        raise ParameterError(f"eps must be non-negative, got {eps}")
    if index == "kdtree":
        tree = KDTree(problem.points, leaf_size=leaf_size)
    elif index == "balltree":
        tree = BallTree(problem.points, leaf_size=leaf_size)
    else:
        raise ParameterError(f"index must be 'kdtree' or 'balltree', got {index!r}")

    xs, ys = problem.pixel_centers()
    values = np.empty((problem.nx, problem.ny), dtype=np.float64)
    kernel = problem.kernel
    b = problem.bandwidth
    counters = {"refined": 0, "scanned": 0} if obs.is_active() else None
    for i, x in enumerate(xs):
        for j, y in enumerate(ys):
            values[i, j] = kde_point_bounds(
                tree, kernel, b, float(x), float(y), eps, _counters=counters
            )
    if counters is not None:
        obs.count("kdv.nodes_refined", counters["refined"])
        obs.count("kdv.points_scanned", counters["scanned"])
    return problem.make_grid(values)
