"""Core analytics: every tool of the paper's Table 1 plus the §2.2/§2.3 variants.

Subpackages / modules:

* :mod:`repro.core.kernels` — Table 2 kernels and extensions
* :mod:`repro.core.scatter` — the shared cache-blocked kernel-scatter core
* :mod:`repro.core.kdv` — kernel density visualisation (4 method families)
* :mod:`repro.core.nkdv` — network KDV
* :mod:`repro.core.stkdv` — spatiotemporal KDV
* :mod:`repro.core.kfunction` — K-function, network K, spatiotemporal K
* :mod:`repro.core.interpolation` — IDW and kriging
* :mod:`repro.core.autocorrelation` — Moran's I and Getis-Ord
* :mod:`repro.core.clustering` — DBSCAN and hotspot extraction
* :mod:`repro.core.pipeline` — the end-to-end hotspot workflow
* :mod:`repro.core.request` — unified Request/Plan/Execute API

The blessed serving surface — what :mod:`repro.serve` dispatches and what
new callers should reach for — is re-exported here: :func:`kde_grid`,
:func:`k_function_plot`, :class:`HotspotAnalysis`, and the request layer
(:class:`AnalyticsRequest` family, :func:`plan_request`,
:func:`execute_request`).
"""

from . import (
    autocorrelation,
    clustering,
    csr_tests,
    interpolation,
    kdv,
    kfunction,
    scatter,
)
from .csr_tests import ClarkEvansResult, QuadratTestResult, clark_evans, quadrat_test
from .kdv import kde_grid
from .kernels import KERNELS, Kernel, get_kernel
from .kfunction import k_function_plot
from .nkdv import NKDVResult, nkdv
from .pipeline import HotspotAnalysis, HotspotReport
from .rates import empirical_bayes, spatial_empirical_bayes
from .request import (
    AnalyticsRequest,
    HotspotRequest,
    KDVRequest,
    KFunctionRequest,
    REQUEST_KINDS,
    RequestPlan,
    execute_request,
    plan_request,
    request_from_dict,
)
from .stkdv import STKDVResult, stkdv
from .stnkdv import STNKDVResult, stnkdv

__all__ = [
    "AnalyticsRequest",
    "HotspotRequest",
    "KDVRequest",
    "KFunctionRequest",
    "REQUEST_KINDS",
    "RequestPlan",
    "execute_request",
    "k_function_plot",
    "kde_grid",
    "plan_request",
    "request_from_dict",
    "ClarkEvansResult",
    "HotspotAnalysis",
    "QuadratTestResult",
    "clark_evans",
    "quadrat_test",
    "empirical_bayes",
    "spatial_empirical_bayes",
    "csr_tests",
    "HotspotReport",
    "KERNELS",
    "Kernel",
    "NKDVResult",
    "STKDVResult",
    "STNKDVResult",
    "autocorrelation",
    "clustering",
    "get_kernel",
    "interpolation",
    "kdv",
    "kfunction",
    "nkdv",
    "scatter",
    "stkdv",
    "stnkdv",
]
