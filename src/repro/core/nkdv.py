"""Network kernel density visualisation (NKDV, paper §2.2 and Figure 3).

Planar KDV overestimates density across network gaps (two points can be
Euclidean-close but network-far); NKDV replaces the Euclidean distance in
the kernel with the shortest-path distance ``dist_G`` and rasterises the
network itself into *lixels* (linear pixels).

Backends:

* ``naive`` — one bounded Dijkstra per event (the textbook algorithm of
  Xie & Yan [96]);
* ``shared`` — one pair of bounded Dijkstras per *edge hosting events*
  (the aggregation idea of the fast algorithms [30]): all events on an
  edge reuse the two endpoint distance maps.

Both are exact and bounded by the bandwidth: nodes beyond ``b`` cannot
contribute, so Dijkstra is cut off there.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .. import obs
from .._validation import check_positive
from ..errors import ParameterError
from ..parallel import parallel_map
from ..network import (
    Lixelization,
    NetworkPosition,
    RoadNetwork,
    lixelize,
    node_distances,
    node_distances_with_split,
)
from .kernels import Kernel, get_kernel
from .scatter import scatter_line

__all__ = ["NKDVResult", "nkdv", "NKDV_METHODS", "NKDV_SPLITS"]

NKDV_METHODS = ("auto", "naive", "shared")
NKDV_SPLITS = ("none", "equal")


@dataclass(frozen=True)
class NKDVResult:
    """Per-lixel network densities plus the lixelization that defines them.

    ``diagnostics`` is the optional :class:`repro.obs.Diagnostics` record
    of the producing call (populated when tracing is enabled).
    """

    lixels: Lixelization
    densities: np.ndarray
    bandwidth: float
    kernel_name: str
    diagnostics: obs.Diagnostics | None = None

    @property
    def n_lixels(self) -> int:
        return int(self.densities.shape[0])

    def midpoint_coords(self) -> np.ndarray:
        """Planar coordinates of lixel midpoints (for plotting)."""
        return self.lixels.midpoint_coords()

    def density_at(self, pos: NetworkPosition) -> float:
        """Density of the lixel containing a network position."""
        return float(self.densities[self.lixels.locate(pos)])

    def hottest_lixel(self) -> int:
        return int(np.argmax(self.densities))

    def normalized(self) -> np.ndarray:
        lo, hi = float(self.densities.min()), float(self.densities.max())
        if hi == lo:
            return np.zeros_like(self.densities)
        return (self.densities - lo) / (hi - lo)

    def to_density_grid(self, size: tuple[int, int], bbox=None):
        """Rasterise the lixel densities onto a planar pixel grid.

        Each lixel is sampled densely along its segment and every touched
        pixel takes the *maximum* density of the lixels crossing it (max
        keeps thin corridors visible — a mean would wash them out against
        the zero background).  Pixels with no road keep zero.

        Returns a :class:`~repro.raster.DensityGrid` suitable for the same
        renderers as planar KDV (``write_ppm``, ``ascii_render``).
        """
        from ..geometry import BoundingBox
        from ..raster import DensityGrid

        network = self.lixels.network
        if bbox is None:
            bbox = BoundingBox.of_points(network.node_coords, margin=0.0)
        nx, ny = int(size[0]), int(size[1])
        dx, dy = bbox.pixel_size(nx, ny)
        values = np.zeros((nx, ny), dtype=np.float64)

        nodes = network.node_coords
        edge_nodes = network.edge_nodes
        lengths = network.edge_lengths
        lix = self.lixels
        step = 0.5 * min(dx, dy)  # sample spacing along the segment
        for k in range(lix.n_lixels):
            e = int(lix.lixel_edge[k])
            a = nodes[edge_nodes[e, 0]]
            b = nodes[edge_nodes[e, 1]]
            t0 = lix.lixel_start[k] / lengths[e]
            t1 = lix.lixel_stop[k] / lengths[e]
            seg_len = (t1 - t0) * lengths[e]
            samples = max(2, int(np.ceil(seg_len / step)) + 1)
            ts = np.linspace(t0, t1, samples)
            coords = (1.0 - ts)[:, None] * a + ts[:, None] * b
            ix = np.floor((coords[:, 0] - bbox.xmin) / dx).astype(np.int64)
            iy = np.floor((coords[:, 1] - bbox.ymin) / dy).astype(np.int64)
            inside = (ix >= 0) & (ix < nx) & (iy >= 0) & (iy < ny)
            if inside.any():
                np.maximum.at(values, (ix[inside], iy[inside]), self.densities[k])
        return DensityGrid(bbox, values)


def _effective_cutoff(kernel: Kernel, bandwidth: float) -> float:
    radius = kernel.support_radius(bandwidth)
    if np.isfinite(radius):
        return float(radius)
    return float(kernel.effective_radius(bandwidth))


def _lixel_target_arrays(network: RoadNetwork, lixels: Lixelization):
    edge_u = network.edge_nodes[lixels.lixel_edge, 0]
    edge_v = network.edge_nodes[lixels.lixel_edge, 1]
    edge_len = network.edge_lengths[lixels.lixel_edge]
    return edge_u, edge_v, edge_len


def _event_lixel_distances(
    dist_u_events: float,
    dist_v_events: float,
    event_edge: int,
    event_offset: float,
    lixels: Lixelization,
    lix_u: np.ndarray,
    lix_v: np.ndarray,
    lix_len: np.ndarray,
    du: np.ndarray,
    dv: np.ndarray,
) -> np.ndarray:
    """Shortest-path distance from one event to every lixel midpoint.

    ``du``/``dv`` are node-distance maps from the event's edge endpoints;
    ``dist_u_events``/``dist_v_events`` are the event's offsets to those
    endpoints, already folded into the maps by the caller for the naive
    backend (pass 0.0 then).  The kernel accumulation itself happens in
    :func:`repro.core.scatter.scatter_line`.
    """
    d_node = np.minimum(du + dist_u_events, dv + dist_v_events)
    d_lix = np.minimum(
        d_node[lix_u] + lixels.lixel_mid,
        d_node[lix_v] + (lix_len - lixels.lixel_mid),
    )
    span = lixels.lixels_of_edge(event_edge)
    direct = np.abs(lixels.lixel_mid[span] - event_offset)
    d_lix[span] = np.minimum(d_lix[span], direct)
    return d_lix


def _event_lixel_distances_split(
    network: RoadNetwork,
    event_edge: int,
    event_offset: float,
    lixels: Lixelization,
    lix_u: np.ndarray,
    lix_v: np.ndarray,
    lix_len: np.ndarray,
    d_node: np.ndarray,
    f_node: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Equal-split distances: mass divides over outgoing edges at junctions.

    Each lixel's distance is its *shortest-path* distance and its factor
    the split accumulated along that shortest path (the discontinuous
    equal-split of Okabe & Sugihara, evaluated on the shortest-path
    tree).  On networks without junctions (all degrees <= 2) every factor
    is 1 and the result coincides with the unsplit NKDV.  Returns
    ``(d_lix, f_lix)`` for :func:`repro.core.scatter.scatter_line`.
    """
    degrees = np.diff(network.adj_start)
    out_split = f_node / np.maximum(degrees - 1, 1)

    d_via_u = d_node[lix_u] + lixels.lixel_mid
    d_via_v = d_node[lix_v] + (lix_len - lixels.lixel_mid)
    pick_u = d_via_u <= d_via_v
    d_lix = np.where(pick_u, d_via_u, d_via_v)
    f_lix = np.where(pick_u, out_split[lix_u], out_split[lix_v])

    # The event's own edge: the direct along-edge route carries factor 1.
    span = lixels.lixels_of_edge(event_edge)
    direct = np.abs(lixels.lixel_mid[span] - event_offset)
    d_span = d_lix[span]
    f_span = f_lix[span]
    use_direct = direct <= d_span
    d_lix[span] = np.where(use_direct, direct, d_span)
    f_lix[span] = np.where(use_direct, 1.0, f_span)
    return d_lix, f_lix


#: Events (``naive``) per parallel task.  Fixed constants — never derived
#: from the worker count — so the partial-sum partition, and therefore the
#: bit pattern of the summed densities, is identical for every worker
#: count and backend.
_EVENTS_PER_TASK = 64
#: Edges (``shared``) per parallel task.
_EDGES_PER_TASK = 8


def _nkdv_block_task(task):
    """Kernel mass of one block of events/edges, in a fresh density array.

    Module-level so the ``process`` backend can pickle it.  Blocks are
    cut by the fixed ``_EVENTS_PER_TASK``/``_EDGES_PER_TASK`` constants
    and the caller sums the returned partials in block order, which
    reproduces the serial accumulation order bit-for-bit.
    """
    (method, split, network, lixels, kern, bandwidth, cutoff,
     block, edges, offsets, w_of, lix_u, lix_v, lix_len) = task
    densities = np.zeros(lixels.n_lixels, dtype=np.float64)
    if method == "naive":
        obs.count("nkdv.events", len(block))
    else:
        obs.count("nkdv.edge_visits", len(block))
        obs.count("nkdv.events",
                  int(np.isin(edges, np.asarray(block)).sum()))

    if split == "equal":
        if method == "naive":
            for i in block:
                u, v = network.edge_nodes[edges[i]]
                length = float(network.edge_lengths[edges[i]])
                d_node, f_node = node_distances_with_split(
                    network,
                    [
                        (int(u), float(offsets[i])),
                        (int(v), length - float(offsets[i])),
                    ],
                    cutoff=cutoff,
                )
                d_lix, f_lix = _event_lixel_distances_split(
                    network, int(edges[i]), float(offsets[i]),
                    lixels, lix_u, lix_v, lix_len, d_node, f_node,
                )
                hits = scatter_line(
                    densities, d_lix, kern, bandwidth, cutoff,
                    weight=float(w_of[i]), factors=f_lix,
                )
                if hits:
                    obs.count("nkdv.lixel_scatters", hits)
        else:
            for edge in block:
                u, v = network.edge_nodes[edge]
                length = float(network.edge_lengths[edge])
                du, fu = node_distances_with_split(network, int(u), cutoff=cutoff)
                dv, fv = node_distances_with_split(network, int(v), cutoff=cutoff)
                for i in np.flatnonzero(edges == edge):
                    o = float(offsets[i])
                    via_u = o + du
                    via_v = (length - o) + dv
                    pick_u = via_u <= via_v
                    d_node = np.where(pick_u, via_u, via_v)
                    f_node = np.where(pick_u, fu, fv)
                    d_lix, f_lix = _event_lixel_distances_split(
                        network, int(edge), o,
                        lixels, lix_u, lix_v, lix_len, d_node, f_node,
                    )
                    hits = scatter_line(
                        densities, d_lix, kern, bandwidth, cutoff,
                        weight=float(w_of[i]), factors=f_lix,
                    )
                    if hits:
                        obs.count("nkdv.lixel_scatters", hits)
    elif method == "naive":
        for i in block:
            u, v = network.edge_nodes[edges[i]]
            length = float(network.edge_lengths[edges[i]])
            dist = node_distances(
                network,
                [(int(u), float(offsets[i])), (int(v), length - float(offsets[i]))],
                cutoff=cutoff,
            )
            d_lix = _event_lixel_distances(
                0.0, 0.0, int(edges[i]), float(offsets[i]),
                lixels, lix_u, lix_v, lix_len, dist, dist,
            )
            hits = scatter_line(
                densities, d_lix, kern, bandwidth, cutoff,
                weight=float(w_of[i]),
            )
            if hits:
                obs.count("nkdv.lixel_scatters", hits)
    else:
        for edge in block:
            u, v = network.edge_nodes[edge]
            length = float(network.edge_lengths[edge])
            du = node_distances(network, int(u), cutoff=cutoff)
            dv = node_distances(network, int(v), cutoff=cutoff)
            for i in np.flatnonzero(edges == edge):
                d_lix = _event_lixel_distances(
                    float(offsets[i]), length - float(offsets[i]),
                    int(edge), float(offsets[i]),
                    lixels, lix_u, lix_v, lix_len, du, dv,
                )
                hits = scatter_line(
                    densities, d_lix, kern, bandwidth, cutoff,
                    weight=float(w_of[i]),
                )
                if hits:
                    obs.count("nkdv.lixel_scatters", hits)
    return densities


def nkdv(
    network: RoadNetwork,
    events,
    lixel_length: float,
    bandwidth: float,
    kernel: str | Kernel = "quartic",
    method: str = "auto",
    split: str = "none",
    lixels: Lixelization | None = None,
    event_weights=None,
    workers: int | None = None,
    backend: str | None = None,
) -> NKDVResult:
    """Network KDV: kernel density on lixel midpoints under ``dist_G``.

    Parameters
    ----------
    network:
        The road network.
    events:
        Sequence of :class:`~repro.network.NetworkPosition` events.
    lixel_length:
        Target lixel size (the network analogue of pixel size).
    bandwidth:
        Kernel bandwidth along the network.
    kernel:
        Any library kernel; infinite-support kernels are truncated at
        their 1e-12 tail radius.
    method:
        ``naive``, ``shared`` or ``auto`` (shared).
    split:
        ``"none"`` (default) — kernel of the shortest-path distance, the
        formulation of the paper's §2.2; ``"equal"`` — the Okabe-Sugihara
        equal-split variant, where mass divides over the outgoing edges at
        every junction (computed along the shortest-path tree).
    lixels:
        Optional pre-computed lixelization to reuse across calls.
    event_weights:
        Optional per-event non-negative weights (the network analogue of
        Equation 7's reweighting; also what network STKDV feeds in).
    workers, backend:
        Per-event (``naive``) / per-edge (``shared``) Dijkstra+scatter
        blocks fan out over the shared executor (:mod:`repro.parallel`).
        The block partition and the partial-sum order are fixed, so the
        densities are bit-identical for every worker count.
    """
    if len(events) == 0:
        raise ParameterError("events must not be empty")
    bandwidth = check_positive(bandwidth, "bandwidth")
    kern = get_kernel(kernel)
    cutoff = _effective_cutoff(kern, bandwidth)
    if lixels is None:
        lixels = lixelize(network, lixel_length)
    elif lixels.network is not network:
        raise ParameterError("lixels were built for a different network")

    edges = np.empty(len(events), dtype=np.int64)
    offsets = np.empty(len(events), dtype=np.float64)
    for i, ev in enumerate(events):
        network.check_position(ev)
        edges[i] = ev.edge
        offsets[i] = ev.offset
    if event_weights is None:
        w_of = np.ones(len(events), dtype=np.float64)
    else:
        w_of = np.asarray(event_weights, dtype=np.float64).ravel()
        if w_of.shape[0] != len(events):
            raise ParameterError(
                f"event_weights must have length {len(events)}, got {w_of.shape[0]}"
            )
        if np.any(w_of < 0) or not np.all(np.isfinite(w_of)):
            raise ParameterError("event_weights must be finite and non-negative")

    lix_u, lix_v, lix_len = _lixel_target_arrays(network, lixels)

    if method == "auto":
        method = "shared"
    if method not in ("naive", "shared"):
        raise ParameterError(
            f"unknown NKDV method {method!r}; available: {', '.join(NKDV_METHODS)}"
        )
    if split not in NKDV_SPLITS:
        raise ParameterError(
            f"unknown NKDV split {split!r}; available: {', '.join(NKDV_SPLITS)}"
        )

    if method == "naive":
        units = list(range(edges.shape[0]))
        per_task = _EVENTS_PER_TASK
    else:
        units = [int(e) for e in np.unique(edges)]
        per_task = _EDGES_PER_TASK
    with obs.task("nkdv") as trace:
        obs.count("nkdv.lixels", lixels.n_lixels)
        obs.count(f"nkdv.method.{method}")
        blocks = [units[i:i + per_task] for i in range(0, len(units), per_task)]
        tasks = [
            (method, split, network, lixels, kern, bandwidth, cutoff,
             block, edges, offsets, w_of, lix_u, lix_v, lix_len)
            for block in blocks
        ]
        partials = parallel_map(
            _nkdv_block_task, tasks, workers=workers, backend=backend
        )
        densities = np.zeros(lixels.n_lixels, dtype=np.float64)
        for partial in partials:  # fixed order: worker-count-invariant sums
            densities += partial

    return NKDVResult(
        lixels=lixels,
        densities=densities,
        bandwidth=bandwidth,
        kernel_name=kern.name,
        diagnostics=trace.diagnostics,
    )
