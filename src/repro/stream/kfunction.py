"""Delta-maintained windowed Ripley K over a sliding event window.

:class:`StreamingKFunction` keeps the ordered pair counts of the planar
K-function (paper Definition 2) current under window slides by charging
only the pairs that involve entering or leaving events:

* the **leaving** events are removed from a :class:`~repro.index.
  DynamicGridIndex` first, then their pair counts against the surviving
  window (plus the pairs among themselves) are subtracted;
* the **entering** events are counted against the surviving window (plus
  the pairs among themselves) and inserted.

Both directions cost one grid range query per changed event at the
largest threshold — the same multi-threshold ``searchsorted`` batching
as the batch grid backend — so a slide touching ``k`` events costs
``O(k)`` queries instead of the batch's ``O(n)``.

All maintained state is an integer pair-count vector, and the dynamic
index reproduces the static :class:`~repro.index.GridIndex` distance
arithmetic bit for bit, so the streamed K equals
:func:`~repro.core.kfunction.ripley_k` over the same window contents
exactly, not merely approximately.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from .. import obs
from .._validation import check_thresholds
from ..core.kfunction import ripley_normalize
from ..errors import ParameterError
from ..geometry import BoundingBox
from ..index import DynamicGridIndex
from ..obs import Diagnostics
from ..parallel import parallel_starmap
from .window import StreamDelta

__all__ = ["StreamKSnapshot", "StreamingKFunction"]

#: Query-chunk size of the parallel path.  Fixed — never derived from the
#: worker count — and harmless to determinism anyway: chunk results are
#: exact int64 counts, and integer addition is order-independent.
_QUERY_CHUNK = 512


def _query_chunk(
    index: DynamicGridIndex, pts: np.ndarray, ts: np.ndarray
) -> np.ndarray:
    """Summed multi-threshold counts of one query chunk (worker callable)."""
    rmax = float(ts[-1])
    out = np.zeros(ts.shape[0], dtype=np.int64)
    for row in pts:
        d = np.sort(index.neighbor_distances(row, rmax))
        out += np.searchsorted(d, ts, side="right")
    return out


@dataclass(frozen=True)
class StreamKSnapshot:
    """One refresh of the streamed K-function.

    ``k`` is Ripley's normalised estimate (``|A| counts / (n (n-1))``),
    ``counts`` the raw ordered pair counts (self-pairs excluded), both
    over the window contents at snapshot time.
    """

    thresholds: np.ndarray
    counts: np.ndarray
    k: np.ndarray
    n_points: int
    diagnostics: Diagnostics | None = None


class StreamingKFunction:
    """Maintained windowed Ripley K over a sliding event window.

    Parameters
    ----------
    bbox:
        Study window (also the normalising area of Ripley's estimate).
    thresholds:
        Sorted positive distance thresholds; the largest one sizes the
        dynamic grid's cells, so queries inspect at most a 3x3 block.
    workers, backend:
        Parallelism of the per-refresh range queries: deltas larger than
        one chunk fan their (read-only) queries through
        :func:`repro.parallel.parallel_starmap`.  Counts are integers, so
        the result is identical for every combination.

    Register with a :class:`~repro.stream.StreamEngine`; read the curve
    with :meth:`snapshot`, which equals the batch
    :func:`~repro.core.kfunction.ripley_k` of the window contents.
    """

    def __init__(
        self,
        bbox: BoundingBox,
        thresholds,
        workers: int | None = None,
        backend: str | None = None,
    ):
        self.bbox = bbox
        self.thresholds = check_thresholds(thresholds)
        rmax = float(self.thresholds.max())
        if rmax <= 0.0:
            raise ParameterError(
                "streaming K needs a positive largest threshold"
            )
        self._rmax = rmax
        self.workers = workers
        self.backend = backend
        self._index = DynamicGridIndex(bbox, rmax)
        self._slots: deque[int] = deque()
        self._counts = np.zeros(self.thresholds.shape[0], dtype=np.int64)
        self.events_applied = 0
        self.staleness = 0

    @property
    def n_points(self) -> int:
        """Number of events currently in the maintained pair counts."""
        return len(self._slots)

    @property
    def counts(self) -> np.ndarray:
        """Ordered pair counts per threshold, self-pairs excluded (a copy)."""
        return self._counts.copy()

    def _cross_counts(self, queries: np.ndarray) -> np.ndarray:
        """Pair counts of each query against the *current* index, summed."""
        n = queries.shape[0]
        if n == 0:
            return np.zeros(self.thresholds.shape[0], dtype=np.int64)
        if n <= _QUERY_CHUNK:
            return _query_chunk(self._index, queries, self.thresholds)
        jobs = [
            (self._index, queries[c0:c0 + _QUERY_CHUNK], self.thresholds)
            for c0 in range(0, n, _QUERY_CHUNK)
        ]
        with obs.span("kfunction.queries"):
            parts = parallel_starmap(
                _query_chunk, jobs, workers=self.workers, backend=self.backend
            )
        return np.sum(parts, axis=0, dtype=np.int64)

    def _within_counts(self, pts: np.ndarray) -> np.ndarray:
        """Unordered pair counts among ``pts`` (same arithmetic as batch)."""
        n = pts.shape[0]
        if n < 2:
            return np.zeros(self.thresholds.shape[0], dtype=np.int64)
        iu = np.triu_indices(n, k=1)
        d2 = (pts[iu[0], 0] - pts[iu[1], 0]) ** 2 \
            + (pts[iu[0], 1] - pts[iu[1], 1]) ** 2
        d2 = d2[d2 <= self._rmax * self._rmax]
        d = np.sort(np.sqrt(d2))
        return np.searchsorted(d, self.thresholds, side="right").astype(np.int64)

    def apply(self, delta: StreamDelta) -> "StreamingKFunction":
        """Subtract the leaving events' pairs, add the entering events'."""
        left = delta.left_points
        if delta.n_left:
            if delta.n_left > len(self._slots):
                raise ParameterError(
                    f"delta removes {delta.n_left} events but only "
                    f"{len(self._slots)} are present"
                )
            for _ in range(delta.n_left):
                self._index.remove(self._slots.popleft())
            # Every L-L pair and every L-survivor pair, each ordered pair
            # contributing 2 (the K-function counts ordered pairs).
            self._counts -= 2 * (
                self._cross_counts(left) + self._within_counts(left)
            )
        entered = delta.entered_points
        if delta.n_entered:
            self._counts += 2 * (
                self._cross_counts(entered) + self._within_counts(entered)
            )
            for x, y in entered:
                self._slots.append(self._index.insert(x, y))
        n_applied = delta.n_entered + delta.n_left
        self.events_applied += n_applied
        self.staleness += n_applied
        obs.count("stream.kfunction.events", n_applied)
        return self

    def snapshot(self) -> StreamKSnapshot:
        """The current windowed K curve.

        ``k`` equals the batch ``ripley_k(window.points, thresholds,
        bbox, method="grid")`` exactly: the maintained integer pair
        counts match the batch's, and both pass through the shared
        :func:`~repro.core.kfunction.ripley_normalize`.  Raises
        :class:`~repro.errors.ParameterError` with fewer than two events
        in the window, as the batch estimate does.  Diagnostics records:
        ``events_applied``, ``staleness`` (reset by this call),
        ``n_points``.
        """
        with obs.task("stream.kfunction") as t:
            t.record("events_applied", self.events_applied)
            t.record("staleness", self.staleness)
            t.record("n_points", self.n_points)
            k = ripley_normalize(self._counts, self.n_points, self.bbox)
        self.staleness = 0
        return StreamKSnapshot(
            thresholds=self.thresholds.copy(),
            counts=self.counts,
            k=k,
            n_points=self.n_points,
            diagnostics=t.diagnostics,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"StreamingKFunction(n={self.n_points}, "
            f"thresholds={self.thresholds.shape[0]}, rmax={self._rmax:g})"
        )
