"""Delta-maintained KDV surface with drift control and a dirty-tile ledger.

:class:`StreamingKDV` promotes the exact cutoff-scatter accumulator
(:class:`repro.core.kdv.KDVAccumulator`) into a window-driven analytic:

* each :class:`~repro.stream.StreamDelta` costs one kernel patch per
  entering/leaving event — the delta cost model — instead of one full
  scatter of the window per refresh;
* insert-then-remove cancellation leaves float rounding residue that
  grows with the *gross* weight ever scattered, so the accumulator's
  drift gauges are watched and the surface is re-scattered from the live
  window contents whenever ``drift_ratio`` crosses the policy ratio
  (mirroring the STKDV shared backend's drift-triggered re-centering);
* a :class:`DirtyTileLedger` records which fixed grid tiles changed mass
  since the last snapshot, so a renderer repaints only dirty tiles.  A
  tile is flagged **iff** one of its pixels actually changed: candidate
  tiles (from the patch windows of the changed events) are compared
  pixel-for-pixel before/after the scatter, not merely assumed dirty.
"""

from __future__ import annotations

import numpy as np

from .. import obs
from .._validation import check_positive
from ..core.kdv import KDVAccumulator
from ..core.kernels import Kernel
from ..errors import ParameterError
from ..geometry import BoundingBox
from ..raster import DensityGrid
from .window import StreamDelta

__all__ = ["DirtyTileLedger", "StreamingKDV"]


class DirtyTileLedger:
    """Boolean ledger over fixed ``tile x tile``-pixel grid tiles.

    Tracks which tiles of an ``(nx, ny)`` surface changed since the
    ledger was last cleared.  The tile lattice is fixed at construction
    (the last row/column of tiles may be smaller when ``tile`` does not
    divide the surface), so tile ids are stable across refreshes.
    """

    def __init__(self, nx: int, ny: int, tile: int = 32):
        tile = int(tile)
        if tile < 1:
            raise ParameterError(f"tile must be a positive integer, got {tile}")
        self.nx = int(nx)
        self.ny = int(ny)
        self.tile = tile
        self.tiles_nx = -(-self.nx // tile)
        self.tiles_ny = -(-self.ny // tile)
        self._dirty = np.zeros((self.tiles_nx, self.tiles_ny), dtype=bool)

    @property
    def mask(self) -> np.ndarray:
        """Current dirty mask, ``(tiles_nx, tiles_ny)`` bool (a copy)."""
        return self._dirty.copy()

    @property
    def dirty_count(self) -> int:
        """Number of tiles currently flagged dirty."""
        return int(self._dirty.sum())

    def mark(self, tx: int, ty: int) -> None:
        """Flag tile ``(tx, ty)`` as changed."""
        self._dirty[tx, ty] = True

    def bounds(self, tx: int, ty: int) -> tuple[int, int, int, int]:
        """Pixel bounds ``(x0, x1, y0, y1)`` of tile ``(tx, ty)`` (half-open)."""
        if not (0 <= tx < self.tiles_nx and 0 <= ty < self.tiles_ny):
            raise ParameterError(
                f"tile ({tx}, {ty}) outside the "
                f"{self.tiles_nx}x{self.tiles_ny} tile lattice"
            )
        x0 = tx * self.tile
        y0 = ty * self.tile
        return x0, min(x0 + self.tile, self.nx), y0, min(y0 + self.tile, self.ny)

    def take(self) -> np.ndarray:
        """Return the dirty mask and clear the ledger (snapshot semantics)."""
        out = self._dirty.copy()
        self._dirty[:] = False
        return out

    def dirty_tiles(self) -> tuple[tuple[int, int], ...]:
        """The currently dirty tiles as sorted ``(tx, ty)`` ids.

        The public accessor contract for consumers that invalidate by
        tile (the :mod:`repro.serve` tile cache, external renderers):
        read the dirty set here, repaint/evict those tiles, then call
        :meth:`clear_dirty` — no reaching into snapshot diagnostics
        dicts.  Does **not** clear the ledger (pair with
        :meth:`clear_dirty`, or use :meth:`take` for mask-and-clear in
        one step).
        """
        tx, ty = np.nonzero(self._dirty)
        return tuple(zip(tx.tolist(), ty.tolist()))

    def clear_dirty(self) -> None:
        """Clear every dirty flag (the partner of :meth:`dirty_tiles`)."""
        self._dirty[:] = False

    def clear(self) -> None:
        """Clear every dirty flag."""
        self._dirty[:] = False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DirtyTileLedger({self.tiles_nx}x{self.tiles_ny} tiles of "
            f"{self.tile}px, dirty={self.dirty_count})"
        )


class StreamingKDV:
    """Maintained KDV surface over a sliding event window.

    Parameters
    ----------
    bbox, size, bandwidth, kernel, tail, dtype:
        Forwarded to the underlying :class:`KDVAccumulator` (fixed
        window, lattice, kernel and bandwidth for the analytic's
        lifetime).
    tile:
        Side length in pixels of the dirty-tile lattice.
    rescatter_ratio:
        Drift policy: when ``gross_weight / net_weight`` reaches this
        ratio the surface is rebuilt from the live window contents and
        the drift clock restarts.  ``None`` disables automatic
        re-scatter (the drift gauges remain available).
    workers, backend:
        Forwarded to :meth:`KDVAccumulator.rescatter` — the rebuild is
        chunk-parallel and bit-identical for every combination.

    Register with a :class:`~repro.stream.StreamEngine` (or call
    :meth:`apply` with deltas directly); read the current surface with
    :meth:`snapshot`.
    """

    def __init__(
        self,
        bbox: BoundingBox,
        size: tuple[int, int],
        bandwidth: float,
        kernel: str | Kernel = "quartic",
        tile: int = 32,
        rescatter_ratio: float | None = 64.0,
        tail: float = 1e-12,
        dtype=np.float64,
        workers: int | None = None,
        backend: str | None = None,
    ):
        self._acc = KDVAccumulator(
            bbox, size, bandwidth, kernel=kernel, tail=tail, dtype=dtype
        )
        self.bbox = self._acc.bbox
        self.nx = self._acc.nx
        self.ny = self._acc.ny
        self.bandwidth = self._acc.bandwidth
        self.kernel = self._acc.kernel
        if rescatter_ratio is not None:
            rescatter_ratio = check_positive(rescatter_ratio, "rescatter_ratio")
            if rescatter_ratio < 1.0:
                raise ParameterError(
                    f"rescatter_ratio must be >= 1, got {rescatter_ratio}"
                )
        self.rescatter_ratio = rescatter_ratio
        self.workers = workers
        self.backend = backend
        self.ledger = DirtyTileLedger(self.nx, self.ny, tile=tile)
        self.events_applied = 0
        self.staleness = 0
        self.rescatters = 0

    @property
    def accumulator(self) -> KDVAccumulator:
        """The underlying accumulator (drift gauges, raw surface access)."""
        return self._acc

    @property
    def n_points(self) -> int:
        """Number of events currently on the surface."""
        return self._acc.n_points

    def _candidate_tiles(self, pts: np.ndarray) -> list[tuple[int, int]]:
        """Tiles whose pixels any of ``pts``'s kernel patches may touch."""
        if pts.shape[0] == 0:
            return []
        ix_lo, ix_hi, iy_lo, iy_hi = self._acc.scatterer.windows(pts)
        tile = self.ledger.tile
        found: set[tuple[int, int]] = set()
        for xlo, xhi, ylo, yhi in zip(ix_lo, ix_hi, iy_lo, iy_hi):
            if xlo > xhi or ylo > yhi:
                continue  # patch entirely outside the raster
            for tx in range(int(xlo) // tile, int(xhi) // tile + 1):
                for ty in range(int(ylo) // tile, int(yhi) // tile + 1):
                    found.add((tx, ty))
        return sorted(found)

    def _compare_and_mark(
        self, candidates: list[tuple[int, int]], before: list[np.ndarray]
    ) -> int:
        """Mark candidate tiles whose pixels actually changed; count them."""
        view = self._acc.surface_view(0)
        dirtied = 0
        for (tx, ty), old in zip(candidates, before):
            x0, x1, y0, y1 = self.ledger.bounds(tx, ty)
            if not np.array_equal(view[x0:x1, y0:y1], old):
                self.ledger.mark(tx, ty)
                dirtied += 1
        return dirtied

    def apply(self, delta: StreamDelta) -> "StreamingKDV":
        """Scatter the delta's entering/leaving events onto the surface.

        Cost: one kernel patch per changed event, plus a pixel compare of
        the candidate tiles.  May trigger a full re-scatter from
        ``delta.window`` when the drift policy fires.
        """
        changed = np.vstack([delta.entered_points, delta.left_points])
        candidates = self._candidate_tiles(changed)
        view = self._acc.surface_view(0)
        before = [
            view[x0:x1, y0:y1].copy()
            for x0, x1, y0, y1 in (self.ledger.bounds(*t) for t in candidates)
        ]
        if delta.n_entered:
            self._acc.add(delta.entered_points)
        if delta.n_left:
            self._acc.remove(delta.left_points)
        dirtied = self._compare_and_mark(candidates, before)
        n_applied = delta.n_entered + delta.n_left
        self.events_applied += n_applied
        self.staleness += n_applied
        obs.count("stream.kdv.events", n_applied)
        obs.count("stream.kdv.tiles_dirtied", dirtied)

        if (
            self.rescatter_ratio is not None
            and self._acc.drift_ratio >= self.rescatter_ratio
        ):
            self.rescatter(delta.window.points)
        return self

    def rescatter(self, points) -> "StreamingKDV":
        """Rebuild the surface from scratch as a scatter of ``points``.

        The drift escape hatch: resets the accumulator's gross-weight
        clock.  Tiles whose pixels change in the rebuild are marked dirty
        (compared against the pre-rebuild surface), so ledger exactness
        survives re-scatters.
        """
        pts = np.asarray(points, dtype=np.float64)
        old = self._acc.surface(0)
        self._acc.rescatter(
            pts, np.ones((pts.shape[0], 1)),
            workers=self.workers, backend=self.backend,
        )
        view = self._acc.surface_view(0)
        for tx in range(self.ledger.tiles_nx):
            for ty in range(self.ledger.tiles_ny):
                x0, x1, y0, y1 = self.ledger.bounds(tx, ty)
                if not np.array_equal(view[x0:x1, y0:y1], old[x0:x1, y0:y1]):
                    self.ledger.mark(tx, ty)
        self.rescatters += 1
        obs.count("stream.kdv.rescatter")
        return self

    def snapshot(self) -> DensityGrid:
        """The current density surface with streaming diagnostics attached.

        Diagnostics records: ``events_applied`` (lifetime), ``staleness``
        (events since the previous snapshot — reset to 0 by this call),
        ``rescatters``, ``drift_ratio``, ``dirty_tiles`` and
        ``dirty_mask`` (the ledger content, which this call clears — the
        "changed since last snapshot" contract).
        """
        with obs.task("stream.kdv") as t:
            t.record("events_applied", self.events_applied)
            t.record("staleness", self.staleness)
            t.record("rescatters", self.rescatters)
            t.record("drift_ratio", self._acc.drift_ratio)
            t.record("dirty_tiles", self.ledger.dirty_count)
            t.record("dirty_mask", self.ledger.take())
            values = np.maximum(self._acc.surface(0), 0.0)
        self.staleness = 0
        return DensityGrid(self.bbox, values, diagnostics=t.diagnostics)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"StreamingKDV(n={self.n_points}, grid={self.nx}x{self.ny}, "
            f"b={self.bandwidth:g}, drift={self._acc.drift_ratio:.2f}, "
            f"rescatters={self.rescatters})"
        )
