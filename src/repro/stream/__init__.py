"""Incremental streaming engine: delta-updated analytics over event feeds.

The paper's interactive systems (KDV-Explorer [28], live COVID hotspot
maps [6, 8]) refresh analytics as new events arrive and old ones expire.
This package makes that a first-class mode: a :class:`StreamWindow`
slides over a time-ordered feed (by count or by time), a
:class:`StreamEngine` fans each slide's :class:`StreamDelta` out to
registered analytics, and each analytic updates **by delta** instead of
recomputing from scratch:

* :class:`StreamingKDV` — maintained density surface (one kernel patch
  per changed event) with float-drift control and a :class:`DirtyTileLedger`
  of exactly which grid tiles changed since the last snapshot;
* :class:`StreamingHotspot` — maintained Getis-Ord Gi* map over a cell
  lattice, updating only changed cells and their neighbourhoods;
* :class:`StreamingKFunction` — maintained windowed Ripley K, charging
  only pairs that involve entering/leaving events.

The hotspot and K analytics maintain *integer* state and reuse the batch
code paths' arithmetic, so their snapshots equal the batch statistics of
the window contents exactly; the KDV surface stays within its published
drift tolerance of a fresh scatter (and is rebuilt — in parallel,
deterministically — when cancellation pressure crosses the policy ratio).
"""

from .hotspot import StreamingHotspot
from .kdv import DirtyTileLedger, StreamingKDV
from .kfunction import StreamingKFunction, StreamKSnapshot
from .window import StreamDelta, StreamEngine, StreamWindow

__all__ = [
    "DirtyTileLedger",
    "StreamDelta",
    "StreamEngine",
    "StreamKSnapshot",
    "StreamWindow",
    "StreamingHotspot",
    "StreamingKDV",
    "StreamingKFunction",
]
