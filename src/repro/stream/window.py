"""Sliding event window and the streaming engine that drives analytics.

The interactive systems the paper surveys (KDV-Explorer [28], live COVID
hotspot dashboards [6, 8]) consume an unbounded feed of time-stamped
events but display analytics over a bounded recent *window*.  This module
provides the two pieces every streaming analytic shares:

* :class:`StreamWindow` — a FIFO buffer of ``(point, time)`` events,
  sliding either by **count** (keep the most recent ``capacity`` events)
  or by **time** (keep events younger than ``horizon``).  Each push
  returns a :class:`StreamDelta` naming exactly which events entered and
  which expired, which is all an incremental analytic needs.
* :class:`StreamEngine` — owns a window plus a set of registered
  analytics and forwards every delta to each of them, so one ``push`` per
  feed batch keeps every registered surface current.

Event times must be non-decreasing across pushes (a feed, not a shuffle):
FIFO prefix eviction relies on it, and :meth:`StreamWindow.push` enforces
it eagerly so a violation surfaces at the offending push, not as a
silently wrong window three refreshes later.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .. import obs
from .._validation import as_points, as_timestamps, check_positive
from ..errors import DataError, ParameterError

__all__ = ["StreamDelta", "StreamEngine", "StreamWindow"]


@dataclass(frozen=True)
class StreamDelta:
    """What one push changed: the events that entered and those that left.

    ``window`` references the :class:`StreamWindow` *after* the push, so
    analytics that occasionally need the full contents (the KDV
    re-scatter escape hatch) can reach them without each keeping its own
    copy of the event buffer.
    """

    entered_points: np.ndarray
    entered_times: np.ndarray
    left_points: np.ndarray
    left_times: np.ndarray
    window: "StreamWindow"

    @property
    def n_entered(self) -> int:
        """Number of events that entered the window in this push."""
        return int(self.entered_points.shape[0])

    @property
    def n_left(self) -> int:
        """Number of events that expired out of the window in this push."""
        return int(self.left_points.shape[0])


class StreamWindow:
    """FIFO sliding window over a time-ordered event feed.

    Parameters
    ----------
    capacity:
        Count-based mode — after each push only the most recent
        ``capacity`` events remain.
    horizon:
        Time-based mode — after a push whose newest event time is ``t``,
        events with time ``<= t - horizon`` expire.

    Exactly one of the two must be given.  Contents are stored in arrival
    order in growable arrays with a moving head, compacted when the dead
    prefix dominates, so both push and eviction are amortised O(changed
    events).
    """

    def __init__(self, capacity: int | None = None,
                 horizon: float | None = None):
        if (capacity is None) == (horizon is None):
            raise ParameterError(
                "exactly one of capacity/horizon must be given"
            )
        if capacity is not None:
            capacity = int(capacity)
            if capacity < 1:
                raise ParameterError(
                    f"capacity must be a positive integer, got {capacity}"
                )
        if horizon is not None:
            horizon = check_positive(horizon, "horizon")
        self.capacity = capacity
        self.horizon = horizon
        self._pts = np.empty((64, 2), dtype=np.float64)
        self._ts = np.empty(64, dtype=np.float64)
        self._head = 0
        self._tail = 0

    def __len__(self) -> int:
        return self._tail - self._head

    @property
    def points(self) -> np.ndarray:
        """Current window contents, oldest first (a defensive copy)."""
        return self._pts[self._head:self._tail].copy()

    @property
    def times(self) -> np.ndarray:
        """Event times of the current contents, non-decreasing (a copy)."""
        return self._ts[self._head:self._tail].copy()

    def _reserve(self, n: int) -> None:
        live = self._tail - self._head
        cap = self._ts.shape[0]
        if self._tail + n <= cap and self._head <= cap // 2:
            return
        new_cap = max(64, cap)
        while new_cap < 2 * (live + n):
            new_cap *= 2
        pts = np.empty((new_cap, 2), dtype=np.float64)
        ts = np.empty(new_cap, dtype=np.float64)
        pts[:live] = self._pts[self._head:self._tail]
        ts[:live] = self._ts[self._head:self._tail]
        self._pts, self._ts = pts, ts
        self._head, self._tail = 0, live

    def push(self, points, times) -> StreamDelta:
        """Append a batch of events, expire the stale prefix, report both.

        ``times`` must be non-decreasing within the batch and no earlier
        than the newest event already in the window.  The returned delta
        reports *net* changes: a pushed event that is evicted by the very
        same push (a batch larger than the capacity, or a batch spanning
        more than the horizon) appears in neither ``entered_points`` nor
        ``left_points``, so ``entered`` is always a subset of the window
        after the push and ``left`` a subset of the window before it.
        """
        pts = as_points(points, allow_empty=True)
        ts = as_timestamps(times, pts.shape[0])
        if ts.shape[0]:
            if np.any(np.diff(ts) < 0):
                raise DataError("event times must be non-decreasing")
            if len(self) and ts[0] < self._ts[self._tail - 1]:
                raise DataError(
                    "event times must not precede the newest event already "
                    f"in the window ({self._ts[self._tail - 1]!r})"
                )
        n_old = len(self)
        self._reserve(pts.shape[0])
        self._pts[self._tail:self._tail + pts.shape[0]] = pts
        self._ts[self._tail:self._tail + ts.shape[0]] = ts
        self._tail += pts.shape[0]

        # FIFO prefix eviction: count- or time-based.
        new_head = self._head
        if self.capacity is not None:
            new_head = max(new_head, self._tail - self.capacity)
        elif self._tail > self._head:
            cutoff = self._ts[self._tail - 1] - self.horizon
            # Oldest-first times: binary search for the live suffix.
            new_head = self._head + int(np.searchsorted(
                self._ts[self._head:self._tail], cutoff, side="right"
            ))
        evicted = new_head - self._head
        # Split the evictions into pre-existing events (reported as left)
        # and pushed events dead on arrival (reported in neither set).
        n_doa = max(0, evicted - n_old)
        left_pts = self._pts[self._head:self._head + min(evicted, n_old)].copy()
        left_ts = self._ts[self._head:self._head + min(evicted, n_old)].copy()
        self._head = new_head
        return StreamDelta(
            entered_points=pts[n_doa:],
            entered_times=ts[n_doa:],
            left_points=left_pts,
            left_times=left_ts,
            window=self,
        )


class StreamEngine:
    """Fan one event feed out to every registered streaming analytic.

    ``engine.push(points, times)`` slides the window once and hands the
    resulting :class:`StreamDelta` to each analytic's ``apply`` in
    registration order, so all registered surfaces describe the same
    window contents after every push.
    """

    def __init__(self, window: StreamWindow):
        if not isinstance(window, StreamWindow):
            raise ParameterError("window must be a StreamWindow")
        self.window = window
        self._analytics: dict[str, object] = {}
        self.events_pushed = 0
        self.pushes = 0

    @property
    def analytics(self) -> dict[str, object]:
        """Registered analytics by name (a shallow copy)."""
        return dict(self._analytics)

    def register(self, name: str, analytic) -> "StreamEngine":
        """Attach an analytic (anything with ``apply(delta)``) by name."""
        if not name or not isinstance(name, str):
            raise ParameterError("analytic name must be a non-empty string")
        if name in self._analytics:
            raise ParameterError(f"analytic {name!r} already registered")
        if not callable(getattr(analytic, "apply", None)):
            raise ParameterError(
                f"analytic {name!r} must expose an apply(delta) method"
            )
        self._analytics[name] = analytic
        return self

    def push(self, points, times) -> StreamDelta:
        """Slide the window and update every registered analytic."""
        delta = self.window.push(points, times)
        self.pushes += 1
        self.events_pushed += delta.n_entered
        obs.count("stream.events", delta.n_entered)
        obs.count("stream.expired", delta.n_left)
        for name, analytic in self._analytics.items():
            with obs.span(f"stream.{name}"):
                analytic.apply(delta)
        obs.gauge("stream.window", float(len(self.window)))
        return delta

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        names = ", ".join(self._analytics) or "none"
        return (
            f"StreamEngine(window={len(self.window)}, analytics=[{names}], "
            f"pushes={self.pushes})"
        )
