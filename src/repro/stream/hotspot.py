"""Delta-maintained Getis-Ord Gi* hot-spot map over a cell lattice.

:class:`StreamingHotspot` aggregates window events onto an ``nx x ny``
cell lattice (integer counts) and maintains the per-cell neighbourhood
sums the Gi* closed form needs:

* per-cell **counts** change only for cells that events enter or leave;
* the **spatial lag** (sum of neighbour counts under binary contiguity
  weights) changes only for the neighbourhoods of changed cells, so one
  event costs O(degree) integer updates.

All maintained state is integer (counts and binary-weight lags), which
float64 represents exactly, and the z-scores are produced by the *same*
closed form (:func:`repro.core.autocorrelation.gi_star_scores`) that the
batch :func:`~repro.core.autocorrelation.local_gi_star` delegates to — so
a streamed map over given window contents equals the batch map computed
from scratch, not merely approximates it.
"""

from __future__ import annotations

import numpy as np

from .. import obs
from .._validation import as_points
from ..core.autocorrelation import gi_star_scores, lattice_weights
from ..errors import ParameterError
from ..geometry import BoundingBox
from ..raster import DensityGrid
from .window import StreamDelta

__all__ = ["StreamingHotspot"]


class StreamingHotspot:
    """Maintained Gi* z-score lattice over a sliding event window.

    Parameters
    ----------
    bbox:
        Study window; events outside clamp into boundary cells (the
        convention of every raster carrier in this package).
    size:
        ``(nx, ny)`` cell lattice resolution.
    contiguity:
        ``"queen"`` (default) or ``"rook"`` binary neighbourhoods, built
        once via :func:`~repro.core.autocorrelation.lattice_weights`.

    Register with a :class:`~repro.stream.StreamEngine`; read the current
    map with :meth:`snapshot`, whose values equal
    ``local_gi_star(self.bin(window.points), weights)`` exactly.
    """

    def __init__(
        self,
        bbox: BoundingBox,
        size: tuple[int, int],
        contiguity: str = "queen",
    ):
        if not isinstance(bbox, BoundingBox):
            raise ParameterError("bbox must be a BoundingBox")
        try:
            nx, ny = (int(s) for s in size)
        except (TypeError, ValueError):
            raise ParameterError(f"size must be an (nx, ny) pair, got {size!r}")
        if nx < 1 or ny < 1:
            raise ParameterError(f"lattice must be at least 1x1, got {nx}x{ny}")
        self.bbox = bbox
        self.nx = nx
        self.ny = ny
        self.contiguity = contiguity
        self.weights = lattice_weights(nx, ny, contiguity=contiguity)
        # Binary weights: per-cell degree doubles as both sum(w) and
        # sum(w^2) of the (self-exclusive) neighbourhood.
        self._degree = np.diff(self.weights.row_ptr).astype(np.float64)
        self._counts = np.zeros(nx * ny, dtype=np.int64)
        self._lag = np.zeros(nx * ny, dtype=np.int64)
        self.events_applied = 0
        self.staleness = 0

    @property
    def counts(self) -> np.ndarray:
        """Current per-cell event counts, ``(nx * ny,)`` int64 (a copy)."""
        return self._counts.copy()

    @property
    def n_points(self) -> int:
        """Number of events currently aggregated on the lattice."""
        return int(self._counts.sum())

    def cell_ids(self, points) -> np.ndarray:
        """Row-major cell id (``ix * ny + iy``) of each point, clamped."""
        pts = as_points(points, allow_empty=True)
        if pts.shape[0] == 0:
            return np.empty(0, dtype=np.int64)
        ix = np.floor(
            (pts[:, 0] - self.bbox.xmin) / self.bbox.width * self.nx
        ).astype(np.int64)
        iy = np.floor(
            (pts[:, 1] - self.bbox.ymin) / self.bbox.height * self.ny
        ).astype(np.int64)
        np.clip(ix, 0, self.nx - 1, out=ix)
        np.clip(iy, 0, self.ny - 1, out=iy)
        return ix * self.ny + iy

    def bin(self, points) -> np.ndarray:
        """Aggregate arbitrary points into per-cell counts (batch path).

        ``local_gi_star(hotspot.bin(pts), hotspot.weights)`` is the batch
        counterpart the streamed :meth:`snapshot` is tested against.
        """
        counts = np.zeros(self.nx * self.ny, dtype=np.int64)
        np.add.at(counts, self.cell_ids(points), 1)
        return counts

    def apply(self, delta: StreamDelta) -> "StreamingHotspot":
        """Update counts and neighbourhood lags for the delta's events."""
        deltas = np.zeros(self.nx * self.ny, dtype=np.int64)
        np.add.at(deltas, self.cell_ids(delta.entered_points), 1)
        np.subtract.at(deltas, self.cell_ids(delta.left_points), 1)
        changed = np.nonzero(deltas)[0]
        row_ptr, cols = self.weights.row_ptr, self.weights.cols
        for c in changed:
            d = int(deltas[c])
            self._counts[c] += d
            # Binary weights: cell c contributes d to each neighbour's lag.
            self._lag[cols[row_ptr[c]:row_ptr[c + 1]]] += d
        n_applied = delta.n_entered + delta.n_left
        self.events_applied += n_applied
        self.staleness += n_applied
        obs.count("stream.hotspot.events", n_applied)
        obs.count("stream.hotspot.cells_changed", int(changed.shape[0]))
        return self

    def snapshot(self) -> DensityGrid:
        """Current Gi* z-score map as an ``(nx, ny)`` raster.

        Equals the batch ``local_gi_star`` of the current counts exactly
        (identical closed form over identical integer sums).  Raises
        :class:`~repro.errors.DataError` while the counts are constant
        (e.g. an empty window), as the batch statistic does.  Diagnostics
        records: ``events_applied``, ``staleness`` (reset by this call),
        ``n_points``.
        """
        with obs.task("stream.hotspot") as t:
            t.record("events_applied", self.events_applied)
            t.record("staleness", self.staleness)
            t.record("n_points", self.n_points)
            z = self._counts.astype(np.float64)
            scores = gi_star_scores(
                z, self._lag.astype(np.float64), self._degree, self._degree
            )
        self.staleness = 0
        return DensityGrid(
            self.bbox,
            scores.reshape(self.nx, self.ny),
            diagnostics=t.diagnostics,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"StreamingHotspot(n={self.n_points}, "
            f"lattice={self.nx}x{self.ny}, contiguity={self.contiguity!r})"
        )
