"""A 2-d kd-tree built from scratch.

The tree supports the three access patterns the analytics layer needs:

* **range queries / range counts** for the K-function backends,
* **k-nearest-neighbour queries** for IDW and kriging neighbourhoods,
* **node-level traversal with distance bounds** for the bound-based KDV
  (QUAD/KARL-style function approximation), which needs, for any node, the
  minimum and maximum distance from a query to the node's bounding box and
  the number of points below the node.

Nodes are stored in flat NumPy arrays (structure-of-arrays) and points are
reordered once at build time, so leaf scans are contiguous slices.

Trees may carry optional per-point **weights**: every node then exposes
the total weight below it (``node_weight_sum``), which lets weighted
density bounds replace point counts as the bound multipliers
(``W_node * K(dmax) <= contribution <= W_node * K(dmin)``).  Unweighted
trees expose the point counts through the same array, so traversal code
never branches on weightedness.
"""

from __future__ import annotations

import heapq

import numpy as np

from .._validation import as_points, as_weights, check_positive
from ..errors import ParameterError

__all__ = ["KDTree"]

_NO_CHILD = -1


class KDTree:
    """Median-split 2-d kd-tree.

    Parameters
    ----------
    points:
        ``(n, 2)`` coordinates.
    leaf_size:
        Maximum number of points in a leaf; smaller leaves mean deeper trees
        (better pruning, more overhead).  16-64 is a good range.
    weights:
        Optional per-point non-negative weights.  When given, every node
        carries the total weight of the points below it
        (:attr:`node_weight_sum`); when omitted the same array holds the
        point counts, so weighted and unweighted traversals share code.
    """

    def __init__(self, points, leaf_size: int = 32, weights=None):
        self.points = as_points(points)
        leaf_size = int(leaf_size)
        if leaf_size < 1:
            raise ParameterError(f"leaf_size must be >= 1, got {leaf_size}")
        self.leaf_size = leaf_size
        if weights is None:
            self.weights = None
        else:
            self.weights = as_weights(weights, self.points.shape[0])

        n = self.points.shape[0]
        self.indices = np.arange(n, dtype=np.int64)

        # Node arrays, grown as python lists during the build.
        starts: list[int] = []
        stops: list[int] = []
        lefts: list[int] = []
        rights: list[int] = []
        mins: list[np.ndarray] = []
        maxs: list[np.ndarray] = []

        # Iterative build with an explicit stack to avoid recursion limits.
        # Each stack entry: (start, stop, node_slot); node_slot == -1 means
        # "append a fresh node", otherwise fill in the reserved child slot.
        pts = self.points
        idx = self.indices

        def new_node(start: int, stop: int) -> int:
            node = len(starts)
            starts.append(start)
            stops.append(stop)
            lefts.append(_NO_CHILD)
            rights.append(_NO_CHILD)
            block = pts[idx[start:stop]]
            mins.append(block.min(axis=0))
            maxs.append(block.max(axis=0))
            return node

        root = new_node(0, n)
        stack = [root]
        while stack:
            node = stack.pop()
            start, stop = starts[node], stops[node]
            count = stop - start
            if count <= self.leaf_size:
                continue
            extent = maxs[node] - mins[node]
            dim = int(np.argmax(extent))
            if extent[dim] == 0.0:
                continue  # all points identical: keep as a leaf
            mid = start + count // 2
            seg = idx[start:stop]
            part = np.argpartition(pts[seg, dim], mid - start)
            idx[start:stop] = seg[part]
            left = new_node(start, mid)
            right = new_node(mid, stop)
            lefts[node] = left
            rights[node] = right
            stack.append(left)
            stack.append(right)

        self.node_start = np.asarray(starts, dtype=np.int64)
        self.node_stop = np.asarray(stops, dtype=np.int64)
        self.node_left = np.asarray(lefts, dtype=np.int64)
        self.node_right = np.asarray(rights, dtype=np.int64)
        self.node_min = np.asarray(mins, dtype=np.float64)
        self.node_max = np.asarray(maxs, dtype=np.float64)
        self._sorted_points = self.points[self.indices]

        # Per-node weight totals, bottom-up so an internal node's sum is
        # exactly left + right (children are appended after their parent,
        # so a reverse scan sees both children first).  Unit weights
        # reproduce the integer point counts bit-for-bit.
        n_nodes = len(starts)
        wsum = np.empty(n_nodes, dtype=np.float64)
        if self.weights is None:
            self._sorted_weights = None
            wsum[:] = self.node_stop - self.node_start
        else:
            self._sorted_weights = self.weights[self.indices]
            for node in range(n_nodes - 1, -1, -1):
                if lefts[node] == _NO_CHILD:
                    wsum[node] = self._sorted_weights[
                        starts[node]:stops[node]
                    ].sum()
                else:
                    wsum[node] = wsum[lefts[node]] + wsum[rights[node]]
        self.node_weight_sum = wsum

    # -- node-level API (used by bound-based KDV) ---------------------------

    @property
    def n_nodes(self) -> int:
        return int(self.node_start.shape[0])

    def node_count(self, node: int) -> int:
        """Number of points stored under ``node``."""
        return int(self.node_stop[node] - self.node_start[node])

    def node_weight(self, node: int) -> float:
        """Total weight below ``node`` (the point count when unweighted)."""
        return float(self.node_weight_sum[node])

    @property
    def total_weight(self) -> float:
        """Total weight of the whole tree (``n`` when unweighted)."""
        return float(self.node_weight_sum[0])

    def node_point_weights(self, node: int) -> np.ndarray | None:
        """Weights of the points under ``node`` in leaf-scan order.

        Returns ``None`` for unweighted trees so exact leaf scans can skip
        the multiply entirely (and unit-weight trees stay bit-identical to
        count-based ones).
        """
        if self._sorted_weights is None:
            return None
        return self._sorted_weights[self.node_start[node]:self.node_stop[node]]

    def is_leaf(self, node: int) -> bool:
        return self.node_left[node] == _NO_CHILD

    def children(self, node: int) -> tuple[int, int]:
        return int(self.node_left[node]), int(self.node_right[node])

    def node_points(self, node: int) -> np.ndarray:
        """Coordinates of the points under ``node`` (contiguous view)."""
        return self._sorted_points[self.node_start[node]:self.node_stop[node]]

    def node_point_indices(self, node: int) -> np.ndarray:
        """Original indices of the points under ``node``."""
        return self.indices[self.node_start[node]:self.node_stop[node]]

    def node_bounds(self, node: int, x: float, y: float) -> tuple[float, float]:
        """(min, max) Euclidean distance from ``(x, y)`` to node's bbox points.

        The minimum is the distance to the bounding rectangle; the maximum is
        the distance to its farthest corner.  Both bound the distance to any
        point stored under the node.
        """
        nmin = self.node_min[node]
        nmax = self.node_max[node]
        dx_min = max(nmin[0] - x, 0.0, x - nmax[0])
        dy_min = max(nmin[1] - y, 0.0, y - nmax[1])
        dx_max = max(x - nmin[0], nmax[0] - x)
        dy_max = max(y - nmin[1], nmax[1] - y)
        return float(np.hypot(dx_min, dy_min)), float(np.hypot(dx_max, dy_max))

    # -- range queries -------------------------------------------------------

    def _range_positions(self, x: float, y: float, radius: float) -> np.ndarray:
        """Positions (into the reordered array) of points within ``radius``."""
        r2 = radius * radius
        hits: list[np.ndarray] = []
        stack = [0]
        while stack:
            node = stack.pop()
            dmin, dmax = self.node_bounds(node, x, y)
            if dmin > radius:
                continue
            start, stop = self.node_start[node], self.node_stop[node]
            if dmax <= radius:
                hits.append(np.arange(start, stop))
                continue
            if self.is_leaf(node):
                block = self._sorted_points[start:stop]
                d2 = (block[:, 0] - x) ** 2 + (block[:, 1] - y) ** 2
                sel = np.flatnonzero(d2 <= r2) + start
                if sel.size:
                    hits.append(sel)
                continue
            left, right = self.children(node)
            stack.append(left)
            stack.append(right)
        if not hits:
            return np.empty(0, dtype=np.int64)
        return np.concatenate(hits)

    def range_indices(self, center, radius: float) -> np.ndarray:
        """Original indices of points within ``radius`` of ``center``."""
        radius = check_positive(radius, "radius")
        pos = self._range_positions(float(center[0]), float(center[1]), radius)
        return self.indices[pos]

    def range_count(self, center, radius: float) -> int:
        """Number of points within ``radius``; whole-node hits are O(1)."""
        radius = check_positive(radius, "radius")
        x, y = float(center[0]), float(center[1])
        r2 = radius * radius
        total = 0
        stack = [0]
        while stack:
            node = stack.pop()
            dmin, dmax = self.node_bounds(node, x, y)
            if dmin > radius:
                continue
            if dmax <= radius:
                total += self.node_count(node)
                continue
            if self.is_leaf(node):
                block = self.node_points(node)
                d2 = (block[:, 0] - x) ** 2 + (block[:, 1] - y) ** 2
                total += int(np.count_nonzero(d2 <= r2))
                continue
            left, right = self.children(node)
            stack.append(left)
            stack.append(right)
        return total

    def neighbor_distances(self, center, radius: float) -> np.ndarray:
        """Unsorted distances to every point within ``radius`` of ``center``."""
        radius = check_positive(radius, "radius")
        x, y = float(center[0]), float(center[1])
        pos = self._range_positions(x, y, radius)
        if pos.size == 0:
            return np.empty(0, dtype=np.float64)
        block = self._sorted_points[pos]
        return np.sqrt((block[:, 0] - x) ** 2 + (block[:, 1] - y) ** 2)

    def count_within_thresholds(self, queries, thresholds) -> np.ndarray:
        """(nq, nt) range counts at many sorted radii; one traversal each."""
        q = as_points(queries, name="queries", allow_empty=True)
        ts = np.asarray(thresholds, dtype=np.float64).ravel()
        if ts.size == 0:
            raise ParameterError("thresholds must contain at least one value")
        rmax = float(ts.max())
        out = np.zeros((q.shape[0], ts.size), dtype=np.int64)
        if rmax <= 0.0:
            rmax = np.finfo(float).tiny
        for i, row in enumerate(q):
            d = np.sort(self.neighbor_distances(row, rmax))
            out[i, :] = np.searchsorted(d, ts, side="right")
        return out

    # -- nearest neighbours ----------------------------------------------------

    def knn(self, center, k: int) -> tuple[np.ndarray, np.ndarray]:
        """``k`` nearest neighbours of ``center``.

        Returns ``(distances, indices)`` sorted by ascending distance.  If
        ``k`` exceeds the number of points, all points are returned.
        """
        k = int(k)
        if k < 1:
            raise ParameterError(f"k must be >= 1, got {k}")
        x, y = float(center[0]), float(center[1])
        k = min(k, self.points.shape[0])

        # Max-heap of the best k found so far, stored as (-dist2, position).
        heap: list[tuple[float, int]] = []

        # Best-first node traversal ordered by min distance to the node box.
        node_heap: list[tuple[float, int]] = [(0.0, 0)]
        while node_heap:
            dmin, node = heapq.heappop(node_heap)
            if len(heap) == k and dmin * dmin >= -heap[0][0]:
                break
            if self.is_leaf(node):
                start, stop = self.node_start[node], self.node_stop[node]
                block = self._sorted_points[start:stop]
                d2 = (block[:, 0] - x) ** 2 + (block[:, 1] - y) ** 2
                for offset, dist2 in enumerate(d2):
                    if len(heap) < k:
                        heapq.heappush(heap, (-float(dist2), start + offset))
                    elif dist2 < -heap[0][0]:
                        heapq.heapreplace(heap, (-float(dist2), start + offset))
                continue
            for child in self.children(node):
                cmin, _ = self.node_bounds(child, x, y)
                if len(heap) < k or cmin * cmin < -heap[0][0]:
                    heapq.heappush(node_heap, (cmin, child))

        items = sorted((-negd2, pos) for negd2, pos in heap)
        dists = np.sqrt(np.array([d2 for d2, _ in items], dtype=np.float64))
        idx = self.indices[np.array([pos for _, pos in items], dtype=np.int64)]
        return dists, idx

    def __len__(self) -> int:
        return int(self.points.shape[0])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"KDTree(n={len(self)}, nodes={self.n_nodes}, leaf_size={self.leaf_size})"
