"""Spatial index substrate: uniform grid, kd-tree, and ball-tree.

All three structures are implemented from scratch (the paper's
range-query-based methods cite kd-trees [21], ball-trees [71] and uniform
grids as the standard carriers).  They expose a common core:

* ``range_indices(center, radius)`` / ``range_count(center, radius)``
* ``neighbor_distances(center, radius)`` (grid, kd-tree)
* ``count_within_thresholds(queries, thresholds)`` (grid, kd-tree) —
  multi-threshold batching for K-function plots
* node-level traversal with distance bounds (kd-tree, ball-tree) — carrier
  for the bound-based KDV refinement.
"""

from .balltree import BallTree
from .dynamic import DynamicGridIndex
from .grid import GridIndex
from .kdtree import KDTree
from .rangetree import RangeTree

__all__ = ["BallTree", "DynamicGridIndex", "GridIndex", "KDTree", "RangeTree"]
