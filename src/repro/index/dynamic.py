"""Dynamic uniform-grid index: insert/remove under a moving window.

:class:`~repro.index.GridIndex` is a static CSR snapshot — ideal for
one-shot range batches, useless for a sliding window where points enter
and expire every refresh.  :class:`DynamicGridIndex` keeps the same cell
hashing (square cells, exact distance filter) but stores cell membership
in per-cell slot lists over growable coordinate arrays, so insertion and
removal are O(cell occupancy) and the streaming K-function can charge
only the entering/leaving points per refresh instead of rebuilding.

Distance semantics match ``GridIndex`` bit for bit: candidates are
gathered from the overlapping cell block, squared distances are computed
as ``(x - cx)**2 + (y - cy)**2`` and filtered with ``d2 <= r*r``, so a
query against a dynamic index holding exactly the points of a static one
returns the same distances in either structure.
"""

from __future__ import annotations

import numpy as np

from .._validation import check_positive
from ..errors import ParameterError
from ..geometry import BoundingBox

__all__ = ["DynamicGridIndex"]

#: Initial slot-array capacity; grows by doubling.
_MIN_CAPACITY = 64


class DynamicGridIndex:
    """Uniform-grid index over a fixed window supporting insert/remove.

    Parameters
    ----------
    bbox:
        Study window.  The cell lattice is fixed at construction (unlike
        the static index there is no point set to infer it from), and
        out-of-window points clamp into boundary cells exactly like
        ``GridIndex`` build-time clamping.
    cell_size:
        Square cell side; choose the maximum query radius so a query
        inspects at most a 3x3 cell block.

    Points are addressed by the integer **slot** returned from
    :meth:`insert`; removal frees the slot for reuse.
    """

    def __init__(self, bbox: BoundingBox, cell_size: float):
        if not isinstance(bbox, BoundingBox):
            raise ParameterError("bbox must be a BoundingBox")
        self.bbox = bbox
        self.cell_size = check_positive(cell_size, "cell_size")
        self.nx = max(1, int(np.ceil(bbox.width / self.cell_size)))
        self.ny = max(1, int(np.ceil(bbox.height / self.cell_size)))
        self.cell_w = max(bbox.width / self.nx, self.cell_size)
        self.cell_h = max(bbox.height / self.ny, self.cell_size)
        self._xs = np.empty(_MIN_CAPACITY, dtype=np.float64)
        self._ys = np.empty(_MIN_CAPACITY, dtype=np.float64)
        self._cell_of_slot = np.full(_MIN_CAPACITY, -1, dtype=np.int64)
        self._cells: dict[int, list[int]] = {}
        self._free: list[int] = []
        self._top = 0
        self._n = 0

    def __len__(self) -> int:
        return self._n

    # -- internals -----------------------------------------------------------

    def _cell_index(self, x: float, y: float) -> int:
        ix = int(np.floor((x - self.bbox.xmin) / self.cell_w))
        iy = int(np.floor((y - self.bbox.ymin) / self.cell_h))
        ix = min(max(ix, 0), self.nx - 1)
        iy = min(max(iy, 0), self.ny - 1)
        return ix * self.ny + iy

    def _grow(self) -> None:
        cap = max(_MIN_CAPACITY, 2 * self._xs.shape[0])
        for name in ("_xs", "_ys", "_cell_of_slot"):
            old = getattr(self, name)
            fresh = np.full(cap, -1, dtype=old.dtype) \
                if name == "_cell_of_slot" else np.empty(cap, dtype=old.dtype)
            fresh[: old.shape[0]] = old
            setattr(self, name, fresh)

    # -- updates -------------------------------------------------------------

    def insert(self, x: float, y: float) -> int:
        """Add one point; returns its slot id (stable until removed)."""
        if self._free:
            slot = self._free.pop()
        else:
            slot = self._top
            if slot >= self._xs.shape[0]:
                self._grow()
            self._top += 1
        x = float(x)
        y = float(y)
        if not (np.isfinite(x) and np.isfinite(y)):
            raise ParameterError(f"point must be finite, got ({x}, {y})")
        cell = self._cell_index(x, y)
        self._xs[slot] = x
        self._ys[slot] = y
        self._cell_of_slot[slot] = cell
        self._cells.setdefault(cell, []).append(slot)
        self._n += 1
        return slot

    def remove(self, slot: int) -> None:
        """Remove the point occupying ``slot`` (as returned by insert)."""
        slot = int(slot)
        if not (0 <= slot < self._top) or self._cell_of_slot[slot] < 0:
            raise ParameterError(f"slot {slot} does not hold a live point")
        cell = int(self._cell_of_slot[slot])
        members = self._cells[cell]
        members.remove(slot)
        if not members:
            del self._cells[cell]
        self._cell_of_slot[slot] = -1
        self._free.append(slot)
        self._n -= 1

    # -- queries -------------------------------------------------------------

    def _candidate_slots(self, x: float, y: float, radius: float) -> np.ndarray:
        ix_lo = int(np.floor((x - radius - self.bbox.xmin) / self.cell_w))
        ix_hi = int(np.floor((x + radius - self.bbox.xmin) / self.cell_w))
        iy_lo = int(np.floor((y - radius - self.bbox.ymin) / self.cell_h))
        iy_hi = int(np.floor((y + radius - self.bbox.ymin) / self.cell_h))
        ix_lo = min(max(ix_lo, 0), self.nx - 1)
        ix_hi = min(max(ix_hi, 0), self.nx - 1)
        iy_lo = min(max(iy_lo, 0), self.ny - 1)
        iy_hi = min(max(iy_hi, 0), self.ny - 1)
        found: list[int] = []
        for ix in range(ix_lo, ix_hi + 1):
            base = ix * self.ny
            for iy in range(iy_lo, iy_hi + 1):
                members = self._cells.get(base + iy)
                if members:
                    found.extend(members)
        return np.asarray(found, dtype=np.int64)

    def neighbor_distances(self, center, radius: float) -> np.ndarray:
        """Unsorted distances to every live point within ``radius``.

        Same candidate-then-exact-filter arithmetic as the static
        ``GridIndex.neighbor_distances``, so the two agree bitwise on
        identical contents (the streamed-equals-batch K contract).
        """
        radius = check_positive(radius, "radius")
        x, y = float(center[0]), float(center[1])
        slots = self._candidate_slots(x, y, radius)
        if slots.size == 0:
            return np.empty(0, dtype=np.float64)
        d2 = (self._xs[slots] - x) ** 2 + (self._ys[slots] - y) ** 2
        d2 = d2[d2 <= radius * radius]
        return np.sqrt(d2)

    def range_count(self, center, radius: float) -> int:
        """Number of live points within ``radius`` of ``center``."""
        return int(self.neighbor_distances(center, radius).shape[0])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DynamicGridIndex(n={self._n}, cells={self.nx}x{self.ny}, "
            f"cell_size={self.cell_size:g})"
        )
