"""A 2-D range tree for axis-aligned rectangle queries.

The paper's range-query discussion (§2.3) cites the range tree [40]
alongside kd-trees and ball-trees.  A range tree answers *rectangle*
counting/reporting queries in O(log^2 n): the primary tree is a balanced
BST over x-coordinates, and every internal node stores its subtree's
points sorted by y, so a query decomposes into O(log n) canonical nodes,
each resolved with two binary searches on its y-array.

Rectangle queries complement the disc queries of the other indexes: they
are what window/zoom selections in map UIs (KDV-Explorer-style panning)
translate to, and a disc can be counted as (bounding-rectangle candidates
-> exact filter), which :meth:`RangeTree.range_count_disc` provides.
"""

from __future__ import annotations

import numpy as np

from .._validation import as_points, check_positive
from ..errors import ParameterError

__all__ = ["RangeTree"]


class RangeTree:
    """Static 2-D range tree over planar points.

    Construction is O(n log n); rectangle count/report is O(log^2 n + k).
    """

    def __init__(self, points):
        self.points = as_points(points)
        n = self.points.shape[0]
        order = np.argsort(self.points[:, 0], kind="stable")
        self._xs = self.points[order, 0]
        self._idx_by_x = order.astype(np.int64)

        # Node t covers the x-sorted slice [start_t, stop_t); children are
        # 2t+1 / 2t+2 in a heap layout built by recursive halving.
        self._start: list[int] = []
        self._stop: list[int] = []
        self._ys: list[np.ndarray] = []  # per-node y-sorted values
        self._yidx: list[np.ndarray] = []  # original ids in the same order
        self._left: list[int] = []
        self._right: list[int] = []

        # Iterative two-pass build (reserve slots, then fill children) so
        # deep trees cannot hit the recursion limit.
        def new_node(start: int, stop: int) -> int:
            node = len(self._start)
            self._start.append(start)
            self._stop.append(stop)
            ids = self._idx_by_x[start:stop]
            ys = self.points[ids, 1]
            ysort = np.argsort(ys, kind="stable")
            self._ys.append(ys[ysort])
            self._yidx.append(ids[ysort])
            self._left.append(-1)
            self._right.append(-1)
            return node

        if n:
            root = new_node(0, n)
            stack = [root]
            while stack:
                node = stack.pop()
                start, stop = self._start[node], self._stop[node]
                if stop - start <= 1:
                    continue
                mid = (start + stop) // 2
                left = new_node(start, mid)
                right = new_node(mid, stop)
                self._left[node] = left
                self._right[node] = right
                stack.append(left)
                stack.append(right)

    def __len__(self) -> int:
        return int(self.points.shape[0])

    # -- canonical decomposition -------------------------------------------------

    def _canonical_nodes(self, x_lo: float, x_hi: float) -> list[int]:
        """Nodes whose x-slices exactly tile the query x-interval."""
        if len(self) == 0 or x_lo > x_hi:
            return []
        lo = int(np.searchsorted(self._xs, x_lo, side="left"))
        hi = int(np.searchsorted(self._xs, x_hi, side="right"))
        if lo >= hi:
            return []
        out: list[int] = []
        stack = [0]
        while stack:
            node = stack.pop()
            start, stop = self._start[node], self._stop[node]
            if stop <= lo or start >= hi:
                continue
            if lo <= start and stop <= hi:
                out.append(node)
                continue
            if self._left[node] != -1:
                stack.append(self._left[node])
                stack.append(self._right[node])
        return out

    # -- queries ---------------------------------------------------------------

    def rect_count(self, x_lo: float, x_hi: float, y_lo: float, y_hi: float) -> int:
        """Number of points in the closed rectangle."""
        if x_lo > x_hi or y_lo > y_hi:
            raise ParameterError("rectangle bounds must satisfy lo <= hi")
        total = 0
        for node in self._canonical_nodes(x_lo, x_hi):
            ys = self._ys[node]
            total += int(
                np.searchsorted(ys, y_hi, side="right")
                - np.searchsorted(ys, y_lo, side="left")
            )
        return total

    def rect_indices(self, x_lo: float, x_hi: float, y_lo: float, y_hi: float) -> np.ndarray:
        """Original indices of the points in the closed rectangle."""
        if x_lo > x_hi or y_lo > y_hi:
            raise ParameterError("rectangle bounds must satisfy lo <= hi")
        hits: list[np.ndarray] = []
        for node in self._canonical_nodes(x_lo, x_hi):
            ys = self._ys[node]
            a = int(np.searchsorted(ys, y_lo, side="left"))
            b = int(np.searchsorted(ys, y_hi, side="right"))
            if b > a:
                hits.append(self._yidx[node][a:b])
        if not hits:
            return np.empty(0, dtype=np.int64)
        return np.concatenate(hits)

    def range_count_disc(self, center, radius: float) -> int:
        """Disc count via bounding-rectangle candidates + exact filter.

        The candidate rectangle is padded by a relative epsilon so points
        whose *squared* distance rounds to exactly ``radius^2`` (the
        library-wide inclusion convention) are not lost to coordinate
        rounding at the rectangle boundary.
        """
        radius = check_positive(radius, "radius")
        x, y = float(center[0]), float(center[1])
        pad = radius * (1.0 + 1e-9) + 1e-300
        idx = self.rect_indices(x - pad, x + pad, y - pad, y + pad)
        if idx.size == 0:
            return 0
        d2 = ((self.points[idx] - np.array([x, y])) ** 2).sum(axis=1)
        return int(np.count_nonzero(d2 <= radius * radius))
