"""Uniform grid (bucket) index over a planar point set.

The grid index is the workhorse behind the cutoff-based KDV backend, the
grid-accelerated K-function, and DBSCAN: points are hashed into square cells
of a chosen size, and a range query only inspects the O((r/cell)^2) cells
overlapping the query disc.

The implementation uses a CSR-style layout (``cell_start`` / ``order``)
instead of per-cell Python lists, so construction and queries are fully
vectorised.
"""

from __future__ import annotations

import numpy as np

from .._validation import as_points, check_positive
from ..errors import ParameterError
from ..geometry import BoundingBox

__all__ = ["GridIndex"]


def _axis_cell(raw: float) -> int:
    """Floor a (possibly huge) cell coordinate into a safe Python int."""
    if raw > 2**62:
        return 2**62
    if raw < -(2**62):
        return -(2**62)
    return int(np.floor(raw))


class GridIndex:
    """Bucket index with square cells of side ``cell_size``.

    Parameters
    ----------
    points:
        ``(n, 2)`` planar coordinates.
    cell_size:
        Side length of each square cell.  For a query radius ``r`` the usual
        choice is ``cell_size = r`` so a query touches at most 9 cells of
        candidates (3x3 block).
    bbox:
        Optional window; defaults to the tight bounding box of the points.
        Points outside the window are clamped to boundary cells, so queries
        remain correct for any coordinates.
    """

    def __init__(self, points, cell_size: float, bbox: BoundingBox | None = None):
        self.points = as_points(points)
        self.cell_size = check_positive(cell_size, "cell_size")
        self.bbox = bbox if bbox is not None else BoundingBox.of_points(self.points)

        # Cap the lattice so a tiny cell_size (or huge window) cannot blow
        # up memory: the grid only pays off while cells >~ points anyway.
        n = self.points.shape[0]
        per_axis_cap = max(64, int(2 * np.sqrt(n)) + 1)

        def axis_cells(extent: float) -> int:
            raw = extent / self.cell_size
            if not np.isfinite(raw) or raw > per_axis_cap:
                return per_axis_cap
            return max(1, int(np.ceil(raw)))

        self.nx = axis_cells(self.bbox.width)
        self.ny = axis_cells(self.bbox.height)
        # Effective per-axis cell sizes (== cell_size unless capped).
        self.cell_w = max(self.bbox.width / self.nx, self.cell_size)
        self.cell_h = max(self.bbox.height / self.ny, self.cell_size)

        ix, iy = self._cell_of(self.points[:, 0], self.points[:, 1])
        flat = ix * self.ny + iy
        # CSR layout: order sorts points by cell, cell_start[c]..cell_start[c+1]
        # is the slice of `order` holding cell c's points.
        self.order = np.argsort(flat, kind="stable")
        sorted_flat = flat[self.order]
        counts = np.bincount(sorted_flat, minlength=self.nx * self.ny)
        self.cell_start = np.concatenate([[0], np.cumsum(counts)])
        self._sorted_points = self.points[self.order]

    # -- internals -----------------------------------------------------------

    def _cell_of(self, xs, ys) -> tuple[np.ndarray, np.ndarray]:
        ix = np.floor((np.asarray(xs) - self.bbox.xmin) / self.cell_w).astype(np.int64)
        iy = np.floor((np.asarray(ys) - self.bbox.ymin) / self.cell_h).astype(np.int64)
        np.clip(ix, 0, self.nx - 1, out=ix)
        np.clip(iy, 0, self.ny - 1, out=iy)
        return ix, iy

    def _candidate_slices(self, x: float, y: float, radius: float) -> list[tuple[int, int]]:
        """CSR slices of every cell intersecting the disc of ``radius``."""
        ix_lo = _axis_cell((x - radius - self.bbox.xmin) / self.cell_w)
        ix_hi = _axis_cell((x + radius - self.bbox.xmin) / self.cell_w)
        iy_lo = _axis_cell((y - radius - self.bbox.ymin) / self.cell_h)
        iy_hi = _axis_cell((y + radius - self.bbox.ymin) / self.cell_h)
        # Clamp into the valid cell range (points outside the window were
        # clamped into boundary cells at build time, so boundary cells act
        # as half-open catch-alls; the exact distance filter removes any
        # false positives this introduces).
        ix_lo = min(max(ix_lo, 0), self.nx - 1)
        iy_lo = min(max(iy_lo, 0), self.ny - 1)
        ix_hi = min(max(ix_hi, 0), self.nx - 1)
        iy_hi = min(max(iy_hi, 0), self.ny - 1)
        slices: list[tuple[int, int]] = []
        for ix in range(ix_lo, ix_hi + 1):
            base = ix * self.ny
            start = self.cell_start[base + iy_lo]
            stop = self.cell_start[base + iy_hi + 1]
            if stop > start:
                slices.append((int(start), int(stop)))
        return slices

    def _candidates(self, x: float, y: float, radius: float) -> np.ndarray:
        """Positions (into the CSR ordering) of all candidate points."""
        slices = self._candidate_slices(x, y, radius)
        if not slices:
            return np.empty(0, dtype=np.int64)
        return np.concatenate([np.arange(a, b) for a, b in slices])

    # -- queries ---------------------------------------------------------------

    def range_indices(self, center, radius: float) -> np.ndarray:
        """Indices (into the original point array) within ``radius`` of ``center``."""
        radius = check_positive(radius, "radius")
        x, y = float(center[0]), float(center[1])
        pos = self._candidates(x, y, radius)
        if pos.size == 0:
            return pos
        cand = self._sorted_points[pos]
        d2 = (cand[:, 0] - x) ** 2 + (cand[:, 1] - y) ** 2
        keep = d2 <= radius * radius
        return self.order[pos[keep]]

    def range_count(self, center, radius: float) -> int:
        """Number of points within ``radius`` of ``center``."""
        return int(self.range_indices(center, radius).shape[0])

    def neighbor_distances(self, center, radius: float) -> np.ndarray:
        """Unsorted distances from ``center`` to every point within ``radius``."""
        radius = check_positive(radius, "radius")
        x, y = float(center[0]), float(center[1])
        pos = self._candidates(x, y, radius)
        if pos.size == 0:
            return np.empty(0, dtype=np.float64)
        cand = self._sorted_points[pos]
        d2 = (cand[:, 0] - x) ** 2 + (cand[:, 1] - y) ** 2
        d2 = d2[d2 <= radius * radius]
        return np.sqrt(d2)

    def count_within(self, queries, radius: float) -> np.ndarray:
        """Vector of range counts for many query points at one radius."""
        q = as_points(queries, name="queries", allow_empty=True)
        return np.array(
            [self.range_count(row, radius) for row in q], dtype=np.int64
        )

    def count_within_thresholds(self, queries, thresholds) -> np.ndarray:
        """Counts for many queries at many (sorted) radii in one pass.

        Returns an ``(nq, nt)`` matrix: one grid walk per query at the
        largest radius, then ``searchsorted`` distributes candidates over
        thresholds.  This is the multi-threshold batching used by the
        K-function plot.
        """
        q = as_points(queries, name="queries", allow_empty=True)
        ts = np.asarray(thresholds, dtype=np.float64).ravel()
        if ts.size == 0:
            raise ParameterError("thresholds must contain at least one value")
        rmax = float(ts.max())
        out = np.zeros((q.shape[0], ts.size), dtype=np.int64)
        if rmax <= 0.0:
            # Degenerate: only zero-distance neighbours count.
            for i, row in enumerate(q):
                d = self.neighbor_distances(row, max(rmax, np.finfo(float).tiny))
                out[i, :] = np.searchsorted(np.sort(d), ts, side="right")
            return out
        for i, row in enumerate(q):
            d = np.sort(self.neighbor_distances(row, rmax))
            out[i, :] = np.searchsorted(d, ts, side="right")
        return out

    def __len__(self) -> int:
        return int(self.points.shape[0])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"GridIndex(n={len(self)}, cells={self.nx}x{self.ny}, "
            f"cell_size={self.cell_size:g})"
        )
