"""A ball-tree built from scratch.

The tutorial's function-approximation methods cite both kd-trees [21] and
ball-trees [71] as carrier index structures for the lower/upper kernel
bounds.  This ball-tree mirrors the :class:`~repro.index.kdtree.KDTree`
node API (``node_bounds``, ``node_count``, ``children``, ``node_points``)
so the bound-based KDV backend can run on either index.

Construction splits each node along the widest coordinate axis at the
median (a simple, robust strategy); each node stores a centroid and a
covering radius, which yield the triangle-inequality distance bounds.
"""

from __future__ import annotations

import numpy as np

from .._validation import as_points, check_positive
from ..errors import ParameterError

__all__ = ["BallTree"]

_NO_CHILD = -1


class BallTree:
    """Median-split ball-tree over planar points."""

    def __init__(self, points, leaf_size: int = 32):
        self.points = as_points(points)
        leaf_size = int(leaf_size)
        if leaf_size < 1:
            raise ParameterError(f"leaf_size must be >= 1, got {leaf_size}")
        self.leaf_size = leaf_size

        n = self.points.shape[0]
        self.indices = np.arange(n, dtype=np.int64)

        starts: list[int] = []
        stops: list[int] = []
        lefts: list[int] = []
        rights: list[int] = []
        centers: list[np.ndarray] = []
        radii: list[float] = []

        pts = self.points
        idx = self.indices

        def new_node(start: int, stop: int) -> int:
            node = len(starts)
            block = pts[idx[start:stop]]
            center = block.mean(axis=0)
            radius = float(np.sqrt(((block - center) ** 2).sum(axis=1).max()))
            starts.append(start)
            stops.append(stop)
            lefts.append(_NO_CHILD)
            rights.append(_NO_CHILD)
            centers.append(center)
            radii.append(radius)
            return node

        root = new_node(0, n)
        stack = [root]
        while stack:
            node = stack.pop()
            start, stop = starts[node], stops[node]
            count = stop - start
            if count <= self.leaf_size or radii[node] == 0.0:
                continue
            block = pts[idx[start:stop]]
            extent = block.max(axis=0) - block.min(axis=0)
            dim = int(np.argmax(extent))
            mid = start + count // 2
            seg = idx[start:stop]
            part = np.argpartition(pts[seg, dim], mid - start)
            idx[start:stop] = seg[part]
            left = new_node(start, mid)
            right = new_node(mid, stop)
            lefts[node] = left
            rights[node] = right
            stack.append(left)
            stack.append(right)

        self.node_start = np.asarray(starts, dtype=np.int64)
        self.node_stop = np.asarray(stops, dtype=np.int64)
        self.node_left = np.asarray(lefts, dtype=np.int64)
        self.node_right = np.asarray(rights, dtype=np.int64)
        self.node_center = np.asarray(centers, dtype=np.float64)
        self.node_radius = np.asarray(radii, dtype=np.float64)
        self._sorted_points = self.points[self.indices]

    # -- node-level API ------------------------------------------------------

    @property
    def n_nodes(self) -> int:
        return int(self.node_start.shape[0])

    def node_count(self, node: int) -> int:
        return int(self.node_stop[node] - self.node_start[node])

    def is_leaf(self, node: int) -> bool:
        return self.node_left[node] == _NO_CHILD

    def children(self, node: int) -> tuple[int, int]:
        return int(self.node_left[node]), int(self.node_right[node])

    def node_points(self, node: int) -> np.ndarray:
        return self._sorted_points[self.node_start[node]:self.node_stop[node]]

    def node_point_indices(self, node: int) -> np.ndarray:
        return self.indices[self.node_start[node]:self.node_stop[node]]

    def node_bounds(self, node: int, x: float, y: float) -> tuple[float, float]:
        """Triangle-inequality (min, max) distance from a query to the ball."""
        cx, cy = self.node_center[node]
        d = float(np.hypot(x - cx, y - cy))
        r = float(self.node_radius[node])
        return max(d - r, 0.0), d + r

    # -- range queries ---------------------------------------------------------

    def range_indices(self, center, radius: float) -> np.ndarray:
        radius = check_positive(radius, "radius")
        x, y = float(center[0]), float(center[1])
        r2 = radius * radius
        hits: list[np.ndarray] = []
        stack = [0]
        while stack:
            node = stack.pop()
            dmin, dmax = self.node_bounds(node, x, y)
            if dmin > radius:
                continue
            start, stop = self.node_start[node], self.node_stop[node]
            if dmax <= radius:
                hits.append(np.arange(start, stop))
                continue
            if self.is_leaf(node):
                block = self._sorted_points[start:stop]
                d2 = (block[:, 0] - x) ** 2 + (block[:, 1] - y) ** 2
                sel = np.flatnonzero(d2 <= r2) + start
                if sel.size:
                    hits.append(sel)
                continue
            left, right = self.children(node)
            stack.append(left)
            stack.append(right)
        if not hits:
            return np.empty(0, dtype=np.int64)
        return self.indices[np.concatenate(hits)]

    def range_count(self, center, radius: float) -> int:
        return int(self.range_indices(center, radius).shape[0])

    def __len__(self) -> int:
        return int(self.points.shape[0])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"BallTree(n={len(self)}, nodes={self.n_nodes}, leaf_size={self.leaf_size})"
