"""Lixelization: splitting network edges into "linear pixels".

Network KDV (NKDV) rasterises a road network the way planar KDV rasterises
a rectangle: each edge is chopped into *lixels* of (at most) a target
length, and the density is evaluated at each lixel's midpoint.  This module
computes the lixel decomposition once so every NKDV backend shares it.
"""

from __future__ import annotations

import numpy as np

from .._validation import check_positive
from .graph import NetworkPosition, RoadNetwork

__all__ = ["Lixelization", "lixelize"]


class Lixelization:
    """A fixed decomposition of a network's edges into lixels.

    Attributes
    ----------
    network:
        The underlying :class:`RoadNetwork`.
    lixel_edge:
        ``(L,)`` edge id of each lixel.
    lixel_start / lixel_stop:
        ``(L,)`` offsets along the edge delimiting each lixel.
    lixel_mid:
        ``(L,)`` midpoint offsets (where densities are evaluated).
    edge_first:
        ``(E + 1,)`` CSR offsets: lixels of edge ``e`` occupy rows
        ``edge_first[e]:edge_first[e + 1]``.
    """

    def __init__(self, network: RoadNetwork, lixel_length: float):
        self.network = network
        self.lixel_length = check_positive(lixel_length, "lixel_length")

        counts = np.maximum(
            1, np.ceil(network.edge_lengths / self.lixel_length).astype(np.int64)
        )
        self.edge_first = np.concatenate([[0], np.cumsum(counts)]).astype(np.int64)
        total = int(self.edge_first[-1])

        self.lixel_edge = np.repeat(np.arange(network.n_edges, dtype=np.int64), counts)
        # Local lixel rank within its edge (0, 1, ..., counts[e]-1).
        rank = np.arange(total, dtype=np.int64) - np.repeat(self.edge_first[:-1], counts)
        step = network.edge_lengths / counts  # actual lixel length per edge
        per_edge_step = np.repeat(step, counts)
        self.lixel_start = rank * per_edge_step
        self.lixel_stop = (rank + 1) * per_edge_step
        self.lixel_mid = 0.5 * (self.lixel_start + self.lixel_stop)
        self.lixel_length_actual = per_edge_step

    @property
    def n_lixels(self) -> int:
        return int(self.lixel_edge.shape[0])

    def midpoints(self) -> list[NetworkPosition]:
        """Lixel midpoints as network positions (density evaluation sites)."""
        return [
            NetworkPosition(int(e), float(o))
            for e, o in zip(self.lixel_edge, self.lixel_mid)
        ]

    def midpoint_coords(self) -> np.ndarray:
        """Planar coordinates of every lixel midpoint, for plotting."""
        coords = np.empty((self.n_lixels, 2), dtype=np.float64)
        nodes = self.network.node_coords
        edge_nodes = self.network.edge_nodes
        lengths = self.network.edge_lengths
        t = self.lixel_mid / lengths[self.lixel_edge]
        a = nodes[edge_nodes[self.lixel_edge, 0]]
        b = nodes[edge_nodes[self.lixel_edge, 1]]
        coords[:] = (1.0 - t)[:, None] * a + t[:, None] * b
        return coords

    def lixels_of_edge(self, edge: int) -> slice:
        """Row slice of the lixels belonging to ``edge``."""
        return slice(int(self.edge_first[edge]), int(self.edge_first[edge + 1]))

    def locate(self, pos: NetworkPosition) -> int:
        """Lixel id containing a network position."""
        self.network.check_position(pos)
        first = int(self.edge_first[pos.edge])
        count = int(self.edge_first[pos.edge + 1]) - first
        step = self.network.edge_lengths[pos.edge] / count
        k = min(int(pos.offset / step), count - 1)
        return first + k

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Lixelization(lixels={self.n_lixels}, "
            f"target_length={self.lixel_length:g})"
        )


def lixelize(network: RoadNetwork, lixel_length: float) -> Lixelization:
    """Split every edge of ``network`` into lixels of about ``lixel_length``."""
    return Lixelization(network, lixel_length)
