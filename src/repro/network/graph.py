"""Road-network graph substrate.

A :class:`RoadNetwork` is an undirected graph embedded in the plane: nodes
carry coordinates, edges carry positive lengths (Euclidean by default).
Events and query positions live *on* the network as
:class:`NetworkPosition` values — an edge id plus an offset along that edge
— matching how NKDV and the network K-function define their domains.

The adjacency is stored in CSR form so Dijkstra runs over flat arrays.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._validation import as_points
from ..errors import NetworkError, ParameterError

__all__ = ["RoadNetwork", "NetworkPosition"]


@dataclass(frozen=True)
class NetworkPosition:
    """A point on a road network: ``offset`` metres along edge ``edge``.

    Offsets are measured from the edge's first endpoint (``u``).
    """

    edge: int
    offset: float

    def __post_init__(self) -> None:
        if self.edge < 0:
            raise NetworkError(f"edge id must be non-negative, got {self.edge}")
        if self.offset < 0:
            raise NetworkError(f"offset must be non-negative, got {self.offset}")


class RoadNetwork:
    """Undirected planar graph with positive edge lengths.

    Parameters
    ----------
    node_coords:
        ``(m, 2)`` planar coordinates of the nodes.
    edges:
        Sequence of ``(u, v)`` node-id pairs.  Self-loops are rejected;
        parallel edges are allowed (they get distinct edge ids).
    lengths:
        Optional per-edge lengths.  Defaults to the Euclidean distance
        between the endpoint coordinates; an explicit value lets callers
        model curved road segments.
    """

    def __init__(self, node_coords, edges, lengths=None):
        self.node_coords = as_points(node_coords, name="node_coords")
        m = self.node_coords.shape[0]

        edge_arr = np.asarray(edges, dtype=np.int64)
        if edge_arr.ndim != 2 or edge_arr.shape[1] != 2:
            raise NetworkError(f"edges must be an (E, 2) array, got shape {edge_arr.shape}")
        if edge_arr.shape[0] == 0:
            raise NetworkError("a road network needs at least one edge")
        if edge_arr.min() < 0 or edge_arr.max() >= m:
            raise NetworkError("edge endpoint references a node id outside [0, m)")
        if np.any(edge_arr[:, 0] == edge_arr[:, 1]):
            raise NetworkError("self-loop edges are not allowed")
        self.edge_nodes = edge_arr

        if lengths is None:
            delta = self.node_coords[edge_arr[:, 0]] - self.node_coords[edge_arr[:, 1]]
            self.edge_lengths = np.sqrt((delta ** 2).sum(axis=1))
        else:
            self.edge_lengths = np.asarray(lengths, dtype=np.float64).ravel()
            if self.edge_lengths.shape[0] != edge_arr.shape[0]:
                raise NetworkError("lengths must have one entry per edge")
        if np.any(~np.isfinite(self.edge_lengths)) or np.any(self.edge_lengths <= 0):
            raise NetworkError("edge lengths must be positive and finite")

        self._build_adjacency()

    def _build_adjacency(self) -> None:
        """CSR adjacency: for node u, neighbours are rows adj_start[u]:adj_start[u+1]."""
        m = self.n_nodes
        e = self.n_edges
        # Each undirected edge contributes two directed half-edges.
        heads = np.concatenate([self.edge_nodes[:, 0], self.edge_nodes[:, 1]])
        tails = np.concatenate([self.edge_nodes[:, 1], self.edge_nodes[:, 0]])
        eids = np.concatenate([np.arange(e), np.arange(e)])
        lens = np.concatenate([self.edge_lengths, self.edge_lengths])
        order = np.argsort(heads, kind="stable")
        counts = np.bincount(heads, minlength=m)
        self.adj_start = np.concatenate([[0], np.cumsum(counts)]).astype(np.int64)
        self.adj_node = tails[order]
        self.adj_edge = eids[order]
        self.adj_length = lens[order]

    # -- basic measures ---------------------------------------------------------

    @property
    def n_nodes(self) -> int:
        return int(self.node_coords.shape[0])

    @property
    def n_edges(self) -> int:
        return int(self.edge_nodes.shape[0])

    @property
    def total_length(self) -> float:
        """Sum of all edge lengths (the |A| of network point-pattern stats)."""
        return float(self.edge_lengths.sum())

    def neighbors(self, node: int) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(neighbor_nodes, edge_ids, edge_lengths)`` incident to ``node``."""
        start, stop = self.adj_start[node], self.adj_start[node + 1]
        return (
            self.adj_node[start:stop],
            self.adj_edge[start:stop],
            self.adj_length[start:stop],
        )

    def degree(self, node: int) -> int:
        return int(self.adj_start[node + 1] - self.adj_start[node])

    # -- positions on the network -------------------------------------------------

    def check_position(self, pos: NetworkPosition) -> NetworkPosition:
        """Validate that ``pos`` lies on this network."""
        if pos.edge >= self.n_edges:
            raise NetworkError(f"edge {pos.edge} does not exist (E={self.n_edges})")
        length = self.edge_lengths[pos.edge]
        if pos.offset > length * (1 + 1e-12):
            raise NetworkError(
                f"offset {pos.offset} exceeds edge {pos.edge} length {length}"
            )
        return pos

    def position_coords(self, pos: NetworkPosition) -> np.ndarray:
        """Planar coordinates of a network position (linear interpolation)."""
        self.check_position(pos)
        u, v = self.edge_nodes[pos.edge]
        length = self.edge_lengths[pos.edge]
        t = min(pos.offset / length, 1.0)
        return (1.0 - t) * self.node_coords[u] + t * self.node_coords[v]

    def positions_coords(self, positions) -> np.ndarray:
        """Planar coordinates for a sequence of network positions."""
        return np.array([self.position_coords(p) for p in positions])

    def sample_positions(self, n: int, rng: np.random.Generator) -> list[NetworkPosition]:
        """``n`` positions uniform by length — network CSR (for envelopes)."""
        n = int(n)
        if n < 0:
            raise ParameterError(f"sample size must be non-negative, got {n}")
        probs = self.edge_lengths / self.total_length
        edges = rng.choice(self.n_edges, size=n, p=probs)
        offsets = rng.uniform(0.0, 1.0, size=n) * self.edge_lengths[edges]
        return [NetworkPosition(int(e), float(o)) for e, o in zip(edges, offsets)]

    def snap_points(self, points) -> list[NetworkPosition]:
        """Snap planar points to their nearest network position.

        Projects each point onto every edge segment and keeps the closest
        projection.  Vectorised per point over all edges: O(n_points * E),
        which is fine for the dataset sizes used in examples and tests.
        """
        pts = as_points(points)
        a = self.node_coords[self.edge_nodes[:, 0]]
        b = self.node_coords[self.edge_nodes[:, 1]]
        ab = b - a
        ab_sq = (ab ** 2).sum(axis=1)
        result: list[NetworkPosition] = []
        for p in pts:
            t = ((p - a) * ab).sum(axis=1) / ab_sq
            np.clip(t, 0.0, 1.0, out=t)
            proj = a + t[:, None] * ab
            d2 = ((proj - p) ** 2).sum(axis=1)
            e = int(np.argmin(d2))
            result.append(NetworkPosition(e, float(t[e] * self.edge_lengths[e])))
        return result

    def connected_components(self) -> np.ndarray:
        """Component label per node (BFS over the CSR adjacency)."""
        labels = np.full(self.n_nodes, -1, dtype=np.int64)
        current = 0
        for seed in range(self.n_nodes):
            if labels[seed] != -1:
                continue
            stack = [seed]
            labels[seed] = current
            while stack:
                u = stack.pop()
                nbrs, _, _ = self.neighbors(u)
                for v in nbrs:
                    if labels[v] == -1:
                        labels[v] = current
                        stack.append(int(v))
            current += 1
        return labels

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RoadNetwork(nodes={self.n_nodes}, edges={self.n_edges}, "
            f"total_length={self.total_length:.3g})"
        )
