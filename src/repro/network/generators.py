"""Synthetic road-network generators.

The paper's network experiments run on real road networks (Hong Kong,
accident corridors).  Offline we substitute parametric families that
reproduce the topological features the algorithms are sensitive to:

* :func:`grid_network` — Manhattan-style lattice (dense intersections),
* :func:`radial_network` — ring-and-spoke city layout,
* :func:`random_geometric_network` — irregular suburban connectivity,
* :func:`two_corridor_network` — the Figure 3 gadget: two parallel roads
  that are close in Euclidean distance but far along the network.
"""

from __future__ import annotations

import numpy as np

from .._validation import check_positive, resolve_rng
from ..errors import ParameterError
from .graph import RoadNetwork

__all__ = [
    "grid_network",
    "radial_network",
    "random_geometric_network",
    "two_corridor_network",
]


def grid_network(nx: int, ny: int, spacing: float = 1.0) -> RoadNetwork:
    """An ``nx x ny`` lattice of streets with the given block ``spacing``."""
    nx = int(nx)
    ny = int(ny)
    if nx < 2 or ny < 2:
        raise ParameterError(f"grid network needs nx, ny >= 2, got {nx}x{ny}")
    spacing = check_positive(spacing, "spacing")

    xs, ys = np.meshgrid(np.arange(nx) * spacing, np.arange(ny) * spacing, indexing="ij")
    coords = np.column_stack([xs.ravel(), ys.ravel()])

    def node_id(i: int, j: int) -> int:
        return i * ny + j

    edges: list[tuple[int, int]] = []
    for i in range(nx):
        for j in range(ny):
            if i + 1 < nx:
                edges.append((node_id(i, j), node_id(i + 1, j)))
            if j + 1 < ny:
                edges.append((node_id(i, j), node_id(i, j + 1)))
    return RoadNetwork(coords, edges)


def radial_network(rings: int, spokes: int, ring_spacing: float = 1.0) -> RoadNetwork:
    """Concentric rings connected by radial spokes (a classic city skeleton).

    Node 0 is the centre; ring ``r`` (1-based) has ``spokes`` nodes at radius
    ``r * ring_spacing``.
    """
    rings = int(rings)
    spokes = int(spokes)
    if rings < 1 or spokes < 3:
        raise ParameterError(f"need rings >= 1 and spokes >= 3, got {rings}, {spokes}")
    ring_spacing = check_positive(ring_spacing, "ring_spacing")

    coords = [np.array([0.0, 0.0])]
    for r in range(1, rings + 1):
        radius = r * ring_spacing
        for k in range(spokes):
            theta = 2.0 * np.pi * k / spokes
            coords.append(np.array([radius * np.cos(theta), radius * np.sin(theta)]))
    coords_arr = np.array(coords)

    def ring_node(r: int, k: int) -> int:
        return 1 + (r - 1) * spokes + (k % spokes)

    edges: list[tuple[int, int]] = []
    for k in range(spokes):
        edges.append((0, ring_node(1, k)))  # centre to first ring
        for r in range(1, rings):
            edges.append((ring_node(r, k), ring_node(r + 1, k)))  # spokes
    for r in range(1, rings + 1):
        for k in range(spokes):
            edges.append((ring_node(r, k), ring_node(r, k + 1)))  # ring arcs
    return RoadNetwork(coords_arr, edges)


def random_geometric_network(
    n_nodes: int,
    radius: float,
    bbox_size: float = 10.0,
    seed=None,
) -> RoadNetwork:
    """Random geometric graph restricted to its largest connected component.

    Nodes are uniform in ``[0, bbox_size]^2``; any pair within ``radius`` is
    connected.  The largest component is kept so Dijkstra-based methods see
    a connected network.
    """
    n_nodes = int(n_nodes)
    if n_nodes < 2:
        raise ParameterError(f"need at least 2 nodes, got {n_nodes}")
    radius = check_positive(radius, "radius")
    bbox_size = check_positive(bbox_size, "bbox_size")
    rng = resolve_rng(seed)

    coords = rng.uniform(0.0, bbox_size, size=(n_nodes, 2))
    d2 = ((coords[:, None, :] - coords[None, :, :]) ** 2).sum(axis=2)
    iu, ju = np.triu_indices(n_nodes, k=1)
    close = d2[iu, ju] <= radius * radius
    edges = np.column_stack([iu[close], ju[close]])
    if edges.shape[0] == 0:
        raise ParameterError(
            "random geometric graph produced no edges; increase radius"
        )

    net = RoadNetwork(coords, edges)
    labels = net.connected_components()
    keep = labels == np.bincount(labels).argmax()
    if keep.all():
        return net
    # Re-index nodes of the largest component.
    remap = -np.ones(n_nodes, dtype=np.int64)
    remap[keep] = np.arange(int(keep.sum()))
    edge_keep = keep[edges[:, 0]] & keep[edges[:, 1]]
    new_edges = remap[edges[edge_keep]]
    return RoadNetwork(coords[keep], new_edges)


def two_corridor_network(
    length: float = 10.0,
    gap: float = 0.5,
    segments: int = 10,
) -> RoadNetwork:
    """The Figure 3 gadget: two parallel corridors joined only at one end.

    Two horizontal roads of the given ``length`` run ``gap`` apart; a single
    connector joins them at ``x = length``.  A point on the lower corridor
    near ``x = 0`` is Euclidean-close to the upper corridor (distance
    ``gap``) but network-far (about ``2 * length``), exactly the situation
    where planar KDV overestimates density (paper Figure 3).
    """
    length = check_positive(length, "length")
    gap = check_positive(gap, "gap")
    segments = int(segments)
    if segments < 1:
        raise ParameterError(f"segments must be >= 1, got {segments}")

    xs = np.linspace(0.0, length, segments + 1)
    lower = np.column_stack([xs, np.zeros_like(xs)])
    upper = np.column_stack([xs, np.full_like(xs, gap)])
    coords = np.vstack([lower, upper])

    edges: list[tuple[int, int]] = []
    for i in range(segments):
        edges.append((i, i + 1))  # lower corridor
        edges.append((segments + 1 + i, segments + 2 + i))  # upper corridor
    edges.append((segments, 2 * segments + 1))  # connector at x = length
    return RoadNetwork(coords, edges)
