"""Dijkstra shortest paths over :class:`~repro.network.graph.RoadNetwork`.

Two entry points:

* :func:`node_distances` — classic single/multi-source Dijkstra from graph
  nodes, with an optional ``cutoff`` (the bounded traversal that makes
  bandwidth-limited NKDV and threshold-limited network K-functions cheap).
* :func:`position_distances` — distances from a *network position* (a point
  part-way along an edge) to all nodes, implemented as a two-source Dijkstra
  seeded with the offsets to the edge's endpoints.

Both return dense float arrays with ``np.inf`` for unreachable nodes.
"""

from __future__ import annotations

import heapq
from typing import Sequence

import numpy as np

from .. import obs
from .._validation import check_non_negative
from ..errors import NetworkError
from .graph import NetworkPosition, RoadNetwork

__all__ = [
    "node_distances",
    "node_distances_with_split",
    "position_distances",
    "distance_to_position",
    "position_to_position_distance",
]


def node_distances(
    network: RoadNetwork,
    sources: int | Sequence[tuple[int, float]],
    cutoff: float | None = None,
) -> np.ndarray:
    """Shortest-path distance from ``sources`` to every node.

    Parameters
    ----------
    network:
        The road network.
    sources:
        Either a single node id (distance 0) or a sequence of
        ``(node, initial_distance)`` pairs for multi-source traversal.
    cutoff:
        If given, the search stops expanding beyond this distance; nodes
        farther than ``cutoff`` keep ``np.inf``.  Bounded traversal is what
        keeps bandwidth-limited network methods near-linear in practice.

    Returns
    -------
    ``(n_nodes,)`` float array of distances, ``np.inf`` where unreachable.
    """
    if isinstance(sources, (int, np.integer)):
        seed_list: list[tuple[int, float]] = [(int(sources), 0.0)]
    else:
        seed_list = [(int(node), float(d0)) for node, d0 in sources]
    for node, d0 in seed_list:
        if not (0 <= node < network.n_nodes):
            raise NetworkError(f"source node {node} outside [0, {network.n_nodes})")
        check_non_negative(d0, "initial source distance")
    if cutoff is not None:
        cutoff = check_non_negative(cutoff, "cutoff")

    dist = np.full(network.n_nodes, np.inf, dtype=np.float64)
    heap: list[tuple[float, int]] = []
    for node, d0 in seed_list:
        if cutoff is not None and d0 > cutoff:
            continue
        if d0 < dist[node]:
            dist[node] = d0
            heapq.heappush(heap, (d0, node))

    adj_start = network.adj_start
    adj_node = network.adj_node
    adj_length = network.adj_length
    pops = 0
    while heap:
        d, u = heapq.heappop(heap)
        if d > dist[u]:
            continue  # stale entry
        pops += 1
        start, stop = adj_start[u], adj_start[u + 1]
        for k in range(start, stop):
            v = adj_node[k]
            nd = d + adj_length[k]
            if cutoff is not None and nd > cutoff:
                continue
            if nd < dist[v]:
                dist[v] = nd
                heapq.heappush(heap, (nd, int(v)))
    if obs.is_active():
        obs.count("dijkstra.runs")
        obs.count("dijkstra.heap_pops", pops)
        obs.count("dijkstra.settled_nodes", int(np.isfinite(dist).sum()))
    return dist


def node_distances_with_split(
    network: RoadNetwork,
    sources: int | Sequence[tuple[int, float]],
    cutoff: float | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Dijkstra that also propagates equal-split factors along the tree.

    Used by the equal-split NKDV variant (Okabe & Sugihara): kernel mass
    leaving a node of degree ``d`` splits over its ``d - 1`` outgoing edges,
    so the mass arriving at a node is the product of ``1 / (deg - 1)`` over
    the interior nodes of the path.  Factors follow the *shortest-path
    tree* (the standard tractable approximation of exact equal-split).

    Returns ``(distances, factors)``; unreachable nodes carry ``inf`` / 0.
    """
    if isinstance(sources, (int, np.integer)):
        seed_list: list[tuple[int, float]] = [(int(sources), 0.0)]
    else:
        seed_list = [(int(node), float(d0)) for node, d0 in sources]
    for node, d0 in seed_list:
        if not (0 <= node < network.n_nodes):
            raise NetworkError(f"source node {node} outside [0, {network.n_nodes})")
        check_non_negative(d0, "initial source distance")
    if cutoff is not None:
        cutoff = check_non_negative(cutoff, "cutoff")

    dist = np.full(network.n_nodes, np.inf, dtype=np.float64)
    factor = np.zeros(network.n_nodes, dtype=np.float64)
    heap: list[tuple[float, int]] = []
    for node, d0 in seed_list:
        if cutoff is not None and d0 > cutoff:
            continue
        if d0 < dist[node]:
            dist[node] = d0
            factor[node] = 1.0
            heapq.heappush(heap, (d0, node))

    adj_start = network.adj_start
    adj_node = network.adj_node
    adj_length = network.adj_length
    pops = 0
    while heap:
        d, u = heapq.heappop(heap)
        if d > dist[u]:
            continue
        pops += 1
        # Mass leaving u splits over its other incident edges.
        out_split = factor[u] / max(network.degree(u) - 1, 1)
        start, stop = adj_start[u], adj_start[u + 1]
        for k in range(start, stop):
            v = adj_node[k]
            nd = d + adj_length[k]
            if cutoff is not None and nd > cutoff:
                continue
            if nd < dist[v]:
                dist[v] = nd
                factor[v] = out_split
                heapq.heappush(heap, (nd, int(v)))
    if obs.is_active():
        obs.count("dijkstra.runs")
        obs.count("dijkstra.heap_pops", pops)
        obs.count("dijkstra.settled_nodes", int(np.isfinite(dist).sum()))
    return dist, factor


def position_distances(
    network: RoadNetwork,
    pos: NetworkPosition,
    cutoff: float | None = None,
) -> np.ndarray:
    """Distances from a network position to every node.

    Seeds Dijkstra at the two endpoints of the position's edge with the
    along-edge offsets as initial distances.
    """
    network.check_position(pos)
    u, v = network.edge_nodes[pos.edge]
    length = float(network.edge_lengths[pos.edge])
    seeds = [(int(u), float(pos.offset)), (int(v), length - float(pos.offset))]
    return node_distances(network, seeds, cutoff=cutoff)


def distance_to_position(
    network: RoadNetwork,
    node_dist: np.ndarray,
    source: NetworkPosition,
    target: NetworkPosition,
) -> float:
    """Network distance from ``source`` to ``target`` given ``node_dist``.

    ``node_dist`` must be the node-distance array of ``source`` (from
    :func:`position_distances`).  The distance is the best route through
    either endpoint of the target's edge, or — when both positions share an
    edge — the direct along-edge segment.
    """
    network.check_position(target)
    a, b = network.edge_nodes[target.edge]
    length = float(network.edge_lengths[target.edge])
    best = min(
        node_dist[a] + target.offset,
        node_dist[b] + (length - target.offset),
    )
    if target.edge == source.edge:
        best = min(best, abs(target.offset - source.offset))
    return float(best)


def position_to_position_distance(
    network: RoadNetwork,
    a: NetworkPosition,
    b: NetworkPosition,
    cutoff: float | None = None,
) -> float:
    """Exact shortest-path distance between two network positions.

    Convenience wrapper (one bounded Dijkstra); batched algorithms should
    use :func:`position_distances` once per source instead.
    """
    dist = position_distances(network, a, cutoff=None if cutoff is None else cutoff)
    return distance_to_position(network, dist, a, b)
