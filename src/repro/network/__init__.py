"""Road-network substrate: graph, shortest paths, lixels, generators."""

from .dijkstra import (
    distance_to_position,
    node_distances,
    node_distances_with_split,
    position_distances,
    position_to_position_distance,
)
from .generators import (
    grid_network,
    radial_network,
    random_geometric_network,
    two_corridor_network,
)
from .graph import NetworkPosition, RoadNetwork
from .lixels import Lixelization, lixelize

__all__ = [
    "Lixelization",
    "NetworkPosition",
    "RoadNetwork",
    "distance_to_position",
    "grid_network",
    "lixelize",
    "node_distances",
    "node_distances_with_split",
    "position_distances",
    "position_to_position_distance",
    "radial_network",
    "random_geometric_network",
    "two_corridor_network",
]
