"""Command-line interface: the library's tools on flat CSV files.

The deployed systems the paper describes (KDV-Explorer, the COVID hotspot
maps) are thin front-ends over exactly these operations, so the CLI covers
the same workflow on files:

    python -m repro generate covid --n 4000 --out events.csv
    python -m repro kdv events.csv --bandwidth 2.0 --out heatmap.ppm --ascii
    python -m repro kfunction events.csv --simulations 99
    python -m repro hotspots events.csv --out hotspots.ppm
    python -m repro stkdv events.csv --frames 4 --out-prefix frame

Input CSVs carry ``x,y`` or ``x,y,t`` columns (header optional), the
format of :mod:`repro.data.io`.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

import numpy as np

from . import data as data_mod
from . import obs
from .core.kdv import kde_grid
from .core.kfunction import k_function_plot
from .core.pipeline import HotspotAnalysis
from .core.stkdv import stkdv
from .data import SpatioTemporalDataset, read_dataset_csv, write_csv
from .errors import ReproError
from .raster import ascii_render, write_ppm

__all__ = ["main", "build_parser"]


def _parse_size(text: str) -> tuple[int, int]:
    try:
        w, h = text.lower().split("x")
        size = int(w), int(h)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(
            f"size must look like 256x192, got {text!r}"
        ) from exc
    if size[0] < 1 or size[1] < 1:
        raise argparse.ArgumentTypeError(
            f"size dimensions must be positive, got {text!r}"
        )
    return size


def _positive_int(text: str) -> int:
    try:
        value = int(text)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(
            f"expected a positive integer, got {text!r}"
        ) from exc
    if value < 1:
        raise argparse.ArgumentTypeError(
            f"expected a positive integer, got {text!r}"
        )
    return value


def _non_negative_float(text: str) -> float:
    try:
        value = float(text)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(
            f"expected a non-negative number, got {text!r}"
        ) from exc
    if not (value >= 0.0):  # rejects negatives and NaN alike
        raise argparse.ArgumentTypeError(
            f"expected a non-negative number, got {text!r}"
        )
    return value


def build_parser() -> argparse.ArgumentParser:
    """Argument parser for the ``python -m repro`` command suite."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Large-scale geospatial analytics on CSV point files.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    # Observability flags shared by every subcommand (repro.obs).
    trace_parent = argparse.ArgumentParser(add_help=False)
    trace_parent.add_argument(
        "--trace", action="store_true",
        help="collect a span/counter trace of the run and print the tree "
             "(see docs/OBSERVABILITY.md); deterministic for any --workers",
    )
    trace_parent.add_argument(
        "--trace-json", metavar="PATH", default=None,
        help="also dump the trace as JSON to PATH (implies --trace)",
    )

    gen = sub.add_parser("generate", help="write a synthetic dataset CSV",
                         parents=[trace_parent])
    gen.add_argument("dataset", choices=["covid", "crime", "taxi"])
    gen.add_argument("--n", type=int, default=4000, help="number of events")
    gen.add_argument("--seed", type=int, default=0)
    gen.add_argument("--out", required=True, help="output CSV path")

    kdv = sub.add_parser("kdv", help="render a KDV heatmap from a CSV",
                         parents=[trace_parent])
    kdv.add_argument("input", help="CSV of x,y[,t] events")
    kdv.add_argument("--bandwidth", type=float, required=True)
    kdv.add_argument("--kernel", default="quartic")
    kdv.add_argument("--method", default="auto")
    kdv.add_argument("--size", type=_parse_size, default=(256, 192))
    kdv.add_argument("--colormap", default="heat")
    kdv.add_argument("--out", help="output PPM path")
    kdv.add_argument("--ascii", action="store_true", help="print a terminal preview")
    kdv.add_argument(
        "--workers", type=int, default=None,
        help="worker count for the parallel/dualtree methods (default: "
             "REPRO_WORKERS; with --method auto, a planning hint that "
             "steers the cost model toward the parallel-capable backends)",
    )
    kdv.add_argument(
        "--backend", default=None, choices=["serial", "thread", "process"],
        help="executor backend for the parallel/dualtree methods "
             "(default: REPRO_BACKEND; dualtree output is bit-identical "
             "for every choice)",
    )
    kdv.add_argument(
        "--tau", type=_non_negative_float, default=None,
        help="absolute error budget for --method dualtree "
             "(per-pixel error <= tau/2; 0 = exact; default 1e-3)",
    )
    kdv.add_argument(
        "--dtype", default=None, choices=["float32", "float64"],
        help="scatter-core accuracy mode for --method grid (float64 = "
             "bit-exact default; float32 = bucketed kernel tables under "
             "a bounded-error contract; with --method auto, a planning "
             "hint steering the cost model toward the grid backend)",
    )

    kfn = sub.add_parser("kfunction", help="K-function plot with CSR envelopes",
                         parents=[trace_parent])
    kfn.add_argument("input")
    kfn.add_argument("--thresholds", type=int, default=12, help="threshold count")
    kfn.add_argument("--max-threshold", type=float, default=None)
    kfn.add_argument("--simulations", type=int, default=99)
    kfn.add_argument("--seed", type=int, default=0)
    kfn.add_argument(
        "--chart", action="store_true", help="draw the K/L/U curves as text"
    )
    kfn.add_argument(
        "--workers", type=int, default=None,
        help="worker count for CSR envelope simulations (default: REPRO_WORKERS)",
    )

    hot = sub.add_parser("hotspots", help="end-to-end hotspot analysis",
                         parents=[trace_parent])
    hot.add_argument("input")
    hot.add_argument("--size", type=_parse_size, default=(192, 128))
    hot.add_argument("--simulations", type=int, default=39)
    hot.add_argument("--quantile", type=float, default=0.95)
    hot.add_argument("--seed", type=int, default=0)
    hot.add_argument("--out", help="output PPM path")
    hot.add_argument(
        "--workers", type=int, default=None,
        help="worker count for CSR envelope simulations (default: REPRO_WORKERS)",
    )

    screen = sub.add_parser(
        "csrtest", help="cheap CSR screens: quadrat chi-square + Clark-Evans",
        parents=[trace_parent],
    )
    screen.add_argument("input")
    screen.add_argument("--quadrats", type=_parse_size, default=(5, 5))

    st = sub.add_parser("stkdv", help="spatiotemporal KDV frames (needs x,y,t)",
                        parents=[trace_parent])
    st.add_argument("input")
    st.add_argument("--frames", type=_positive_int, default=6)
    st.add_argument("--bandwidth-space", type=float, required=True)
    st.add_argument("--bandwidth-time", type=float, required=True)
    st.add_argument(
        "--method", default="auto", choices=["auto", "naive", "window", "shared"],
        help="STKDV backend: shared = incremental temporal sharing "
             "(polynomial temporal kernels; falls back to window)",
    )
    st.add_argument("--size", type=_parse_size, default=(128, 96))
    st.add_argument(
        "--dtype", default=None, choices=["float32", "float64"],
        help="scatter-core accuracy mode for the window/shared backends "
             "(float64 = bit-exact default; float32 = bucketed kernel "
             "tables under a bounded-error contract)",
    )
    st.add_argument("--out-prefix", default="stkdv_frame")
    st.add_argument(
        "--workers", type=int, default=None,
        help="worker count for per-frame evaluation (default: REPRO_WORKERS); "
             "ignored by the serial shared backend",
    )

    strm = sub.add_parser(
        "stream",
        help="drive the incremental streaming engine over a live feed",
        parents=[trace_parent],
    )
    strm.add_argument(
        "input", nargs="?", default=None,
        help="optional CSV of x,y[,t] events replayed in time order; "
             "omitted = simulate a Hawkes (self-exciting) feed",
    )
    strm.add_argument(
        "--events", type=_positive_int, default=2000,
        help="number of events of the simulated Hawkes feed (ignored with "
             "an input CSV)",
    )
    strm.add_argument("--seed", type=int, default=0,
                      help="seed of the simulated feed")
    strm.add_argument(
        "--window", type=_positive_int, default=1000,
        help="sliding window capacity in events (count-based mode)",
    )
    strm.add_argument(
        "--horizon", type=float, default=None,
        help="sliding window length in time units (replaces --window)",
    )
    strm.add_argument(
        "--step", type=_positive_int, default=100,
        help="events per push (the feed's batch size)",
    )
    strm.add_argument(
        "--bandwidth", type=float, default=None,
        help="KDV bandwidth (default: 5%% of the window diagonal)",
    )
    strm.add_argument("--size", type=_parse_size, default=(128, 96),
                      help="KDV raster resolution")
    strm.add_argument("--lattice", type=_parse_size, default=(24, 16),
                      help="hot-spot cell lattice resolution")
    strm.add_argument(
        "--thresholds", type=_positive_int, default=4,
        help="number of K-function distance thresholds",
    )
    strm.add_argument("--out", help="output PPM path of the final surface")
    strm.add_argument("--ascii", action="store_true",
                      help="print a terminal preview of the final surface")
    strm.add_argument(
        "--workers", type=int, default=None,
        help="worker count for re-scatters and large delta queries "
             "(default: REPRO_WORKERS); surfaces are bit-identical for "
             "every choice",
    )
    strm.add_argument(
        "--backend", default=None, choices=["serial", "thread", "process"],
        help="executor backend (default: REPRO_BACKEND)",
    )

    srv = sub.add_parser(
        "serve",
        help="run the analytics HTTP server (tiles, queries, ingest, stats)",
        parents=[trace_parent],
    )
    srv.add_argument(
        "input", nargs="?", default=None,
        help="optional CSV of x,y[,t] events preloaded as dataset "
             "--name; omitted = synthetic crime dataset of --events points",
    )
    srv.add_argument("--host", default="127.0.0.1",
                     help="bind address (default 127.0.0.1)")
    srv.add_argument("--port", type=int, default=8731,
                     help="bind port; 0 = ephemeral (default 8731)")
    srv.add_argument("--name", default="demo",
                     help="name of the preloaded dataset (default demo)")
    srv.add_argument(
        "--events", type=_positive_int, default=4000,
        help="size of the synthetic dataset (ignored with an input CSV)",
    )
    srv.add_argument("--seed", type=int, default=0,
                     help="seed of the synthetic dataset")
    srv.add_argument(
        "--tile-px", type=_positive_int, default=64,
        help="tile side length in pixels (default 64)",
    )
    srv.add_argument(
        "--max-zoom", type=int, default=4,
        help="deepest pyramid level served (default 4)",
    )
    srv.add_argument(
        "--tile-cache", type=_positive_int, default=512,
        help="tile cache capacity in entries (default 512)",
    )
    srv.add_argument(
        "--result-cache", type=_positive_int, default=128,
        help="query-result cache capacity in entries (default 128)",
    )
    srv.add_argument(
        "--max-inflight", type=_positive_int, default=None,
        help="bound on concurrently executing requests "
             "(default: 2x the resolved worker count)",
    )
    srv.add_argument(
        "--workers", type=int, default=None,
        help="worker count for surface maintenance (default: REPRO_WORKERS)",
    )
    srv.add_argument(
        "--backend", default=None, choices=["serial", "thread", "process"],
        help="executor backend (default: REPRO_BACKEND)",
    )

    return parser


def _cmd_generate(args) -> int:
    if args.dataset == "covid":
        ds = data_mod.hk_covid(
            n_wave1=args.n // 3, n_wave2=args.n - args.n // 3, seed=args.seed
        )
        write_csv(args.out, ds.points, times=ds.times)
    elif args.dataset == "crime":
        ds = data_mod.chicago_crime(args.n, seed=args.seed)
        write_csv(args.out, ds.points)
    else:
        ds = data_mod.nyc_taxi(args.n, seed=args.seed)
        write_csv(args.out, ds.points, times=ds.times)
    print(f"wrote {ds.n} events to {args.out}")
    return 0


def _cmd_kdv(args) -> int:
    ds = read_dataset_csv(args.input, margin=0.0)
    # method="auto" resolves through the cost-based planner inside
    # kde_grid; --workers/--backend/--tau/--dtype pass through as
    # planning hints (the pre-PR-8 CLI rewrote --method here, and its
    # two sequential rewrites conflicted for --workers + --dtype).
    grid = kde_grid(
        ds.points, ds.bbox, args.size, args.bandwidth,
        kernel=args.kernel, method=args.method, workers=args.workers,
        backend=args.backend, tau=args.tau, dtype=args.dtype,
    )
    plan = (
        grid.diagnostics.records.get("kdv.plan")
        if grid.diagnostics is not None else None
    )
    if plan is not None:
        dropped = (f"; dropped: {', '.join(sorted(plan['dropped']))}"
                   if plan["dropped"] else "")
        print(f"auto plan: {plan['rationale']}{dropped}")
    print(
        f"KDV over {ds.points.shape[0]} events, grid {args.size[0]}x{args.size[1]}, "
        f"kernel={args.kernel}, b={args.bandwidth:g}; peak density {grid.max:.4g} "
        f"at ({grid.argmax_coords()[0]:.3g}, {grid.argmax_coords()[1]:.3g})"
    )
    refinement = (
        grid.diagnostics.records.get("refinement")
        if grid.diagnostics is not None else None
    )
    if refinement is not None:
        s = refinement
        print(
            f"refinement: {s.pairs_visited} pairs, {s.tiles_bulk_accepted} bulk "
            f"accepts, {s.leaf_leaf_scans} leaf scans ({s.points_touched} points), "
            f"{s.n_jobs}/{s.n_tiles} tiles refined; plan {s.plan_seconds * 1e3:.0f} ms, "
            f"execute {s.execute_seconds * 1e3:.0f} ms"
        )
    if args.out:
        write_ppm(args.out, grid, args.colormap)
        print(f"heatmap written to {args.out}")
    if args.ascii or not args.out:
        print(ascii_render(grid, width=72))
    return 0


def _cmd_kfunction(args) -> int:
    ds = read_dataset_csv(args.input)
    top = args.max_threshold
    if top is None:
        top = 0.25 * ds.bbox.diagonal
    thresholds = np.linspace(top / args.thresholds, top, args.thresholds)
    plot = k_function_plot(
        ds.points, ds.bbox, thresholds,
        n_simulations=args.simulations, seed=args.seed,
        workers=args.workers,
    )
    print(f"{'s':>10} {'K(s)':>12} {'L(s)':>12} {'U(s)':>12}  regime")
    for s, k, lo, hi, regime in plot.rows():
        print(f"{s:>10.4g} {k:>12.0f} {lo:>12.0f} {hi:>12.0f}  {regime}")
    clustered = plot.clustered_thresholds()
    if clustered.size:
        print(f"\nsignificant clustering at {clustered.size} thresholds; "
              f"suggested KDV bandwidth: {np.median(clustered):.4g}")
    else:
        print("\nno significant clustering detected")
    if args.chart:
        from .bench import ascii_chart

        print()
        print(
            ascii_chart(
                plot.thresholds,
                {"K(s)": plot.observed, "L(s)": plot.lower, "U(s)": plot.upper},
                title="K-function plot (Figure 2 style)",
            )
        )
    return 0


def _cmd_hotspots(args) -> int:
    ds = read_dataset_csv(args.input)
    report = HotspotAnalysis(ds.points, ds.bbox).run(
        size=args.size,
        n_simulations=args.simulations,
        quantile=args.quantile,
        seed=args.seed,
        workers=args.workers,
    )
    print(report.summary())
    if args.out:
        write_ppm(args.out, report.density, "heat")
        print(f"hotspot map written to {args.out}")
    return 0


def _cmd_csrtest(args) -> int:
    from .core.csr_tests import clark_evans, quadrat_test

    ds = read_dataset_csv(args.input)
    quadrat = quadrat_test(ds.points, ds.bbox, args.quadrats[0], args.quadrats[1])
    ce = clark_evans(ds.points, ds.bbox)
    print(
        f"quadrat test ({args.quadrats[0]}x{args.quadrats[1]}): "
        f"chi2={quadrat.statistic:.1f} df={quadrat.df} p={quadrat.p_value:.4g} "
        f"-> {'CSR not rejected' if quadrat.is_csr else 'CSR rejected'}"
    )
    print(
        f"Clark-Evans: R={ce.index:.3f} z={ce.z_score:.2f} "
        f"p={ce.p_value:.4g} -> {ce.pattern}"
    )
    return 0


def _cmd_stkdv(args) -> int:
    ds = read_dataset_csv(args.input)
    if not isinstance(ds, SpatioTemporalDataset):
        print("error: stkdv needs a 3-column (x,y,t) CSV", file=sys.stderr)
        return 2
    t_lo, t_hi = ds.time_range
    frames = np.linspace(t_lo, t_hi, args.frames)
    result = stkdv(
        ds.points, ds.times, ds.bbox, args.size, frames,
        args.bandwidth_space, args.bandwidth_time,
        method=args.method, dtype=args.dtype, workers=args.workers,
    )
    track = result.hotspot_track()
    for j, (t, (x, y)) in enumerate(zip(frames, track)):
        path = Path(f"{args.out_prefix}_{j:03d}.ppm")
        write_ppm(path, result.frame(j), "heat")
        print(f"frame {j}: t={t:.4g}, hotspot peak at ({x:.3g}, {y:.3g}) -> {path}")
    return 0


def _cmd_stream(args) -> int:
    from .data import hawkes_stream
    from .geometry import BoundingBox
    from .stream import (
        StreamEngine,
        StreamingHotspot,
        StreamingKDV,
        StreamingKFunction,
        StreamWindow,
    )

    if args.input:
        ds = read_dataset_csv(args.input)
        bbox = ds.bbox
        pts = ds.points
        times = (
            ds.times if isinstance(ds, SpatioTemporalDataset)
            else np.arange(pts.shape[0], dtype=np.float64)
        )
        order = np.argsort(times, kind="stable")
        pts, times = pts[order], times[order]
    else:
        bbox = BoundingBox(0.0, 0.0, 20.0, 20.0)
        pts, times = hawkes_stream(bbox, args.events, mu=2.0, seed=args.seed)

    bandwidth = args.bandwidth
    if bandwidth is None:
        bandwidth = 0.05 * bbox.diagonal
    window = (
        StreamWindow(horizon=args.horizon) if args.horizon is not None
        else StreamWindow(capacity=args.window)
    )
    engine = StreamEngine(window)
    kdv = StreamingKDV(
        bbox, args.size, bandwidth,
        workers=args.workers, backend=args.backend,
    )
    hotspot = StreamingHotspot(bbox, args.lattice)
    rmax = 0.25 * bbox.diagonal
    thresholds = np.linspace(rmax / args.thresholds, rmax, args.thresholds)
    kfn = StreamingKFunction(
        bbox, thresholds, workers=args.workers, backend=args.backend
    )
    engine.register("kdv", kdv)
    engine.register("hotspot", hotspot)
    engine.register("kfunction", kfn)

    for c0 in range(0, pts.shape[0], args.step):
        engine.push(pts[c0:c0 + args.step], times[c0:c0 + args.step])

    grid = kdv.snapshot()
    records = grid.diagnostics.records
    print(
        f"streamed {engine.events_pushed} events in {engine.pushes} pushes; "
        f"window holds {len(window)} "
        f"({'horizon ' + format(args.horizon, 'g') if args.horizon is not None else 'capacity ' + str(args.window)})"
    )
    print(
        f"KDV: grid {kdv.nx}x{kdv.ny}, b={bandwidth:g}, peak {grid.max:.4g}; "
        f"{records['dirty_tiles']}/{kdv.ledger.tiles_nx * kdv.ledger.tiles_ny} "
        f"tiles dirty since last snapshot, {records['rescatters']} re-scatters, "
        f"drift ratio {records['drift_ratio']:.2f}"
    )
    gi = hotspot.snapshot()
    hot_cells = int((gi.values > 1.96).sum())
    cold_cells = int((gi.values < -1.96).sum())
    print(
        f"Gi*: lattice {hotspot.nx}x{hotspot.ny}, {hot_cells} hot / "
        f"{cold_cells} cold cells at |z| > 1.96"
    )
    snap = kfn.snapshot()
    csr = np.pi * snap.thresholds ** 2
    print(f"{'s':>10} {'K(s)':>12} {'pi s^2':>12}")
    for s, k, c in zip(snap.thresholds, snap.k, csr):
        print(f"{s:>10.4g} {k:>12.4g} {c:>12.4g}")
    if args.out:
        write_ppm(args.out, grid, "heat")
        print(f"surface written to {args.out}")
    if args.ascii:
        print(ascii_render(grid, width=72))
    return 0


def _cmd_serve(args) -> int:
    from .serve import AnalyticsService, ServeConfig, create_server

    service = AnalyticsService(config=ServeConfig(
        tile_px=args.tile_px,
        max_zoom=args.max_zoom,
        tile_cache_capacity=args.tile_cache,
        result_cache_capacity=args.result_cache,
        max_inflight=args.max_inflight,
        workers=args.workers,
        backend=args.backend,
    ))
    if args.input:
        ds = read_dataset_csv(args.input, margin=0.05)
        times = (
            ds.times if isinstance(ds, SpatioTemporalDataset) else None
        )
        service.create_dataset(args.name, ds.points, times=times,
                               bbox=ds.bbox)
        source = args.input
    else:
        ds = data_mod.chicago_crime(args.events, seed=args.seed)
        service.create_dataset(args.name, ds.points)
        source = f"synthetic crime (n={ds.n}, seed={args.seed})"

    server = create_server(service, host=args.host, port=args.port)
    host, port = server.server_address[:2]
    bandwidth = 0.05 * service.store.get(args.name).bbox.diagonal
    print(f"serving dataset {args.name!r} from {source}")
    print(f"listening on http://{host}:{port}")
    print(f"  tiles:  GET /v1/tile/{args.name}/0/0/0.json?bandwidth={bandwidth:g}")
    print(f"  stats:  GET /stats")
    print(f"  query:  POST /v1/query   ingest: POST /v1/ingest/{args.name}")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("shutting down")
    finally:
        server.server_close()
    return 0


_COMMANDS = {
    "generate": _cmd_generate,
    "kdv": _cmd_kdv,
    "kfunction": _cmd_kfunction,
    "hotspots": _cmd_hotspots,
    "csrtest": _cmd_csrtest,
    "stkdv": _cmd_stkdv,
    "stream": _cmd_stream,
    "serve": _cmd_serve,
}


def _run_traced(args) -> int:
    """Run one subcommand under a fresh collector, then print the trace."""
    collector = obs.Collector()
    with obs.activate(collector):
        code = _COMMANDS[args.command](args)
    diagnostics = collector.diagnostics()
    print("\ntrace:")
    print(diagnostics.format_tree())
    if args.trace_json:
        Path(args.trace_json).write_text(
            json.dumps(diagnostics.as_dict(), indent=2, sort_keys=True)
        )
        print(f"trace JSON written to {args.trace_json}")
    return code


def main(argv=None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        if getattr(args, "trace", False) or getattr(args, "trace_json", None):
            return _run_traced(args)
        return _COMMANDS[args.command](args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
