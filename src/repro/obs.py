"""Observability: hierarchical spans, counters and gauges for every tool.

PR 4's ``RefinementStats`` showed the value of per-run observability, but
it was a one-off record on one backend.  This module generalises it into
a library-wide tracing/metrics subsystem that every hot path reports
into — KDV backends, STKDV/NKDV scatters, K-function Monte-Carlo loops,
IDW/kriging query blocks, Dijkstra scans — surfaced uniformly through a
:class:`Diagnostics` record on each result dataclass.

Model
-----
A :class:`Collector` records a tree of *spans* (name + wall time + child
spans), *counters* (monotonic integers attached to the innermost open
span: points visited, nodes pruned, scatters, permutations, heap pops)
and *gauges* (last-written floats, e.g. a tolerance actually used).
A finished (sub)tree is snapshotted into a frozen :class:`Diagnostics`:
same-named sibling spans are aggregated (``calls`` sums), counters roll
up, and ``as_dict()`` emits a JSON-serialisable form.

Worker safety and determinism
-----------------------------
Tracing honours the library's worker-invariance contract: when a
collector is active, :func:`repro.parallel.parallel_map` routes **every**
backend — including serial — through per-chunk worker collectors
(:func:`_run_chunk_traced`) and merges them in chunk-index order, never
completion order.  The chunk partition depends only on ``chunksize``, so
the merged span structure and every counter are bit-identical for any
``workers``/``backend`` combination.  (Wall-clock ``seconds`` are real
measurements and naturally vary run to run; determinism covers the tree
shape, ``calls`` and the counters.)

Activation
----------
Disabled by default with a module-level no-op fast path (one
``ContextVar`` read per event).  Enable with any of:

* ``with obs.enabled() as trace:`` — collector for the block, current
  thread only;
* the ``REPRO_TRACE`` environment variable (any value but ``""``/``"0"``)
  — installs a process-wide default collector at import;
* the CLI's ``--trace`` flag, which prints the span tree (and can dump
  the ``as_dict()`` JSON).

Instrumented code never checks whether tracing is on: :func:`count`,
:func:`gauge`, :func:`span` and :func:`task` are no-ops without an
active collector.  Hot loops accumulate plain local integers and report
them with a single :func:`count` call per block, keeping the disabled
overhead far below the 5% guard in the benchmark suite.

This is the only module allowed to call ``time.perf_counter`` /
``time.monotonic`` (reprolint rule RPR010); all other timing goes
through :class:`Stopwatch` or spans.
"""

from __future__ import annotations

import os
from contextvars import ContextVar
from dataclasses import dataclass, field
from time import perf_counter
from typing import Callable, Mapping, Sequence

__all__ = [
    "Collector",
    "Diagnostics",
    "SpanNode",
    "Stopwatch",
    "activate",
    "count",
    "current",
    "enabled",
    "gauge",
    "global_collector",
    "is_active",
    "set_global_collector",
    "span",
    "task",
]

_ENV_TRACE = "REPRO_TRACE"

# The active collector for the current thread/context.  New threads (and
# hence repro.parallel's pool workers) start with this unset, which is
# exactly the isolation the per-chunk worker collectors rely on.
_ACTIVE: ContextVar["Collector | None"] = ContextVar("repro_obs_collector",
                                                     default=None)


def _env_wants_trace() -> bool:
    return os.environ.get(_ENV_TRACE, "").strip() not in ("", "0")


class _Frame:
    """One mutable span under construction (collector-internal)."""

    __slots__ = ("name", "calls", "seconds", "counters", "gauges", "children")

    def __init__(self, name: str):
        self.name = name
        self.calls = 1
        self.seconds = 0.0
        self.counters: dict[str, int] = {}
        self.gauges: dict[str, float] = {}
        self.children: list[_Frame] = []


@dataclass(frozen=True)
class SpanNode:
    """One aggregated node of a finished span tree.

    ``calls`` counts how many same-named sibling spans were folded into
    this node (e.g. 19 per-simulation spans aggregate to one node with
    ``calls=19``); ``seconds`` and the counter/gauge maps are their sums
    (gauges: last write wins).
    """

    name: str
    calls: int
    seconds: float
    counters: Mapping[str, int]
    gauges: Mapping[str, float]
    children: tuple["SpanNode", ...]

    def child(self, name: str) -> "SpanNode | None":
        for node in self.children:
            if node.name == name:
                return node
        return None

    def total_counters(self) -> dict[str, int]:
        """Counters summed over this node and every descendant."""
        totals: dict[str, int] = {}
        stack: list[SpanNode] = [self]
        while stack:
            node = stack.pop()
            for key, value in node.counters.items():
                totals[key] = totals.get(key, 0) + value
            stack.extend(node.children)
        return totals

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "calls": self.calls,
            "seconds": self.seconds,
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "children": [node.as_dict() for node in self.children],
        }


def _aggregate(frames: Sequence[_Frame]) -> tuple[SpanNode, ...]:
    """Fold same-named sibling frames into SpanNodes, recursively.

    Grouping preserves first-appearance order; because the parallel layer
    merges worker collectors in chunk-index order, that order — and hence
    the whole aggregated tree — is worker-invariant.
    """
    order: list[str] = []
    groups: dict[str, list[_Frame]] = {}
    for frame in frames:
        if frame.name not in groups:
            groups[frame.name] = []
            order.append(frame.name)
        groups[frame.name].append(frame)
    nodes = []
    for name in order:
        group = groups[name]
        counters: dict[str, int] = {}
        gauges: dict[str, float] = {}
        children: list[_Frame] = []
        for frame in group:
            for key, value in frame.counters.items():
                counters[key] = counters.get(key, 0) + value
            gauges.update(frame.gauges)
            children.extend(frame.children)
        nodes.append(SpanNode(
            name=name,
            calls=sum(frame.calls for frame in group),
            seconds=float(sum(frame.seconds for frame in group)),
            counters=counters,
            gauges=gauges,
            children=_aggregate(children),
        ))
    return tuple(nodes)


@dataclass(frozen=True)
class Diagnostics:
    """Frozen observability record attached to result dataclasses.

    ``root`` is the aggregated span tree of the producing call; ``records``
    carries tool-specific structured records (e.g. the dual-tree backend's
    ``RefinementStats`` under ``"refinement"``).  Never participates in
    numeric behaviour.
    """

    root: SpanNode
    records: Mapping[str, object] = field(default_factory=dict)

    def counters(self) -> dict[str, int]:
        """All counters, summed over the whole span tree."""
        return self.root.total_counters()

    def counter(self, name: str, default: int = 0) -> int:
        return self.counters().get(name, default)

    def as_dict(self) -> dict:
        """JSON-serialisable form (records via their own ``as_dict``)."""
        records = {}
        for key, value in self.records.items():
            records[key] = value.as_dict() if hasattr(value, "as_dict") else value
        return {
            "span": self.root.as_dict(),
            "counters": self.counters(),
            "records": records,
        }

    def format_tree(self) -> str:
        """Human-readable span tree with per-span counters."""
        lines: list[str] = []

        def walk(node: SpanNode, depth: int) -> None:
            label = node.name if node.calls == 1 else f"{node.name} x{node.calls}"
            pad = max(1, 44 - 2 * depth - len(label))
            lines.append(
                f"{'  ' * depth}{label}{' ' * pad}{node.seconds * 1e3:10.2f} ms"
            )
            for key in sorted(node.counters):
                lines.append(f"{'  ' * depth}  . {key} = {node.counters[key]}")
            for child in node.children:
                walk(child, depth + 1)

        walk(self.root, 0)
        return "\n".join(lines)

    @classmethod
    def from_records(cls, name: str, records: Mapping[str, object]
                     ) -> "Diagnostics":
        """A diagnostics record with no trace, only structured records.

        Used by backends (dual-tree KDV) that always report a structured
        record even when tracing is disabled.
        """
        root = SpanNode(name, 1, 0.0, {}, {}, ())
        return cls(root=root, records=dict(records))


class Collector:
    """A mutable span/counter recorder.

    Picklable (so per-chunk worker collectors survive the ``process``
    backend) and cheap to create.  Not safe for *concurrent* writes from
    multiple threads — the parallel layer gives each worker its own and
    merges them in the caller, which is the supported pattern.
    """

    def __init__(self, name: str = "trace"):
        self._root = _Frame(name)
        self._stack: list[_Frame] = [self._root]
        self.n_events = 0

    # -- recording ---------------------------------------------------------

    def count(self, name: str, n: int = 1) -> None:
        frame = self._stack[-1]
        frame.counters[name] = frame.counters.get(name, 0) + int(n)
        self.n_events += 1

    def gauge(self, name: str, value: float) -> None:
        self._stack[-1].gauges[name] = float(value)
        self.n_events += 1

    def _push(self, name: str) -> _Frame:
        frame = _Frame(name)
        self._stack[-1].children.append(frame)
        self._stack.append(frame)
        self.n_events += 1
        return frame

    def _pop(self, frame: _Frame, seconds: float) -> None:
        # Tolerate unbalanced exits (an exception inside a span) by
        # unwinding to the frame being closed.
        while len(self._stack) > 1 and self._stack[-1] is not frame:
            self._stack.pop()
        if len(self._stack) > 1 and self._stack[-1] is frame:
            self._stack.pop()
        frame.seconds += seconds

    # -- merging -----------------------------------------------------------

    def absorb(self, other: "Collector") -> None:
        """Merge a worker collector into the current open span.

        Callers MUST absorb worker collectors in chunk-index order (never
        completion order); :func:`repro.parallel.parallel_map` does.
        """
        frame = self._stack[-1]
        root = other._root
        for key, value in root.counters.items():
            frame.counters[key] = frame.counters.get(key, 0) + value
        frame.gauges.update(root.gauges)
        frame.children.extend(root.children)
        self.n_events += other.n_events

    # -- snapshot ----------------------------------------------------------

    def diagnostics(self, records: Mapping[str, object] | None = None
                    ) -> Diagnostics:
        """Snapshot the whole recorded tree into a frozen Diagnostics."""
        (root,) = _aggregate([self._root])
        return Diagnostics(root=root, records=dict(records or {}))

    def __getstate__(self):
        return {"root": self._root, "stack_depth": len(self._stack),
                "n_events": self.n_events}

    def __setstate__(self, state):
        self._root = state["root"]
        self._stack = [self._root]
        self.n_events = state["n_events"]


# Process-wide default collector, installed when REPRO_TRACE is set (or
# via set_global_collector).  The context-local collector, when set,
# always takes precedence — that is what keeps pool workers isolated.
_GLOBAL: Collector | None = Collector() if _env_wants_trace() else None


def global_collector() -> Collector | None:
    """The process-wide default collector (``REPRO_TRACE``), if any."""
    return _GLOBAL


def set_global_collector(collector: Collector | None) -> Collector | None:
    """Install (or clear, with ``None``) the process-wide collector."""
    global _GLOBAL
    previous = _GLOBAL
    _GLOBAL = collector
    return previous


def current() -> Collector | None:
    """The collector events record into here, or ``None`` when disabled."""
    collector = _ACTIVE.get()
    return _GLOBAL if collector is None else collector


def is_active() -> bool:
    """True when a collector (context-local or global) is receiving events."""
    return _ACTIVE.get() is not None or _GLOBAL is not None


def count(name: str, n: int = 1) -> None:
    """Add ``n`` to the named monotonic counter (no-op when disabled).

    Counters attach to the innermost open span.  Hot loops should
    accumulate a local integer and call this once per block — counter
    totals are then worker-invariant and the disabled cost is one
    function call per block.
    """
    collector = _ACTIVE.get()
    if collector is None:
        collector = _GLOBAL
        if collector is None:
            return
    collector.count(name, n)


def gauge(name: str, value: float) -> None:
    """Record a last-write-wins float (no-op when disabled)."""
    collector = _ACTIVE.get()
    if collector is None:
        collector = _GLOBAL
        if collector is None:
            return
    collector.gauge(name, value)


class span:
    """Context manager opening a named span (no-op when disabled).

    ``with obs.span("execute"): ...`` — nested spans build the tree.
    """

    __slots__ = ("name", "_collector", "_frame", "_t0")

    def __init__(self, name: str):
        self.name = name

    def __enter__(self) -> "span":
        collector = _ACTIVE.get()
        if collector is None:
            collector = _GLOBAL
        self._collector = collector
        if collector is not None:
            self._frame = collector._push(self.name)
            self._t0 = perf_counter()
        return self

    def __exit__(self, *exc) -> bool:
        if self._collector is not None:
            self._collector._pop(self._frame, perf_counter() - self._t0)
        return False


class task:
    """Span for a public entry point that yields a :class:`Diagnostics`.

    Usage::

        with obs.task("kdv") as t:
            values = ...
            t.record("refinement", stats)     # optional structured record
        return DensityGrid(bbox, values, diagnostics=t.diagnostics)

    ``t.diagnostics`` is a snapshot of the task's own subtree, or ``None``
    when tracing is disabled (unless structured records were attached, in
    which case a trace-less Diagnostics still carries them).
    """

    __slots__ = ("name", "diagnostics", "_collector", "_frame", "_t0",
                 "_records")

    def __init__(self, name: str):
        self.name = name
        self.diagnostics: Diagnostics | None = None
        self._records: dict[str, object] = {}

    def record(self, key: str, value: object) -> None:
        """Attach a structured record (kept even when tracing is off)."""
        self._records[key] = value

    def __enter__(self) -> "task":
        collector = _ACTIVE.get()
        if collector is None:
            collector = _GLOBAL
        self._collector = collector
        if collector is not None:
            self._frame = collector._push(self.name)
            self._t0 = perf_counter()
        return self

    def __exit__(self, *exc) -> bool:
        if self._collector is not None:
            frame = self._frame
            self._collector._pop(frame, perf_counter() - self._t0)
            (root,) = _aggregate([frame])
            self.diagnostics = Diagnostics(root=root,
                                           records=dict(self._records))
        elif self._records:
            self.diagnostics = Diagnostics.from_records(self.name,
                                                        self._records)
        return False


class activate:
    """Make ``collector`` the active one for the with-block (this context)."""

    __slots__ = ("collector", "_token")

    def __init__(self, collector: Collector):
        self.collector = collector

    def __enter__(self) -> Collector:
        self._token = _ACTIVE.set(self.collector)
        return self.collector

    def __exit__(self, *exc) -> bool:
        _ACTIVE.reset(self._token)
        return False


class enabled(activate):
    """Enable tracing for the with-block, yielding a fresh collector.

    ::

        with obs.enabled() as trace:
            grid = repro.kde_grid(...)
        print(trace.diagnostics().format_tree())
    """

    __slots__ = ()

    def __init__(self, collector: Collector | None = None):
        super().__init__(collector if collector is not None else Collector())


class Stopwatch:
    """Wall-clock interval timer (the one sanctioned perf_counter user).

    ``with Stopwatch() as sw: ...`` then read ``sw.seconds``.  Re-entering
    accumulates, so one stopwatch can time a multi-burst phase.
    """

    __slots__ = ("seconds", "_t0")

    def __init__(self):
        self.seconds = 0.0

    def __enter__(self) -> "Stopwatch":
        self._t0 = perf_counter()
        return self

    def __exit__(self, *exc) -> bool:
        self.seconds += perf_counter() - self._t0
        return False


def _run_chunk_traced(fn: Callable, chunk: Sequence) -> tuple[list, Collector]:
    """Worker-side chunk runner for traced execution (module-level so the
    ``process`` backend can pickle it).

    Records into a fresh chunk-local collector — never the parent's, and
    never the worker process's own ``REPRO_TRACE`` global — and returns it
    alongside the results for deterministic chunk-order merging.
    """
    collector = Collector()
    with activate(collector):
        results = [fn(item) for item in chunk]
    return results, collector
