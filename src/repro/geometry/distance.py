"""Distance computations used throughout the library.

Everything here is vectorised NumPy.  The pairwise helpers deliberately
support *chunked* evaluation so that O(n^2) baselines (naive K-function,
naive KDV) can run on large inputs without materialising an n x n matrix.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from .._validation import as_points, check_positive
from ..errors import ParameterError

__all__ = [
    "squared_distances",
    "distances",
    "pairwise_distances",
    "iter_pairwise_squared",
    "haversine",
    "EARTH_RADIUS_M",
]

EARTH_RADIUS_M = 6_371_008.8
"""Mean Earth radius in metres (IUGG), used by :func:`haversine`."""


def squared_distances(queries, points) -> np.ndarray:
    """Squared Euclidean distances between query rows and point rows.

    Returns an ``(nq, np)`` matrix.  Computed with the expanded form
    ``|q|^2 - 2 q.p + |p|^2`` clipped at zero, which is the fastest
    vectorised formulation; the clip guards against tiny negative values
    from floating-point cancellation.
    """
    q = as_points(queries, name="queries", allow_empty=True)
    p = as_points(points, name="points", allow_empty=True)
    q_sq = np.sum(q * q, axis=1)[:, None]
    p_sq = np.sum(p * p, axis=1)[None, :]
    d2 = q_sq + p_sq - 2.0 * (q @ p.T)
    np.maximum(d2, 0.0, out=d2)
    return d2


def distances(queries, points) -> np.ndarray:
    """Euclidean distance matrix between query rows and point rows."""
    return np.sqrt(squared_distances(queries, points))


def pairwise_distances(points) -> np.ndarray:
    """Full symmetric pairwise distance matrix of one point set."""
    return distances(points, points)


def iter_pairwise_squared(points, chunk: int = 2048) -> Iterator[tuple[int, int, np.ndarray]]:
    """Yield ``(start, stop, block)`` of squared distances in row chunks.

    ``block`` holds the squared distances from points ``start:stop`` to all
    points.  Memory use is bounded by ``chunk * n`` doubles, so quadratic
    baselines can process hundreds of thousands of points.
    """
    pts = as_points(points)
    chunk = int(chunk)
    if chunk <= 0:
        raise ParameterError(f"chunk must be positive, got {chunk}")
    n = pts.shape[0]
    p_sq = np.sum(pts * pts, axis=1)
    for start in range(0, n, chunk):
        stop = min(start + chunk, n)
        block = p_sq[start:stop, None] + p_sq[None, :] - 2.0 * (pts[start:stop] @ pts.T)
        np.maximum(block, 0.0, out=block)
        yield start, stop, block


def haversine(lonlat_a, lonlat_b, radius: float = EARTH_RADIUS_M) -> np.ndarray:
    """Great-circle distance between ``(lon, lat)`` degree pairs.

    Provided for users whose raw data is in geographic coordinates; the
    analytic tools themselves operate on planar coordinates (project first).
    Broadcasts like NumPy: both arguments are ``(n, 2)`` arrays (or a single
    pair) of degrees, and the result is the elementwise distance in the
    units of ``radius`` (metres by default).
    """
    radius = check_positive(radius, "radius")
    a = np.radians(np.asarray(lonlat_a, dtype=np.float64).reshape(-1, 2))
    b = np.radians(np.asarray(lonlat_b, dtype=np.float64).reshape(-1, 2))
    dlon = b[:, 0] - a[:, 0]
    dlat = b[:, 1] - a[:, 1]
    h = np.sin(dlat / 2.0) ** 2 + np.cos(a[:, 1]) * np.cos(b[:, 1]) * np.sin(dlon / 2.0) ** 2
    h = np.clip(h, 0.0, 1.0)
    out = 2.0 * radius * np.arcsin(np.sqrt(h))
    return out if out.size > 1 else float(out[0])
