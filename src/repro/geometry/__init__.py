"""Planar geometry substrate: bounding boxes and distance computations."""

from .bbox import BoundingBox
from .polygon import Polygon
from .distance import (
    EARTH_RADIUS_M,
    distances,
    haversine,
    iter_pairwise_squared,
    pairwise_distances,
    squared_distances,
)

__all__ = [
    "BoundingBox",
    "Polygon",
    "EARTH_RADIUS_M",
    "distances",
    "haversine",
    "iter_pairwise_squared",
    "pairwise_distances",
    "squared_distances",
]
