"""Polygonal study windows.

Real study regions (Hong Kong's coastline, a city boundary) are not
rectangles.  :class:`Polygon` provides the minimum window algebra the
analytics need — area (shoelace), point-in-polygon (ray casting, vectorised
over points), uniform sampling (bounding-box rejection) — so CSR
simulations and intensity normalisations can run over irregular regions.

Polygons are simple (non-self-intersecting) rings; vertex order may be
clockwise or counter-clockwise; the ring closes implicitly.
"""

from __future__ import annotations

import numpy as np

from .._validation import as_points, resolve_rng
from ..errors import DataError, ParameterError
from .bbox import BoundingBox

__all__ = ["Polygon"]


class Polygon:
    """A simple polygon given by its boundary vertices ``(m, 2)``."""

    def __init__(self, vertices):
        verts = as_points(vertices, name="vertices")
        if verts.shape[0] < 3:
            raise DataError("a polygon needs at least three vertices")
        # Drop an explicit closing vertex if present.
        if np.allclose(verts[0], verts[-1]):
            verts = verts[:-1]
        if verts.shape[0] < 3:
            raise DataError("a polygon needs at least three distinct vertices")
        self.vertices = verts

        x = verts[:, 0]
        y = verts[:, 1]
        x_next = np.roll(x, -1)
        y_next = np.roll(y, -1)
        signed = 0.5 * float((x * y_next - x_next * y).sum())
        if signed == 0.0:
            raise DataError("polygon vertices are collinear (zero area)")
        self._signed_area = signed

    @property
    def n_vertices(self) -> int:
        return int(self.vertices.shape[0])

    @property
    def area(self) -> float:
        """Unsigned enclosed area (shoelace formula)."""
        return abs(self._signed_area)

    @property
    def perimeter(self) -> float:
        delta = np.roll(self.vertices, -1, axis=0) - self.vertices
        return float(np.sqrt((delta ** 2).sum(axis=1)).sum())

    def bounding_box(self, margin: float = 0.0) -> BoundingBox:
        return BoundingBox.of_points(self.vertices, margin=margin)

    @property
    def centroid(self) -> tuple[float, float]:
        """Area centroid of the polygon."""
        x = self.vertices[:, 0]
        y = self.vertices[:, 1]
        x_next = np.roll(x, -1)
        y_next = np.roll(y, -1)
        cross = x * y_next - x_next * y
        cx = float(((x + x_next) * cross).sum() / (6.0 * self._signed_area))
        cy = float(((y + y_next) * cross).sum() / (6.0 * self._signed_area))
        return cx, cy

    def contains(self, points) -> np.ndarray:
        """Even-odd ray-casting point-in-polygon test, vectorised.

        Points exactly on an edge may land on either side (the usual
        floating-point caveat of ray casting).
        """
        pts = as_points(points, allow_empty=True)
        px = pts[:, 0][:, None]
        py = pts[:, 1][:, None]
        x0 = self.vertices[:, 0][None, :]
        y0 = self.vertices[:, 1][None, :]
        x1 = np.roll(self.vertices[:, 0], -1)[None, :]
        y1 = np.roll(self.vertices[:, 1], -1)[None, :]

        # Edge straddles the horizontal ray through the point.
        straddles = (y0 > py) != (y1 > py)
        with np.errstate(divide="ignore", invalid="ignore"):
            x_at = x0 + (py - y0) * (x1 - x0) / (y1 - y0)
        crossing = straddles & (px < x_at)
        return (crossing.sum(axis=1) % 2).astype(bool)

    def sample_uniform(self, n: int, rng=None, max_batches: int = 1000) -> np.ndarray:
        """``n`` uniform points inside the polygon (bbox rejection)."""
        n = int(n)
        if n < 0:
            raise ParameterError(f"sample size must be non-negative, got {n}")
        rng = resolve_rng(rng)
        box = self.bounding_box()
        out = np.empty((n, 2), dtype=np.float64)
        filled = 0
        for _ in range(int(max_batches)):
            if filled == n:
                break
            need = n - filled
            # Oversample by the (box / polygon) area ratio.
            batch = max(int(np.ceil(need * box.area / self.area * 1.3)), 16)
            cand = box.sample_uniform(batch, rng)
            kept = cand[self.contains(cand)][:need]
            out[filled:filled + kept.shape[0]] = kept
            filled += kept.shape[0]
        if filled < n:
            raise ParameterError(
                "rejection sampling failed; is the polygon degenerate?"
            )
        return out

    def clip(self, points) -> np.ndarray:
        """Return the subset of ``points`` inside the polygon."""
        pts = as_points(points, allow_empty=True)
        return pts[self.contains(pts)]

    @classmethod
    def regular(cls, n_sides: int, radius: float = 1.0, center=(0.0, 0.0)) -> "Polygon":
        """A regular n-gon (convenient for tests and demos)."""
        n_sides = int(n_sides)
        if n_sides < 3:
            raise ParameterError(f"need at least 3 sides, got {n_sides}")
        theta = 2.0 * np.pi * np.arange(n_sides) / n_sides
        cx, cy = float(center[0]), float(center[1])
        verts = np.column_stack(
            [cx + radius * np.cos(theta), cy + radius * np.sin(theta)]
        )
        return cls(verts)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Polygon(n_vertices={self.n_vertices}, area={self.area:.4g})"
