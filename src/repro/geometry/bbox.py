"""Axis-aligned bounding boxes (the "study window" of point-pattern analysis).

Every analytic tool in the library operates within a rectangular window.
:class:`BoundingBox` carries that window, knows its area (needed by Ripley's
normalisation and CSR simulation), and can generate the pixel-centre lattices
used by the visualisation tools.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._validation import as_points, check_positive
from ..errors import ParameterError

__all__ = ["BoundingBox"]


@dataclass(frozen=True)
class BoundingBox:
    """A closed axis-aligned rectangle ``[xmin, xmax] x [ymin, ymax]``."""

    xmin: float
    ymin: float
    xmax: float
    ymax: float

    def __post_init__(self) -> None:
        if not (self.xmin < self.xmax and self.ymin < self.ymax):
            raise ParameterError(
                "BoundingBox requires xmin < xmax and ymin < ymax, got "
                f"[{self.xmin}, {self.xmax}] x [{self.ymin}, {self.ymax}]"
            )

    # -- basic measures ----------------------------------------------------

    @property
    def width(self) -> float:
        return self.xmax - self.xmin

    @property
    def height(self) -> float:
        return self.ymax - self.ymin

    @property
    def area(self) -> float:
        return self.width * self.height

    @property
    def center(self) -> tuple[float, float]:
        return (0.5 * (self.xmin + self.xmax), 0.5 * (self.ymin + self.ymax))

    @property
    def diagonal(self) -> float:
        return float(np.hypot(self.width, self.height))

    # -- construction ------------------------------------------------------

    @classmethod
    def of_points(cls, points, margin: float = 0.0) -> "BoundingBox":
        """Tight bounding box of a point set, optionally padded by ``margin``.

        A degenerate (zero-width or zero-height) extent is padded by half a
        unit on the degenerate side so the result is always a valid window.
        """
        pts = as_points(points)
        xmin, ymin = pts.min(axis=0)
        xmax, ymax = pts.max(axis=0)
        if xmin == xmax:
            xmin, xmax = xmin - 0.5, xmax + 0.5
        if ymin == ymax:
            ymin, ymax = ymin - 0.5, ymax + 0.5
        if margin:
            margin = float(margin)
            xmin, xmax = xmin - margin, xmax + margin
            ymin, ymax = ymin - margin, ymax + margin
        return cls(float(xmin), float(ymin), float(xmax), float(ymax))

    @classmethod
    def unit(cls) -> "BoundingBox":
        """The unit square ``[0, 1]^2``."""
        return cls(0.0, 0.0, 1.0, 1.0)

    def expanded(self, margin: float) -> "BoundingBox":
        """A copy grown by ``margin`` on every side."""
        margin = float(margin)
        return BoundingBox(
            self.xmin - margin, self.ymin - margin,
            self.xmax + margin, self.ymax + margin,
        )

    # -- queries -----------------------------------------------------------

    def contains(self, points) -> np.ndarray:
        """Boolean mask of which ``points`` fall inside the (closed) box."""
        pts = as_points(points, allow_empty=True)
        return (
            (pts[:, 0] >= self.xmin)
            & (pts[:, 0] <= self.xmax)
            & (pts[:, 1] >= self.ymin)
            & (pts[:, 1] <= self.ymax)
        )

    def clip(self, points) -> np.ndarray:
        """Return the subset of ``points`` inside the box."""
        pts = as_points(points, allow_empty=True)
        return pts[self.contains(pts)]

    # -- lattices ----------------------------------------------------------

    def pixel_centers(self, nx: int, ny: int) -> tuple[np.ndarray, np.ndarray]:
        """Centres of an ``nx x ny`` pixel grid covering the box.

        Returns ``(xs, ys)`` where ``xs`` has length ``nx`` and ``ys`` length
        ``ny``.  Pixel (i, j) covers
        ``[xmin + i*dx, xmin + (i+1)*dx] x [ymin + j*dy, ymin + (j+1)*dy]``
        and its centre is ``(xs[i], ys[j])``.
        """
        nx = int(nx)
        ny = int(ny)
        if nx <= 0 or ny <= 0:
            raise ParameterError(f"grid resolution must be positive, got {nx}x{ny}")
        dx = self.width / nx
        dy = self.height / ny
        xs = self.xmin + dx * (np.arange(nx) + 0.5)
        ys = self.ymin + dy * (np.arange(ny) + 0.5)
        return xs, ys

    def pixel_size(self, nx: int, ny: int) -> tuple[float, float]:
        """Side lengths ``(dx, dy)`` of a pixel in an ``nx x ny`` grid."""
        nx = int(nx)
        ny = int(ny)
        if nx <= 0 or ny <= 0:
            raise ParameterError(f"grid resolution must be positive, got {nx}x{ny}")
        return self.width / nx, self.height / ny

    def sample_uniform(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """``n`` i.i.d. uniform points in the box (a binomial/CSR sample)."""
        n = int(n)
        if n < 0:
            raise ParameterError(f"sample size must be non-negative, got {n}")
        xs = rng.uniform(self.xmin, self.xmax, size=n)
        ys = rng.uniform(self.ymin, self.ymax, size=n)
        return np.column_stack([xs, ys])

    def torus_displacement(self, dx: np.ndarray, dy: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Wrap coordinate differences onto the torus induced by the box.

        Used by the torus edge-correction of Ripley's K: each displacement is
        mapped to its shortest representative modulo the window period.
        """
        width = self.width
        height = self.height
        dx = np.abs(np.asarray(dx, dtype=np.float64))
        dy = np.abs(np.asarray(dy, dtype=np.float64))
        dx = np.minimum(dx, width - dx)
        dy = np.minimum(dy, height - dy)
        return dx, dy

    def scaled_bandwidth(self, fraction: float) -> float:
        """A bandwidth expressed as a fraction of the window diagonal."""
        return check_positive(fraction, "fraction") * self.diagonal
