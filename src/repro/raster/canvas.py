"""Density grids: the raster output of KDV / IDW / kriging.

A :class:`DensityGrid` couples an ``(nx, ny)`` value array with the window
and pixel lattice it was evaluated on.  Values are indexed ``values[i, j]``
for pixel column ``i`` (x) and row ``j`` (y), matching the pixel-centre
convention of :meth:`repro.geometry.BoundingBox.pixel_centers`.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass

import numpy as np

from ..errors import DataError, ParameterError
from ..geometry import BoundingBox
from ..obs import Diagnostics

__all__ = ["DensityGrid"]


@dataclass(frozen=True)
class DensityGrid:
    """Raster of per-pixel values over a bounding box.

    ``diagnostics`` is an optional :class:`repro.obs.Diagnostics` record
    attached by the backend that produced the grid (span tree + counters,
    plus structured records such as the dual-tree backend's
    ``RefinementStats`` under ``records["refinement"]``); it is ``None``
    for backends that do not report one and never participates in
    numeric behaviour.
    """

    bbox: BoundingBox
    values: np.ndarray
    diagnostics: Diagnostics | None = None

    def __post_init__(self) -> None:
        # float32 surfaces (the scatter core's reduced-accuracy mode) keep
        # their dtype; everything else is coerced to the float64 default.
        arr = np.asarray(self.values)
        if arr.dtype != np.float32:
            arr = np.asarray(arr, dtype=np.float64)
        if arr.ndim != 2:
            raise DataError(f"values must be 2-D, got shape {arr.shape}")
        if not np.all(np.isfinite(arr)):
            raise DataError("density grid contains non-finite values")
        object.__setattr__(self, "values", arr)

    @property
    def stats(self):
        """Deprecated alias for the dual-tree ``RefinementStats`` record.

        Use ``grid.diagnostics.records["refinement"]`` instead.
        """
        warnings.warn(
            "DensityGrid.stats is deprecated; use "
            "DensityGrid.diagnostics.records['refinement']",
            DeprecationWarning,
            stacklevel=2,
        )
        if self.diagnostics is None:
            return None
        return self.diagnostics.records.get("refinement")

    # -- shape ----------------------------------------------------------------

    @property
    def nx(self) -> int:
        return int(self.values.shape[0])

    @property
    def ny(self) -> int:
        return int(self.values.shape[1])

    @property
    def shape(self) -> tuple[int, int]:
        return (self.nx, self.ny)

    def pixel_centers(self) -> tuple[np.ndarray, np.ndarray]:
        return self.bbox.pixel_centers(self.nx, self.ny)

    # -- statistics -------------------------------------------------------------

    @property
    def max(self) -> float:
        return float(self.values.max())

    @property
    def min(self) -> float:
        return float(self.values.min())

    def normalized(self) -> np.ndarray:
        """Values linearly rescaled to [0, 1] (constant grids map to 0)."""
        lo, hi = self.min, self.max
        if hi == lo:
            return np.zeros_like(self.values)
        return (self.values - lo) / (hi - lo)

    def argmax_coords(self) -> tuple[float, float]:
        """Planar coordinates of the highest-density pixel centre."""
        i, j = np.unravel_index(int(np.argmax(self.values)), self.values.shape)
        xs, ys = self.pixel_centers()
        return float(xs[i]), float(ys[j])

    def value_at(self, x: float, y: float) -> float:
        """Value of the pixel containing ``(x, y)``."""
        if not (self.bbox.xmin <= x <= self.bbox.xmax and self.bbox.ymin <= y <= self.bbox.ymax):
            raise ParameterError(f"({x}, {y}) lies outside the grid window")
        dx, dy = self.bbox.pixel_size(self.nx, self.ny)
        i = min(int((x - self.bbox.xmin) / dx), self.nx - 1)
        j = min(int((y - self.bbox.ymin) / dy), self.ny - 1)
        return float(self.values[i, j])

    def threshold_mask(self, quantile: float) -> np.ndarray:
        """Boolean mask of pixels at or above the given value quantile.

        This is the "red region" selector of the paper's heatmaps: e.g.
        ``quantile=0.95`` marks the top 5% densest pixels as the hotspot.
        """
        if not (0.0 <= quantile < 1.0):
            raise ParameterError(f"quantile must be in [0, 1), got {quantile}")
        cut = np.quantile(self.values, quantile)
        return self.values >= cut

    # -- arithmetic ---------------------------------------------------------------

    def max_abs_difference(self, other: "DensityGrid") -> float:
        """Largest absolute per-pixel difference (grids must align)."""
        self._check_aligned(other)
        return float(np.abs(self.values - other.values).max())

    def max_relative_error(self, other: "DensityGrid", floor: float = 1e-12) -> float:
        """Largest per-pixel relative error against ``other`` as reference."""
        self._check_aligned(other)
        ref = np.maximum(np.abs(other.values), floor)
        return float((np.abs(self.values - other.values) / ref).max())

    def _check_aligned(self, other: "DensityGrid") -> None:
        if self.shape != other.shape or self.bbox != other.bbox:
            raise ParameterError("grids are defined on different lattices")
