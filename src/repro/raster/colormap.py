"""Colour maps for rendering density grids as heatmaps.

Two built-in maps cover the paper's figures: ``"heat"`` (transparent-blue →
green → yellow → red, the classic hotspot-map ramp of Figure 1) and
``"viridis"`` (a perceptually uniform alternative).  Maps are defined by
control points and interpolated linearly in RGB.
"""

from __future__ import annotations

import numpy as np

from ..errors import ParameterError

__all__ = ["Colormap", "get_colormap", "COLORMAPS"]


class Colormap:
    """Piecewise-linear RGB colour map on [0, 1]."""

    def __init__(self, name: str, stops: list[tuple[float, tuple[int, int, int]]]):
        if len(stops) < 2:
            raise ParameterError("a colormap needs at least two stops")
        positions = [s[0] for s in stops]
        if positions[0] != 0.0 or positions[-1] != 1.0:
            raise ParameterError("colormap stops must start at 0.0 and end at 1.0")
        if any(b <= a for a, b in zip(positions, positions[1:])):
            raise ParameterError("colormap stop positions must strictly increase")
        self.name = name
        self._pos = np.asarray(positions, dtype=np.float64)
        self._rgb = np.asarray([s[1] for s in stops], dtype=np.float64)
        if self._rgb.min() < 0 or self._rgb.max() > 255:
            raise ParameterError("colormap RGB components must lie in [0, 255]")

    def __call__(self, values) -> np.ndarray:
        """Map values in [0, 1] to uint8 RGB; input is clipped to [0, 1].

        Accepts any array shape and returns that shape plus a trailing
        RGB axis.
        """
        vals = np.clip(np.asarray(values, dtype=np.float64), 0.0, 1.0)
        flat = vals.ravel()
        out = np.empty((flat.shape[0], 3), dtype=np.float64)
        for c in range(3):
            out[:, c] = np.interp(flat, self._pos, self._rgb[:, c])
        rgb = np.rint(out).astype(np.uint8)
        return rgb.reshape(vals.shape + (3,))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Colormap({self.name!r}, stops={len(self._pos)})"


COLORMAPS: dict[str, Colormap] = {
    "heat": Colormap(
        "heat",
        [
            (0.0, (13, 8, 64)),
            (0.25, (40, 60, 190)),
            (0.5, (60, 180, 75)),
            (0.75, (250, 220, 40)),
            (1.0, (215, 25, 28)),
        ],
    ),
    "viridis": Colormap(
        "viridis",
        [
            (0.0, (68, 1, 84)),
            (0.25, (59, 82, 139)),
            (0.5, (33, 145, 140)),
            (0.75, (94, 201, 98)),
            (1.0, (253, 231, 37)),
        ],
    ),
    "gray": Colormap("gray", [(0.0, (0, 0, 0)), (1.0, (255, 255, 255))]),
}


def get_colormap(name: str) -> Colormap:
    """Look up a built-in colormap by name."""
    try:
        return COLORMAPS[name]
    except KeyError:
        known = ", ".join(sorted(COLORMAPS))
        raise ParameterError(f"unknown colormap {name!r}; available: {known}") from None
