"""Raster substrate: density grids, colour maps, image export."""

from .canvas import DensityGrid
from .colormap import COLORMAPS, Colormap, get_colormap
from .contours import contour_polylines, contour_segments
from .image import ascii_render, read_ppm, render_rgb, write_pgm, write_ppm

__all__ = [
    "COLORMAPS",
    "Colormap",
    "DensityGrid",
    "contour_polylines",
    "contour_segments",
    "ascii_render",
    "get_colormap",
    "read_ppm",
    "render_rgb",
    "write_pgm",
    "write_ppm",
]
