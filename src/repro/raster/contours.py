"""Contour extraction from density grids (marching squares).

Hotspot maps (Figures 1 and 5) draw the hotspot *boundary* — an iso-density
contour — on top of the base map.  This module extracts iso-level polylines
from a :class:`~repro.raster.DensityGrid` with the marching-squares
algorithm: each 2x2 pixel block contributes line segments according to
which of its corners exceed the level, with linear interpolation along the
block edges; segments are then chained into polylines.

Saddle blocks (cases 5 and 10) are disambiguated with the block-centre
average, the standard rule.
"""

from __future__ import annotations

import numpy as np

from ..errors import ParameterError
from .canvas import DensityGrid

__all__ = ["contour_segments", "contour_polylines"]


def _interp(p0: float, p1: float, v0: float, v1: float, level: float) -> float:
    """Coordinate where the level crosses the edge from (p0,v0) to (p1,v1)."""
    if v1 == v0:
        return 0.5 * (p0 + p1)
    t = (level - v0) / (v1 - v0)
    return p0 + t * (p1 - p0)


def contour_segments(grid: DensityGrid, level: float) -> np.ndarray:
    """Marching-squares segments of the iso-``level`` contour.

    Returns an ``(m, 2, 2)`` array of line segments in planar coordinates
    (each segment is ``[[x0, y0], [x1, y1]]``).
    """
    level = float(level)
    values = grid.values
    xs, ys = grid.pixel_centers()
    nx, ny = grid.nx, grid.ny
    if nx < 2 or ny < 2:
        raise ParameterError("contour extraction needs at least a 2x2 grid")

    segments: list[tuple[tuple[float, float], tuple[float, float]]] = []
    above = values >= level

    for i in range(nx - 1):
        x0, x1 = xs[i], xs[i + 1]
        for j in range(ny - 1):
            # Corners: a=(i,j), b=(i+1,j), c=(i+1,j+1), d=(i,j+1).
            a = above[i, j]
            b = above[i + 1, j]
            c = above[i + 1, j + 1]
            d = above[i, j + 1]
            case = (a << 0) | (b << 1) | (c << 2) | (d << 3)
            if case in (0, 15):
                continue
            y0, y1 = ys[j], ys[j + 1]
            va, vb = values[i, j], values[i + 1, j]
            vc, vd = values[i + 1, j + 1], values[i, j + 1]

            # Crossing points on the four block edges.
            bottom = (_interp(x0, x1, va, vb, level), y0)
            right = (x1, _interp(y0, y1, vb, vc, level))
            top = (_interp(x0, x1, vd, vc, level), y1)
            left = (x0, _interp(y0, y1, va, vd, level))

            if case in (1, 14):
                segments.append((left, bottom))
            elif case in (2, 13):
                segments.append((bottom, right))
            elif case in (3, 12):
                segments.append((left, right))
            elif case in (4, 11):
                segments.append((right, top))
            elif case in (6, 9):
                segments.append((bottom, top))
            elif case in (7, 8):
                segments.append((left, top))
            else:  # saddles 5 and 10: split by the centre average
                center_above = 0.25 * (va + vb + vc + vd) >= level
                if case == 5:  # a and c above
                    if center_above:
                        segments.append((left, top))
                        segments.append((bottom, right))
                    else:
                        segments.append((left, bottom))
                        segments.append((right, top))
                else:  # case 10: b and d above
                    if center_above:
                        segments.append((left, bottom))
                        segments.append((right, top))
                    else:
                        segments.append((left, top))
                        segments.append((bottom, right))
    if not segments:
        return np.empty((0, 2, 2), dtype=np.float64)
    return np.asarray(segments, dtype=np.float64)


def contour_polylines(
    grid: DensityGrid, level: float, tol: float = 1e-9
) -> list[np.ndarray]:
    """Chain marching-squares segments into polylines.

    Returns a list of ``(k, 2)`` coordinate arrays; closed contours repeat
    their first vertex at the end.
    """
    segs = contour_segments(grid, level)
    if segs.shape[0] == 0:
        return []

    # Hash endpoints on a snapped lattice so chaining is O(m).
    def key(pt) -> tuple[int, int]:
        return (int(round(pt[0] / tol)), int(round(pt[1] / tol)))

    endpoints: dict[tuple[int, int], list[int]] = {}
    for idx, seg in enumerate(segs):
        for end in (seg[0], seg[1]):
            endpoints.setdefault(key(end), []).append(idx)

    used = np.zeros(segs.shape[0], dtype=bool)
    polylines: list[np.ndarray] = []
    for start in range(segs.shape[0]):
        if used[start]:
            continue
        used[start] = True
        chain = [segs[start][0], segs[start][1]]
        # Extend forward from the tail, then backward from the head.
        for reverse in (False, True):
            while True:
                tip = chain[0] if reverse else chain[-1]
                candidates = [
                    idx for idx in endpoints.get(key(tip), []) if not used[idx]
                ]
                if not candidates:
                    break
                idx = candidates[0]
                used[idx] = True
                seg = segs[idx]
                if key(seg[0]) == key(tip):
                    nxt = seg[1]
                else:
                    nxt = seg[0]
                if reverse:
                    chain.insert(0, nxt)
                else:
                    chain.append(nxt)
        polylines.append(np.asarray(chain))
    return polylines
