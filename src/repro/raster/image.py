"""Image export and terminal preview for density grids.

Heatmaps are written as binary PPM (P6) — a dependency-free format every
image viewer and converter understands — and can be previewed in a terminal
as ASCII art.  Both renderers share the same orientation convention: row 0
of the image is the *top* of the map (largest y), as in the paper's figures.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from ..errors import DataError
from .canvas import DensityGrid
from .colormap import Colormap, get_colormap

__all__ = ["render_rgb", "write_ppm", "write_pgm", "read_ppm", "ascii_render"]


def render_rgb(grid: DensityGrid, colormap: str | Colormap = "heat") -> np.ndarray:
    """Render a density grid to an ``(height, width, 3)`` uint8 image."""
    cmap = get_colormap(colormap) if isinstance(colormap, str) else colormap
    norm = grid.normalized()  # (nx, ny), x-major
    # Transpose to (row, col) = (y, x) and flip so north is up.
    image = cmap(norm.T[::-1, :])
    return image


def write_ppm(path, grid: DensityGrid, colormap: str | Colormap = "heat") -> Path:
    """Write the grid as a binary PPM heatmap; returns the path written."""
    image = render_rgb(grid, colormap)
    h, w, _ = image.shape
    path = Path(path)
    with path.open("wb") as fh:
        fh.write(f"P6\n{w} {h}\n255\n".encode("ascii"))
        fh.write(image.tobytes())
    return path


def write_pgm(path, grid: DensityGrid) -> Path:
    """Write the grid as an 8-bit grayscale PGM; returns the path written."""
    norm = grid.normalized().T[::-1, :]
    image = np.rint(norm * 255).astype(np.uint8)
    h, w = image.shape
    path = Path(path)
    with path.open("wb") as fh:
        fh.write(f"P5\n{w} {h}\n255\n".encode("ascii"))
        fh.write(image.tobytes())
    return path


_ASCII_RAMP = " .:-=+*#%@"


def ascii_render(grid: DensityGrid, width: int = 64) -> str:
    """A terminal-friendly preview of the heatmap.

    The grid is downsampled to ``width`` columns (aspect-preserving with a
    2:1 character aspect correction) and mapped onto a density ramp.
    """
    width = int(width)
    if width < 2:
        raise DataError(f"ascii width must be >= 2, got {width}")
    norm = grid.normalized().T[::-1, :]  # (rows, cols), north up
    rows, cols = norm.shape
    height = max(2, int(round(rows * (width / cols) * 0.5)))
    # Max-pool each output cell over its source block so isolated peaks
    # survive downsampling (a heatmap preview must not hide its hotspot).
    row_edges = np.linspace(0, rows, height + 1).astype(int)
    col_edges = np.linspace(0, cols, width + 1).astype(int)
    sampled = np.empty((height, width), dtype=np.float64)
    for r in range(height):
        r0, r1 = row_edges[r], max(row_edges[r + 1], row_edges[r] + 1)
        r1 = min(r1, rows)
        r0 = min(r0, r1 - 1)
        for c in range(width):
            c0, c1 = col_edges[c], max(col_edges[c + 1], col_edges[c] + 1)
            c1 = min(c1, cols)
            c0 = min(c0, c1 - 1)
            sampled[r, c] = norm[r0:r1, c0:c1].max()
    levels = np.minimum(
        (sampled * len(_ASCII_RAMP)).astype(int), len(_ASCII_RAMP) - 1
    )
    return "\n".join("".join(_ASCII_RAMP[v] for v in row) for row in levels)


def read_ppm(path) -> np.ndarray:
    """Read back a binary PPM written by :func:`write_ppm` (for round-trips)."""
    data = Path(path).read_bytes()
    if not data.startswith(b"P6"):
        raise DataError(f"{path} is not a binary PPM (P6) file")
    # Header: magic, width, height, maxval — whitespace separated.
    parts: list[bytes] = []
    i = 2
    while len(parts) < 3:
        while i < len(data) and data[i:i + 1].isspace():
            i += 1
        if data[i:i + 1] == b"#":  # comment line
            while i < len(data) and data[i:i + 1] != b"\n":
                i += 1
            continue
        start = i
        while i < len(data) and not data[i:i + 1].isspace():
            i += 1
        parts.append(data[start:i])
    i += 1  # single whitespace after maxval
    w, h, maxval = (int(p) for p in parts)
    if maxval != 255:
        raise DataError(f"unsupported PPM maxval {maxval}")
    pixels = np.frombuffer(data[i:i + w * h * 3], dtype=np.uint8)
    if pixels.size != w * h * 3:
        raise DataError(f"{path} is truncated")
    return pixels.reshape(h, w, 3).copy()
