"""Shared parallel execution layer (paper §2.2/§2.3 "parallel and hardware").

The tutorial's parallel/hardware method family accelerates *every*
analytic tool, not just KDV — so the library routes all of its
embarrassingly-parallel hot paths (Monte-Carlo envelopes, permutation
tests, per-event network scans, grid interpolation) through this one
module instead of giving each algorithm a private thread pool.

Three interchangeable backends:

* ``serial`` — a plain loop in the calling thread (the reference
  semantics; also what any backend degrades to at ``workers=1``);
* ``thread`` — :class:`~concurrent.futures.ThreadPoolExecutor`; NumPy
  releases the GIL inside its vectorised kernels, so threads give real
  speedup on array-heavy tasks with zero pickling overhead;
* ``process`` — :class:`~concurrent.futures.ProcessPoolExecutor`; true
  multi-core for pure-Python tasks, at the price of pickling the task
  payloads (functions must be module-level).

Defaults are module-level and configurable either through the API
(:func:`set_default_workers` / :func:`set_default_backend`) or the
``REPRO_WORKERS`` / ``REPRO_BACKEND`` environment variables, so a
deployment can turn parallelism on without touching call sites.

**Determinism contract.**  Monte-Carlo callers fan out their RNG with
:func:`spawn_rngs`, which derives one independent
``numpy.random.SeedSequence`` child *per simulation* (never per worker).
Because every map/submit helper returns results in submission order,
any reduction computed from them is **bit-identical for every worker
count and backend, including ``workers=1``** — parallelism changes
wall-time only, never output.  Callers that reduce by floating-point
summation must additionally keep their chunking worker-invariant (pass a
fixed ``chunksize``); see ``docs/PERFORMANCE.md``.

**Tracing.**  When a :mod:`repro.obs` collector is active, every map —
serial included — runs through per-chunk worker collectors merged in
chunk-index order, so traces obey the same worker-invariance contract as
the numeric results (see ``docs/OBSERVABILITY.md``).
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Callable, Iterable, Sequence

import numpy as np

from . import obs
from .errors import ParameterError

__all__ = [
    "BACKENDS",
    "get_default_backend",
    "get_default_workers",
    "parallel_map",
    "parallel_starmap",
    "parallel_submit",
    "resolve_backend",
    "resolve_workers",
    "set_default_backend",
    "set_default_workers",
    "spawn_rngs",
    "spawn_seeds",
]

BACKENDS = ("serial", "thread", "process")

_ENV_WORKERS = "REPRO_WORKERS"
_ENV_BACKEND = "REPRO_BACKEND"

_default_workers: int | None = None
_default_backend: str | None = None


def _coerce_workers(value, source: str) -> int:
    try:
        workers = int(value)
    except (TypeError, ValueError):
        raise ParameterError(
            f"{source} must be an integer >= 1, got {value!r}"
        ) from None
    if workers < 1:
        raise ParameterError(f"{source} must be >= 1, got {workers}")
    return workers


def _coerce_backend(value, source: str) -> str:
    backend = str(value).strip().lower()
    if backend not in BACKENDS:
        raise ParameterError(
            f"{source} must be one of {', '.join(BACKENDS)}; got {value!r}"
        )
    return backend


def set_default_workers(workers: int | None) -> None:
    """Set the module-wide default worker count.

    ``None`` resets to the environment (``REPRO_WORKERS``) / built-in
    default of 1.
    """
    global _default_workers
    _default_workers = None if workers is None else _coerce_workers(workers, "workers")


def get_default_workers() -> int:
    """Default worker count: API override, else ``REPRO_WORKERS``, else 1."""
    if _default_workers is not None:
        return _default_workers
    env = os.environ.get(_ENV_WORKERS)
    if env is not None and env.strip():
        return _coerce_workers(env.strip(), f"{_ENV_WORKERS} environment variable")
    return 1


def set_default_backend(backend: str | None) -> None:
    """Set the module-wide default backend.

    ``None`` resets to the environment (``REPRO_BACKEND``) / built-in
    default of ``"thread"``.
    """
    global _default_backend
    _default_backend = None if backend is None else _coerce_backend(backend, "backend")


def get_default_backend() -> str:
    """Default backend: API override, else ``REPRO_BACKEND``, else thread."""
    if _default_backend is not None:
        return _default_backend
    env = os.environ.get(_ENV_BACKEND)
    if env is not None and env.strip():
        return _coerce_backend(env.strip(), f"{_ENV_BACKEND} environment variable")
    return "thread"


def resolve_workers(workers: int | None) -> int:
    """Turn a ``workers=`` argument into a concrete count (None → default)."""
    if workers is None:
        return get_default_workers()
    return _coerce_workers(workers, "workers")


def resolve_backend(backend: str | None) -> str:
    """Turn a ``backend=`` argument into a concrete backend (None → default)."""
    if backend is None:
        return get_default_backend()
    return _coerce_backend(backend, "backend")


def spawn_seeds(seed, n: int) -> list[np.random.SeedSequence]:
    """``n`` independent child :class:`~numpy.random.SeedSequence` streams.

    ``seed`` follows the library-wide convention: ``None`` (fresh OS
    entropy), an ``int``, an existing ``SeedSequence``, or a
    ``numpy.random.Generator`` (children are spawned from its internal
    seed sequence, advancing its spawn counter exactly like
    ``Generator.spawn``).  For a fixed seed the returned streams depend
    only on ``n`` — never on worker count or backend — which is what
    makes the Monte-Carlo fan-out deterministic.
    """
    n = int(n)
    if n < 0:
        raise ParameterError(f"cannot spawn {n} seed sequences")
    if isinstance(seed, np.random.Generator):
        return [rng.bit_generator.seed_seq for rng in seed.spawn(n)]
    if isinstance(seed, np.random.SeedSequence):
        return seed.spawn(n)
    return np.random.SeedSequence(seed).spawn(n)


def spawn_rngs(seed, n: int) -> list[np.random.Generator]:
    """``n`` independent ``numpy.random.Generator`` streams (see spawn_seeds).

    Stream ``k`` is always assigned to simulation ``k`` by the callers,
    so every simulation consumes the same random numbers no matter how
    simulations are distributed over workers.
    """
    return [np.random.default_rng(child) for child in spawn_seeds(seed, n)]


def _run_chunk(fn: Callable, chunk: Sequence) -> list:
    """Apply ``fn`` to every item of one chunk (module-level for pickling)."""
    return [fn(item) for item in chunk]


def _apply_star(fn: Callable, args: Sequence) -> object:
    """Tuple-unpacking call used by :func:`parallel_starmap`."""
    return fn(*args)


def _call_thunk(fn: Callable) -> object:
    """Invoke a zero-argument callable (used by :func:`parallel_submit`)."""
    return fn()


def parallel_map(
    fn: Callable,
    items: Iterable,
    chunksize: int = 1,
    workers: int | None = None,
    backend: str | None = None,
) -> list:
    """Ordered map over ``items``: ``[fn(x) for x in items]``, in parallel.

    Results are returned in item order regardless of completion order,
    so reductions over the returned list are worker-invariant.

    Parameters
    ----------
    fn:
        The task function.  Must be module-level (picklable) for the
        ``process`` backend.
    items:
        The task inputs.
    workers:
        Worker count; ``None`` uses the module default
        (:func:`get_default_workers`, i.e. ``REPRO_WORKERS`` or 1).
    backend:
        ``serial``, ``thread`` or ``process``; ``None`` uses the module
        default (:func:`get_default_backend`).
    chunksize:
        Items per task submission.  Larger chunks amortise dispatch
        overhead for fine-grained work.  The chunk partition depends
        only on ``chunksize`` (never on ``workers``), so fixing it keeps
        even floating-point-sum reductions over chunk partials
        bit-identical across worker counts.
    """
    items = list(items)
    workers = resolve_workers(workers)
    backend = resolve_backend(backend)
    chunksize = int(chunksize)
    if chunksize < 1:
        raise ParameterError(f"chunksize must be >= 1, got {chunksize}")

    if obs.is_active():
        return _map_traced(fn, items, workers, backend, chunksize)

    if backend == "serial" or workers == 1 or len(items) <= 1:
        return [fn(item) for item in items]

    chunks = [items[i:i + chunksize] for i in range(0, len(items), chunksize)]
    pool_cls = ThreadPoolExecutor if backend == "thread" else ProcessPoolExecutor
    out: list = []
    with pool_cls(max_workers=min(workers, len(chunks))) as pool:
        # Executor.map preserves submission order, which is the
        # determinism guarantee the Monte-Carlo callers rely on.
        for chunk_result in pool.map(_run_chunk, [fn] * len(chunks), chunks):
            out.extend(chunk_result)
    return out


def _map_traced(
    fn: Callable, items: list, workers: int, backend: str, chunksize: int
) -> list:
    """Ordered map with per-chunk trace collection (obs active).

    Every backend — serial included — runs the same chunk partition
    through :func:`repro.obs._run_chunk_traced` (a fresh worker-local
    collector per chunk) and merges the collectors in chunk-index order,
    never completion order.  The partition depends only on ``chunksize``,
    so the merged span tree and all counters are bit-identical for any
    ``workers``/``backend`` combination, matching the numeric contract.
    """
    chunks = [items[i:i + chunksize] for i in range(0, len(items), chunksize)]
    if backend == "serial" or workers == 1 or len(chunks) <= 1:
        pairs = [obs._run_chunk_traced(fn, chunk) for chunk in chunks]
    else:
        pool_cls = (ThreadPoolExecutor if backend == "thread"
                    else ProcessPoolExecutor)
        with pool_cls(max_workers=min(workers, len(chunks))) as pool:
            pairs = list(pool.map(obs._run_chunk_traced,
                                  [fn] * len(chunks), chunks))
    collector = obs.current()
    out: list = []
    for chunk_result, chunk_collector in pairs:
        out.extend(chunk_result)
        collector.absorb(chunk_collector)
    return out


def parallel_starmap(
    fn: Callable,
    argtuples: Iterable[Sequence],
    chunksize: int = 1,
    workers: int | None = None,
    backend: str | None = None,
) -> list:
    """Ordered starmap: ``[fn(*args) for args in argtuples]``, in parallel.

    Same ordering/determinism contract as :func:`parallel_map`.
    """
    from functools import partial

    return parallel_map(
        partial(_apply_star, fn),
        argtuples,
        workers=workers,
        backend=backend,
        chunksize=chunksize,
    )


def parallel_submit(
    thunks: Iterable[Callable],
    workers: int | None = None,
    backend: str | None = None,
) -> list:
    """Run zero-argument callables concurrently; results in submission order.

    The closure-friendly helper for coarse heterogeneous tasks (e.g. the
    row bands of the parallel KDV backend).  Closures are not picklable,
    so with the ``process`` backend the thunks must be module-level
    callables.
    """
    return parallel_map(_call_thunk, list(thunks), workers=workers, backend=backend)
