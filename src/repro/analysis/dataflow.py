"""Intraprocedural def-use summaries for the project-wide rules.

A :class:`FunctionSummary` is a cheap, purely syntactic dataflow digest of
one function body: which names it binds, which parameter each local is
(transitively) derived from, which free or global names it writes or
mutates, whether it touches ``os.environ``, and every call expression it
contains.  Nested ``def``/``lambda`` bodies are *not* folded into the
enclosing summary — each scope gets its own — so "free name" below always
means "free in exactly this scope".

The summaries are the phase-1 substrate that
:mod:`repro.analysis.project` attaches to every function in the
:class:`~repro.analysis.project.ProjectIndex`; the RPR011 (kwarg
forwarding), RPR013 (worker-callable purity) and RPR014 (deprecated
symbols) rules are thin queries over them.
"""

from __future__ import annotations

import ast
import dataclasses
from typing import Iterator, Mapping

__all__ = [
    "FreeEffect",
    "FunctionSummary",
    "MUTATING_METHODS",
    "dotted_name",
    "iter_scope_nodes",
    "summarize_function",
]

#: Method names treated as in-place mutation of their receiver.
MUTATING_METHODS = frozenset(
    {
        "append",
        "extend",
        "insert",
        "add",
        "update",
        "setdefault",
        "pop",
        "popitem",
        "remove",
        "discard",
        "clear",
        "sort",
        "reverse",
        "fill",
        "writelines",
    }
)

#: ``os`` functions that write the process environment.
_ENV_WRITER_FUNCS = frozenset({"putenv", "unsetenv"})


@dataclasses.dataclass(frozen=True)
class FreeEffect:
    """One write/mutation of a name not bound in the local scope.

    ``kind`` is ``"store"`` (assignment to the name, or to a subscript or
    attribute rooted at it) or ``"mutate"`` (an in-place mutating method
    call such as ``.append``); ``via`` carries the method name for
    mutations and the empty string for stores.
    """

    name: str
    kind: str
    node: ast.AST
    via: str = ""


def dotted_name(expr: ast.AST, aliases: Mapping[str, str] | None = None) -> str | None:
    """Flatten ``a.b.c`` into a dotted string, resolving the root alias.

    ``aliases`` maps local names to the dotted targets they were imported
    as (``{"np": "numpy"}`` turns ``np.random.seed`` into
    ``numpy.random.seed``).  Returns ``None`` for expressions that are not
    a plain name/attribute chain (calls, subscripts, literals, ...).
    """
    parts: list[str] = []
    node = expr
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    root = node.id
    if aliases and root in aliases:
        root = aliases[root]
    parts.append(root)
    return ".".join(reversed(parts))


def iter_scope_nodes(func: ast.AST) -> Iterator[ast.AST]:
    """Walk a def's body without descending into nested scopes.

    Yields every node belonging to ``func``'s own scope; nested
    ``FunctionDef``/``AsyncFunctionDef``/``Lambda`` nodes are yielded
    (so callers can see that a nested def exists) but their bodies are
    not entered.  Comprehension bodies *are* entered — their targets are
    recorded as local bindings, which is the safe approximation here.
    """
    body = func.body if isinstance(func.body, list) else [func.body]
    stack: list[ast.AST] = list(body)
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        stack.extend(ast.iter_child_nodes(node))


def _target_names(target: ast.AST) -> Iterator[str]:
    """Plain names bound by an assignment target (tuples unpacked)."""
    if isinstance(target, ast.Name):
        yield target.id
    elif isinstance(target, (ast.Tuple, ast.List)):
        for elt in target.elts:
            yield from _target_names(elt)
    elif isinstance(target, ast.Starred):
        yield from _target_names(target.value)


def _root_name(target: ast.AST) -> str | None:
    """The base name of a subscript/attribute store chain, if any."""
    node = target
    while isinstance(node, (ast.Subscript, ast.Attribute)):
        node = node.value
    return node.id if isinstance(node, ast.Name) else None


def _load_names(expr: ast.AST | None) -> set[str]:
    """Every plain name read anywhere inside ``expr``."""
    if expr is None:
        return set()
    return {
        node.id
        for node in ast.walk(expr)
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load)
    }


class FunctionSummary:
    """Def-use digest of one function scope (see module docstring)."""

    def __init__(
        self,
        func: ast.FunctionDef | ast.AsyncFunctionDef | ast.Lambda,
        aliases: Mapping[str, str] | None = None,
        module_roots: set[str] | None = None,
    ) -> None:
        """Summarise ``func``; ``aliases`` is the module's import map.

        ``module_roots`` names bound by plain ``import`` statements in the
        enclosing module — those are modules by construction, so
        ``np.sort(x)`` is a function call, not an in-place mutation of a
        closed-over container.
        """
        self.node = func
        self.aliases = dict(aliases or {})
        self.module_roots = set(module_roots or ())
        args = func.args
        self.params: tuple[str, ...] = tuple(
            a.arg for a in (*args.posonlyargs, *args.args, *args.kwonlyargs)
        )
        if args.vararg is not None:
            self.params += (args.vararg.arg,)
        if args.kwarg is not None:
            self.params += (args.kwarg.arg,)
        #: Names bound somewhere in this scope (params included).
        self.bound: set[str] = set(self.params)
        #: name -> union of names read by the expressions assigned to it.
        self.sources: dict[str, set[str]] = {}
        self.global_names: set[str] = set()
        self.nonlocal_names: set[str] = set()
        #: Writes/mutations whose base name is free in this scope.
        self.free_effects: list[FreeEffect] = []
        #: ``os.environ`` / ``os.putenv`` touches: (node, "read"|"write").
        self.env_effects: list[tuple[ast.AST, str]] = []
        #: Every call expression in this scope, in source order.
        self.calls: list[ast.Call] = []
        self._collect()
        self._derived_cache: dict[str, frozenset[str]] = {}

    # -- construction -------------------------------------------------------

    def _collect(self) -> None:
        """Single pass over the scope: bindings, effects, calls."""
        nodes = sorted(
            iter_scope_nodes(self.node),
            key=lambda n: (getattr(n, "lineno", 0), getattr(n, "col_offset", 0)),
        )
        for node in nodes:
            self._collect_bindings(node)
        for node in nodes:
            self._collect_effects(node)
        self.calls = [n for n in nodes if isinstance(n, ast.Call)]

    def _collect_bindings(self, node: ast.AST) -> None:
        """Record names bound by ``node`` and their value sources."""
        if isinstance(node, ast.Global):
            self.global_names.update(node.names)
        elif isinstance(node, ast.Nonlocal):
            self.nonlocal_names.update(node.names)
        elif isinstance(node, ast.Assign):
            reads = _load_names(node.value)
            for target in node.targets:
                for name in _target_names(target):
                    self._bind(name, reads)
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
            reads = _load_names(node.value)
            if isinstance(node, ast.AugAssign):
                reads |= _load_names(node.target)
            for name in _target_names(node.target):
                self._bind(name, reads)
        elif isinstance(node, ast.NamedExpr):
            self._bind(node.target.id, _load_names(node.value))
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            reads = _load_names(node.iter)
            for name in _target_names(node.target):
                self._bind(name, reads)
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                if item.optional_vars is not None:
                    reads = _load_names(item.context_expr)
                    for name in _target_names(item.optional_vars):
                        self._bind(name, reads)
        elif isinstance(node, ast.ExceptHandler):
            if node.name:
                self._bind(node.name, set())
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            self._bind(node.name, set())
        elif isinstance(node, (ast.Import, ast.ImportFrom)):
            for alias in node.names:
                local = alias.asname or alias.name.split(".", 1)[0]
                self._bind(local, set())
        elif isinstance(node, ast.comprehension):
            for name in _target_names(node.target):
                self._bind(name, _load_names(node.iter))

    def _bind(self, name: str, reads: set[str]) -> None:
        self.bound.add(name)
        self.sources.setdefault(name, set()).update(reads)

    def _collect_effects(self, node: ast.AST) -> None:
        """Record free-name writes/mutations and environment touches."""
        if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            for target in targets:
                self._record_store(target, node)
        elif isinstance(node, ast.Call):
            dotted = dotted_name(node.func, self.aliases)
            if dotted is not None and dotted.startswith("os."):
                tail = dotted.split(".", 1)[1]
                if tail in _ENV_WRITER_FUNCS:
                    self.env_effects.append((node, "write"))
                elif tail.startswith("environ.") and tail.split(".")[1] in (
                    MUTATING_METHODS | {"__setitem__"}
                ):
                    self.env_effects.append((node, "write"))
            if isinstance(node.func, ast.Attribute):
                method = node.func.attr
                if method in MUTATING_METHODS:
                    base = _root_name(node.func.value)
                    if (
                        base is not None
                        and base not in self.module_roots
                        and self._is_free(base)
                    ):
                        self.free_effects.append(
                            FreeEffect(base, "mutate", node, via=method)
                        )
        elif isinstance(node, ast.Attribute):
            if (
                node.attr == "environ"
                and dotted_name(node, self.aliases) == "os.environ"
                and not self._already_counted_env(node)
            ):
                self.env_effects.append((node, "read"))

    def _already_counted_env(self, node: ast.AST) -> bool:
        """Avoid double-reporting an environ node its parent recorded."""
        return any(
            n is node or node in ast.walk(n) for n, _ in self.env_effects
        )

    def _record_store(self, target: ast.AST, node: ast.AST) -> None:
        """Classify one assignment target as a free store when applicable."""
        if isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._record_store(elt, node)
            return
        if isinstance(target, ast.Starred):
            self._record_store(target.value, node)
            return
        if isinstance(target, ast.Name):
            if target.id in self.global_names or target.id in self.nonlocal_names:
                self.free_effects.append(FreeEffect(target.id, "store", node))
            return
        if isinstance(target, (ast.Subscript, ast.Attribute)):
            base = _root_name(target)
            if base is None:
                return
            dotted = dotted_name(
                target.value if isinstance(target, ast.Subscript) else target,
                self.aliases,
            )
            if dotted is not None and dotted.split(".")[:2] == ["os", "environ"]:
                self.env_effects.append((node, "write"))
                return
            if self._is_free(base):
                self.free_effects.append(FreeEffect(base, "store", node))

    def _is_free(self, name: str) -> bool:
        """True when ``name`` is read from an enclosing scope."""
        return name not in self.bound or name in self.global_names

    # -- queries ------------------------------------------------------------

    def derived(self, param: str) -> frozenset[str]:
        """Names transitively derived from ``param`` (including itself)."""
        if param in self._derived_cache:
            return self._derived_cache[param]
        reach = {param}
        changed = True
        while changed:
            changed = False
            for name, reads in self.sources.items():
                if name not in reach and reads & reach:
                    reach.add(name)
                    changed = True
        result = frozenset(reach)
        self._derived_cache[param] = result
        return result

    def expr_derived_from(self, expr: ast.AST, param: str) -> bool:
        """True when ``expr`` reads any name derived from ``param``."""
        return bool(_load_names(expr) & self.derived(param))

    def env_writes(self) -> list[ast.AST]:
        """Nodes that write the process environment."""
        return [node for node, kind in self.env_effects if kind == "write"]

    def env_reads(self) -> list[ast.AST]:
        """Nodes that read ``os.environ``."""
        return [node for node, kind in self.env_effects if kind == "read"]


def summarize_function(
    func: ast.FunctionDef | ast.AsyncFunctionDef | ast.Lambda,
    aliases: Mapping[str, str] | None = None,
    module_roots: set[str] | None = None,
) -> FunctionSummary:
    """Build a :class:`FunctionSummary` for one def/lambda node."""
    return FunctionSummary(func, aliases=aliases, module_roots=module_roots)
