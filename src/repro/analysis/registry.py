"""Rule base class and the global rule registry.

Rules self-register via the :func:`register` decorator at import time;
:mod:`repro.analysis.rules` imports every rule module so that importing
the package is enough to populate the registry.
"""

from __future__ import annotations

import re
from typing import Iterator

from ..errors import AnalysisError
from .context import ModuleContext
from .violations import Violation

__all__ = ["Rule", "register", "all_rules", "get_rule", "rule_ids"]

_RULE_ID_RE = re.compile(r"^RPR\d{3}$")

_REGISTRY: dict[str, "Rule"] = {}


class Rule:
    """Base class for reprolint rules.

    Subclasses set ``rule_id`` (``RPRnnn``), a short ``name`` slug, and a
    one-line ``summary``, then implement :meth:`check` as a generator of
    :class:`~repro.analysis.violations.Violation` records.
    """

    rule_id: str = ""
    name: str = ""
    summary: str = ""
    #: Bump when the rule's semantics change so cached findings refresh.
    version: int = 1

    def check(self, ctx: ModuleContext) -> Iterator[Violation]:
        """Yield every finding for the module in ``ctx``."""
        raise NotImplementedError

    def violation(
        self, ctx: ModuleContext, node, message: str, symbol: str | None = None
    ) -> Violation:
        """Build a Violation anchored at ``node`` with this rule's id."""
        return Violation(
            rule_id=self.rule_id,
            path=ctx.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message,
            symbol=symbol if symbol is not None else ctx.qualname(node),
        )


def register(cls: type) -> type:
    """Class decorator: instantiate ``cls`` and add it to the registry."""
    if not issubclass(cls, Rule):
        raise AnalysisError(f"{cls!r} is not a Rule subclass")
    if not _RULE_ID_RE.match(cls.rule_id):
        raise AnalysisError(f"rule id {cls.rule_id!r} does not match RPRnnn")
    if cls.rule_id in _REGISTRY:
        raise AnalysisError(f"duplicate rule id {cls.rule_id}")
    _REGISTRY[cls.rule_id] = cls()
    return cls


def all_rules() -> list[Rule]:
    """Every registered rule, sorted by id."""
    return [_REGISTRY[rule_id] for rule_id in sorted(_REGISTRY)]


def rule_ids() -> list[str]:
    """Sorted list of registered rule ids."""
    return sorted(_REGISTRY)


def get_rule(rule_id: str) -> Rule:
    """Look up one rule by id; raises AnalysisError for unknown ids."""
    try:
        return _REGISTRY[rule_id.upper()]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise AnalysisError(f"unknown rule {rule_id!r}; known rules: {known}") from None
