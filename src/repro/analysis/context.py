"""Per-module analysis context shared by every rule.

A :class:`ModuleContext` bundles the parsed AST, the raw source lines, the
``# reprolint: disable=...`` pragma map and a parent-pointer annotation of
the tree, so each rule can stay a small, stateless visitor.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

__all__ = ["ModuleContext", "parse_pragmas", "attach_parents", "qualname_of"]

_PRAGMA_RE = re.compile(r"#\s*reprolint:\s*disable=((?:[A-Za-z0-9_]+\s*,\s*)*[A-Za-z0-9_]+)")

#: Tokens accepted inside a pragma: rule ids or the ``all`` wildcard.
_PRAGMA_TOKEN_RE = re.compile(r"^(?:RPR\d{3}|ALL)$")

#: Attribute name used to stash parent pointers on AST nodes.
_PARENT_ATTR = "_reprolint_parent"


def parse_pragmas(lines: list[str]) -> dict[int, frozenset[str]]:
    """Map 1-based line numbers to the rule ids disabled on that line.

    The pragma grammar is ``# reprolint: disable=RPR003`` with an optional
    comma-separated list (``disable=RPR003,RPR007``, spaces allowed
    around the commas) or the wildcard ``disable=all``.  Multiple pragmas
    on one line are unioned, and tokens that are not rule ids (e.g. a
    trailing justification) are ignored rather than silently treated as
    ids.  A pragma only silences findings reported on its own physical
    line.
    """
    pragmas: dict[int, frozenset[str]] = {}
    for lineno, line in enumerate(lines, start=1):
        ids: set[str] = set()
        for match in _PRAGMA_RE.finditer(line):
            for token in match.group(1).split(","):
                token = token.strip().upper()
                if _PRAGMA_TOKEN_RE.match(token):
                    ids.add(token)
        if ids:
            pragmas[lineno] = frozenset(ids)
    return pragmas


def attach_parents(tree: ast.AST) -> None:
    """Annotate every node in ``tree`` with a pointer to its parent."""
    for parent in ast.walk(tree):
        for child in ast.iter_child_nodes(parent):
            setattr(child, _PARENT_ATTR, parent)


def qualname_of(node: ast.AST) -> str:
    """Dotted name of the innermost def/class enclosing ``node``.

    Requires :func:`attach_parents` to have run on the tree; returns
    ``"<module>"`` for top-level statements.
    """
    parts: list[str] = []
    current: ast.AST | None = node
    while current is not None:
        if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            parts.append(current.name)
        current = getattr(current, _PARENT_ATTR, None)
    return ".".join(reversed(parts)) if parts else "<module>"


class ModuleContext:
    """Everything a rule needs to know about one Python module."""

    def __init__(self, path: str, source: str) -> None:
        """Parse ``source`` and precompute pragmas and parent pointers.

        ``path`` is the display/baseline path (ideally project-relative,
        POSIX-style).  Raises :class:`SyntaxError` on unparsable source;
        the engine converts that into an ``RPR000`` finding.
        """
        self.path = path
        self.source = source
        self.lines = source.splitlines()
        self.tree = ast.parse(source, filename=path)
        self.pragmas = parse_pragmas(self.lines)
        attach_parents(self.tree)

    def qualname(self, node: ast.AST) -> str:
        """Dotted symbol name enclosing ``node`` (see :func:`qualname_of`)."""
        return qualname_of(node)

    def is_disabled(self, rule_id: str, line: int) -> bool:
        """True when a pragma on ``line`` silences ``rule_id``."""
        ids = self.pragmas.get(line)
        if not ids:
            return False
        return "ALL" in ids or rule_id.upper() in ids

    def walk(self) -> Iterator[ast.AST]:
        """Iterate over every node in the module tree."""
        return ast.walk(self.tree)
