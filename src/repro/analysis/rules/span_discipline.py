"""RPR015 — parallel dispatch under ``repro/core`` runs inside a span.

The observability contract (``docs/OBSERVABILITY.md``) promises that
every hot path is visible in the trace; a ``parallel_map`` call outside
any ``obs.span``/``obs.task`` is a hot path the trace cannot attribute —
its worker collectors get absorbed into whatever span happens to be
open in the caller, or silently dropped at top level.  This rule checks,
lexically within the enclosing function, that every shared-executor
dispatch in a core module is wrapped in a span (a justified
``# reprolint: disable=RPR015`` pragma is the documented escape hatch
for sites whose span is guaranteed by their only caller).
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..context import ModuleContext
from ..registry import Rule, register
from ..violations import Violation

__all__ = ["SpanDisciplineRule"]

#: Path fragment selecting the modules this rule covers.
_CORE_FRAGMENT = "repro/core/"

#: Names of the shared-executor dispatch helpers.
_DISPATCH_NAMES = frozenset(
    {"parallel_map", "parallel_starmap", "parallel_submit"}
)

#: ``repro.obs`` context managers that open a span.
_SPAN_NAMES = frozenset({"span", "task"})

_PARENT_ATTR = "_reprolint_parent"


def _dispatch_aliases(ctx: ModuleContext) -> set[str]:
    """Local names bound to parallel_map/parallel_starmap/parallel_submit."""
    names: set[str] = set()
    for node in ctx.walk():
        if isinstance(node, ast.ImportFrom):
            module = node.module or ""
            if module == "parallel" or module.endswith(".parallel") or (
                node.level > 0 and module == ""
            ):
                for alias in node.names:
                    if alias.name in _DISPATCH_NAMES:
                        names.add(alias.asname or alias.name)
    return names


def _is_dispatch_call(node: ast.Call, aliases: set[str]) -> bool:
    """True for calls to a dispatch helper (bare name or ``parallel.`` attr)."""
    func = node.func
    if isinstance(func, ast.Name):
        return func.id in aliases
    if isinstance(func, ast.Attribute) and func.attr in _DISPATCH_NAMES:
        base = func.value
        return isinstance(base, ast.Name) and base.id == "parallel"
    return False


def _opens_span(expr: ast.AST) -> bool:
    """True when a with-item context expression opens an obs span."""
    if not isinstance(expr, ast.Call):
        return False
    func = expr.func
    if isinstance(func, ast.Attribute) and func.attr in _SPAN_NAMES:
        base = func.value
        return isinstance(base, ast.Name) and base.id == "obs"
    if isinstance(func, ast.Name):
        return func.id in _SPAN_NAMES
    return False


def _inside_span(node: ast.AST) -> bool:
    """Climb lexical parents (stopping at the enclosing def) for a span.

    A ``with`` outside the enclosing function does not dynamically wrap
    the function's execution, so the climb stops at the first def/class
    boundary; module-level code may rely on a module-level ``with``.
    """
    current = getattr(node, _PARENT_ATTR, None)
    while current is not None:
        if isinstance(current, (ast.With, ast.AsyncWith)):
            if any(_opens_span(item.context_expr) for item in current.items):
                return True
        if isinstance(
            current, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda, ast.ClassDef)
        ):
            return False
        current = getattr(current, _PARENT_ATTR, None)
    return False


@register
class SpanDisciplineRule(Rule):
    """Core-module parallel dispatches are span-wrapped for the trace."""

    rule_id = "RPR015"
    name = "span-discipline"
    summary = (
        "parallel_map/parallel_starmap calls under repro/core must run "
        "inside an obs.span/obs.task so the trace attributes the hot path"
    )

    def check(self, ctx: ModuleContext) -> Iterator[Violation]:
        """Flag unwrapped dispatch calls in ``repro/core`` modules."""
        path = ctx.path.replace("\\", "/")
        if _CORE_FRAGMENT not in path:
            return
        aliases = _dispatch_aliases(ctx)
        for node in ctx.walk():
            if not isinstance(node, ast.Call):
                continue
            if not _is_dispatch_call(node, aliases):
                continue
            if _inside_span(node):
                continue
            helper = (
                node.func.id
                if isinstance(node.func, ast.Name)
                else node.func.attr
            )
            yield self.violation(
                ctx,
                node,
                f"{helper}() dispatch outside any obs.span/obs.task; wrap "
                "the hot path in a span so the trace can attribute its "
                "workers (docs/OBSERVABILITY.md)",
            )
