"""RPR009 — all parallelism goes through the shared executor.

:mod:`repro.parallel` is the single place the library touches thread or
process pools: it owns the worker/backend defaults, the chunked dispatch
that keeps submission order, and the ``SeedSequence`` fan-out that makes
Monte-Carlo reductions bit-identical for every worker count.  A module
that imports :mod:`concurrent.futures` or :mod:`multiprocessing` directly
bypasses all three guarantees, so reprolint flags the import and points
the author at the shared layer instead.

One carve-out: :mod:`repro.serve` may import :mod:`threading` for its
*synchronisation* primitives (locks, events, the admission semaphore, the
HTTP server's connection threads) — that is coordination state, not a
compute pool, and the determinism contract does not apply to it.  Compute
fan-out inside the server still goes through :mod:`repro.parallel`;
``concurrent.futures``/``multiprocessing`` stay forbidden there too.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..context import ModuleContext
from ..registry import Rule, register
from ..violations import Violation

__all__ = ["SharedExecutorRule"]

#: Top-level modules that spawn workers outside the shared executor.
_POOL_MODULES = frozenset({"concurrent", "multiprocessing", "threading"})

#: The one module allowed to own pool machinery (project-relative POSIX).
_EXECUTOR_PATH = "src/repro/parallel.py"

#: Package allowed to import :mod:`threading` for synchronisation (locks,
#: events, semaphores) — never for compute pools.
_SYNC_PACKAGE = "src/repro/serve/"


def _root_module(dotted: str) -> str:
    """First component of a dotted module path (``concurrent.futures`` →
    ``concurrent``)."""
    return dotted.split(".", 1)[0]


@register
class SharedExecutorRule(Rule):
    """Worker pools are created only inside :mod:`repro.parallel`."""

    rule_id = "RPR009"
    name = "shared-executor"
    version = 2  # v2: repro.serve may import threading (sync primitives)
    summary = (
        "thread/process pools bypass the shared executor; route the work "
        "through repro.parallel so worker-count determinism holds"
    )

    def check(self, ctx: ModuleContext) -> Iterator[Violation]:
        """Flag concurrent.futures/multiprocessing/threading imports."""
        path = ctx.path.replace("\\", "/")
        if path.endswith(_EXECUTOR_PATH):
            return
        allowed = (
            frozenset({"threading"}) if _SYNC_PACKAGE in path else frozenset()
        )
        for node in ctx.walk():
            if isinstance(node, ast.Import):
                for alias in node.names:
                    root = _root_module(alias.name)
                    if root in _POOL_MODULES and root not in allowed:
                        yield self.violation(
                            ctx,
                            node,
                            f"direct import of {alias.name!r}; use "
                            "repro.parallel (parallel_map/parallel_submit) "
                            "so results stay worker-count invariant",
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.level == 0 and node.module is not None:
                    root = _root_module(node.module)
                    if root in _POOL_MODULES and root not in allowed:
                        yield self.violation(
                            ctx,
                            node,
                            f"direct import from {node.module!r}; use "
                            "repro.parallel (parallel_map/parallel_submit) "
                            "so results stay worker-count invariant",
                        )
