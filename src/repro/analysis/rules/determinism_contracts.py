"""RPR011/RPR012 — the static half of the determinism contract.

RPR011 (kwarg forwarding) encodes the lesson of the ``else 4`` regression:
a function that accepts ``seed``/``workers``/``backend`` is a link in the
chain that carries the caller's reproducibility intent down to
:mod:`repro.parallel`, and the chain breaks silently when a link hardcodes
the value or drops it before a callee that accepts it.  The rule walks the
resolved call graph and, per forwardable parameter, checks each project
call site either passes the parameter (or something derived from it via
the def-use summary) or does not pretend to.

RPR012 (seeded RNG) bans unseeded randomness outside tests/benchmarks:
``np.random.default_rng()`` with no seed, and the legacy global-state
``np.random.*`` API entirely — both make results irreproducible and the
legacy API additionally shares state across workers, breaking the
worker-invariance contract (see ``docs/PERFORMANCE.md``).
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..project import ProjectIndex, ProjectRule
from ..registry import register
from ..violations import Violation

__all__ = ["KwargForwardingRule", "SeededRngRule"]

#: The reproducibility-carrying parameters the forwarding rule tracks.
FORWARDABLE_PARAMS = ("backend", "seed", "workers")


@register
class KwargForwardingRule(ProjectRule):
    """Forward ``seed``/``workers``/``backend`` — never hardcode or drop."""

    rule_id = "RPR011"
    name = "kwarg-forwarding"
    summary = (
        "functions accepting seed/workers/backend must forward them to "
        "callees that accept them; hardcoding or dropping breaks the "
        "caller's reproducibility intent"
    )

    def check_project(self, index: ProjectIndex) -> Iterator[Violation]:
        """Check every resolved call edge for forwarding discipline."""
        for fn in index.iter_functions():
            forwardable = [p for p in FORWARDABLE_PARAMS if fn.accepts(p)]
            if not forwardable:
                continue
            summary = fn.summary
            for call in summary.calls:
                callee = index.resolve_call(fn.module, call)
                if callee is None or callee.node is fn.node:
                    continue
                unpacks = any(kw.arg is None for kw in call.keywords) or any(
                    isinstance(a, ast.Starred) for a in call.args
                )
                for param in forwardable:
                    if not callee.accepts(param):
                        continue
                    supplied = self._supplied_value(call, callee, param)
                    if supplied is None:
                        if unpacks:
                            continue
                        if self._any_arg_derived(summary, call, param):
                            continue
                        yield self.project_violation(
                            fn.module,
                            call,
                            f"call to {callee.name}() drops {param!r}: the "
                            f"enclosing function accepts {param} but does "
                            f"not pass it (or anything derived from it) to "
                            f"a callee that accepts it",
                        )
                    elif (
                        isinstance(supplied, ast.Constant)
                        and supplied.value is not None
                    ):
                        yield self.project_violation(
                            fn.module,
                            call,
                            f"call to {callee.name}() hardcodes "
                            f"{param}={supplied.value!r} while the enclosing "
                            f"function accepts {param}; forward the caller's "
                            f"value instead",
                        )

    @staticmethod
    def _supplied_value(call: ast.Call, callee, param: str) -> ast.AST | None:
        """The expression passed for ``param`` at this call site, if any."""
        for kw in call.keywords:
            if kw.arg == param:
                return kw.value
        slot = callee.positional_index(param)
        if slot is not None and slot < len(call.args):
            arg = call.args[slot]
            if not isinstance(arg, ast.Starred) and not any(
                isinstance(a, ast.Starred) for a in call.args[:slot]
            ):
                return arg
        return None

    @staticmethod
    def _any_arg_derived(summary, call: ast.Call, param: str) -> bool:
        """True when any argument expression is derived from ``param``."""
        exprs = [*call.args, *(kw.value for kw in call.keywords)]
        return any(
            summary.expr_derived_from(expr, param)
            for expr in exprs
            if not isinstance(expr, ast.Starred)
        )


#: Legacy global-state ``numpy.random`` entry points (non-exhaustive on
#: purpose: anything here is enough to prove the module uses shared
#: global RNG state).
_LEGACY_NP_RANDOM = frozenset(
    {
        "seed",
        "rand",
        "randn",
        "randint",
        "random",
        "random_sample",
        "random_integers",
        "ranf",
        "sample",
        "choice",
        "bytes",
        "shuffle",
        "permutation",
        "normal",
        "uniform",
        "standard_normal",
        "poisson",
        "exponential",
        "beta",
        "gamma",
        "binomial",
        "multivariate_normal",
        "get_state",
        "set_state",
        "RandomState",
    }
)

#: Path fragments exempt from RPR012 (reproducibility harnesses own
#: their seeds; ad-hoc randomness there is deliberate).
_EXEMPT_FRAGMENTS = ("tests/", "benchmarks/", "examples/")


@register
class SeededRngRule(ProjectRule):
    """No unseeded or legacy-global RNG outside tests and benchmarks."""

    rule_id = "RPR012"
    name = "seeded-rng"
    summary = (
        "library code must thread an explicit seed/SeedSequence: no "
        "np.random.default_rng() without a seed and no legacy global "
        "np.random.* API"
    )

    def check_project(self, index: ProjectIndex) -> Iterator[Violation]:
        """Scan every module's calls for unseeded RNG construction."""
        for name in sorted(index.modules):
            module = index.modules[name]
            path = module.ctx.path.replace("\\", "/")
            if any(frag in path for frag in _EXEMPT_FRAGMENTS):
                continue
            if path.rsplit("/", 1)[-1].startswith(("test_", "bench_")):
                continue
            for node in module.ctx.walk():
                if not isinstance(node, ast.Call):
                    continue
                dotted = index.dotted_for(module, node.func)
                if dotted is None:
                    continue
                if dotted == "numpy.random.default_rng":
                    if self._is_unseeded(node):
                        yield self.project_violation(
                            module,
                            node,
                            "np.random.default_rng() without a seed draws "
                            "OS entropy; accept a seed kwarg and thread it "
                            "(repro.parallel.spawn_rngs for fan-out)",
                        )
                elif (
                    dotted.startswith("numpy.random.")
                    and dotted.split(".")[-1] in _LEGACY_NP_RANDOM
                ):
                    yield self.project_violation(
                        module,
                        node,
                        f"legacy global-state np.random."
                        f"{dotted.split('.')[-1]} call; use a Generator "
                        "threaded from an explicit seed "
                        "(np.random.default_rng(seed) / spawn_rngs)",
                    )

    @staticmethod
    def _is_unseeded(call: ast.Call) -> bool:
        """True for ``default_rng()`` / ``default_rng(None)`` forms."""
        if any(isinstance(a, ast.Starred) for a in call.args) or any(
            kw.arg is None for kw in call.keywords
        ):
            return False
        seed_expr: ast.AST | None = None
        if call.args:
            seed_expr = call.args[0]
        for kw in call.keywords:
            if kw.arg == "seed":
                seed_expr = kw.value
        if seed_expr is None:
            return True
        return isinstance(seed_expr, ast.Constant) and seed_expr.value is None
