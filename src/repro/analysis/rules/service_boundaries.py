"""RPR016 — network transport lives only inside :mod:`repro.serve`.

The service layer is the library's one network boundary: it owns the
HTTP front-end, the error → status mapping, request admission, caching
and coalescing.  An analytics module that imports :mod:`http`,
:mod:`socket` or friends directly grows a second, unaudited server (or
worse, makes a numeric routine secretly phone out), bypassing all of
that policy — so reprolint flags transport imports anywhere outside
``src/repro/serve/`` and points the author at the service layer.

``urllib.parse`` is deliberately *not* flagged: URL string parsing is
pure computation.  ``urllib.request``/``urllib.error`` (actual network
clients) are.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..context import ModuleContext
from ..registry import Rule, register
from ..violations import Violation

__all__ = ["ServiceBoundaryRule"]

#: Transport modules owned by the service layer.  Keys are matched
#: against the imported dotted path: a top-level name forbids the whole
#: tree (``http`` covers ``http.server``); dotted entries forbid one
#: subtree only (``urllib.request`` leaves ``urllib.parse`` alone).
_TRANSPORT_MODULES = frozenset(
    {"http", "socket", "socketserver", "ssl", "wsgiref",
     "urllib.request", "urllib.error", "xmlrpc", "ftplib", "smtplib"}
)

#: The package allowed to own transport machinery (project-relative POSIX).
_SERVE_PACKAGE = "src/repro/serve/"


def _forbidden(dotted: str) -> str | None:
    """The matched forbidden entry for a dotted module path, if any."""
    parts = dotted.split(".")
    for depth in range(1, len(parts) + 1):
        prefix = ".".join(parts[:depth])
        if prefix in _TRANSPORT_MODULES:
            return prefix
    return None


@register
class ServiceBoundaryRule(Rule):
    """Socket/HTTP imports happen only inside :mod:`repro.serve`."""

    rule_id = "RPR016"
    name = "service-boundary"
    summary = (
        "network transport imports outside repro.serve bypass the service "
        "layer's admission, caching and error mapping; route serving "
        "through repro.serve"
    )

    def check(self, ctx: ModuleContext) -> Iterator[Violation]:
        """Flag http/socket/urllib.request imports outside the serve package."""
        if _SERVE_PACKAGE in ctx.path.replace("\\", "/"):
            return
        for node in ctx.walk():
            if isinstance(node, ast.Import):
                for alias in node.names:
                    match = _forbidden(alias.name)
                    if match is not None:
                        yield self.violation(
                            ctx,
                            node,
                            f"transport import {alias.name!r} outside "
                            "repro.serve; the service layer owns the "
                            "network boundary",
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.level == 0 and node.module is not None:
                    dotted = node.module
                    match = _forbidden(dotted)
                    if match is None:
                        # "from urllib import request" names the subtree
                        # in the alias, not the module — check those too.
                        for alias in node.names:
                            if _forbidden(f"{dotted}.{alias.name}") is not None:
                                match = f"{dotted}.{alias.name}"
                                break
                    if match is not None:
                        yield self.violation(
                            ctx,
                            node,
                            f"transport import from {match!r} outside "
                            "repro.serve; the service layer owns the "
                            "network boundary",
                        )
