"""RPR007/RPR008 — documented, accurately-exported public surfaces.

RPR007 requires a docstring on every public module-level function and
class: with dozens of entry points across six analytic tools, undocumented
surface is unusable surface.  RPR008 keeps ``__all__`` honest in both
directions — every listed name must exist, and every public def/class in
the module must be listed — so ``from repro.x import *`` and the API docs
never drift from the code.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..context import ModuleContext
from ..registry import Rule, register
from ..violations import Violation

__all__ = ["DocstringRule", "DunderAllRule"]


@register
class DocstringRule(Rule):
    """Public module-level functions and classes need docstrings."""

    rule_id = "RPR007"
    name = "missing-docstring"
    summary = "public module-level functions and classes must have docstrings"

    def check(self, ctx: ModuleContext) -> Iterator[Violation]:
        """Flag public top-level defs/classes without a docstring."""
        for node in ctx.tree.body:
            if not isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                continue
            if node.name.startswith("_"):
                continue
            if not ast.get_docstring(node):
                kind = "class" if isinstance(node, ast.ClassDef) else "function"
                yield self.violation(
                    ctx,
                    node,
                    f"public {kind} {node.name!r} has no docstring",
                    symbol=node.name,
                )


def _collect_defined(body: list[ast.stmt], defined: set[str], defs: set[str]) -> None:
    """Accumulate names bound at (conditional) module top level.

    ``defined`` receives every bound name (defs, classes, assignments and
    imports); ``defs`` receives only the names of function/class statements
    actually defined here, which are the ones required to appear in
    ``__all__``.  Recurses into top-level ``if``/``try`` so conditional
    imports are seen.
    """
    for stmt in body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            defined.add(stmt.name)
            defs.add(stmt.name)
        elif isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                for name_node in ast.walk(target):
                    if isinstance(name_node, ast.Name):
                        defined.add(name_node.id)
        elif isinstance(stmt, ast.AnnAssign):
            if isinstance(stmt.target, ast.Name):
                defined.add(stmt.target.id)
        elif isinstance(stmt, ast.Import):
            for alias in stmt.names:
                defined.add(alias.asname or alias.name.split(".")[0])
        elif isinstance(stmt, ast.ImportFrom):
            for alias in stmt.names:
                if alias.name == "*":
                    continue
                defined.add(alias.asname or alias.name)
        elif isinstance(stmt, ast.If):
            _collect_defined(stmt.body, defined, defs)
            _collect_defined(stmt.orelse, defined, defs)
        elif isinstance(stmt, ast.Try):
            _collect_defined(stmt.body, defined, defs)
            for handler in stmt.handlers:
                _collect_defined(handler.body, defined, defs)
            _collect_defined(stmt.orelse, defined, defs)
            _collect_defined(stmt.finalbody, defined, defs)


def _static_all(tree: ast.Module) -> tuple[ast.stmt, list[str]] | None:
    """The ``__all__`` assignment and its entries, if statically resolvable."""
    for stmt in tree.body:
        targets: list[ast.expr] = []
        if isinstance(stmt, ast.Assign):
            targets = stmt.targets
            value = stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets = [stmt.target]
            value = stmt.value
        else:
            continue
        for target in targets:
            if isinstance(target, ast.Name) and target.id == "__all__":
                if isinstance(value, (ast.List, ast.Tuple)) and all(
                    isinstance(el, ast.Constant) and isinstance(el.value, str)
                    for el in value.elts
                ):
                    return stmt, [el.value for el in value.elts]
                return None
    return None


@register
class DunderAllRule(Rule):
    """``__all__`` must exactly track the module's public defs/classes."""

    rule_id = "RPR008"
    name = "all-mismatch"
    summary = (
        "__all__ entries must exist, and public module-level defs/classes "
        "must be listed in __all__"
    )

    def check(self, ctx: ModuleContext) -> Iterator[Violation]:
        """Flag undefined ``__all__`` entries and unlisted public names."""
        found = _static_all(ctx.tree)
        if found is None:
            return
        all_stmt, exported = found
        has_star = any(
            isinstance(stmt, ast.ImportFrom)
            and any(alias.name == "*" for alias in stmt.names)
            for stmt in ctx.tree.body
        )
        defined: set[str] = set()
        defs: set[str] = set()
        _collect_defined(ctx.tree.body, defined, defs)
        if not has_star:
            for entry in exported:
                if entry not in defined:
                    yield self.violation(
                        ctx,
                        all_stmt,
                        f"__all__ lists {entry!r}, which is not defined in "
                        f"the module",
                    )
        listed = set(exported)
        for name in sorted(defs):
            if not name.startswith("_") and name not in listed:
                yield self.violation(
                    ctx,
                    all_stmt,
                    f"public name {name!r} is defined here but missing from "
                    f"__all__",
                )
