"""RPR001 — public entry points must validate coordinate inputs.

The library's contract is that every public function funnels raw
coordinate arrays through :mod:`repro._validation` (``as_points`` and
friends) before doing arithmetic on them, so that shape/NaN errors are
raised as typed :class:`~repro.errors.DataError` at the boundary instead
of surfacing as cryptic NumPy failures deep in a kernel.

The rule fires when a public module-level function takes a parameter with
a coordinate-ish name (``points``, ``coords``, ...) and *touches* it
directly — subscripts it, reads an attribute, iterates it, or uses it in
arithmetic — without ever passing it to a validation helper.  Forwarding
the parameter whole to another callable (delegation, e.g. to
``KDVProblem(points, ...)`` which validates internally) is allowed.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..._validation import __all__ as _validation_exports
from ..context import ModuleContext
from ..registry import Rule, register
from ..violations import Violation

__all__ = ["ValidationContractRule", "COORDINATE_PARAMS", "VALIDATION_HELPERS"]

#: Parameter names treated as raw coordinate inputs.
COORDINATE_PARAMS = frozenset({"points", "coords", "coordinates", "locations"})

#: Helper names (from repro._validation.__all__) that count as validation.
VALIDATION_HELPERS = frozenset(_validation_exports)


def _terminal_name(func: ast.AST) -> str:
    """Terminal identifier of a call target (``a.b.c`` -> ``"c"``)."""
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return ""


def _param_names(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> list[str]:
    """All positional/keyword parameter names of ``fn``."""
    args = fn.args
    names = [a.arg for a in args.posonlyargs + args.args + args.kwonlyargs]
    if args.vararg:
        names.append(args.vararg.arg)
    if args.kwarg:
        names.append(args.kwarg.arg)
    return names


def _is_validated(fn: ast.AST, param: str) -> bool:
    """True if ``param`` is ever passed to a repro._validation helper."""
    for node in ast.walk(fn):
        if not isinstance(node, ast.Call):
            continue
        if _terminal_name(node.func) not in VALIDATION_HELPERS:
            continue
        candidates = list(node.args) + [kw.value for kw in node.keywords]
        for arg in candidates:
            if isinstance(arg, ast.Name) and arg.id == param:
                return True
    return False


def _first_raw_touch(fn: ast.AST, param: str) -> ast.AST | None:
    """First use of ``param`` that is not a whole-value call argument.

    Passing ``param`` unmodified into another call is delegation and does
    not count; subscripting, attribute access, arithmetic, comparisons and
    iteration all count as touching unvalidated coordinates.
    """
    for node in ast.walk(fn):
        if isinstance(node, ast.Call):
            continue
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.Name) and child.id == param:
                if isinstance(child.ctx, ast.Load) and not isinstance(node, ast.keyword):
                    if isinstance(node, (ast.arguments, ast.Return)):
                        continue
                    return child
    return None


@register
class ValidationContractRule(Rule):
    """Public functions must route coordinate parameters through validation."""

    rule_id = "RPR001"
    name = "unvalidated-coordinates"
    summary = (
        "public functions must pass coordinate parameters through a "
        "repro._validation helper before using them directly"
    )

    def check(self, ctx: ModuleContext) -> Iterator[Violation]:
        """Flag public module-level functions that touch raw coordinates."""
        for node in ctx.tree.body:
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if node.name.startswith("_"):
                continue
            for param in _param_names(node):
                if param not in COORDINATE_PARAMS:
                    continue
                if _is_validated(node, param):
                    continue
                touch = _first_raw_touch(node, param)
                if touch is not None:
                    yield self.violation(
                        ctx,
                        touch,
                        f"parameter {param!r} is used directly without a "
                        f"repro._validation call (expected one of: "
                        f"{', '.join(sorted(VALIDATION_HELPERS))})",
                        symbol=node.name,
                    )
