"""RPR010 — wall-clock timing goes through :mod:`repro.obs`.

:mod:`repro.obs` is the single place the library reads the monotonic
clock: spans record wall time only when tracing is active, and the
collector merge keeps traces worker-invariant.  A module that calls
``time.perf_counter`` / ``time.monotonic`` directly re-invents ad-hoc
timing that the trace cannot see (and that tempts result types into
carrying non-deterministic seconds), so reprolint flags the call and
points the author at ``obs.span`` / ``obs.Stopwatch`` instead.

The benchmark harness (:mod:`repro.bench.timing`) predates the trace
layer and measures wall time *as its output*, not as diagnostics; its
usages are baselined rather than rewritten.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..context import ModuleContext
from ..registry import Rule, register
from ..violations import Violation

__all__ = ["TimingDisciplineRule"]

#: ``time`` attributes that read the monotonic/performance clock.
_CLOCK_ATTRS = frozenset(
    {"perf_counter", "perf_counter_ns", "monotonic", "monotonic_ns"}
)

#: The one module allowed to own clock reads (project-relative POSIX).
_OBS_PATH = "src/repro/obs.py"


@register
class TimingDisciplineRule(Rule):
    """Monotonic-clock reads happen only inside :mod:`repro.obs`."""

    rule_id = "RPR010"
    name = "timing-discipline"
    summary = (
        "direct monotonic-clock reads bypass repro.obs; time code with "
        "obs.span/obs.Stopwatch so the trace sees it"
    )

    def check(self, ctx: ModuleContext) -> Iterator[Violation]:
        """Flag ``time.perf_counter``/``time.monotonic`` outside obs."""
        if ctx.path.replace("\\", "/").endswith(_OBS_PATH):
            return
        for node in ctx.walk():
            if isinstance(node, ast.ImportFrom):
                if node.level == 0 and node.module == "time":
                    for alias in node.names:
                        if alias.name in _CLOCK_ATTRS:
                            yield self.violation(
                                ctx,
                                node,
                                f"import of time.{alias.name}; use obs.span "
                                "or obs.Stopwatch so timing is part of the "
                                "trace",
                            )
            elif isinstance(node, ast.Attribute):
                if (
                    isinstance(node.value, ast.Name)
                    and node.value.id == "time"
                    and node.attr in _CLOCK_ATTRS
                ):
                    yield self.violation(
                        ctx,
                        node,
                        f"direct time.{node.attr} call; use obs.span or "
                        "obs.Stopwatch so timing is part of the trace",
                    )
