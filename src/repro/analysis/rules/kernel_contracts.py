"""RPR005 — every Kernel subclass must honour the kernel interface.

The acceleration backends (sweep line, dual-tree, bound refinement) are
generic over :class:`repro.core.kernels.Kernel` and assume each concrete
kernel provides a registry ``name``, the squared-distance fast path
``evaluate_sq``, a ``support_radius`` and the Equation 1 normalisation
``integral``.  A subclass missing any of these fails at a distance — deep
inside a backend, on a data-dependent path — so the contract is checked
statically here instead.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..context import ModuleContext
from ..registry import Rule, register
from ..violations import Violation

__all__ = ["KernelContractRule", "REQUIRED_ATTRIBUTES", "REQUIRED_METHODS"]

#: Class attributes every concrete Kernel must assign.
REQUIRED_ATTRIBUTES = ("name",)

#: Methods every concrete Kernel must implement.
REQUIRED_METHODS = ("evaluate_sq", "support_radius", "integral")


def _terminal_name(node: ast.AST) -> str:
    """Terminal identifier of a dotted expression (``a.b.C`` -> ``"C"``)."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return ""


def _assigned_names(cls: ast.ClassDef) -> set[str]:
    """Names bound by class-level assignments (plain and annotated)."""
    names: set[str] = set()
    for stmt in cls.body:
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
        elif isinstance(stmt, ast.AnnAssign):
            if isinstance(stmt.target, ast.Name) and stmt.value is not None:
                names.add(stmt.target.id)
    return names


def _method_names(cls: ast.ClassDef) -> set[str]:
    """Names of methods defined directly on the class."""
    return {
        stmt.name
        for stmt in cls.body
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
    }


@register
class KernelContractRule(Rule):
    """Direct Kernel subclasses must define the full kernel interface."""

    rule_id = "RPR005"
    name = "kernel-contract"
    summary = (
        "Kernel subclasses must assign 'name' and implement evaluate_sq, "
        "support_radius and integral"
    )

    def check(self, ctx: ModuleContext) -> Iterator[Violation]:
        """Flag Kernel subclasses missing required attributes or methods."""
        for node in ctx.walk():
            if not isinstance(node, ast.ClassDef):
                continue
            if not any(_terminal_name(base) == "Kernel" for base in node.bases):
                continue
            assigned = _assigned_names(node)
            methods = _method_names(node)
            missing: list[str] = []
            missing.extend(
                f"class attribute {attr!r}"
                for attr in REQUIRED_ATTRIBUTES
                if attr not in assigned
            )
            missing.extend(
                f"method {meth!r}()"
                for meth in REQUIRED_METHODS
                if meth not in methods
            )
            if missing:
                yield self.violation(
                    ctx,
                    node,
                    f"Kernel subclass {node.name!r} is missing "
                    f"{', '.join(missing)}",
                    symbol=node.name,
                )
