"""RPR002/RPR006 — typed errors only, and no swallowed exceptions.

RPR002 enforces the library contract documented in :mod:`repro.errors`:
every exception raised from ``src/repro`` derives from ``ReproError`` so
callers can catch library failures with one ``except ReproError``.  The
allowed names are introspected from :mod:`repro.errors` at import time, so
adding a new error type there automatically teaches the linter about it.

RPR006 bans bare ``except:`` clauses and handlers whose whole body is
``pass``/``...`` — silently discarding an exception hides data bugs that
the validation layer exists to surface.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ... import errors as _errors
from ..context import ModuleContext
from ..registry import Rule, register
from ..violations import Violation

__all__ = ["RaiseDisciplineRule", "ExceptHygieneRule", "ALLOWED_RAISES"]


def _library_exception_names() -> frozenset[str]:
    """Names of exception classes exported by :mod:`repro.errors`."""
    names = {
        name
        for name, obj in vars(_errors).items()
        if isinstance(obj, type) and issubclass(obj, BaseException)
    }
    return frozenset(names)


#: Exception class names a ``raise`` inside src/repro may construct.
#: ``NotImplementedError`` is conventionally allowed for abstract hooks.
ALLOWED_RAISES = _library_exception_names() | {"NotImplementedError"}


def _terminal_name(node: ast.AST) -> str:
    """Terminal identifier of a dotted expression (``a.b.C`` -> ``"C"``)."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return ""


def _handler_bound_names(tree: ast.AST) -> frozenset[str]:
    """Names bound by ``except ... as name`` anywhere in the module."""
    return frozenset(
        node.name
        for node in ast.walk(tree)
        if isinstance(node, ast.ExceptHandler) and node.name
    )


def _locally_allowed_classes(tree: ast.Module) -> frozenset[str]:
    """Classes defined in this module that subclass an allowed exception.

    Lets a module define ``class FooError(ReproError)`` and raise it
    without tripping the rule (the transitive check is name-based, which
    is as far as a single-module AST pass can see).
    """
    allowed = set(ALLOWED_RAISES)
    changed = True
    while changed:
        changed = False
        for node in tree.body:
            if not isinstance(node, ast.ClassDef) or node.name in allowed:
                continue
            if any(_terminal_name(base) in allowed for base in node.bases):
                allowed.add(node.name)
                changed = True
    return frozenset(allowed) - ALLOWED_RAISES


@register
class RaiseDisciplineRule(Rule):
    """Only repro.errors exception types may be raised from library code."""

    rule_id = "RPR002"
    name = "foreign-exception"
    summary = (
        "raise only repro.errors types (or NotImplementedError) from "
        "library code so callers can catch ReproError uniformly"
    )

    def check(self, ctx: ModuleContext) -> Iterator[Violation]:
        """Flag ``raise`` statements constructing non-library exceptions."""
        rethrowable = _handler_bound_names(ctx.tree)
        local_ok = _locally_allowed_classes(ctx.tree)
        allowed = ALLOWED_RAISES | local_ok
        for node in ctx.walk():
            if not isinstance(node, ast.Raise):
                continue
            exc = node.exc
            if exc is None:
                continue  # bare re-raise inside a handler
            target = exc.func if isinstance(exc, ast.Call) else exc
            name = _terminal_name(target)
            if name in allowed:
                continue
            if not isinstance(exc, ast.Call) and name in rethrowable:
                continue  # ``raise err`` re-throwing a caught exception
            yield self.violation(
                ctx,
                node,
                f"raises {name or 'a computed exception'!s}, which is not a "
                f"repro.errors type; allowed: "
                f"{', '.join(sorted(ALLOWED_RAISES))}",
            )


@register
class ExceptHygieneRule(Rule):
    """No bare ``except:`` and no handlers that swallow exceptions."""

    rule_id = "RPR006"
    name = "exception-hygiene"
    summary = "forbid bare except clauses and pass-only exception handlers"

    def check(self, ctx: ModuleContext) -> Iterator[Violation]:
        """Flag bare excepts and handlers whose body is only pass/ellipsis."""
        for node in ctx.walk():
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield self.violation(
                    ctx,
                    node,
                    "bare 'except:' catches SystemExit/KeyboardInterrupt; "
                    "name the exception types",
                )
                continue
            if all(_is_noop(stmt) for stmt in node.body):
                yield self.violation(
                    ctx,
                    node,
                    "exception handler silently swallows the error; handle "
                    "it, log it, or re-raise a repro.errors type",
                )


def _is_noop(stmt: ast.stmt) -> bool:
    """True for ``pass`` and bare ``...`` statements."""
    if isinstance(stmt, ast.Pass):
        return True
    return (
        isinstance(stmt, ast.Expr)
        and isinstance(stmt.value, ast.Constant)
        and stmt.value.value is Ellipsis
    )
