"""Rule implementations for reprolint.

Importing this package registers every rule with
:mod:`repro.analysis.registry`; the engine and CLI rely on that side
effect, so new rule modules must be added to the import list below.
"""

from __future__ import annotations

from . import (  # noqa: F401  (imported for their registration side effect)
    api_surface,
    code_hygiene,
    deprecation_contracts,
    determinism_contracts,
    error_discipline,
    kernel_contracts,
    parallel_discipline,
    purity_contracts,
    service_boundaries,
    span_discipline,
    timing_discipline,
    validation_contracts,
)

__all__ = [
    "api_surface",
    "code_hygiene",
    "deprecation_contracts",
    "determinism_contracts",
    "error_discipline",
    "kernel_contracts",
    "parallel_discipline",
    "purity_contracts",
    "service_boundaries",
    "span_discipline",
    "timing_discipline",
    "validation_contracts",
]
