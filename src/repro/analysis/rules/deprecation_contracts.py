"""RPR014 — no new call sites on deprecated symbols.

Runtime ``DeprecationWarning``s only fire on paths that execute; this
rule makes the deprecation table in :mod:`repro.analysis.project`
enforceable at every file on every commit.  Attribute deprecations
(``DensityGrid.stats``) use the index's return annotations plus the
def-use summaries for a light local type inference: an expression is
treated as a ``DensityGrid`` when it is (or was assigned from) a call to
the class itself or to a project function annotated ``-> DensityGrid``.
Function deprecations flag resolved calls and explicit imports.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from ..project import (
    FunctionInfo,
    ModuleInfo,
    ProjectIndex,
    ProjectRule,
    deprecations,
)
from ..registry import register
from ..violations import Violation

__all__ = ["DeprecatedSymbolRule"]


def _annotation_names(annotation: str) -> set[str]:
    """Identifier tokens of a return annotation (handles Optional/quotes)."""
    return set(re.findall(r"[A-Za-z_]\w*", annotation))


@register
class DeprecatedSymbolRule(ProjectRule):
    """Uses of registered deprecated symbols are flagged at the use site."""

    rule_id = "RPR014"
    name = "deprecated-symbol"
    summary = (
        "symbol is deprecated (see the registered replacement); new code "
        "must use the replacement so the alias can be removed"
    )

    def check_project(self, index: ProjectIndex) -> Iterator[Violation]:
        """Scan every module for deprecated attribute/function usage."""
        table = deprecations()
        attr_entries = [d for d in table if d.kind == "attribute"]
        func_entries = {d.qualname: d for d in table if d.kind == "function"}
        attr_names = {d.attr for d in attr_entries}
        for name in sorted(index.modules):
            module = index.modules[name]
            if attr_entries:
                yield from self._check_attributes(
                    index, module, attr_entries, attr_names
                )
            if func_entries:
                yield from self._check_functions(index, module, func_entries)

    # -- attribute deprecations ---------------------------------------------

    def _check_attributes(
        self, index: ProjectIndex, module: ModuleInfo, entries, attr_names
    ) -> Iterator[Violation]:
        """Flag ``expr.attr`` loads whose inferred type matches an entry."""
        scopes = self._scopes(module)
        for node in module.ctx.walk():
            if not isinstance(node, ast.Attribute):
                continue
            if node.attr not in attr_names or not isinstance(node.ctx, ast.Load):
                continue
            inferred = self._infer_type(index, module, scopes, node.value)
            if inferred is None:
                continue
            for entry in entries:
                if entry.attr == node.attr and entry.owner == inferred:
                    yield self.project_violation(
                        module,
                        node,
                        f"{entry.owner}.{entry.attr} is deprecated since "
                        f"{entry.since}; use {entry.replacement}",
                    )

    def _scopes(self, module: ModuleInfo) -> dict[str, ast.AST]:
        """Name -> last assigned call expression, across module scopes.

        A single flat map is a deliberate approximation: shadowing across
        functions could in principle cross-talk, but names assigned from
        a ``DensityGrid``-returning call are overwhelmingly grid locals.
        """
        assigned: dict[str, ast.AST] = dict(module.assignments)
        for node in module.ctx.walk():
            if isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        assigned[target.id] = node.value
        return assigned

    def _infer_type(
        self,
        index: ProjectIndex,
        module: ModuleInfo,
        scopes: dict[str, ast.AST],
        expr: ast.AST,
    ) -> str | None:
        """Class name an expression statically evaluates to, if known."""
        if isinstance(expr, ast.Name):
            value = scopes.get(expr.id)
            if isinstance(value, ast.Call):
                return self._call_type(index, module, value)
            return None
        if isinstance(expr, ast.Call):
            return self._call_type(index, module, expr)
        return None

    def _call_type(
        self, index: ProjectIndex, module: ModuleInfo, call: ast.Call
    ) -> str | None:
        """Type produced by a call: constructor name or return annotation."""
        dotted = index.dotted_for(module, call.func)
        if dotted is None:
            return None
        target = index.resolve(dotted)
        if isinstance(target, ast.ClassDef):
            return target.name
        if isinstance(target, FunctionInfo) and target.returns:
            # Single-class annotations only: "DensityGrid",
            # "Optional[DensityGrid]", '"DensityGrid"'.
            names = _annotation_names(target.returns)
            candidates = names - {"Optional", "None", "Union", "tuple", "list", "dict"}
            if len(candidates) == 1:
                return next(iter(candidates))
        return None

    # -- function deprecations ----------------------------------------------

    def _check_functions(
        self, index: ProjectIndex, module: ModuleInfo, entries
    ) -> Iterator[Violation]:
        """Flag resolved calls to and imports of deprecated callables."""
        for node in module.ctx.walk():
            if isinstance(node, ast.Call):
                dotted = index.dotted_for(module, node.func)
                entry = entries.get(dotted) if dotted else None
                if entry is not None:
                    yield self.project_violation(
                        module,
                        node,
                        f"{entry.qualname} is deprecated since "
                        f"{entry.since}; use {entry.replacement}",
                    )
            elif isinstance(node, ast.ImportFrom) and node.level == 0:
                for alias in node.names:
                    dotted = f"{node.module}.{alias.name}" if node.module else alias.name
                    entry = entries.get(dotted)
                    if entry is not None:
                        yield self.project_violation(
                            module,
                            node,
                            f"import of deprecated {entry.qualname} (since "
                            f"{entry.since}); use {entry.replacement}",
                        )
