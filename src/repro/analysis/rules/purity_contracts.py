"""RPR013 — worker callables dispatched via repro.parallel stay pure.

The bit-identity suite proves at runtime that results are invariant to
worker count and backend; that proof silently assumes the dispatched
callables are pure.  A worker that writes a module global, mutates
closed-over state or touches ``os.environ`` behaves differently under
the process backend (each worker has its own copy) than under
serial/thread (shared state), which is exactly the class of bug the
runtime suite can only catch for the worker counts it samples.  This
rule is the static complement: it resolves the callable at every
``parallel_map``/``parallel_starmap``/``parallel_submit`` call site and
flags impure statements inside it.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..dataflow import FunctionSummary
from ..project import FunctionInfo, ModuleInfo, ProjectIndex, ProjectRule
from ..registry import register
from ..violations import Violation

__all__ = ["WorkerPurityRule"]

#: Dotted paths of the shared-executor dispatch helpers.
_DISPATCHERS = frozenset(
    {
        "repro.parallel.parallel_map",
        "repro.parallel.parallel_starmap",
        "repro.parallel.parallel_submit",
    }
)


@register
class WorkerPurityRule(ProjectRule):
    """Callables handed to the shared executor must be side-effect free."""

    rule_id = "RPR013"
    name = "worker-purity"
    summary = (
        "callables dispatched through repro.parallel must not write "
        "module globals, mutate closed-over state or touch os.environ — "
        "impurity diverges across backends"
    )

    def check_project(self, index: ProjectIndex) -> Iterator[Violation]:
        """Resolve worker callables at dispatch sites and audit them."""
        seen: set[tuple[str, int, int, str]] = set()
        for name in sorted(index.modules):
            module = index.modules[name]
            for node in module.ctx.walk():
                if not isinstance(node, ast.Call):
                    continue
                dotted = index.dotted_for(module, node.func)
                if dotted not in _DISPATCHERS:
                    continue
                for worker_module, summary, qualname in self._workers(
                    index, module, node
                ):
                    for violation in self._audit(
                        worker_module, summary, qualname
                    ):
                        key = (
                            violation.path,
                            violation.line,
                            violation.col,
                            violation.message,
                        )
                        if key not in seen:
                            seen.add(key)
                            yield violation

    def _workers(
        self, index: ProjectIndex, module: ModuleInfo, call: ast.Call
    ) -> Iterator[tuple[ModuleInfo, FunctionSummary, str]]:
        """Summaries of the callables a dispatch call hands out.

        Resolves the common shapes — a named project function, an inline
        lambda, and (for ``parallel_submit``) a literal list of either.
        Opaque expressions (variables holding callables, ``partial``
        objects) are skipped: the rule under-approximates rather than
        guesses.
        """
        if not call.args:
            return
        first = call.args[0]
        candidates: list[ast.AST] = [first]
        if isinstance(first, (ast.List, ast.Tuple)):
            candidates = list(first.elts)
        elif isinstance(first, (ast.ListComp, ast.GeneratorExp)):
            candidates = [first.elt]
        for expr in candidates:
            if isinstance(expr, ast.Lambda):
                yield module, FunctionSummary(
                    expr,
                    aliases=module.import_aliases,
                    module_roots=module.module_aliases,
                ), module.ctx.qualname(expr)
            else:
                target = None
                dotted = index.dotted_for(module, expr)
                if dotted is not None:
                    target = index.resolve(dotted)
                if isinstance(target, FunctionInfo):
                    yield target.module, target.summary, target.qualname

    def _audit(
        self, module: ModuleInfo, summary: FunctionSummary, qualname: str
    ) -> Iterator[Violation]:
        """Findings for one worker callable's summary."""
        for effect in summary.free_effects:
            if effect.kind == "mutate":
                detail = (
                    f"calls .{effect.via}() on {effect.name!r}, which is "
                    "not local to the worker"
                )
            else:
                detail = f"writes {effect.name!r}, which is not local to the worker"
            yield Violation(
                rule_id=self.rule_id,
                path=module.ctx.path,
                line=getattr(effect.node, "lineno", 1),
                col=getattr(effect.node, "col_offset", 0),
                message=(
                    f"worker callable {qualname}() {detail}; workers must "
                    "return results, not share state (process backends "
                    "silently drop such writes)"
                ),
                symbol=qualname,
            )
        for node, kind in summary.env_effects:
            verb = "writes" if kind == "write" else "reads"
            yield Violation(
                rule_id=self.rule_id,
                path=module.ctx.path,
                line=getattr(node, "lineno", 1),
                col=getattr(node, "col_offset", 0),
                message=(
                    f"worker callable {qualname}() {verb} os.environ; "
                    "resolve configuration before dispatch and pass it as "
                    "an argument"
                ),
                symbol=qualname,
            )
