"""RPR003/RPR004 — no asserts in library code, no mutable defaults.

``assert`` statements vanish under ``python -O``, so a contract guarded by
one silently stops being checked in optimised deployments — the validation
helpers in :mod:`repro._validation` are the supported way to enforce
invariants.  Mutable default arguments (``def f(x=[])``) are the classic
shared-state bug and are banned outright.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..context import ModuleContext
from ..registry import Rule, register
from ..violations import Violation

__all__ = ["NoAssertRule", "MutableDefaultRule"]

#: Builtin constructors whose zero/any-arg call is a fresh mutable object.
_MUTABLE_CALLS = frozenset({"list", "dict", "set", "bytearray"})

_MUTABLE_LITERALS = (
    ast.List,
    ast.Dict,
    ast.Set,
    ast.ListComp,
    ast.SetComp,
    ast.DictComp,
)


@register
class NoAssertRule(Rule):
    """Library code must not rely on ``assert`` for runtime checks."""

    rule_id = "RPR003"
    name = "no-assert"
    summary = (
        "assert statements are stripped under -O; raise a repro.errors "
        "type via repro._validation instead"
    )

    def check(self, ctx: ModuleContext) -> Iterator[Violation]:
        """Flag every ``assert`` statement in the module."""
        for node in ctx.walk():
            if isinstance(node, ast.Assert):
                yield self.violation(
                    ctx,
                    node,
                    "assert statement in library code; raise ParameterError/"
                    "DataError (repro.errors) instead",
                )


def _is_mutable_default(node: ast.AST) -> bool:
    """True when a default-value expression builds a mutable object."""
    if isinstance(node, _MUTABLE_LITERALS):
        return True
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in _MUTABLE_CALLS
    )


@register
class MutableDefaultRule(Rule):
    """Default argument values must be immutable."""

    rule_id = "RPR004"
    name = "mutable-default"
    summary = "mutable default arguments are shared across calls; use None"

    def check(self, ctx: ModuleContext) -> Iterator[Violation]:
        """Flag list/dict/set (literal or constructor) default values."""
        for node in ctx.walk():
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue
            defaults = list(node.args.defaults) + [
                d for d in node.args.kw_defaults if d is not None
            ]
            for default in defaults:
                if _is_mutable_default(default):
                    yield self.violation(
                        ctx,
                        default,
                        "mutable default argument; default to None and "
                        "construct inside the function",
                        symbol=ctx.qualname(default),
                    )
