"""reprolint — two-phase AST static analysis for the repro library.

The paper's tool surface (six analytic tools x seven kernels x many
acceleration variants) means dozens of public entry points that must all
validate inputs, raise typed errors and keep numerical invariants — and,
since the parallel/observability subsystems landed, hold system-level
contracts (worker-invariant seeding, pure worker callables, span-wrapped
hot paths) that runtime tests can only sample.  This subpackage makes
those conventions machine-checked:

* **phase 1** parses every file and builds a
  :class:`~repro.analysis.project.ProjectIndex` — module/import graph,
  symbol tables, resolved call graph, per-function def-use summaries;
* **phase 2** runs per-file rules (fanned out through
  :mod:`repro.parallel`) plus cross-module
  :class:`~repro.analysis.project.ProjectRule` checks against the index.

Findings are triaged through inline ``# reprolint: disable=RPRnnn``
pragmas and a JSON baseline of justified exceptions; reporters cover
text, JSON and SARIF 2.1.0; warm runs hit an on-disk cache keyed by
content hash + rule-set version::

    python -m repro.analysis src/repro --format sarif --changed-only

See ``docs/STATIC_ANALYSIS.md`` for the rule catalogue and workflows.
"""

from __future__ import annotations

from .baseline import Baseline, BaselineEntry, load_baseline, save_entries, write_baseline
from .cache import AnalysisCache
from .cli import build_parser, main
from .config import LintConfig, find_project_root, load_config
from .engine import (
    AnalysisResult,
    analyze_paths,
    analyze_source,
    changed_files,
    iter_python_files,
)
from .project import (
    Deprecation,
    ProjectIndex,
    ProjectRule,
    deprecations,
    register_deprecation,
)
from .registry import Rule, all_rules, get_rule, rule_ids
from .reporting import render_json, render_sarif, render_text
from .violations import PARSE_ERROR_ID, Violation

__all__ = [
    "AnalysisCache",
    "AnalysisResult",
    "Baseline",
    "BaselineEntry",
    "Deprecation",
    "LintConfig",
    "PARSE_ERROR_ID",
    "ProjectIndex",
    "ProjectRule",
    "Rule",
    "Violation",
    "all_rules",
    "analyze_paths",
    "analyze_source",
    "build_parser",
    "changed_files",
    "deprecations",
    "find_project_root",
    "get_rule",
    "iter_python_files",
    "load_baseline",
    "load_config",
    "main",
    "register_deprecation",
    "render_json",
    "render_sarif",
    "render_text",
    "rule_ids",
    "save_entries",
    "write_baseline",
]
