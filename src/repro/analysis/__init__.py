"""reprolint — AST-based static analysis for the repro library.

The paper's tool surface (six analytic tools x seven kernels x many
acceleration variants) means dozens of public entry points that must all
validate inputs, raise typed errors and keep numerical invariants.  This
subpackage makes those conventions machine-checked: a rule registry of
``RPRnnn`` checks built on stdlib :mod:`ast`, an engine with inline
``# reprolint: disable=RPRnnn`` pragmas and a JSON baseline of justified
exceptions, text/JSON reporters, and a CLI::

    python -m repro.analysis src/repro --format json \
        --baseline .reprolint-baseline.json

See ``docs/STATIC_ANALYSIS.md`` for the rule catalogue and workflows.
"""

from __future__ import annotations

from .baseline import Baseline, BaselineEntry, load_baseline, write_baseline
from .cli import build_parser, main
from .config import LintConfig, find_project_root, load_config
from .engine import AnalysisResult, analyze_paths, analyze_source, iter_python_files
from .registry import Rule, all_rules, get_rule, rule_ids
from .reporting import render_json, render_text
from .violations import PARSE_ERROR_ID, Violation

__all__ = [
    "AnalysisResult",
    "Baseline",
    "BaselineEntry",
    "LintConfig",
    "PARSE_ERROR_ID",
    "Rule",
    "Violation",
    "all_rules",
    "analyze_paths",
    "analyze_source",
    "build_parser",
    "find_project_root",
    "get_rule",
    "iter_python_files",
    "load_baseline",
    "load_config",
    "main",
    "render_json",
    "render_text",
    "rule_ids",
    "write_baseline",
]
