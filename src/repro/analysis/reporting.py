"""Text, JSON and SARIF rendering of analysis results."""

from __future__ import annotations

import json

from .engine import AnalysisResult
from .registry import all_rules
from .violations import Violation

__all__ = ["render_text", "render_json", "render_sarif"]

#: SARIF 2.1.0 schema location embedded in every report.
SARIF_SCHEMA_URI = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

#: Tool metadata for the SARIF ``tool.driver`` object.
_TOOL_INFO_URI = "https://example.invalid/repro/docs/STATIC_ANALYSIS.md"


def render_text(result: AnalysisResult, verbose: bool = False) -> str:
    """Human-readable report: one line per finding plus a summary.

    With ``verbose`` the baselined/suppressed findings and unused baseline
    entries are itemised too; by default they only appear in the summary
    counts.
    """
    lines: list[str] = []
    for violation in result.violations:
        lines.append(violation.render())
    if verbose:
        for violation in result.baselined:
            lines.append(f"{violation.render()} [baselined]")
        for violation in result.suppressed:
            lines.append(f"{violation.render()} [suppressed by pragma]")
        for entry in result.unused_baseline:
            lines.append(
                f"{entry.path}: unused baseline entry {entry.rule}:{entry.symbol}"
                f" ({entry.justification})"
            )
    summary = (
        f"{len(result.violations)} violation"
        f"{'' if len(result.violations) == 1 else 's'} "
        f"({len(result.baselined)} baselined, {len(result.suppressed)} "
        f"suppressed) across {result.files_checked} file"
        f"{'' if result.files_checked == 1 else 's'}"
    )
    if result.cache_hits or result.project_cache_hit:
        parts = [f"{result.cache_hits} from cache"]
        if result.project_cache_hit:
            parts.append("project phase cached")
        summary += f" ({', '.join(parts)})"
    if result.changed_only:
        summary += " [changed files only]"
    if result.unused_baseline:
        summary += f"; {len(result.unused_baseline)} unused baseline entries"
    lines.append(summary)
    return "\n".join(lines)


def render_json(result: AnalysisResult) -> str:
    """Machine-readable report (stable shape, see AnalysisResult.to_dict)."""
    return json.dumps(result.to_dict(), indent=2, sort_keys=False)


def _tool_version() -> str:
    """The library version stamped into SARIF output."""
    try:
        from .. import __version__
    except ImportError:
        return "0"
    return str(__version__)


def _sarif_result(
    violation: Violation,
    rule_index: dict[str, int],
    suppression: str | None = None,
) -> dict:
    """One SARIF ``result`` object for a violation."""
    result: dict = {
        "ruleId": violation.rule_id,
        "level": "error",
        "message": {"text": violation.message},
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {"uri": violation.path},
                    "region": {
                        "startLine": max(int(violation.line), 1),
                        "startColumn": max(int(violation.col) + 1, 1),
                    },
                }
            }
        ],
        "partialFingerprints": {
            "reprolintFingerprint/v1": ":".join(violation.fingerprint()),
        },
    }
    if violation.rule_id in rule_index:
        result["ruleIndex"] = rule_index[violation.rule_id]
    if suppression is not None:
        result["level"] = "note"
        result["suppressions"] = [{"kind": suppression}]
    return result


def render_sarif(result: AnalysisResult) -> str:
    """SARIF 2.1.0 report for GitHub code-scanning upload.

    Active violations are ``error``-level results; baselined and
    pragma-suppressed findings are included as suppressed results
    (``external`` / ``inSource`` respectively) so code scanning shows
    them as dismissed rather than losing them.
    """
    rules_meta = [
        {
            "id": rule.rule_id,
            "name": rule.name,
            "shortDescription": {"text": rule.summary},
        }
        for rule in all_rules()
    ]
    rule_index = {meta["id"]: i for i, meta in enumerate(rules_meta)}
    results = [_sarif_result(v, rule_index) for v in result.violations]
    results.extend(
        _sarif_result(v, rule_index, suppression="external")
        for v in result.baselined
    )
    results.extend(
        _sarif_result(v, rule_index, suppression="inSource")
        for v in result.suppressed
    )
    payload = {
        "$schema": SARIF_SCHEMA_URI,
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "reprolint",
                        "informationUri": _TOOL_INFO_URI,
                        "version": _tool_version(),
                        "rules": rules_meta,
                    }
                },
                "results": results,
                "invocations": [
                    {"executionSuccessful": True, "exitCode": 0 if result.ok else 1}
                ],
            }
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=False)
