"""Text and JSON rendering of analysis results."""

from __future__ import annotations

import json

from .engine import AnalysisResult

__all__ = ["render_text", "render_json"]


def render_text(result: AnalysisResult, verbose: bool = False) -> str:
    """Human-readable report: one line per finding plus a summary.

    With ``verbose`` the baselined/suppressed findings and unused baseline
    entries are itemised too; by default they only appear in the summary
    counts.
    """
    lines: list[str] = []
    for violation in result.violations:
        lines.append(violation.render())
    if verbose:
        for violation in result.baselined:
            lines.append(f"{violation.render()} [baselined]")
        for violation in result.suppressed:
            lines.append(f"{violation.render()} [suppressed by pragma]")
        for entry in result.unused_baseline:
            lines.append(
                f"{entry.path}: unused baseline entry {entry.rule}:{entry.symbol}"
                f" ({entry.justification})"
            )
    summary = (
        f"{len(result.violations)} violation"
        f"{'' if len(result.violations) == 1 else 's'} "
        f"({len(result.baselined)} baselined, {len(result.suppressed)} "
        f"suppressed) across {result.files_checked} file"
        f"{'' if result.files_checked == 1 else 's'}"
    )
    if result.unused_baseline:
        summary += f"; {len(result.unused_baseline)} unused baseline entries"
    lines.append(summary)
    return "\n".join(lines)


def render_json(result: AnalysisResult) -> str:
    """Machine-readable report (stable shape, see AnalysisResult.to_dict)."""
    return json.dumps(result.to_dict(), indent=2, sort_keys=False)
