"""Violation records emitted by reprolint rules.

A :class:`Violation` is a single finding: a rule identifier, a location
(path/line/column), the enclosing symbol (used for stable baseline
fingerprints that survive line-number churn) and a human-readable message.
"""

from __future__ import annotations

import dataclasses

__all__ = ["Violation", "PARSE_ERROR_ID"]

#: Pseudo-rule id reported when a file cannot be parsed at all.
PARSE_ERROR_ID = "RPR000"


@dataclasses.dataclass(frozen=True)
class Violation:
    """One static-analysis finding, addressable by ``path:line:col``."""

    rule_id: str
    path: str
    line: int
    col: int
    message: str
    symbol: str = "<module>"

    def fingerprint(self) -> tuple[str, str, str]:
        """Line-number-free identity used to match baseline entries."""
        return (self.path, self.rule_id, self.symbol)

    def to_dict(self) -> dict:
        """JSON-serialisable representation (the ``--format json`` shape)."""
        return {
            "rule": self.rule_id,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "symbol": self.symbol,
            "message": self.message,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Violation":
        """Rebuild a Violation from :meth:`to_dict` output (cache loads)."""
        return cls(
            rule_id=str(data["rule"]),
            path=str(data["path"]),
            line=int(data["line"]),
            col=int(data["col"]),
            message=str(data["message"]),
            symbol=str(data.get("symbol", "<module>")),
        )

    def render(self) -> str:
        """One-line ``path:line:col: RULE message (in symbol)`` rendering."""
        where = f" (in {self.symbol})" if self.symbol != "<module>" else ""
        return f"{self.path}:{self.line}:{self.col}: {self.rule_id} {self.message}{where}"
