"""``[tool.reprolint]`` configuration loaded from ``pyproject.toml``.

Recognised keys::

    [tool.reprolint]
    enable   = ["RPR001", ...]   # when non-empty, ONLY these rules run
    disable  = ["RPR007"]        # rules switched off
    exclude  = ["src/repro/_*"]  # fnmatch globs on project-relative paths
    baseline = ".reprolint-baseline.json"

Parsing uses stdlib ``tomllib`` (Python >= 3.11); on older interpreters
the config is treated as empty rather than failing, since every option can
also be supplied on the command line.
"""

from __future__ import annotations

import dataclasses
import fnmatch
from pathlib import Path

from ..errors import AnalysisError

try:
    import tomllib as _toml
except ModuleNotFoundError:  # pragma: no cover - Python 3.10 fallback
    _toml = None

__all__ = ["LintConfig", "find_project_root", "load_config", "DEFAULT_BASELINE_NAME"]

#: Baseline filename used when neither config nor CLI name one.
DEFAULT_BASELINE_NAME = ".reprolint-baseline.json"

_KNOWN_KEYS = {"enable", "disable", "exclude", "baseline"}


@dataclasses.dataclass(frozen=True)
class LintConfig:
    """Resolved linter configuration for one project root."""

    root: Path
    enable: tuple[str, ...] = ()
    disable: tuple[str, ...] = ()
    exclude: tuple[str, ...] = ()
    baseline: str | None = None

    def rule_enabled(self, rule_id: str) -> bool:
        """Apply the enable/disable lists to one rule id."""
        if self.enable and rule_id not in self.enable:
            return False
        return rule_id not in self.disable

    def is_excluded(self, relpath: str) -> bool:
        """True when a project-relative POSIX path matches an exclude glob."""
        return any(fnmatch.fnmatch(relpath, pattern) for pattern in self.exclude)


def find_project_root(start: str | Path) -> Path:
    """Nearest ancestor of ``start`` containing ``pyproject.toml``.

    Falls back to ``start`` itself (as a directory) when no marker is
    found, so the linter still runs on loose files.
    """
    path = Path(start).resolve()
    if path.is_file():
        path = path.parent
    for candidate in (path, *path.parents):
        if (candidate / "pyproject.toml").is_file():
            return candidate
    return path


def _string_list(value: object, key: str, where: str) -> tuple[str, ...]:
    """Validate a TOML value as a list of strings."""
    if not isinstance(value, list) or not all(isinstance(v, str) for v in value):
        raise AnalysisError(f"{where}: '{key}' must be a list of strings")
    return tuple(value)


def load_config(root: str | Path) -> LintConfig:
    """Load ``[tool.reprolint]`` from ``root/pyproject.toml``.

    Missing file, missing table, or an interpreter without ``tomllib`` all
    yield the default configuration; malformed values raise
    :class:`AnalysisError`.
    """
    root = Path(root)
    pyproject = root / "pyproject.toml"
    if _toml is None or not pyproject.is_file():
        return LintConfig(root=root)
    try:
        data = _toml.loads(pyproject.read_text(encoding="utf-8"))
    except (OSError, ValueError) as exc:
        raise AnalysisError(f"cannot parse {pyproject}: {exc}") from exc
    table = data.get("tool", {}).get("reprolint", {})
    if not isinstance(table, dict):
        raise AnalysisError(f"{pyproject}: [tool.reprolint] must be a table")
    unknown = set(table) - _KNOWN_KEYS
    if unknown:
        raise AnalysisError(
            f"{pyproject}: unknown [tool.reprolint] keys: "
            f"{', '.join(sorted(unknown))}"
        )
    where = str(pyproject)
    baseline = table.get("baseline")
    if baseline is not None and not isinstance(baseline, str):
        raise AnalysisError(f"{where}: 'baseline' must be a string")
    return LintConfig(
        root=root,
        enable=tuple(
            r.upper() for r in _string_list(table.get("enable", []), "enable", where)
        ),
        disable=tuple(
            r.upper() for r in _string_list(table.get("disable", []), "disable", where)
        ),
        exclude=_string_list(table.get("exclude", []), "exclude", where),
        baseline=baseline,
    )
