"""Baseline files: accepted violations with recorded justifications.

A baseline lets the linter be adopted on a codebase with known, deliberate
deviations: each entry names a (path, rule, symbol) fingerprint plus a
mandatory one-line justification, and matching violations are reported as
*baselined* instead of failing the run.  Fingerprints carry no line
numbers, so refactors that move code inside the same symbol do not churn
the file.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Iterable

from ..errors import AnalysisError
from .violations import Violation

__all__ = [
    "BaselineEntry",
    "Baseline",
    "load_baseline",
    "save_entries",
    "write_baseline",
]

#: Current on-disk format version.
BASELINE_VERSION = 1

#: Justification written by ``--write-baseline``; humans should edit it.
PLACEHOLDER_JUSTIFICATION = "TODO: justify this accepted violation"


@dataclasses.dataclass(frozen=True)
class BaselineEntry:
    """One accepted violation: fingerprint plus justification."""

    path: str
    rule: str
    symbol: str
    justification: str

    def fingerprint(self) -> tuple[str, str, str]:
        """The (path, rule, symbol) key used to match violations."""
        return (self.path, self.rule, self.symbol)

    def to_dict(self) -> dict:
        """JSON-serialisable representation."""
        return dataclasses.asdict(self)


class Baseline:
    """In-memory baseline with usage tracking for unused-entry reporting."""

    def __init__(self, entries: Iterable[BaselineEntry] = ()) -> None:
        """Index ``entries`` by fingerprint; duplicates are an error."""
        self._entries: dict[tuple[str, str, str], BaselineEntry] = {}
        for entry in entries:
            key = entry.fingerprint()
            if key in self._entries:
                raise AnalysisError(
                    f"duplicate baseline entry for {entry.path}:{entry.rule}"
                    f":{entry.symbol}"
                )
            self._entries[key] = entry
        self._used: set[tuple[str, str, str]] = set()

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def entries(self) -> list[BaselineEntry]:
        """All entries in insertion order."""
        return list(self._entries.values())

    def matches(self, violation: Violation) -> bool:
        """True when ``violation`` is baselined; marks the entry as used."""
        key = violation.fingerprint()
        if key in self._entries:
            self._used.add(key)
            return True
        return False

    def unused_entries(self) -> list[BaselineEntry]:
        """Entries that matched nothing — candidates for deletion."""
        return [
            entry
            for key, entry in self._entries.items()
            if key not in self._used
        ]


def load_baseline(path: str | Path) -> Baseline:
    """Read and validate a baseline JSON file.

    Every entry must carry the four string fields and a non-empty
    justification; anything else raises :class:`AnalysisError` so CI fails
    loudly on a hand-edited-broken file rather than silently accepting
    violations.
    """
    path = Path(path)
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except OSError as exc:
        raise AnalysisError(f"cannot read baseline {path}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise AnalysisError(f"baseline {path} is not valid JSON: {exc}") from exc
    if not isinstance(payload, dict) or "entries" not in payload:
        raise AnalysisError(f"baseline {path} must be an object with 'entries'")
    entries: list[BaselineEntry] = []
    for index, raw in enumerate(payload["entries"]):
        if not isinstance(raw, dict):
            raise AnalysisError(f"baseline {path}: entry {index} is not an object")
        missing = {"path", "rule", "symbol", "justification"} - set(raw)
        if missing:
            raise AnalysisError(
                f"baseline {path}: entry {index} is missing "
                f"{', '.join(sorted(missing))}"
            )
        if not str(raw["justification"]).strip():
            raise AnalysisError(
                f"baseline {path}: entry {index} "
                f"({raw['path']}:{raw['rule']}:{raw['symbol']}) has an empty "
                f"justification — every accepted violation needs a reason"
            )
        entries.append(
            BaselineEntry(
                path=str(raw["path"]),
                rule=str(raw["rule"]),
                symbol=str(raw["symbol"]),
                justification=str(raw["justification"]),
            )
        )
    return Baseline(entries)


def write_baseline(
    path: str | Path,
    violations: Iterable[Violation],
    existing: Baseline | None = None,
) -> Baseline:
    """Write a baseline accepting ``violations``; returns what was written.

    Justifications from ``existing`` are preserved for fingerprints that
    are still live; new fingerprints get a placeholder justification that a
    human must edit (the loader accepts it, reviewers should not).
    """
    keep: dict[tuple[str, str, str], BaselineEntry] = {}
    prior = {e.fingerprint(): e for e in existing.entries} if existing else {}
    for violation in violations:
        key = violation.fingerprint()
        if key in keep:
            continue
        if key in prior:
            keep[key] = prior[key]
        else:
            keep[key] = BaselineEntry(
                path=violation.path,
                rule=violation.rule_id,
                symbol=violation.symbol,
                justification=PLACEHOLDER_JUSTIFICATION,
            )
    entries = [keep[key] for key in sorted(keep)]
    return save_entries(path, entries)


def save_entries(path: str | Path, entries: Iterable[BaselineEntry]) -> Baseline:
    """Write a baseline file containing exactly ``entries``.

    The primitive shared by ``--write-baseline`` (grow/refresh) and
    ``--prune-baseline`` (shrink): it performs no matching of its own.
    """
    entries = list(entries)
    payload = {
        "version": BASELINE_VERSION,
        "entries": [entry.to_dict() for entry in entries],
    }
    Path(path).write_text(
        json.dumps(payload, indent=2, sort_keys=False) + "\n", encoding="utf-8"
    )
    return Baseline(entries)
