"""On-disk analysis cache: warm reprolint runs skip re-analysis.

The cache maps ``(file content hash, rule-set digest)`` to the raw
findings for that file, plus one project-level entry keyed by the digest
of *every* file hash (so any edit anywhere invalidates the cross-module
findings, which is the only sound granularity for project rules).
Findings are cached **pre-triage**: pragmas and the baseline are cheap
and re-applied on every run, so editing a pragma or the baseline file
takes effect without invalidating the cache.

The file is JSON next to the baseline (default
``.reprolint-cache.json``), written atomically, and self-invalidating:
a version or rule-set mismatch discards it wholesale.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Iterable, Sequence

from .violations import Violation

__all__ = [
    "AnalysisCache",
    "CACHE_VERSION",
    "DEFAULT_CACHE_NAME",
    "content_hash",
    "project_digest",
    "ruleset_digest",
]

#: On-disk schema version; bump to invalidate every existing cache.
CACHE_VERSION = 1

#: Cache filename used when the CLI is not told otherwise.
DEFAULT_CACHE_NAME = ".reprolint-cache.json"


def content_hash(source: str) -> str:
    """Stable hex digest of one file's source text."""
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


def ruleset_digest(rules: Sequence) -> str:
    """Digest of the enabled rule set (ids + per-rule versions).

    Bumping a rule's ``version`` class attribute invalidates cached
    findings for that rule set without touching the schema version.
    """
    parts = sorted(f"{r.rule_id}:{getattr(r, 'version', 1)}" for r in rules)
    payload = ",".join(parts) + f"|schema={CACHE_VERSION}"
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def project_digest(file_hashes: Iterable[tuple[str, str]], ruleset: str) -> str:
    """Digest over every ``(relpath, content hash)`` pair plus the rule set."""
    hasher = hashlib.sha256()
    for relpath, sha in sorted(file_hashes):
        hasher.update(f"{relpath}\x00{sha}\x00".encode("utf-8"))
    hasher.update(ruleset.encode("utf-8"))
    return hasher.hexdigest()


class AnalysisCache:
    """Load/store cached findings for one ``(path, rule set)`` pair."""

    def __init__(self, path: str | Path, ruleset: str) -> None:
        """Open the cache at ``path``; mismatched caches start empty."""
        self.path = Path(path)
        self.ruleset = ruleset
        self._dirty = False
        self._files: dict[str, dict] = {}
        self._project: dict | None = None
        payload = self._load()
        if (
            isinstance(payload, dict)
            and payload.get("version") == CACHE_VERSION
            and payload.get("ruleset") == ruleset
        ):
            files = payload.get("files")
            if isinstance(files, dict):
                self._files = files
            project = payload.get("project")
            if isinstance(project, dict):
                self._project = project

    def _load(self) -> object | None:
        try:
            return json.loads(self.path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            # A missing or corrupt cache is never an error — it just
            # means a cold run.
            return None

    # -- per-file entries ---------------------------------------------------

    def get_file(self, relpath: str, sha: str) -> list[Violation] | None:
        """Cached findings for an unchanged file, else ``None``."""
        entry = self._files.get(relpath)
        if not entry or entry.get("sha") != sha:
            return None
        try:
            return [Violation.from_dict(d) for d in entry["findings"]]
        except (KeyError, TypeError):
            return None

    def put_file(self, relpath: str, sha: str, findings: Sequence[Violation]) -> None:
        """Record the findings for one analysed file."""
        self._files[relpath] = {
            "sha": sha,
            "findings": [v.to_dict() for v in findings],
        }
        self._dirty = True

    # -- project entry ------------------------------------------------------

    def get_project(self, digest: str) -> list[Violation] | None:
        """Cached cross-module findings for an unchanged tree, else None."""
        if not self._project or self._project.get("digest") != digest:
            return None
        try:
            return [Violation.from_dict(d) for d in self._project["findings"]]
        except (KeyError, TypeError):
            return None

    def put_project(self, digest: str, findings: Sequence[Violation]) -> None:
        """Record the cross-module findings for the current tree state."""
        self._project = {
            "digest": digest,
            "findings": [v.to_dict() for v in findings],
        }
        self._dirty = True

    # -- persistence --------------------------------------------------------

    def save(self) -> None:
        """Atomically write the cache when anything changed."""
        if not self._dirty:
            return
        payload = {
            "version": CACHE_VERSION,
            "ruleset": self.ruleset,
            "files": self._files,
            "project": self._project,
        }
        tmp = self.path.with_name(self.path.name + ".tmp")
        try:
            tmp.write_text(
                json.dumps(payload, indent=1, sort_keys=True) + "\n",
                encoding="utf-8",
            )
            os.replace(tmp, self.path)
        except OSError:
            # Caching is best-effort: an unwritable location (read-only
            # checkout, full disk) must not fail the lint run.
            if tmp.exists():
                try:
                    tmp.unlink()
                except OSError:
                    return
            return
        self._dirty = False
