"""Analysis engine: file discovery, rule execution, pragma + baseline triage.

The engine is the pure-library layer under the CLI: it walks the target
paths, builds a :class:`~repro.analysis.context.ModuleContext` per file,
runs every enabled rule, and sorts the raw findings into *active*
(failing), *baselined* (accepted with a justification) and *suppressed*
(silenced by an inline pragma) buckets.
"""

from __future__ import annotations

import dataclasses
from pathlib import Path
from typing import Iterable, Iterator, Sequence

from .baseline import Baseline, BaselineEntry
from .config import LintConfig, find_project_root
from .context import ModuleContext
from .registry import Rule, all_rules
from .rules import __all__ as _rule_modules  # noqa: F401  (registers rules)
from .violations import PARSE_ERROR_ID, Violation

__all__ = ["AnalysisResult", "analyze_source", "analyze_paths", "iter_python_files"]


@dataclasses.dataclass
class AnalysisResult:
    """Outcome of one analysis run over a set of files."""

    violations: list[Violation]
    baselined: list[Violation]
    suppressed: list[Violation]
    files_checked: int
    unused_baseline: list[BaselineEntry]

    @property
    def ok(self) -> bool:
        """True when no active (non-baselined, non-suppressed) findings."""
        return not self.violations

    def to_dict(self) -> dict:
        """JSON-serialisable representation used by ``--format json``."""
        return {
            "ok": self.ok,
            "files_checked": self.files_checked,
            "counts": {
                "active": len(self.violations),
                "baselined": len(self.baselined),
                "suppressed": len(self.suppressed),
                "unused_baseline": len(self.unused_baseline),
            },
            "violations": [v.to_dict() for v in self.violations],
            "baselined": [v.to_dict() for v in self.baselined],
            "suppressed": [v.to_dict() for v in self.suppressed],
            "unused_baseline": [e.to_dict() for e in self.unused_baseline],
        }


def iter_python_files(
    paths: Sequence[str | Path], config: LintConfig | None = None
) -> Iterator[Path]:
    """Yield ``.py`` files under ``paths`` (sorted, excludes applied)."""
    seen: set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            candidates: Iterable[Path] = sorted(path.rglob("*.py"))
        else:
            candidates = [path]
        for candidate in candidates:
            resolved = candidate.resolve()
            if resolved in seen:
                continue
            seen.add(resolved)
            if config is not None and config.is_excluded(
                _relpath(candidate, config.root)
            ):
                continue
            yield candidate


def _relpath(path: Path, root: Path | None) -> str:
    """Project-relative POSIX path used for display and fingerprints."""
    resolved = path.resolve()
    if root is not None:
        root_resolved = Path(root).resolve()
        if resolved.is_relative_to(root_resolved):
            return resolved.relative_to(root_resolved).as_posix()
    return path.as_posix()


def _enabled_rules(config: LintConfig | None, rules: Sequence[Rule] | None) -> list[Rule]:
    """The rule set for a run: explicit ``rules``, else registry + config."""
    if rules is not None:
        return list(rules)
    selected = all_rules()
    if config is not None:
        selected = [r for r in selected if config.rule_enabled(r.rule_id)]
    return selected


def analyze_source(
    source: str,
    path: str = "<memory>",
    rules: Sequence[Rule] | None = None,
    respect_pragmas: bool = True,
) -> list[Violation]:
    """Run rules over in-memory source; the fixture-test entry point.

    Returns the findings that survive pragma filtering (all findings when
    ``respect_pragmas`` is false).  Unparsable source yields a single
    ``RPR000`` finding rather than raising.
    """
    try:
        ctx = ModuleContext(path, source)
    except SyntaxError as exc:
        return [
            Violation(
                rule_id=PARSE_ERROR_ID,
                path=path,
                line=exc.lineno or 1,
                col=(exc.offset or 1) - 1,
                message=f"file cannot be parsed: {exc.msg}",
            )
        ]
    findings: list[Violation] = []
    for rule in _enabled_rules(None, rules):
        findings.extend(rule.check(ctx))
    findings.sort(key=lambda v: (v.line, v.col, v.rule_id))
    if not respect_pragmas:
        return findings
    return [v for v in findings if not ctx.is_disabled(v.rule_id, v.line)]


def analyze_paths(
    paths: Sequence[str | Path],
    config: LintConfig | None = None,
    rules: Sequence[Rule] | None = None,
    baseline: Baseline | None = None,
) -> AnalysisResult:
    """Analyze files/directories and triage findings.

    ``config`` defaults to an empty configuration rooted at the nearest
    ``pyproject.toml`` (for stable relative paths); pass the result of
    :func:`repro.analysis.config.load_config` to honour pyproject settings.
    """
    if config is None:
        start = Path(paths[0]) if paths else Path.cwd()
        config = LintConfig(root=find_project_root(start))
    active: list[Violation] = []
    baselined: list[Violation] = []
    suppressed: list[Violation] = []
    files_checked = 0
    selected = _enabled_rules(config, rules)
    for file_path in iter_python_files(paths, config):
        files_checked += 1
        relpath = _relpath(file_path, config.root)
        try:
            source = file_path.read_text(encoding="utf-8")
            ctx: ModuleContext | None = ModuleContext(relpath, source)
            parse_failure: Violation | None = None
        except (OSError, SyntaxError, UnicodeDecodeError) as exc:
            ctx = None
            detail = getattr(exc, "msg", None) or str(exc)
            parse_failure = Violation(
                rule_id=PARSE_ERROR_ID,
                path=relpath,
                line=getattr(exc, "lineno", None) or 1,
                col=0,
                message=f"file cannot be analysed: {detail}",
            )
        if ctx is None and parse_failure is not None:
            if baseline is not None and baseline.matches(parse_failure):
                baselined.append(parse_failure)
            else:
                active.append(parse_failure)
            continue
        file_findings: list[Violation] = []
        for rule in selected:
            file_findings.extend(rule.check(ctx))
        file_findings.sort(key=lambda v: (v.line, v.col, v.rule_id))
        for violation in file_findings:
            if ctx.is_disabled(violation.rule_id, violation.line):
                suppressed.append(violation)
            elif baseline is not None and baseline.matches(violation):
                baselined.append(violation)
            else:
                active.append(violation)
    return AnalysisResult(
        violations=active,
        baselined=baselined,
        suppressed=suppressed,
        files_checked=files_checked,
        unused_baseline=baseline.unused_entries() if baseline is not None else [],
    )
