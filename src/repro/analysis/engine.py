"""Analysis engine: two-phase project analysis, triage and caching.

The engine is the pure-library layer under the CLI.  A run has two
phases:

1. **File phase** — every target file is read, hashed and (on a cache
   miss) parsed and checked against the per-file rules.  The misses fan
   out through :func:`repro.parallel.parallel_map` — the library's own
   shared executor — so the linter dogfoods the worker-invariance
   contract it enforces: results come back in submission order, making
   the diagnostics ordering identical for every worker count/backend.
2. **Project phase** — when any :class:`~repro.analysis.project.ProjectRule`
   is enabled, a :class:`~repro.analysis.project.ProjectIndex` (module
   graph, symbol tables, call graph, def-use summaries) is built over
   *all* parsed files and the cross-module rules run against it.  The
   phase is cached as a unit, keyed by the digest of every file hash.

Raw findings are then triaged into *active* (failing), *baselined*
(accepted with a justification) and *suppressed* (silenced by an inline
pragma) buckets; pragmas and baseline are re-applied on every run so
cache entries stay triage-free.
"""

from __future__ import annotations

import dataclasses
import subprocess
from pathlib import Path
from typing import Iterable, Iterator, Sequence

from ..parallel import parallel_map
from .baseline import Baseline, BaselineEntry
from .cache import AnalysisCache, content_hash, project_digest, ruleset_digest
from .config import LintConfig, find_project_root
from .context import ModuleContext, parse_pragmas
from .project import ProjectIndex, ProjectRule
from .registry import Rule, all_rules, get_rule
from .rules import __all__ as _rule_modules  # noqa: F401  (registers rules)
from .violations import PARSE_ERROR_ID, Violation

__all__ = [
    "AnalysisResult",
    "analyze_source",
    "analyze_paths",
    "changed_files",
    "iter_python_files",
]


@dataclasses.dataclass
class AnalysisResult:
    """Outcome of one analysis run over a set of files."""

    violations: list[Violation]
    baselined: list[Violation]
    suppressed: list[Violation]
    files_checked: int
    unused_baseline: list[BaselineEntry]
    #: Files whose per-file findings came from the on-disk cache.
    cache_hits: int = 0
    #: True when the cross-module findings came from the cache.
    project_cache_hit: bool = False
    #: True when findings were filtered to git-changed files.
    changed_only: bool = False

    @property
    def ok(self) -> bool:
        """True when no active (non-baselined, non-suppressed) findings."""
        return not self.violations

    def to_dict(self) -> dict:
        """JSON-serialisable representation used by ``--format json``."""
        return {
            "ok": self.ok,
            "files_checked": self.files_checked,
            "counts": {
                "active": len(self.violations),
                "baselined": len(self.baselined),
                "suppressed": len(self.suppressed),
                "unused_baseline": len(self.unused_baseline),
            },
            "cache": {
                "file_hits": self.cache_hits,
                "project_hit": self.project_cache_hit,
            },
            "changed_only": self.changed_only,
            "violations": [v.to_dict() for v in self.violations],
            "baselined": [v.to_dict() for v in self.baselined],
            "suppressed": [v.to_dict() for v in self.suppressed],
            "unused_baseline": [e.to_dict() for e in self.unused_baseline],
        }


def iter_python_files(
    paths: Sequence[str | Path], config: LintConfig | None = None
) -> Iterator[Path]:
    """Yield ``.py`` files under ``paths`` (sorted, excludes applied)."""
    seen: set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            candidates: Iterable[Path] = sorted(path.rglob("*.py"))
        else:
            candidates = [path]
        for candidate in candidates:
            resolved = candidate.resolve()
            if resolved in seen:
                continue
            seen.add(resolved)
            if config is not None and config.is_excluded(
                _relpath(candidate, config.root)
            ):
                continue
            yield candidate


def changed_files(root: str | Path) -> set[str] | None:
    """Project-relative paths git considers changed, or None outside git.

    The set is the union of tracked modifications against ``HEAD`` and
    untracked (non-ignored) files — the files a fast local/CI
    ``--changed-only`` run should re-report.
    """
    root = Path(root)
    changed: set[str] = set()
    for args in (
        ("git", "diff", "--name-only", "HEAD"),
        ("git", "ls-files", "--others", "--exclude-standard"),
    ):
        try:
            proc = subprocess.run(
                args, cwd=root, capture_output=True, text=True, check=True
            )
        except (OSError, subprocess.CalledProcessError):
            return None
        changed.update(
            line.strip() for line in proc.stdout.splitlines() if line.strip()
        )
    return changed


def _relpath(path: Path, root: Path | None) -> str:
    """Project-relative POSIX path used for display and fingerprints."""
    resolved = path.resolve()
    if root is not None:
        root_resolved = Path(root).resolve()
        if resolved.is_relative_to(root_resolved):
            return resolved.relative_to(root_resolved).as_posix()
    return path.as_posix()


def _enabled_rules(config: LintConfig | None, rules: Sequence[Rule] | None) -> list[Rule]:
    """The rule set for a run: explicit ``rules``, else registry + config."""
    if rules is not None:
        return list(rules)
    selected = all_rules()
    if config is not None:
        selected = [r for r in selected if config.rule_enabled(r.rule_id)]
    return selected


def _split_rules(rules: Sequence[Rule]) -> tuple[list[Rule], list[ProjectRule]]:
    """Partition a rule set into (per-file rules, project rules)."""
    file_rules = [r for r in rules if not isinstance(r, ProjectRule)]
    project_rules = [r for r in rules if isinstance(r, ProjectRule)]
    return file_rules, project_rules


def _parse_failure(relpath: str, exc: Exception) -> Violation:
    """RPR000 finding for a file that cannot be read or parsed."""
    detail = getattr(exc, "msg", None) or str(exc)
    return Violation(
        rule_id=PARSE_ERROR_ID,
        path=relpath,
        line=getattr(exc, "lineno", None) or 1,
        col=0,
        message=f"file cannot be analysed: {detail}",
    )


def _check_file(ctx: ModuleContext, rules: Sequence[Rule]) -> list[Violation]:
    """Run per-file rules over one parsed module."""
    findings: list[Violation] = []
    for rule in rules:
        findings.extend(rule.check(ctx))
    return findings


def _file_task(payload: tuple[str, str, tuple[str, ...]]) -> list[dict]:
    """Worker task: parse one source text and run the named file rules.

    Module-level and dict-in/dict-out so it stays picklable for the
    ``process`` backend; pure by construction (RPR013 applies to the
    linter too).
    """
    relpath, source, rule_ids = payload
    try:
        ctx = ModuleContext(relpath, source)
    except SyntaxError as exc:
        return [_parse_failure(relpath, exc).to_dict()]
    rules = [get_rule(rule_id) for rule_id in rule_ids]
    return [v.to_dict() for v in _check_file(ctx, rules)]


def analyze_source(
    source: str,
    path: str = "<memory>",
    rules: Sequence[Rule] | None = None,
    respect_pragmas: bool = True,
) -> list[Violation]:
    """Run rules over in-memory source; the fixture-test entry point.

    Project rules run against a single-module index built from the one
    source, so RPR011–RPR015 fixtures work without touching disk.
    Returns the findings that survive pragma filtering (all findings when
    ``respect_pragmas`` is false).  Unparsable source yields a single
    ``RPR000`` finding rather than raising.
    """
    try:
        ctx = ModuleContext(path, source)
    except SyntaxError as exc:
        return [_parse_failure(path, exc)]
    file_rules, project_rules = _split_rules(_enabled_rules(None, rules))
    findings = _check_file(ctx, file_rules)
    if project_rules:
        index = ProjectIndex.build({path: ctx})
        for rule in project_rules:
            findings.extend(rule.check_project(index))
    findings.sort(key=lambda v: (v.line, v.col, v.rule_id))
    if not respect_pragmas:
        return findings
    return [v for v in findings if not ctx.is_disabled(v.rule_id, v.line)]


def analyze_paths(
    paths: Sequence[str | Path],
    config: LintConfig | None = None,
    rules: Sequence[Rule] | None = None,
    baseline: Baseline | None = None,
    workers: int | None = None,
    backend: str | None = None,
    cache_path: str | Path | None = None,
    changed_only: bool = False,
) -> AnalysisResult:
    """Analyze files/directories in two phases and triage the findings.

    ``config`` defaults to an empty configuration rooted at the nearest
    ``pyproject.toml`` (for stable relative paths); pass the result of
    :func:`repro.analysis.config.load_config` to honour pyproject settings.
    ``workers``/``backend`` follow the library-wide convention (``None``
    defers to ``REPRO_WORKERS``/``REPRO_BACKEND``) and are forwarded to
    the shared executor.  ``cache_path`` enables the on-disk cache;
    ``changed_only`` restricts *reported* findings to git-changed files
    (the whole tree is still indexed so cross-module rules stay sound).
    """
    if config is None:
        start = Path(paths[0]) if paths else Path.cwd()
        config = LintConfig(root=find_project_root(start))
    selected = _enabled_rules(config, rules)
    file_rules, project_rules = _split_rules(selected)
    cache = (
        AnalysisCache(cache_path, ruleset_digest(selected))
        if cache_path is not None
        else None
    )

    # -- phase 1: read, hash, per-file rules (cache-aware fan-out) ---------
    sources: dict[str, str] = {}
    hashes: dict[str, str] = {}
    findings_by_file: dict[str, list[Violation]] = {}
    files_checked = 0
    cache_hits = 0
    pending: list[tuple[str, str]] = []
    for file_path in iter_python_files(paths, config):
        files_checked += 1
        relpath = _relpath(file_path, config.root)
        try:
            source = file_path.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError) as exc:
            findings_by_file[relpath] = [_parse_failure(relpath, exc)]
            continue
        sources[relpath] = source
        sha = content_hash(source)
        hashes[relpath] = sha
        cached = cache.get_file(relpath, sha) if cache is not None else None
        if cached is not None:
            findings_by_file[relpath] = cached
            cache_hits += 1
        else:
            pending.append((relpath, sha))
    if pending:
        rule_ids = tuple(r.rule_id for r in file_rules)
        payloads = [
            (relpath, sources[relpath], rule_ids) for relpath, _ in pending
        ]
        results = parallel_map(
            _file_task, payloads, workers=workers, backend=backend
        )
        for (relpath, sha), dicts in zip(pending, results):
            found = [Violation.from_dict(d) for d in dicts]
            findings_by_file[relpath] = found
            if cache is not None:
                cache.put_file(relpath, sha, found)

    # -- phase 2: project index + cross-module rules -----------------------
    project_cache_hit = False
    if project_rules:
        digest = project_digest(hashes.items(), ruleset_digest(selected))
        cached_project = (
            cache.get_project(digest) if cache is not None else None
        )
        if cached_project is not None:
            project_findings = cached_project
            project_cache_hit = True
        else:
            contexts: dict[str, ModuleContext] = {}
            for relpath, source in sources.items():
                try:
                    contexts[relpath] = ModuleContext(relpath, source)
                except SyntaxError:
                    # The file phase already reported RPR000 for this
                    # file; the index simply skips it.
                    continue
            index = ProjectIndex.build(contexts)
            project_findings = []
            for rule in project_rules:
                project_findings.extend(rule.check_project(index))
            if cache is not None:
                cache.put_project(digest, project_findings)
        for violation in project_findings:
            findings_by_file.setdefault(violation.path, []).append(violation)

    if cache is not None:
        cache.save()

    # -- triage ------------------------------------------------------------
    changed: set[str] | None = None
    if changed_only:
        changed = changed_files(config.root)
    active: list[Violation] = []
    baselined: list[Violation] = []
    suppressed: list[Violation] = []
    for relpath in sorted(findings_by_file):
        if changed is not None and relpath not in changed:
            continue
        pragmas = (
            parse_pragmas(sources[relpath].splitlines())
            if relpath in sources
            else {}
        )
        for violation in sorted(
            findings_by_file[relpath], key=lambda v: (v.line, v.col, v.rule_id)
        ):
            ids = pragmas.get(violation.line)
            if ids is not None and ("ALL" in ids or violation.rule_id in ids):
                suppressed.append(violation)
            elif baseline is not None and baseline.matches(violation):
                baselined.append(violation)
            else:
                active.append(violation)
    unused = (
        baseline.unused_entries()
        if baseline is not None and changed is None
        else []
    )
    return AnalysisResult(
        violations=active,
        baselined=baselined,
        suppressed=suppressed,
        files_checked=files_checked,
        unused_baseline=unused,
        cache_hits=cache_hits,
        project_cache_hit=project_cache_hit,
        changed_only=changed is not None,
    )
