"""Phase-1 project index: modules, imports, symbols and the call graph.

:class:`ProjectIndex` is built once per analysis run from every parsed
module and gives the cross-module (``ProjectRule``) rules a resolved view
of the codebase: which module defines which function, what every import
alias points at, which calls resolve to which project functions, and a
lazy :class:`~repro.analysis.dataflow.FunctionSummary` per function.
Everything is stdlib ``ast``; nothing is imported or executed.

The index also hosts the **deprecation registry** consumed by RPR014 —
a table of symbols that still work at runtime but must not gain new call
sites — so retiring an API is one :func:`register_deprecation` line, not
a new rule.
"""

from __future__ import annotations

import ast
import dataclasses
from typing import Iterator, Mapping

from .context import ModuleContext
from .dataflow import FunctionSummary, dotted_name
from .registry import Rule
from .violations import Violation

__all__ = [
    "Deprecation",
    "FunctionInfo",
    "ModuleInfo",
    "ProjectIndex",
    "ProjectRule",
    "deprecations",
    "module_name_for_path",
    "register_deprecation",
]

#: Leading path components stripped when deriving module names.
_SRC_PREFIXES = ("src",)

#: Re-export chase depth limit (guards against import cycles).
_MAX_RESOLVE_DEPTH = 8


def module_name_for_path(relpath: str) -> str:
    """Dotted module name for a project-relative ``.py`` path.

    ``src/repro/core/stkdv.py`` -> ``repro.core.stkdv``;
    ``pkg/__init__.py`` -> ``pkg``.  Paths that are not importable-shaped
    (e.g. ``<memory>``) are sanitised into a single identifier so fixture
    sources still index cleanly.
    """
    parts = relpath.replace("\\", "/").split("/")
    if parts and parts[0] in _SRC_PREFIXES and len(parts) > 1:
        parts = parts[1:]
    if parts[-1].endswith(".py"):
        parts[-1] = parts[-1][: -len(".py")]
    if parts[-1] == "__init__":
        parts = parts[:-1]
    cleaned = [
        "".join(ch if (ch.isalnum() or ch == "_") else "_" for ch in part)
        for part in parts
        if part
    ]
    return ".".join(cleaned) if cleaned else "_module"


@dataclasses.dataclass
class FunctionInfo:
    """One function (or method) known to the index."""

    module: "ModuleInfo"
    qualname: str
    node: ast.FunctionDef | ast.AsyncFunctionDef
    _summary: FunctionSummary | None = dataclasses.field(
        default=None, repr=False, compare=False
    )

    @property
    def name(self) -> str:
        """Bare function name (last qualname component)."""
        return self.qualname.rsplit(".", 1)[-1]

    @property
    def dotted(self) -> str:
        """Fully qualified ``module.qualname`` path."""
        return f"{self.module.name}.{self.qualname}"

    @property
    def is_method(self) -> bool:
        """True for functions defined inside a class body."""
        return "." in self.qualname

    @property
    def positional(self) -> tuple[str, ...]:
        """Positionally addressable parameter names, in order."""
        args = self.node.args
        names = tuple(a.arg for a in (*args.posonlyargs, *args.args))
        if self.is_method and names and names[0] in ("self", "cls"):
            names = names[1:]
        return names

    @property
    def param_names(self) -> frozenset[str]:
        """All explicitly named parameters (excluding ``self``/``cls``)."""
        args = self.node.args
        return frozenset(self.positional) | {a.arg for a in args.kwonlyargs}

    @property
    def has_kwargs(self) -> bool:
        """True when the signature ends in ``**kwargs``."""
        return self.node.args.kwarg is not None

    @property
    def returns(self) -> str | None:
        """The return annotation as source text, if present."""
        if self.node.returns is None:
            return None
        return ast.unparse(self.node.returns)

    def accepts(self, param: str) -> bool:
        """True when ``param`` is an explicitly named parameter."""
        return param in self.param_names

    def positional_index(self, param: str) -> int | None:
        """Zero-based positional slot of ``param`` (None when kw-only)."""
        try:
            return self.positional.index(param)
        except ValueError:
            return None

    @property
    def summary(self) -> FunctionSummary:
        """Lazy def-use summary of the function body."""
        if self._summary is None:
            self._summary = FunctionSummary(
                self.node,
                aliases=self.module.import_aliases,
                module_roots=self.module.module_aliases,
            )
        return self._summary


class ModuleInfo:
    """Per-module slice of the index: imports, symbols, functions."""

    def __init__(self, name: str, ctx: ModuleContext) -> None:
        """Scan one parsed module's top level."""
        self.name = name
        self.ctx = ctx
        self.path = ctx.path
        self.is_package = ctx.path.replace("\\", "/").endswith("__init__.py")
        #: local name -> dotted import target (``np`` -> ``numpy``).
        self.import_aliases: dict[str, str] = {}
        #: names bound by plain ``import`` statements — modules by
        #: construction, so attribute calls on them are never mutations.
        self.module_aliases: set[str] = set()
        #: top-level def/class nodes by name.
        self.symbols: dict[str, ast.AST] = {}
        #: top-level simple assignments: name -> value expression.
        self.assignments: dict[str, ast.AST] = {}
        self.classes: dict[str, ast.ClassDef] = {}
        #: qualname -> FunctionInfo for top-level functions and methods.
        self.functions: dict[str, FunctionInfo] = {}
        self.exports: tuple[str, ...] | None = None
        self._scan()

    def _scan(self) -> None:
        for node in self.ctx.tree.body:
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".", 1)[0]
                    target = alias.name if alias.asname else alias.name.split(".", 1)[0]
                    self.import_aliases[local] = target
                    self.module_aliases.add(local)
            elif isinstance(node, ast.ImportFrom):
                base = self._resolve_import_base(node)
                if base is None:
                    continue
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    self.import_aliases[local] = (
                        f"{base}.{alias.name}" if base else alias.name
                    )
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self.symbols[node.name] = node
                self.functions[node.name] = FunctionInfo(self, node.name, node)
            elif isinstance(node, ast.ClassDef):
                self.symbols[node.name] = node
                self.classes[node.name] = node
                for item in node.body:
                    if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        qualname = f"{node.name}.{item.name}"
                        self.functions[qualname] = FunctionInfo(
                            self, qualname, item
                        )
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        self.symbols[target.id] = node
                        self.assignments[target.id] = node.value
                        if target.id == "__all__":
                            self.exports = _literal_strings(node.value)
            elif isinstance(node, ast.AnnAssign):
                if isinstance(node.target, ast.Name) and node.value is not None:
                    self.symbols[node.target.id] = node
                    self.assignments[node.target.id] = node.value

    def _resolve_import_base(self, node: ast.ImportFrom) -> str | None:
        """Absolute dotted base of a (possibly relative) from-import."""
        if node.level == 0:
            return node.module or ""
        parts = self.name.split(".")
        if not self.is_package:
            parts = parts[:-1]
        drop = node.level - 1
        if drop > len(parts):
            return None
        base_parts = parts[: len(parts) - drop] if drop else parts
        if node.module:
            base_parts = [*base_parts, node.module]
        return ".".join(base_parts)

    def resolve_local(self, name: str) -> str | None:
        """Dotted target of a module-level name (import alias or own def)."""
        if name in self.import_aliases:
            return self.import_aliases[name]
        if name in self.symbols:
            return f"{self.name}.{name}"
        return None


def _literal_strings(node: ast.AST) -> tuple[str, ...] | None:
    """Extract a tuple of strings from a literal list/tuple, else None."""
    if not isinstance(node, (ast.List, ast.Tuple)):
        return None
    out: list[str] = []
    for elt in node.elts:
        if isinstance(elt, ast.Constant) and isinstance(elt.value, str):
            out.append(elt.value)
        else:
            return None
    return tuple(out)


class ProjectIndex:
    """Resolved project-wide view consumed by the ``ProjectRule`` set."""

    def __init__(self, modules: Mapping[str, ModuleInfo]) -> None:
        """Index ``modules`` by dotted name (use :meth:`build` normally)."""
        self.modules: dict[str, ModuleInfo] = dict(modules)
        self._by_path = {m.ctx.path: m for m in self.modules.values()}

    @classmethod
    def build(cls, contexts: Mapping[str, ModuleContext]) -> "ProjectIndex":
        """Build the index from ``{relpath: ModuleContext}``."""
        modules: dict[str, ModuleInfo] = {}
        for relpath in sorted(contexts):
            name = module_name_for_path(relpath)
            modules[name] = ModuleInfo(name, contexts[relpath])
        return cls(modules)

    def module_for_path(self, path: str) -> ModuleInfo | None:
        """The module whose context path equals ``path``, if indexed."""
        return self._by_path.get(path)

    def iter_functions(self) -> Iterator[FunctionInfo]:
        """Every function in every module, in deterministic order."""
        for name in sorted(self.modules):
            module = self.modules[name]
            for qualname in sorted(module.functions):
                yield module.functions[qualname]

    # -- name resolution ----------------------------------------------------

    def resolve(self, dotted: str, _depth: int = 0) -> object | None:
        """Resolve an absolute dotted path to what the project defines.

        Returns a :class:`FunctionInfo`, :class:`ast.ClassDef`,
        :class:`ModuleInfo` or ``None`` (external / unknown).  Re-exports
        (a module importing a symbol that another module defines) are
        chased up to a fixed depth so ``repro.parallel_map`` resolves even
        when only re-exported from ``repro/__init__``.
        """
        if _depth > _MAX_RESOLVE_DEPTH:
            return None
        if dotted in self.modules:
            return self.modules[dotted]
        parts = dotted.split(".")
        for cut in range(len(parts) - 1, 0, -1):
            module_name = ".".join(parts[:cut])
            module = self.modules.get(module_name)
            if module is None:
                continue
            remainder = parts[cut:]
            return self._resolve_in_module(module, remainder, _depth)
        return None

    def _resolve_in_module(
        self, module: ModuleInfo, remainder: list[str], depth: int
    ) -> object | None:
        """Resolve a symbol path inside one module, chasing re-exports."""
        head = remainder[0]
        if head in module.import_aliases:
            target = module.import_aliases[head]
            return self.resolve(
                ".".join([target, *remainder[1:]]), _depth=depth + 1
            )
        qualname = ".".join(remainder)
        if qualname in module.functions:
            return module.functions[qualname]
        if len(remainder) == 1 and head in module.classes:
            return module.classes[head]
        if len(remainder) == 2 and remainder[0] in module.classes:
            return module.functions.get(qualname)
        return None

    def dotted_for(self, module: ModuleInfo, expr: ast.AST) -> str | None:
        """Absolute dotted path of a name/attribute chain in ``module``."""
        parts: list[str] = []
        node = expr
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        root = module.resolve_local(node.id)
        if root is None:
            return None
        return ".".join([root, *reversed(parts)])

    def resolve_call(self, module: ModuleInfo, call: ast.Call) -> FunctionInfo | None:
        """The project function a call expression dispatches to, if known.

        Calls through ``self.``/local variables/external libraries return
        ``None``; a call that resolves to a class returns the class's
        ``__init__`` when the project defines one.
        """
        dotted = self.dotted_for(module, call.func)
        if dotted is None:
            return None
        target = self.resolve(dotted)
        if isinstance(target, FunctionInfo):
            return target
        if isinstance(target, ast.ClassDef):
            owner = self._class_owner(target)
            if owner is not None:
                return owner.functions.get(f"{target.name}.__init__")
        return None

    def _class_owner(self, cls: ast.ClassDef) -> ModuleInfo | None:
        """The module that defines ``cls``."""
        for module in self.modules.values():
            if module.classes.get(cls.name) is cls:
                return module
        return None

    # -- import graph -------------------------------------------------------

    def import_graph(self) -> dict[str, set[str]]:
        """Project-internal import edges: module -> imported modules."""
        graph: dict[str, set[str]] = {name: set() for name in self.modules}
        for name, module in self.modules.items():
            for target in module.import_aliases.values():
                owner = self._owning_module(target)
                if owner is not None and owner != name:
                    graph[name].add(owner)
        return graph

    def _owning_module(self, dotted: str) -> str | None:
        """Longest indexed module-name prefix of ``dotted``."""
        parts = dotted.split(".")
        for cut in range(len(parts), 0, -1):
            candidate = ".".join(parts[:cut])
            if candidate in self.modules:
                return candidate
        return None

    def import_cycles(self) -> list[list[str]]:
        """Strongly connected components of size > 1 in the import graph.

        Returned cycles are sorted (both internally and across cycles) so
        the output is deterministic for tests and reports.
        """
        graph = self.import_graph()
        index_counter = [0]
        stack: list[str] = []
        on_stack: set[str] = set()
        indices: dict[str, int] = {}
        lowlink: dict[str, int] = {}
        cycles: list[list[str]] = []

        def strongconnect(v: str) -> None:
            indices[v] = lowlink[v] = index_counter[0]
            index_counter[0] += 1
            stack.append(v)
            on_stack.add(v)
            for w in sorted(graph.get(v, ())):
                if w not in indices:
                    strongconnect(w)
                    lowlink[v] = min(lowlink[v], lowlink[w])
                elif w in on_stack:
                    lowlink[v] = min(lowlink[v], indices[w])
            if lowlink[v] == indices[v]:
                component: list[str] = []
                while True:
                    w = stack.pop()
                    on_stack.discard(w)
                    component.append(w)
                    if w == v:
                        break
                if len(component) > 1:
                    cycles.append(sorted(component))

        for v in sorted(graph):
            if v not in indices:
                strongconnect(v)
        return sorted(cycles)


class ProjectRule(Rule):
    """Base class for cross-module rules run against a ProjectIndex.

    Subclasses implement :meth:`check_project`; the per-file
    :meth:`check` hook is a no-op so a ProjectRule can live in the same
    registry as the file rules.
    """

    def check(self, ctx: ModuleContext) -> Iterator[Violation]:
        """Project rules produce nothing during the per-file phase."""
        return iter(())

    def check_project(self, index: ProjectIndex) -> Iterator[Violation]:
        """Yield findings computed against the whole project index."""
        raise NotImplementedError

    def project_violation(
        self, module: ModuleInfo, node: ast.AST, message: str
    ) -> Violation:
        """Build a Violation anchored inside ``module``."""
        return Violation(
            rule_id=self.rule_id,
            path=module.ctx.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message,
            symbol=module.ctx.qualname(node),
        )


@dataclasses.dataclass(frozen=True)
class Deprecation:
    """One entry in the deprecation table consumed by RPR014.

    ``kind`` is ``"attribute"`` (``owner`` is a class name, ``attr`` the
    deprecated attribute) or ``"function"`` (``qualname`` is the absolute
    dotted path of a deprecated callable).
    """

    kind: str
    replacement: str
    since: str
    qualname: str = ""
    owner: str = ""
    attr: str = ""


_DEPRECATIONS: dict[str, Deprecation] = {}


def register_deprecation(entry: Deprecation) -> Deprecation:
    """Add one entry to the deprecation table (idempotent by key)."""
    key = entry.qualname or f"{entry.owner}.{entry.attr}"
    _DEPRECATIONS[key] = entry
    return entry


def deprecations() -> tuple[Deprecation, ...]:
    """The registered deprecation table, in registration order."""
    return tuple(_DEPRECATIONS.values())


register_deprecation(
    Deprecation(
        kind="attribute",
        owner="DensityGrid",
        attr="stats",
        replacement="DensityGrid.diagnostics.records['refinement']",
        since="PR 5 (observability subsystem)",
    )
)

# The per-module scatter loops superseded by repro.core.scatter.  The
# functions themselves were deleted; registering them keeps RPR014
# flagging any straggler that reintroduces or re-imports one.
register_deprecation(
    Deprecation(
        kind="function",
        qualname="repro.core.kdv.streaming.MultiSurfaceAccumulator._scatter",
        replacement="repro.core.scatter.PatchScatter.scatter",
        since="PR 7 (scatter core)",
    )
)
register_deprecation(
    Deprecation(
        kind="function",
        qualname="repro.core.nkdv._scatter_event",
        replacement="repro.core.scatter.scatter_line",
        since="PR 7 (scatter core)",
    )
)
register_deprecation(
    Deprecation(
        kind="function",
        qualname="repro.core.nkdv._scatter_event_split",
        replacement="repro.core.scatter.scatter_line",
        since="PR 7 (scatter core)",
    )
)

# Recompute-per-refresh sliding-window bookkeeping around a raw
# KDVAccumulator is superseded by the streaming engine, which owns the
# window, the drift policy and the dirty-tile ledger.  The accumulator
# itself remains the engine's substrate (reached via relative imports,
# which RPR014 does not flag); new *call sites* should go through
# repro.stream.
register_deprecation(
    Deprecation(
        kind="function",
        qualname="repro.core.kdv.streaming.KDVAccumulator",
        replacement="repro.stream.StreamingKDV",
        since="PR 9 (streaming engine)",
    )
)

# The positional per-method KDV entry points (kde_gridcut(problem, tail,
# dtype) and friends) are superseded by the unified keyword surface of
# kde_grid(method=...) / KDVRequest — one signature the planner, the
# request layer and the server all share.  Registered under their
# *package-surface* qualnames: the dispatcher and the ST sweeps reach
# the implementations through their defining modules (the sanctioned
# internal path), while any new code importing them from the public
# ``repro.core.kdv`` surface is flagged toward kde_grid.
register_deprecation(
    Deprecation(
        kind="function",
        qualname="repro.core.kdv.kde_gridcut",
        replacement="repro.core.kdv.kde_grid(method='gridcut')",
        since="PR 10 (analytics service layer)",
    )
)
register_deprecation(
    Deprecation(
        kind="function",
        qualname="repro.core.kdv.kde_naive",
        replacement="repro.core.kdv.kde_grid(method='naive')",
        since="PR 10 (analytics service layer)",
    )
)
register_deprecation(
    Deprecation(
        kind="function",
        qualname="repro.core.kdv.kde_parallel",
        replacement="repro.core.kdv.kde_grid(method='parallel')",
        since="PR 10 (analytics service layer)",
    )
)
register_deprecation(
    Deprecation(
        kind="function",
        qualname="repro.core.kdv.kde_sweep",
        replacement="repro.core.kdv.kde_grid(method='sweep')",
        since="PR 10 (analytics service layer)",
    )
)
