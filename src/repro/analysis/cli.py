"""reprolint command line: ``python -m repro.analysis [paths] [options]``.

Exit codes: 0 — clean (possibly via baseline/pragmas), 1 — active
violations found, 2 — configuration or usage error.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from ..errors import AnalysisError
from .baseline import Baseline, load_baseline, write_baseline
from .config import DEFAULT_BASELINE_NAME, LintConfig, find_project_root, load_config
from .engine import analyze_paths
from .registry import all_rules, get_rule
from .reporting import render_json, render_text

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Argument parser for the reprolint CLI."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description=(
            "reprolint: AST-based static analysis enforcing the repro "
            "library's numerical-safety and API contracts."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to analyse (default: src/repro, else .)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        help=(
            "baseline JSON of accepted violations (default: the "
            "[tool.reprolint] setting, else .reprolint-baseline.json when "
            "it exists)"
        ),
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="accept all current active violations into the baseline file",
    )
    parser.add_argument(
        "--select",
        metavar="RULES",
        help="comma-separated rule ids to run exclusively (e.g. RPR003,RPR006)",
    )
    parser.add_argument(
        "--disable",
        metavar="RULES",
        help="comma-separated rule ids to skip",
    )
    parser.add_argument(
        "--no-config",
        action="store_true",
        help="ignore [tool.reprolint] in pyproject.toml",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print every registered rule and exit",
    )
    parser.add_argument(
        "--verbose",
        action="store_true",
        help="itemise baselined and pragma-suppressed findings in text output",
    )
    return parser


def _default_paths() -> list[str]:
    """``src/repro`` when it exists (repo layout), else the current dir."""
    return ["src/repro"] if Path("src/repro").is_dir() else ["."]


def _resolve_rules(args: argparse.Namespace):
    """Apply --select/--disable to the registry; None means registry+config."""
    if not args.select and not args.disable:
        return None
    if args.select:
        selected = [get_rule(r.strip()) for r in args.select.split(",") if r.strip()]
    else:
        selected = all_rules()
    if args.disable:
        dropped = {get_rule(r.strip()).rule_id for r in args.disable.split(",") if r.strip()}
        selected = [r for r in selected if r.rule_id not in dropped]
    return selected


def _resolve_baseline(
    args: argparse.Namespace, config: LintConfig
) -> tuple[Baseline | None, Path]:
    """The baseline to apply (if any) and the path a write would target."""
    if args.baseline:
        path = Path(args.baseline)
        return (load_baseline(path) if path.exists() else None), path
    if config.baseline:
        path = config.root / config.baseline
        return (load_baseline(path) if path.exists() else None), path
    path = config.root / DEFAULT_BASELINE_NAME
    return (load_baseline(path) if path.exists() else None), path


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.rule_id}  {rule.name:26s} {rule.summary}")
        return 0
    paths = args.paths or _default_paths()
    try:
        root = find_project_root(paths[0] if Path(paths[0]).exists() else Path.cwd())
        config = LintConfig(root=root) if args.no_config else load_config(root)
        rules = _resolve_rules(args)
        baseline, baseline_path = _resolve_baseline(args, config)
        result = analyze_paths(paths, config=config, rules=rules, baseline=baseline)
        if args.write_baseline:
            accepted = result.violations + result.baselined
            write_baseline(baseline_path, accepted, existing=baseline)
            print(
                f"wrote {baseline_path} accepting {len(accepted)} violation(s); "
                f"edit the justifications before committing"
            )
            return 0
    except AnalysisError as exc:
        print(f"reprolint: error: {exc}", file=sys.stderr)
        return 2
    report = render_json(result) if args.format == "json" else render_text(
        result, verbose=args.verbose
    )
    print(report)
    return 0 if result.ok else 1
