"""reprolint command line: ``python -m repro.analysis [paths] [options]``.

Exit codes: 0 — clean (possibly via baseline/pragmas), 1 — active
violations found (or, with ``--prune-baseline``, stale entries pruned),
2 — configuration or usage error.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from ..errors import AnalysisError
from .baseline import Baseline, load_baseline, save_entries, write_baseline
from .cache import DEFAULT_CACHE_NAME
from .config import DEFAULT_BASELINE_NAME, LintConfig, find_project_root, load_config
from .engine import analyze_paths
from .registry import all_rules, get_rule
from .reporting import render_json, render_sarif, render_text

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Argument parser for the reprolint CLI."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description=(
            "reprolint: two-phase AST static analysis enforcing the repro "
            "library's determinism, parallelism and observability contracts."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to analyse (default: src/repro, else .)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="report format (default: text; sarif targets code scanning)",
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        help=(
            "baseline JSON of accepted violations (default: the "
            "[tool.reprolint] setting, else .reprolint-baseline.json when "
            "it exists)"
        ),
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="accept all current active violations into the baseline file",
    )
    parser.add_argument(
        "--prune-baseline",
        action="store_true",
        help=(
            "drop baseline entries whose violation no longer fires; exits "
            "non-zero when stale entries had to be pruned (CI fails until "
            "the shrunken baseline is committed)"
        ),
    )
    parser.add_argument(
        "--select",
        metavar="RULES",
        help="comma-separated rule ids to run exclusively (e.g. RPR003,RPR006)",
    )
    parser.add_argument(
        "--disable",
        metavar="RULES",
        help="comma-separated rule ids to skip",
    )
    parser.add_argument(
        "--changed-only",
        action="store_true",
        help=(
            "report findings only for git-changed files (diff vs HEAD plus "
            "untracked); the full tree is still indexed so cross-module "
            "rules stay sound"
        ),
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the on-disk analysis cache for this run",
    )
    parser.add_argument(
        "--cache",
        metavar="FILE",
        help=f"cache file location (default: <root>/{DEFAULT_CACHE_NAME})",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help=(
            "worker count for the file-analysis fan-out through "
            "repro.parallel (default: REPRO_WORKERS, else 1)"
        ),
    )
    parser.add_argument(
        "--backend",
        choices=("serial", "thread", "process"),
        default=None,
        help="execution backend for the fan-out (default: REPRO_BACKEND)",
    )
    parser.add_argument(
        "--no-config",
        action="store_true",
        help="ignore [tool.reprolint] in pyproject.toml",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print every registered rule and exit",
    )
    parser.add_argument(
        "--verbose",
        action="store_true",
        help="itemise baselined and pragma-suppressed findings in text output",
    )
    return parser


def _default_paths() -> list[str]:
    """``src/repro`` when it exists (repo layout), else the current dir."""
    return ["src/repro"] if Path("src/repro").is_dir() else ["."]


def _resolve_rules(args: argparse.Namespace):
    """Apply --select/--disable to the registry; None means registry+config."""
    if not args.select and not args.disable:
        return None
    if args.select:
        selected = [get_rule(r.strip()) for r in args.select.split(",") if r.strip()]
    else:
        selected = all_rules()
    if args.disable:
        dropped = {get_rule(r.strip()).rule_id for r in args.disable.split(",") if r.strip()}
        selected = [r for r in selected if r.rule_id not in dropped]
    return selected


def _resolve_baseline(
    args: argparse.Namespace, config: LintConfig
) -> tuple[Baseline | None, Path]:
    """The baseline to apply (if any) and the path a write would target."""
    if args.baseline:
        path = Path(args.baseline)
        return (load_baseline(path) if path.exists() else None), path
    if config.baseline:
        path = config.root / config.baseline
        return (load_baseline(path) if path.exists() else None), path
    path = config.root / DEFAULT_BASELINE_NAME
    return (load_baseline(path) if path.exists() else None), path


def _resolve_cache(args: argparse.Namespace, config: LintConfig) -> Path | None:
    """The cache file to use, or None when caching is off."""
    if args.no_cache:
        return None
    if args.cache:
        return Path(args.cache)
    return config.root / DEFAULT_CACHE_NAME


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.rule_id}  {rule.name:26s} {rule.summary}")
        return 0
    if args.prune_baseline and args.changed_only:
        print(
            "reprolint: error: --prune-baseline needs a full run; drop "
            "--changed-only",
            file=sys.stderr,
        )
        return 2
    paths = args.paths or _default_paths()
    try:
        root = find_project_root(paths[0] if Path(paths[0]).exists() else Path.cwd())
        config = LintConfig(root=root) if args.no_config else load_config(root)
        rules = _resolve_rules(args)
        baseline, baseline_path = _resolve_baseline(args, config)
        result = analyze_paths(
            paths,
            config=config,
            rules=rules,
            baseline=baseline,
            workers=args.workers,
            backend=args.backend,
            cache_path=_resolve_cache(args, config),
            changed_only=args.changed_only,
        )
        if args.write_baseline:
            accepted = result.violations + result.baselined
            write_baseline(baseline_path, accepted, existing=baseline)
            print(
                f"wrote {baseline_path} accepting {len(accepted)} violation(s); "
                f"edit the justifications before committing"
            )
            return 0
        if args.prune_baseline:
            return _prune_baseline(result, baseline, baseline_path)
    except AnalysisError as exc:
        print(f"reprolint: error: {exc}", file=sys.stderr)
        return 2
    if args.format == "json":
        report = render_json(result)
    elif args.format == "sarif":
        report = render_sarif(result)
    else:
        report = render_text(result, verbose=args.verbose)
    print(report)
    return 0 if result.ok else 1


def _prune_baseline(result, baseline: Baseline | None, baseline_path: Path) -> int:
    """Drop stale baseline entries; non-zero exit when any were pruned."""
    if baseline is None:
        print("no baseline file; nothing to prune")
        return 0 if result.ok else 1
    stale = {entry.fingerprint() for entry in result.unused_baseline}
    if not stale:
        print(
            f"baseline {baseline_path} is minimal "
            f"({len(baseline.entries)} entries, none stale)"
        )
        return 0 if result.ok else 1
    kept = [e for e in baseline.entries if e.fingerprint() not in stale]
    save_entries(baseline_path, kept)
    for entry in result.unused_baseline:
        print(
            f"pruned stale baseline entry {entry.rule}:{entry.path}"
            f":{entry.symbol}"
        )
    print(
        f"pruned {len(stale)} stale entr{'y' if len(stale) == 1 else 'ies'} "
        f"from {baseline_path} ({len(kept)} remain); commit the shrunken "
        f"baseline"
    )
    return 1
