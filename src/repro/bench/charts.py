"""Terminal line charts for curve outputs (K-function plots and friends).

The CLI and examples run where no plotting stack exists, so curves are
rendered as character rasters: each series is sampled onto a text grid
with a distinct glyph, axes carry min/max labels, and overlapping series
show the later glyph.  Deliberately simple — these charts accompany the
numeric tables, they do not replace them.
"""

from __future__ import annotations

import numpy as np

from ..errors import DataError, ParameterError

__all__ = ["ascii_chart"]

_GLYPHS = "ox+*#@%&"


def ascii_chart(
    xs,
    series: dict[str, np.ndarray],
    width: int = 64,
    height: int = 16,
    title: str | None = None,
) -> str:
    """Render named y-series over shared x-values as a text chart.

    Parameters
    ----------
    xs:
        Shared, increasing x-coordinates.
    series:
        Mapping of label -> y-values (all the same length as ``xs``).
        NaNs are skipped.
    width, height:
        Character raster size (excluding axis labels).
    title:
        Optional heading line.
    """
    xs = np.asarray(xs, dtype=np.float64).ravel()
    if xs.size < 2:
        raise DataError("a chart needs at least two x-values")
    if np.any(np.diff(xs) < 0):
        raise DataError("x-values must be non-decreasing")
    if not series:
        raise DataError("series must not be empty")
    if len(series) > len(_GLYPHS):
        raise ParameterError(f"at most {len(_GLYPHS)} series supported")
    width = int(width)
    height = int(height)
    if width < 8 or height < 4:
        raise ParameterError("chart needs width >= 8 and height >= 4")

    arrays = {}
    for name, ys in series.items():
        ys = np.asarray(ys, dtype=np.float64).ravel()
        if ys.shape != xs.shape:
            raise DataError(f"series {name!r} length mismatch")
        arrays[name] = ys

    stacked = np.concatenate([ys[np.isfinite(ys)] for ys in arrays.values()])
    if stacked.size == 0:
        raise DataError("all series are NaN")
    y_lo, y_hi = float(stacked.min()), float(stacked.max())
    if y_hi == y_lo:
        y_hi = y_lo + 1.0
    x_lo, x_hi = float(xs[0]), float(xs[-1])
    if x_hi == x_lo:
        x_hi = x_lo + 1.0

    canvas = [[" "] * width for _ in range(height)]
    for glyph, (name, ys) in zip(_GLYPHS, arrays.items()):
        for x, y in zip(xs, ys):
            if not np.isfinite(y):
                continue
            col = int(round((x - x_lo) / (x_hi - x_lo) * (width - 1)))
            row = int(round((y - y_lo) / (y_hi - y_lo) * (height - 1)))
            canvas[height - 1 - row][col] = glyph

    lines: list[str] = []
    if title:
        lines.append(title)
    label_hi = f"{y_hi:.4g}"
    label_lo = f"{y_lo:.4g}"
    pad = max(len(label_hi), len(label_lo))
    for r, row in enumerate(canvas):
        if r == 0:
            prefix = label_hi.rjust(pad)
        elif r == height - 1:
            prefix = label_lo.rjust(pad)
        else:
            prefix = " " * pad
        lines.append(f"{prefix} |{''.join(row)}")
    lines.append(" " * pad + " +" + "-" * width)
    lines.append(
        " " * pad + f"  {x_lo:<.4g}" + " " * max(width - 16, 1) + f"{x_hi:>.4g}"
    )
    legend = "  ".join(
        f"{glyph}={name}" for glyph, name in zip(_GLYPHS, arrays)
    )
    lines.append(" " * pad + "  " + legend)
    return "\n".join(lines)
