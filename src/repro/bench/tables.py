"""Plain-text table formatting for benchmark output.

The benchmark harness prints the paper's tables and figure series as
aligned text so the "rows the paper reports" are visible in the pytest
output and in ``bench_output.txt``.
"""

from __future__ import annotations

from typing import Sequence

from ..errors import ParameterError

__all__ = ["format_table", "print_table"]


def _render_cell(value) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def format_table(rows: Sequence[Sequence], headers: Sequence[str], title: str | None = None) -> str:
    """Align rows under headers; floats get 4 significant digits."""
    headers = [str(h) for h in headers]
    body = [[_render_cell(c) for c in row] for row in rows]
    for i, row in enumerate(body):
        if len(row) != len(headers):
            raise ParameterError(
                f"row {i} has {len(row)} cells but there are {len(headers)} headers"
            )
    widths = [
        max(len(headers[c]), *(len(row[c]) for row in body)) if body else len(headers[c])
        for c in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in body:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def print_table(rows: Sequence[Sequence], headers: Sequence[str], title: str | None = None) -> None:
    """Print a formatted table with a leading blank line (pytest-friendly)."""
    print()
    print(format_table(rows, headers, title=title))
