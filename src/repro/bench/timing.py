"""Wall-clock timing helpers for the benchmark harness."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable

from ..errors import ParameterError

__all__ = ["Timer", "measure"]


@dataclass
class Timer:
    """Context-manager stopwatch: ``with Timer() as t: ...; t.elapsed``."""

    elapsed: float = 0.0
    _start: float = field(default=0.0, repr=False)

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self.elapsed = time.perf_counter() - self._start


def measure(fn: Callable[[], object], repeat: int = 3) -> tuple[float, object]:
    """Best-of-``repeat`` wall time of ``fn`` plus its (last) return value."""
    repeat = int(repeat)
    if repeat < 1:
        raise ParameterError(f"repeat must be >= 1, got {repeat}")
    best = float("inf")
    result: object = None
    for _ in range(repeat):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result
