"""Benchmark harness utilities: timers and paper-style table printing."""

from .charts import ascii_chart
from .tables import format_table, print_table
from .timing import Timer, measure

__all__ = ["Timer", "ascii_chart", "format_table", "measure", "print_table"]
