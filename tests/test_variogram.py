"""Tests for empirical variograms and model fitting."""

import numpy as np
import pytest

from repro.core.interpolation import (
    VARIOGRAM_MODELS,
    VariogramModel,
    empirical_variogram,
    fit_variogram,
)
from repro.errors import ConvergenceError, DataError, ParameterError


def gaussian_field(n, length_scale, seed):
    """Samples of a smooth random field with known correlation length."""
    rng = np.random.default_rng(seed)
    pts = rng.uniform(0, 10, size=(n, 2))
    # Superpose random cosine waves: an isotropic smooth field.
    vals = np.zeros(n)
    for _ in range(40):
        k = rng.normal(scale=1.0 / length_scale, size=2)
        phase = rng.uniform(0, 2 * np.pi)
        vals += np.cos(pts @ k + phase)
    return pts, vals / np.sqrt(40.0)


class TestEmpiricalVariogram:
    def test_shapes_and_positivity(self):
        pts, vals = gaussian_field(150, 2.0, 81)
        lags, gamma, counts = empirical_variogram(pts, vals, n_bins=10)
        assert lags.shape == gamma.shape == counts.shape
        assert (gamma >= 0).all()
        assert (counts > 0).all()

    def test_gamma_grows_with_distance_for_smooth_field(self):
        pts, vals = gaussian_field(300, 3.0, 82)
        lags, gamma, _ = empirical_variogram(pts, vals, n_bins=8, max_dist=3.0)
        # Short-lag semivariance must be well below long-lag semivariance.
        assert gamma[0] < 0.5 * gamma[-1]

    def test_white_noise_flat(self):
        rng = np.random.default_rng(83)
        pts = rng.uniform(0, 10, size=(400, 2))
        vals = rng.normal(size=400)
        lags, gamma, _ = empirical_variogram(pts, vals, n_bins=6)
        # All bins near the noise variance (1.0): ratio bounded.
        assert gamma.max() / gamma.min() < 2.0

    def test_pair_subsampling_consistent(self):
        pts, vals = gaussian_field(200, 2.0, 84)
        full = empirical_variogram(pts, vals, n_bins=6)[1]
        sub = empirical_variogram(pts, vals, n_bins=6, max_pairs=5000, seed=1)[1]
        np.testing.assert_allclose(sub, full, rtol=0.5)

    def test_requires_two_points(self):
        with pytest.raises(DataError):
            empirical_variogram([[0.0, 0.0]], [1.0])

    def test_max_dist_too_small(self):
        pts, vals = gaussian_field(50, 2.0, 85)
        with pytest.raises(ParameterError):
            empirical_variogram(pts, vals, max_dist=-1.0)


class TestVariogramModel:
    def test_all_models_monotone_bounded(self):
        for name in VARIOGRAM_MODELS:
            m = VariogramModel(name, nugget=0.1, psill=1.0, range_=3.0)
            h = np.linspace(0.001, 20, 200)
            g = m(h)
            assert (np.diff(g) >= -1e-12).all()
            assert g.max() <= m.sill + 1e-9

    def test_zero_at_origin(self):
        m = VariogramModel("spherical", nugget=0.2, psill=1.0, range_=2.0)
        assert m(0.0) == 0.0

    def test_covariance_complement(self):
        m = VariogramModel("exponential", nugget=0.1, psill=0.9, range_=2.0)
        h = np.linspace(0, 10, 50)
        np.testing.assert_allclose(m.covariance(h) + m(h), m.sill, atol=1e-12)

    def test_invalid_params(self):
        with pytest.raises(ParameterError):
            VariogramModel("spherical", nugget=-0.1, psill=1.0, range_=1.0)
        with pytest.raises(ParameterError):
            VariogramModel("spherical", nugget=0.0, psill=1.0, range_=0.0)
        with pytest.raises(ParameterError):
            VariogramModel("wavelet", nugget=0.0, psill=1.0, range_=1.0)


class TestFitting:
    @pytest.mark.parametrize("model", sorted(VARIOGRAM_MODELS))
    def test_recovers_synthetic_model(self, model):
        truth = VariogramModel(model, nugget=0.15, psill=1.0, range_=3.0)
        lags = np.linspace(0.2, 6.0, 20)
        gamma = truth(lags)
        fit = fit_variogram(lags, gamma, model=model)
        np.testing.assert_allclose(fit(lags), gamma, atol=0.05)

    def test_weighted_fit_prefers_heavy_bins(self):
        truth = VariogramModel("spherical", nugget=0.0, psill=1.0, range_=3.0)
        lags = np.linspace(0.2, 6.0, 15)
        gamma = truth(lags).copy()
        gamma[-1] += 5.0  # a corrupted, low-count bin
        counts = np.full(15, 1000.0)
        counts[-1] = 1.0
        fit = fit_variogram(lags, gamma, model="spherical", counts=counts)
        assert abs(fit.sill - 1.0) < 0.2

    def test_fit_on_field_data_reasonable(self):
        pts, vals = gaussian_field(300, 2.5, 86)
        lags, gamma, counts = empirical_variogram(pts, vals, n_bins=12)
        fit = fit_variogram(lags, gamma, counts=counts)
        assert 0.0 <= fit.nugget < fit.sill
        assert fit.range_ > 0.1

    def test_too_few_bins(self):
        with pytest.raises(DataError):
            fit_variogram([1.0, 2.0], [0.1, 0.2])

    def test_unknown_model(self):
        with pytest.raises(ParameterError, match="unknown"):
            fit_variogram([1.0, 2.0, 3.0], [0.1, 0.2, 0.3], model="cubic")

    def test_degenerate_zero_values(self):
        with pytest.raises(ConvergenceError):
            fit_variogram([1.0, 2.0, 3.0], [0.0, 0.0, 0.0])
