"""The shared kernel-scatter core vs the legacy per-point loops.

The float64 contract is *bit-identity*: ``PatchScatter.scatter`` must
reproduce the historical per-point scatter loop (copied verbatim below
from the pre-refactor ``MultiSurfaceAccumulator._scatter``) to the last
bit, for every kernel, weighting mode, and boundary case — that is what
lets the worker-invariance and shared-STKDV equivalence contracts survive
the refactor unchanged.  The float32 contract is the published bounded
error ``|err| <= eps_rel * max + eps_abs`` with
``eps_abs = table.max_abs_error * sum|w|`` and ``eps_rel = 1e-5``.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.kdv import KDVAccumulator, KDVProblem, kde_dualtree, kde_grid, kde_naive
from repro.core.kdv.base import effective_radius
from repro.core.kernels import KERNELS, build_kernel_table, get_kernel
from repro.core.scatter import (
    SCATTER_DTYPES,
    PatchScatter,
    resolve_dtype,
    scatter_line,
)
from repro.core.stkdv import stkdv
from repro.errors import ParameterError
from repro.geometry import BoundingBox

BBOX = BoundingBox(0.0, 0.0, 10.0, 8.0)


def legacy_scatter(values, points, weights, bbox, size, bandwidth, kernel,
                   tail=1e-12):
    """The pre-refactor per-point scatter loop, verbatim.

    This is the deleted ``MultiSurfaceAccumulator._scatter`` (the
    ``kde_gridcut`` loop was the single-surface special case of the same
    code); it is the reference the float64 mode must match bit-for-bit.
    """
    nx, ny = size
    n_surfaces = values.shape[0]
    xs, ys = bbox.pixel_centers(nx, ny)
    dx, dy = bbox.pixel_size(nx, ny)
    x0, y0 = xs[0], ys[0]
    radius = effective_radius(kernel, bandwidth, tail)
    r2 = radius * radius
    b = bandwidth
    truncated = radius < kernel.support_radius(b)
    for row in range(points.shape[0]):
        px, py = points[row]
        ix_lo = max(int(np.ceil((px - radius - x0) / dx)), 0)
        ix_hi = min(int(np.floor((px + radius - x0) / dx)), nx - 1)
        iy_lo = max(int(np.ceil((py - radius - y0) / dy)), 0)
        iy_hi = min(int(np.floor((py + radius - y0) / dy)), ny - 1)
        if ix_lo > ix_hi or iy_lo > iy_hi:
            continue
        local_x = xs[ix_lo:ix_hi + 1] - px
        local_y = ys[iy_lo:iy_hi + 1] - py
        d2 = local_x[:, None] ** 2 + local_y[None, :] ** 2
        patch = kernel.evaluate_sq(d2, b)
        if truncated:
            patch = np.where(d2 <= r2, patch, 0.0)
        w_row = weights[row]
        if n_surfaces == 1:
            values[0, ix_lo:ix_hi + 1, iy_lo:iy_hi + 1] += w_row[0] * patch
        else:
            for s in range(n_surfaces):
                values[s, ix_lo:ix_hi + 1, iy_lo:iy_hi + 1] += (
                    w_row[s] * patch
                )
    return values


def random_points(rng, n, spread=1.4):
    """Points over the bbox plus an off-grid margin (patches may clip or miss)."""
    lo_x = BBOX.xmin - spread * (BBOX.xmax - BBOX.xmin) * 0.25
    hi_x = BBOX.xmax + spread * (BBOX.xmax - BBOX.xmin) * 0.25
    lo_y = BBOX.ymin - spread * (BBOX.ymax - BBOX.ymin) * 0.25
    hi_y = BBOX.ymax + spread * (BBOX.ymax - BBOX.ymin) * 0.25
    return np.column_stack([
        rng.uniform(lo_x, hi_x, n), rng.uniform(lo_y, hi_y, n)
    ])


class TestFloat64BitIdentity:
    @pytest.mark.parametrize("kernel_name", sorted(KERNELS))
    def test_every_kernel_matches_legacy_loop(self, kernel_name):
        rng = np.random.default_rng(3)
        kernel = get_kernel(kernel_name)
        size = (37, 29)
        pts = random_points(rng, 120)
        w = rng.uniform(-2.0, 2.0, (120, 1))
        ref = legacy_scatter(
            np.zeros((1, *size)), pts, w, BBOX, size, 1.3, kernel
        )
        sc = PatchScatter(BBOX, size, 1.3, kernel=kernel)
        got = np.zeros((1, *size))
        sc.scatter(got, pts, w)
        assert np.array_equal(got, ref)

    @pytest.mark.parametrize("n_surfaces", [1, 3])
    def test_multi_surface_banks(self, n_surfaces):
        rng = np.random.default_rng(11)
        size = (24, 31)
        pts = random_points(rng, 90)
        w = rng.uniform(-1.5, 1.5, (90, n_surfaces))
        ref = legacy_scatter(
            np.zeros((n_surfaces, *size)), pts, w, BBOX, size, 0.9,
            get_kernel("quartic"),
        )
        got = np.zeros((n_surfaces, *size))
        PatchScatter(BBOX, size, 0.9).scatter(got, pts, w)
        assert np.array_equal(got, ref)

    def test_unweighted_equals_unit_weights(self):
        rng = np.random.default_rng(5)
        size = (16, 16)
        pts = random_points(rng, 60)
        sc = PatchScatter(BBOX, size, 1.1)
        unweighted = np.zeros((1, *size))
        sc.scatter(unweighted, pts)
        ones = np.zeros((1, *size))
        sc.scatter(ones, pts, np.ones(60))
        assert np.array_equal(unweighted, ones)

    def test_all_points_off_grid(self):
        pts = np.array([[1e6, 1e6], [-1e6, 0.0]])
        sc = PatchScatter(BBOX, (8, 8), 0.5)
        values = np.zeros((1, 8, 8))
        n, pix = sc.scatter(values, pts)
        assert n == 0 and pix == 0
        assert not values.any()

    def test_empty_point_set(self):
        sc = PatchScatter(BBOX, (8, 8), 0.5)
        values = np.zeros((1, 8, 8))
        assert sc.scatter(values, np.empty((0, 2))) == (0, 0)

    def test_single_pixel_grid(self):
        pts = np.array([[5.0, 4.0], [0.01, 0.01]])
        ref = legacy_scatter(
            np.zeros((1, 1, 1)), pts, np.ones((2, 1)), BBOX, (1, 1), 6.0,
            get_kernel("gaussian"),
        )
        got = np.zeros((1, 1, 1))
        PatchScatter(BBOX, (1, 1), 6.0, kernel="gaussian").scatter(
            got, pts, np.ones((2, 1))
        )
        assert np.array_equal(got, ref)

    @given(
        seed=st.integers(min_value=0, max_value=2**32 - 1),
        kernel_name=st.sampled_from(sorted(KERNELS)),
        bandwidth=st.floats(min_value=0.05, max_value=6.0),
        n=st.integers(min_value=0, max_value=80),
        nx=st.integers(min_value=1, max_value=40),
        ny=st.integers(min_value=1, max_value=40),
    )
    @settings(max_examples=120, deadline=None)
    def test_property_bit_identity(self, seed, kernel_name, bandwidth, n,
                                   nx, ny):
        rng = np.random.default_rng(seed)
        kernel = get_kernel(kernel_name)
        pts = random_points(rng, n)
        w = rng.uniform(-3.0, 3.0, (n, 1))
        ref = legacy_scatter(
            np.zeros((1, nx, ny)), pts, w, BBOX, (nx, ny), bandwidth, kernel
        )
        got = np.zeros((1, nx, ny))
        PatchScatter(BBOX, (nx, ny), bandwidth, kernel=kernel).scatter(
            got, pts, w
        )
        assert np.array_equal(got, ref)

    def test_kde_grid_dispatches_through_core(self):
        rng = np.random.default_rng(2)
        pts = random_points(rng, 200, spread=0.0)
        grid = kde_grid(pts, BBOX, (32, 24), 1.0, method="grid")
        ref = legacy_scatter(
            np.zeros((1, 32, 24)), pts, np.ones((pts.shape[0], 1)),
            BBOX, (32, 24), 1.0, get_kernel("quartic"),
        )
        assert np.array_equal(grid.values, ref[0])

    def test_accumulator_add_remove_round_trip(self):
        rng = np.random.default_rng(9)
        first = random_points(rng, 40, spread=0.0)
        second = random_points(rng, 25, spread=0.0)

        # From an empty surface, add+remove of the same batch is exact:
        # 0 + p is bitwise p, and p - p is bitwise 0 for every patch pixel.
        empty = KDVAccumulator(BBOX, (20, 20), 1.2)
        empty.add(second).remove(second)
        assert np.array_equal(empty.surface(0), np.zeros((20, 20)))

        # With prior mass the round trip only rounds in the last ulp
        # ((a + p) - p need not equal a in floats) — same behaviour as the
        # historical per-point loop, so a tight allclose is the contract.
        acc = KDVAccumulator(BBOX, (20, 20), 1.2)
        acc.add(first).add(second).remove(second)
        ref = legacy_scatter(
            np.zeros((1, 20, 20)), first, np.ones((40, 1)), BBOX, (20, 20),
            1.2, get_kernel("quartic"),
        )
        np.testing.assert_allclose(acc.surface(0), ref[0], rtol=1e-12,
                                   atol=1e-12 * float(ref.max()))


class TestFloat32BoundedError:
    @pytest.mark.parametrize("kernel_name", sorted(KERNELS))
    def test_within_published_bound(self, kernel_name):
        rng = np.random.default_rng(17)
        size = (48, 40)
        n = 400
        pts = random_points(rng, n, spread=0.5)
        w = rng.uniform(0.1, 2.0, (n, 1))
        exact = np.zeros((1, *size))
        PatchScatter(BBOX, size, 1.5, kernel=kernel_name).scatter(
            exact, pts, w
        )
        sc32 = PatchScatter(BBOX, size, 1.5, kernel=kernel_name,
                            dtype="float32")
        got = np.zeros((1, *size), dtype=np.float32)
        sc32.scatter(got, pts, w)
        eps_abs = sc32.table.max_abs_error * np.abs(w).sum()
        eps_rel = 1e-5
        bound = eps_rel * np.abs(exact).max() + eps_abs
        assert np.abs(got.astype(np.float64) - exact).max() <= bound

    def test_same_pixels_covered_as_float64(self):
        # Truncation decisions run in float64 in both modes, so the
        # nonzero masks agree even at the support boundary.
        rng = np.random.default_rng(23)
        pts = random_points(rng, 150, spread=0.3)
        size = (40, 40)
        exact = np.zeros((1, *size))
        PatchScatter(BBOX, size, 0.8, kernel="uniform").scatter(exact, pts)
        got = np.zeros((1, *size), dtype=np.float32)
        PatchScatter(BBOX, size, 0.8, kernel="uniform",
                     dtype="float32").scatter(got, pts)
        assert np.array_equal(exact[0] != 0.0, got[0] != 0.0)

    def test_counters_and_result_dtype_via_kde_grid(self):
        rng = np.random.default_rng(4)
        pts = random_points(rng, 100, spread=0.0)
        grid32 = kde_grid(pts, BBOX, (32, 24), 1.0, method="grid",
                          dtype="float32")
        grid64 = kde_grid(pts, BBOX, (32, 24), 1.0, method="grid")
        assert grid32.values.dtype == np.float32
        assert np.abs(
            grid32.values.astype(np.float64) - grid64.values
        ).max() <= 1e-5 * grid64.values.max() + 1e-3

    def test_table_certified_bound_holds_on_probe(self):
        for name in sorted(KERNELS):
            kernel = get_kernel(name)
            b = 1.7
            cutoff = effective_radius(kernel, b)
            table = build_kernel_table(kernel, b, cutoff=cutoff)
            d = np.linspace(0.0, cutoff, 4001)
            exact = kernel.evaluate_sq(d * d, b)
            approx = table.lookup_sq_clipped((d * d).astype(np.float32))
            err = np.abs(approx.astype(np.float64) - exact).max()
            assert err <= table.max_abs_error, name


class TestScatterLine:
    def test_matches_legacy_expression(self):
        rng = np.random.default_rng(7)
        kernel = get_kernel("quartic")
        d = rng.uniform(0.0, 3.0, 200)
        cutoff, b, w = 1.5, 1.2, 0.7
        ref = np.zeros(200)
        near = d <= cutoff
        ref[near] += w * kernel.evaluate(d[near], b)
        got = np.zeros(200)
        hits = scatter_line(got, d, kernel, b, cutoff, weight=w)
        assert hits == int(near.sum())
        assert np.array_equal(got, ref)

    def test_split_factors_match_legacy_expression(self):
        rng = np.random.default_rng(8)
        kernel = get_kernel("epanechnikov")
        d = rng.uniform(0.0, 3.0, 150)
        f = rng.choice([0.0, 0.25, 0.5, 1.0], 150)
        cutoff, b, w = 2.0, 1.4, 1.3
        ref = np.zeros(150)
        near = (d <= cutoff) & (f > 0.0)
        ref[near] += w * f[near] * kernel.evaluate(d[near], b)
        got = np.zeros(150)
        hits = scatter_line(got, d, kernel, b, cutoff, weight=w, factors=f)
        assert hits == int(near.sum())
        assert np.array_equal(got, ref)

    def test_no_hits_returns_zero(self):
        got = np.zeros(10)
        assert scatter_line(got, np.full(10, 5.0), get_kernel("quartic"),
                            1.0, 1.0) == 0
        assert not got.any()


class TestNaiveBoundaryRegression:
    def test_expanded_form_boundary_pixel_bug(self):
        # Hand-mined case: pixel (4, 4) of this grid sits at true squared
        # distance 0.999999999999992 from the point — inside the uniform
        # kernel's support — but the old expanded form |q|^2+|p|^2-2*q.p
        # computed 1.000000000007276 and dropped the pixel entirely.
        bbox = BoundingBox(100.0, 100.0, 108.0, 108.0)
        pts = np.array([[103.70139633448224, 105.101857279944]])
        xs, ys = bbox.pixel_centers(8, 8)
        d2_true = (xs[4] - pts[0, 0]) ** 2 + (ys[4] - pts[0, 1]) ** 2
        d2_expanded = max(
            (xs[4] ** 2 + ys[4] ** 2)
            + (pts[0, 0] ** 2 + pts[0, 1] ** 2)
            - 2.0 * (xs[4] * pts[0, 0] + ys[4] * pts[0, 1]),
            0.0,
        )
        assert d2_true <= 1.0 < d2_expanded  # the case still bites
        kernel = get_kernel("uniform")
        problem = KDVProblem(pts, bbox, (8, 8), 1.0, kernel)
        grid = kde_naive(problem)
        expected = kernel.evaluate_sq(np.array([d2_true]), 1.0)[0]
        assert grid.values[4, 4] == expected
        assert expected > 0.0

    @pytest.mark.parametrize("method", ["naive", "parallel"])
    def test_boundary_matches_gridcut(self, method):
        # The scatter backend always used difference-form distances; after
        # the fix the brute-force backends agree with it bit-for-bit on
        # finite-support kernels.
        bbox = BoundingBox(100.0, 100.0, 108.0, 108.0)
        rng = np.random.default_rng(31)
        pts = 100.0 + rng.uniform(0.0, 8.0, (60, 2))
        ref = kde_grid(pts, bbox, (16, 12), 1.0, kernel="uniform",
                       method="grid")
        got = kde_grid(pts, bbox, (16, 12), 1.0, kernel="uniform",
                       method=method)
        assert np.array_equal(got.values, ref.values)


class TestDualTreeThroughCore:
    def test_workers_bit_identical_through_new_core(self):
        rng = np.random.default_rng(12)
        pts = random_points(rng, 3000, spread=0.0)
        problem = KDVProblem(pts, BBOX, (96, 72), 0.7, "gaussian")
        serial = kde_dualtree(problem, tau=1e-3, workers=1, backend="serial")
        threaded = kde_dualtree(problem, tau=1e-3, workers=2, backend="thread")
        assert np.array_equal(serial.values, threaded.values)

    def test_tau_zero_matches_naive_through_core(self):
        rng = np.random.default_rng(13)
        pts = random_points(rng, 500, spread=0.0)
        problem = KDVProblem(pts, BBOX, (48, 36), 0.9, "gaussian")
        exact = kde_dualtree(problem, tau=0.0).values
        ref = kde_naive(problem).values
        assert np.abs(exact - ref).max() <= 1e-12 * ref.max()

    def test_weighted_leaf_batch_unit_weights_exact(self):
        rng = np.random.default_rng(14)
        pts = random_points(rng, 800, spread=0.0)
        p1 = KDVProblem(pts, BBOX, (64, 48), 0.8, "quartic")
        p2 = KDVProblem(pts, BBOX, (64, 48), 0.8, "quartic",
                        weights=np.ones(800))
        a = kde_dualtree(p1, tau=0.0).values
        b = kde_dualtree(p2, tau=0.0).values
        assert np.array_equal(a, b)


class TestDtypePlumbing:
    def test_resolve_dtype_accepts_documented_spellings(self):
        assert resolve_dtype(None) == np.dtype(np.float64)
        for name in SCATTER_DTYPES:
            assert resolve_dtype(name) in (
                np.dtype(np.float32), np.dtype(np.float64)
            )

    @pytest.mark.parametrize("bad", ["float16", "int32", object()])
    def test_resolve_dtype_rejects_others(self, bad):
        with pytest.raises(ParameterError):
            resolve_dtype(bad)

    def test_kde_grid_rejects_dtype_on_other_methods(self):
        pts = np.array([[5.0, 4.0]])
        with pytest.raises(ParameterError, match="dtype"):
            kde_grid(pts, BBOX, (8, 8), 1.0, method="naive", dtype="float32")

    def test_stkdv_window_float32(self):
        rng = np.random.default_rng(19)
        pts = random_points(rng, 200, spread=0.0)
        times = rng.uniform(0.0, 10.0, 200)
        frames = np.linspace(0.0, 10.0, 4)
        r64 = stkdv(pts, times, BBOX, (24, 20), frames, 1.0, 2.0,
                    method="window", spatial_method="grid")
        r32 = stkdv(pts, times, BBOX, (24, 20), frames, 1.0, 2.0,
                    method="window", dtype="float32")
        assert r32.values.dtype == np.float32
        scale = max(r64.values.max(), 1.0)
        assert np.abs(
            r32.values.astype(np.float64) - r64.values
        ).max() <= 1e-4 * scale

    def test_stkdv_shared_float32(self):
        rng = np.random.default_rng(20)
        pts = random_points(rng, 150, spread=0.0)
        times = rng.uniform(0.0, 10.0, 150)
        frames = np.linspace(0.0, 10.0, 5)
        r64 = stkdv(pts, times, BBOX, (20, 16), frames, 1.0, 2.5,
                    method="shared")
        r32 = stkdv(pts, times, BBOX, (20, 16), frames, 1.0, 2.5,
                    method="shared", dtype="float32")
        assert r32.values.dtype == np.float32
        scale = max(r64.values.max(), 1.0)
        assert np.abs(
            r32.values.astype(np.float64) - r64.values
        ).max() <= 1e-3 * scale

    def test_stkdv_rejects_float32_naive_and_sweep(self):
        pts = np.array([[5.0, 4.0]])
        times = np.array([0.0])
        with pytest.raises(ParameterError, match="float32"):
            stkdv(pts, times, BBOX, (8, 8), [0.0], 1.0, 1.0,
                  method="naive", dtype="float32")
        with pytest.raises(ParameterError, match="float32"):
            stkdv(pts, times, BBOX, (8, 8), [0.0], 1.0, 1.0,
                  method="window", spatial_method="sweep", dtype="float32")


class TestPatchScatterValidation:
    def test_rejects_bad_points_shape(self):
        sc = PatchScatter(BBOX, (8, 8), 1.0)
        with pytest.raises(ParameterError):
            sc.scatter(np.zeros((1, 8, 8)), np.zeros((3, 3)))

    def test_rejects_mismatched_values(self):
        sc = PatchScatter(BBOX, (8, 8), 1.0)
        with pytest.raises(ParameterError):
            sc.scatter(np.zeros((1, 4, 4)), np.zeros((1, 2)))

    def test_rejects_mismatched_weights(self):
        sc = PatchScatter(BBOX, (8, 8), 1.0)
        with pytest.raises(ParameterError):
            sc.scatter(np.zeros((2, 8, 8)), np.zeros((3, 2)),
                       np.ones((3, 5)))

    def test_truncated_hoisted_into_init(self):
        assert PatchScatter(BBOX, (8, 8), 1.0, kernel="gaussian").truncated
        assert not PatchScatter(BBOX, (8, 8), 1.0, kernel="quartic").truncated
