"""Unit tests for the shared validation helpers."""

import numpy as np
import pytest

from repro._validation import (
    as_points,
    as_timestamps,
    as_values,
    check_in_range,
    check_non_negative,
    check_positive,
    check_probability,
    check_thresholds,
    chunk_ranges,
    resolve_rng,
)
from repro.errors import DataError, ParameterError


class TestAsPoints:
    def test_list_of_pairs(self):
        arr = as_points([[0, 1], [2, 3]])
        assert arr.shape == (2, 2)
        assert arr.dtype == np.float64

    def test_single_pair_promoted(self):
        arr = as_points([1.0, 2.0])
        assert arr.shape == (1, 2)

    def test_contiguous_output(self):
        base = np.arange(20, dtype=np.float64).reshape(10, 2)[::2]
        arr = as_points(base)
        assert arr.flags["C_CONTIGUOUS"]

    def test_rejects_wrong_width(self):
        with pytest.raises(DataError, match="\\(n, 2\\)"):
            as_points([[1, 2, 3]])

    def test_rejects_empty_by_default(self):
        with pytest.raises(DataError, match="at least one"):
            as_points(np.empty((0, 2)))

    def test_allows_empty_when_asked(self):
        arr = as_points(np.empty((0, 2)), allow_empty=True)
        assert arr.shape == (0, 2)

    def test_rejects_nan(self):
        with pytest.raises(DataError, match="non-finite"):
            as_points([[np.nan, 0.0]])

    def test_rejects_inf(self):
        with pytest.raises(DataError, match="non-finite"):
            as_points([[np.inf, 0.0]])


class TestAsValues:
    def test_length_checked(self):
        with pytest.raises(DataError, match="length 3"):
            as_values([1.0, 2.0], 3)

    def test_flattens(self):
        arr = as_values(np.array([[1.0], [2.0]]), 2)
        assert arr.shape == (2,)

    def test_rejects_nan(self):
        with pytest.raises(DataError, match="non-finite"):
            as_values([1.0, np.nan], 2)

    def test_timestamps_same_contract(self):
        arr = as_timestamps([1, 2, 3], 3)
        assert arr.dtype == np.float64


class TestScalarChecks:
    def test_positive_accepts(self):
        assert check_positive(2, "x") == 2.0

    @pytest.mark.parametrize("bad", [0.0, -1.0, np.nan, np.inf])
    def test_positive_rejects(self, bad):
        with pytest.raises(ParameterError):
            check_positive(bad, "x")

    def test_non_negative_accepts_zero(self):
        assert check_non_negative(0.0, "x") == 0.0

    def test_non_negative_rejects(self):
        with pytest.raises(ParameterError):
            check_non_negative(-0.1, "x")

    def test_in_range(self):
        assert check_in_range(0.5, "x", 0.0, 1.0) == 0.5
        with pytest.raises(ParameterError):
            check_in_range(1.5, "x", 0.0, 1.0)

    @pytest.mark.parametrize("bad", [0.0, 1.0, -0.5, 2.0])
    def test_probability_rejects_boundaries(self, bad):
        with pytest.raises(ParameterError):
            check_probability(bad, "p")


class TestThresholds:
    def test_sorted_accepted(self):
        ts = check_thresholds([1.0, 2.0, 2.0, 3.0])
        assert ts.shape == (4,)

    def test_unsorted_rejected(self):
        with pytest.raises(ParameterError, match="sorted"):
            check_thresholds([2.0, 1.0])

    def test_negative_rejected(self):
        with pytest.raises(ParameterError, match="non-negative"):
            check_thresholds([-1.0, 2.0])

    def test_empty_rejected(self):
        with pytest.raises(ParameterError, match="at least one"):
            check_thresholds([])

    def test_nan_rejected(self):
        with pytest.raises(ParameterError, match="non-finite"):
            check_thresholds([np.nan])


class TestRngAndChunks:
    def test_resolve_rng_passthrough(self):
        gen = np.random.default_rng(5)
        assert resolve_rng(gen) is gen

    def test_resolve_rng_seed_reproducible(self):
        a = resolve_rng(7).uniform()
        b = resolve_rng(7).uniform()
        assert a == b

    def test_chunk_ranges_cover(self):
        spans = chunk_ranges(10, 3)
        assert spans == [(0, 3), (3, 6), (6, 9), (9, 10)]

    def test_chunk_ranges_bad_chunk(self):
        with pytest.raises(ParameterError):
            chunk_ranges(10, 0)
