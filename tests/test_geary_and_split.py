"""Tests for Geary's C and the equal-split NKDV variant."""

import numpy as np
import pytest

from repro.core.autocorrelation import gearys_c, knn_weights, lattice_weights
from repro.core.nkdv import nkdv
from repro.data import network_accidents
from repro.errors import DataError, ParameterError
from repro.network import (
    NetworkPosition,
    RoadNetwork,
    node_distances_with_split,
    radial_network,
)


class TestGearysC:
    def test_gradient_below_one(self, random_points):
        w = knn_weights(random_points, 6)
        res = gearys_c(random_points[:, 0], w)
        assert res.statistic < 1.0
        assert res.z_score < -3.0
        assert res.positive_autocorrelation

    def test_checkerboard_above_one(self):
        w = lattice_weights(8, 8, "rook")
        values = np.fromfunction(lambda i, j: (i + j) % 2, (8, 8)).ravel()
        res = gearys_c(values, w)
        assert res.statistic > 1.5
        assert res.z_score > 3.0

    def test_random_values_near_one(self, random_points, rng):
        w = knn_weights(random_points, 6)
        res = gearys_c(rng.normal(size=random_points.shape[0]), w)
        assert abs(res.z_score) < 3.0
        assert res.expected == 1.0

    def test_agrees_with_moran_direction(self, random_points):
        """Geary and Moran must agree on the sign of autocorrelation."""
        from repro.core.autocorrelation import morans_i

        w = knn_weights(random_points, 6)
        z = random_points[:, 1]
        moran = morans_i(z, w)
        geary = gearys_c(z, w)
        assert (moran.statistic > moran.expected) == (geary.statistic < 1.0)

    def test_permutation_p(self, random_points):
        w = knn_weights(random_points, 6)
        res = gearys_c(random_points[:, 0], w, permutations=99, seed=1)
        assert res.p_permutation == pytest.approx(0.01)

    def test_constant_rejected(self, small_points):
        w = knn_weights(small_points, 4)
        with pytest.raises(DataError, match="constant"):
            gearys_c(np.ones(small_points.shape[0]), w)

    def test_scale_invariance(self, random_points):
        w = knn_weights(random_points, 6)
        z = random_points[:, 0]
        a = gearys_c(z, w).statistic
        b = gearys_c(z * 10.0 - 3.0, w).statistic
        assert a == pytest.approx(b)


class TestSplitDijkstra:
    def test_path_graph_factors_one(self):
        net = RoadNetwork([[0, 0], [1, 0], [2, 0]], [(0, 1), (1, 2)])
        dist, factor = node_distances_with_split(net, 0)
        np.testing.assert_allclose(dist, [0.0, 1.0, 2.0])
        np.testing.assert_allclose(factor, [1.0, 1.0, 1.0])

    def test_star_splits_at_center(self):
        # Star: centre 0 with 4 leaves. Path leaf->centre->leaf splits by 3.
        coords = [[0, 0], [1, 0], [0, 1], [-1, 0], [0, -1]]
        net = RoadNetwork(coords, [(0, 1), (0, 2), (0, 3), (0, 4)])
        dist, factor = node_distances_with_split(net, 1)
        assert factor[0] == pytest.approx(1.0)  # arriving at the centre
        for leaf in (2, 3, 4):
            assert factor[leaf] == pytest.approx(1.0 / 3.0)

    def test_unreachable_zero_factor(self):
        net = RoadNetwork(
            [[0, 0], [1, 0], [5, 5], [6, 5]], [(0, 1), (2, 3)]
        )
        dist, factor = node_distances_with_split(net, 0)
        assert np.isinf(dist[2]) and factor[2] == 0.0

    def test_cutoff_respected(self):
        net = RoadNetwork([[0, 0], [1, 0], [2, 0]], [(0, 1), (1, 2)])
        dist, factor = node_distances_with_split(net, 0, cutoff=1.5)
        assert np.isinf(dist[2])


class TestEqualSplitNKDV:
    def test_path_network_equals_unsplit(self):
        net = RoadNetwork(
            [[0, 0], [1, 0], [2, 0], [3, 0]], [(0, 1), (1, 2), (2, 3)]
        )
        events = [NetworkPosition(0, 0.5), NetworkPosition(2, 0.2)]
        plain = nkdv(net, events, 0.25, 1.5, split="none", method="naive")
        split = nkdv(net, events, 0.25, 1.5, split="equal", method="naive")
        np.testing.assert_allclose(plain.densities, split.densities, atol=1e-12)

    def test_split_never_exceeds_unsplit(self, road_network, road_events):
        plain = nkdv(road_network, road_events, 0.25, 1.5, split="none")
        split = nkdv(road_network, road_events, 0.25, 1.5, split="equal")
        assert (split.densities <= plain.densities + 1e-9).all()

    def test_methods_agree(self, road_network, road_events):
        a = nkdv(road_network, road_events, 0.25, 1.5, split="equal", method="naive")
        b = nkdv(road_network, road_events, 0.25, 1.5, split="equal", method="shared")
        np.testing.assert_allclose(a.densities, b.densities, atol=1e-9)

    def test_star_center_splits_mass(self):
        """On a radial network mass beyond the hub is divided by its degree."""
        net = radial_network(1, 4, ring_spacing=2.0)  # hub 0 + 4 ring nodes
        # Event on the first spoke near the hub.
        event = [NetworkPosition(0, 1.8)]  # spoke edges come first
        result = nkdv(net, event, 0.25, 3.0, kernel="uniform", split="equal")
        plain = nkdv(net, event, 0.25, 3.0, kernel="uniform", split="none")
        # Lixels on other spokes have split densities strictly below plain.
        other_spoke = result.lixels.lixels_of_edge(1)
        assert (
            result.densities[other_spoke].max()
            < plain.densities[other_spoke].max()
        )

    def test_unknown_split(self, road_network, road_events):
        with pytest.raises(ParameterError, match="split"):
            nkdv(road_network, road_events, 0.25, 1.5, split="harmonic")
