"""Tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.data import read_points_csv, write_csv


@pytest.fixture()
def events_csv(tmp_path, clustered_points):
    path = tmp_path / "events.csv"
    write_csv(path, clustered_points)
    return path


@pytest.fixture()
def st_events_csv(tmp_path, clustered_points, rng):
    path = tmp_path / "st_events.csv"
    times = rng.uniform(0, 100, size=clustered_points.shape[0])
    write_csv(path, clustered_points, times=times)
    return path


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_size_parsing(self):
        args = build_parser().parse_args(
            ["kdv", "x.csv", "--bandwidth", "2", "--size", "64x48"]
        )
        assert args.size == (64, 48)

    def test_bad_size_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["kdv", "x.csv", "--bandwidth", "2", "--size", "64by48"]
            )

    @pytest.mark.parametrize("size", ["0x0", "-3x5", "12x0"])
    def test_non_positive_size_rejected(self, size, capsys):
        with pytest.raises(SystemExit) as exc:
            build_parser().parse_args(
                ["kdv", "x.csv", "--bandwidth", "2", f"--size={size}"]
            )
        assert exc.value.code == 2
        assert "positive" in capsys.readouterr().err

    @pytest.mark.parametrize("frames", ["0", "-3", "2.5", "lots"])
    def test_bad_frame_count_rejected(self, frames, capsys):
        with pytest.raises(SystemExit) as exc:
            build_parser().parse_args(
                ["stkdv", "x.csv", "--bandwidth-space", "2",
                 "--bandwidth-time", "25", "--frames", frames]
            )
        assert exc.value.code == 2
        assert "positive integer" in capsys.readouterr().err


class TestGenerate:
    @pytest.mark.parametrize("dataset,has_time", [
        ("covid", True), ("crime", False), ("taxi", True),
    ])
    def test_generates_csv(self, tmp_path, dataset, has_time, capsys):
        out = tmp_path / f"{dataset}.csv"
        code = main(
            ["generate", dataset, "--n", "300", "--seed", "1", "--out", str(out)]
        )
        assert code == 0
        pts, times = read_points_csv(out)
        assert pts.shape[0] == 300
        assert (times is not None) == has_time
        assert "wrote 300 events" in capsys.readouterr().out


class TestKdvCommand:
    def test_renders_heatmap(self, events_csv, tmp_path, capsys):
        out = tmp_path / "map.ppm"
        code = main(
            ["kdv", str(events_csv), "--bandwidth", "1.5",
             "--size", "48x32", "--out", str(out)]
        )
        assert code == 0
        assert out.exists()
        assert "peak density" in capsys.readouterr().out

    def test_ascii_without_out(self, events_csv, capsys):
        code = main(
            ["kdv", str(events_csv), "--bandwidth", "1.5", "--size", "32x24"]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "@" in output or "#" in output  # some dense glyph appears

    def test_missing_file(self, tmp_path, capsys):
        code = main(
            ["kdv", str(tmp_path / "nope.csv"), "--bandwidth", "1.0"]
        )
        assert code == 1

    def test_bad_kernel_reported(self, events_csv, capsys):
        code = main(
            ["kdv", str(events_csv), "--bandwidth", "1.0", "--kernel", "box"]
        )
        assert code == 1
        assert "error" in capsys.readouterr().err

    @pytest.mark.parametrize("tau", ["-1", "-0.5", "nan", "lots"])
    def test_negative_or_bad_tau_rejected(self, tau, capsys):
        with pytest.raises(SystemExit) as exc:
            build_parser().parse_args(
                ["kdv", "x.csv", "--bandwidth", "2", "--method", "dualtree",
                 f"--tau={tau}"]
            )
        assert exc.value.code == 2
        assert "non-negative" in capsys.readouterr().err

    def test_tau_with_dualtree_runs(self, events_csv, capsys):
        code = main(
            ["kdv", str(events_csv), "--bandwidth", "1.5", "--size", "32x24",
             "--method", "dualtree", "--tau", "0.5", "--workers", "2"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "peak density" in out
        assert "refinement:" in out  # the RefinementStats line

    def test_tau_zero_accepted(self, events_csv, capsys):
        code = main(
            ["kdv", str(events_csv), "--bandwidth", "1.5", "--size", "16x12",
             "--method", "dualtree", "--tau", "0"]
        )
        assert code == 0

    def test_tau_with_other_method_is_clear_error(self, events_csv, capsys):
        code = main(
            ["kdv", str(events_csv), "--bandwidth", "1.5",
             "--method", "grid", "--tau", "0.5"]
        )
        assert code == 1
        assert "tau" in capsys.readouterr().err

    def test_auto_workers_dtype_combination(self, events_csv, capsys):
        """PR 8 regression: the two sequential auto-rewrites in the old
        _cmd_kdv conflicted, so --workers + --dtype with the default auto
        method exited 1.  The planner now owns resolution."""
        code = main(
            ["kdv", str(events_csv), "--bandwidth", "1", "--size", "32x24",
             "--workers", "2", "--dtype", "float32", "--ascii"]
        )
        captured = capsys.readouterr()
        assert code == 0, captured.err
        assert "auto plan:" in captured.out
        assert "peak density" in captured.out

    def test_auto_prints_plan_rationale(self, events_csv, capsys):
        code = main(
            ["kdv", str(events_csv), "--bandwidth", "1.5", "--size", "32x24",
             "--ascii"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "auto plan:" in out and "predicted" in out

    def test_auto_tau_resolves_to_dualtree(self, events_csv, capsys):
        code = main(
            ["kdv", str(events_csv), "--bandwidth", "1.5", "--size", "32x24",
             "--tau", "0.5", "--ascii"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "auto plan: dualtree" in out
        assert "refinement:" in out

    def test_explicit_method_prints_no_plan(self, events_csv, capsys):
        code = main(
            ["kdv", str(events_csv), "--bandwidth", "1.5", "--size", "16x12",
             "--method", "grid", "--ascii"]
        )
        assert code == 0
        assert "auto plan:" not in capsys.readouterr().out

    def test_backend_flag_dualtree(self, events_csv, capsys):
        code = main(
            ["kdv", str(events_csv), "--bandwidth", "1.5", "--size", "16x12",
             "--method", "dualtree", "--backend", "serial"]
        )
        assert code == 0

    def test_omitted_workers_defers_to_env_default(self, events_csv, capsys,
                                                   monkeypatch):
        """No --workers must consult REPRO_WORKERS, as --help promises."""
        monkeypatch.setenv("REPRO_WORKERS", "not-a-number")
        code = main(
            ["kdv", str(events_csv), "--bandwidth", "1.5",
             "--size", "32x24", "--method", "parallel"]
        )
        assert code == 1
        assert "REPRO_WORKERS" in capsys.readouterr().err


class TestKfunctionCommand:
    def test_detects_clustering(self, events_csv, capsys):
        code = main(
            ["kfunction", str(events_csv), "--thresholds", "6",
             "--simulations", "19", "--seed", "2"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "clustered" in out
        assert "suggested KDV bandwidth" in out

    def test_custom_max_threshold(self, events_csv, capsys):
        code = main(
            ["kfunction", str(events_csv), "--thresholds", "4",
             "--max-threshold", "2.0", "--simulations", "5"]
        )
        assert code == 0
        lines = [l for l in capsys.readouterr().out.splitlines() if l.strip()]
        assert any(l.strip().startswith("2") for l in lines)


class TestHotspotsCommand:
    def test_full_pipeline(self, events_csv, tmp_path, capsys):
        out = tmp_path / "hot.ppm"
        code = main(
            ["hotspots", str(events_csv), "--size", "48x32",
             "--simulations", "9", "--seed", "3", "--out", str(out)]
        )
        assert code == 0
        assert out.exists()
        assert "hotspots found" in capsys.readouterr().out


class TestCsrtestCommand:
    def test_clustered_detected(self, events_csv, capsys):
        code = main(["csrtest", str(events_csv)])
        assert code == 0
        out = capsys.readouterr().out
        assert "CSR rejected" in out
        assert "clustered" in out

    def test_custom_quadrats(self, events_csv, capsys):
        code = main(["csrtest", str(events_csv), "--quadrats", "4x3"])
        assert code == 0
        assert "4x3" in capsys.readouterr().out


class TestStkdvCommand:
    def test_writes_frames(self, st_events_csv, tmp_path, capsys):
        prefix = tmp_path / "frame"
        code = main(
            ["stkdv", str(st_events_csv), "--frames", "2",
             "--bandwidth-space", "2.0", "--bandwidth-time", "25",
             "--size", "32x24", "--out-prefix", str(prefix)]
        )
        assert code == 0
        assert (tmp_path / "frame_000.ppm").exists()
        assert (tmp_path / "frame_001.ppm").exists()

    def test_rejects_2col_csv(self, events_csv, capsys):
        code = main(
            ["stkdv", str(events_csv), "--frames", "2",
             "--bandwidth-space", "2.0", "--bandwidth-time", "25"]
        )
        assert code == 2
        assert "x,y,t" in capsys.readouterr().err

    def test_shared_method_writes_frames(self, st_events_csv, tmp_path):
        prefix = tmp_path / "shared"
        code = main(
            ["stkdv", str(st_events_csv), "--frames", "2", "--method", "shared",
             "--bandwidth-space", "2.0", "--bandwidth-time", "25",
             "--size", "32x24", "--out-prefix", str(prefix)]
        )
        assert code == 0
        assert (tmp_path / "shared_000.ppm").exists()
        assert (tmp_path / "shared_001.ppm").exists()

    def test_zero_frames_is_clean_usage_error(self, st_events_csv, capsys):
        """--frames 0 must die in argparse, not a numpy traceback."""
        with pytest.raises(SystemExit) as exc:
            main(
                ["stkdv", str(st_events_csv), "--frames", "0",
                 "--bandwidth-space", "2.0", "--bandwidth-time", "25"]
            )
        assert exc.value.code == 2
        assert "positive integer" in capsys.readouterr().err


class TestStreamCommand:
    def test_simulated_feed_smoke(self, capsys):
        code = main(["stream", "--events", "400", "--window", "200",
                     "--step", "80", "--size", "48x32"])
        assert code == 0
        out = capsys.readouterr().out
        assert "streamed 400 events" in out
        assert "window holds 200" in out
        assert "re-scatters" in out
        assert "K(s)" in out

    def test_csv_replay_with_times(self, st_events_csv, capsys):
        code = main(["stream", str(st_events_csv), "--window", "120",
                     "--step", "50", "--size", "48x32"])
        assert code == 0
        out = capsys.readouterr().out
        assert "window holds 120" in out

    def test_csv_without_times_uses_arrival_order(self, events_csv, capsys):
        code = main(["stream", str(events_csv), "--window", "100",
                     "--size", "32x24"])
        assert code == 0
        assert "window holds 100" in capsys.readouterr().out

    def test_horizon_mode_and_outputs(self, tmp_path, capsys):
        out_ppm = tmp_path / "stream.ppm"
        code = main(["stream", "--events", "300", "--horizon", "5.0",
                     "--step", "60", "--size", "48x32",
                     "--out", str(out_ppm), "--ascii"])
        assert code == 0
        assert out_ppm.exists()
        out = capsys.readouterr().out
        assert "horizon 5" in out

    def test_trace_prints_stream_spans(self, capsys):
        code = main(["stream", "--events", "300", "--window", "150",
                     "--step", "60", "--size", "32x24", "--trace"])
        assert code == 0
        out = capsys.readouterr().out
        assert "trace:" in out
        assert "stream.kdv" in out

    def test_zero_events_is_clean_usage_error(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["stream", "--events", "0"])
        assert exc.value.code == 2
        assert "positive integer" in capsys.readouterr().err


class TestTraceFlag:
    def test_kdv_trace_prints_span_tree(self, events_csv, capsys):
        code = main(
            ["kdv", str(events_csv), "--bandwidth", "1.5",
             "--size", "32x24", "--trace"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "trace:" in out
        assert "kdv.points" in out

    def test_trace_json_dump(self, events_csv, tmp_path, capsys):
        import json

        dump = tmp_path / "trace.json"
        code = main(
            ["kdv", str(events_csv), "--bandwidth", "1.5",
             "--size", "32x24", "--trace-json", str(dump)]
        )
        assert code == 0
        payload = json.loads(dump.read_text())
        assert payload["counters"]
        assert payload["span"]["name"] == "trace"

    def test_kfunction_trace_counts_simulations(self, events_csv, capsys):
        code = main(
            ["kfunction", str(events_csv), "--simulations", "5",
             "--seed", "3", "--trace"]
        )
        assert code == 0
        assert "kfunction.simulations = 5" in capsys.readouterr().out

    def test_stkdv_trace(self, st_events_csv, capsys):
        code = main(
            ["stkdv", str(st_events_csv), "--bandwidth-space", "1.5",
             "--bandwidth-time", "20", "--frames", "2",
             "--size", "16x12", "--trace"]
        )
        assert code == 0
        assert "stkdv.points" in capsys.readouterr().out

    def test_trace_counters_worker_invariant(self, events_csv, capsys):
        outputs = []
        for workers in ("1", "2", "4"):
            code = main(
                ["kdv", str(events_csv), "--bandwidth", "1.5",
                 "--size", "32x24", "--workers", workers, "--trace"]
            )
            assert code == 0
            out = capsys.readouterr().out
            counters = [line.strip() for line in out.splitlines()
                        if line.strip().startswith(". ")]
            assert counters
            outputs.append(counters)
        assert outputs[0] == outputs[1] == outputs[2]

    def test_trace_off_no_tree(self, events_csv, capsys):
        code = main(
            ["kdv", str(events_csv), "--bandwidth", "1.5", "--size", "32x24"]
        )
        assert code == 0
        assert "trace:" not in capsys.readouterr().out
