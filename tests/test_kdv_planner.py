"""Tests for the cost-based auto planner (``repro.core.kdv.planner``).

Covers the PR 8 bug class (method-specific kwargs with ``method="auto"``
crashed because the audit ran before auto resolution), the golden
decision table of the cost model, the LRU plan cache, calibration, and
the worker/backend invariance of planning.
"""

import numpy as np
import pytest

from repro import obs, parallel
from repro.core.kdv import (
    KDVProblem,
    calibrate,
    clear_plan_cache,
    kde_grid,
    plan_cache_info,
    plan_kdv,
)
from repro.core.kdv import planner as planner_mod
from repro.core.kdv.planner import _METHOD_ONLY_PARAMS
from repro.errors import ParameterError
from repro.geometry import BoundingBox

SIZE = (24, 16)
BW = 2.0


@pytest.fixture(autouse=True)
def _fresh_planner_state():
    """Isolate every test: empty plan cache, default model and defaults."""
    saved_model = planner_mod._model
    clear_plan_cache()
    yield
    planner_mod._set_model(saved_model)
    clear_plan_cache()
    parallel.set_default_workers(None)
    parallel.set_default_backend(None)


def _uniform_problem(n, size, bandwidth, kernel="quartic", seed=0,
                     weights=None):
    bbox = BoundingBox(0.0, 0.0, 100.0, 100.0)
    pts = np.random.default_rng(seed).uniform(0.0, 100.0, size=(n, 2))
    return KDVProblem(pts, bbox, size, bandwidth, kernel, weights=weights)


class TestGoldenDecisionTable:
    """The cost model reproduces the benchmark-measured crossovers."""

    def test_small_n_picks_naive_or_grid(self, small_points, bbox):
        plan = plan_kdv(KDVProblem(small_points, bbox, SIZE, BW))
        assert plan.method in ("naive", "grid")

    def test_poly_kernel_large_n_picks_sweep(self):
        plan = plan_kdv(_uniform_problem(16_000, (128, 96), 16.0, "quartic"))
        assert plan.method == "sweep"

    def test_explicit_workers_picks_parallel_capable(self):
        plan = plan_kdv(
            _uniform_problem(16_000, (128, 96), 16.0, "quartic"),
            {"workers": 4},
        )
        assert plan.method in ("parallel", "dualtree")
        assert plan.kwargs == {"workers": 4}
        assert not plan.dropped

    def test_sub_pixel_bandwidth_picks_grid(self):
        # b = 0.5 < 2 * max(dx, dy) on a 64x48 grid over 100x100: the
        # sweep's cancellation regime, where each point touches O(1)
        # pixels and the scatter backend wins.
        plan = plan_kdv(_uniform_problem(4_000, (64, 48), 0.5, "quartic"))
        assert plan.method == "grid"
        assert "sweep" in plan.rationale and "infeasible" in plan.rationale

    def test_non_polynomial_kernel_never_plans_sweep(self):
        plan = plan_kdv(_uniform_problem(16_000, (128, 96), 16.0, "gaussian"))
        assert plan.method != "sweep"

    def test_costs_cover_every_feasible_backend(self):
        plan = plan_kdv(_uniform_problem(1_000, (64, 48), 8.0, "quartic"))
        assert set(plan.costs) == {"grid", "sweep", "naive", "parallel",
                                   "dualtree"}
        assert all(c > 0.0 for c in plan.costs.values())
        assert plan.cost == plan.costs[plan.method]


class TestAutoKwargsBugfix:
    """The PR 8 bug class: every _METHOD_ONLY_PARAMS kwarg is legal with
    method="auto" and steers planning to a backend that honours it."""

    HINTS = {
        "eps": 0.2, "delta": 0.2, "sample": 40, "seed": 7,
        "index": "kdtree", "tau": 0.05, "workers": 2, "backend": "serial",
        "dtype": "float32",
    }

    @pytest.mark.parametrize("name", sorted(_METHOD_ONLY_PARAMS))
    def test_each_kwarg_with_auto_succeeds(self, name, small_points, bbox):
        grid = kde_grid(small_points, bbox, SIZE, BW, method="auto",
                        **{name: self.HINTS[name]})
        plan = grid.diagnostics.records["kdv.plan"]
        assert plan["method"] in _METHOD_ONLY_PARAMS[name]
        assert name in plan["kwargs"]
        assert not plan["dropped"]

    def test_workers_and_dtype_together_succeed(self, small_points, bbox):
        # No single backend honours both hints; the planner must still
        # resolve (recording the dropped hint) instead of crashing.
        grid = kde_grid(small_points, bbox, SIZE, BW, method="auto",
                        workers=2, dtype="float32")
        plan = grid.diagnostics.records["kdv.plan"]
        dropped_or_kept = set(plan["kwargs"]) | set(plan["dropped"])
        assert {"workers", "dtype"} <= dropped_or_kept
        assert len(plan["dropped"]) == 1

    def test_explicit_method_audit_still_strict(self, small_points, bbox):
        with pytest.raises(ParameterError, match="workers"):
            kde_grid(small_points, bbox, SIZE, BW, method="grid", workers=2)

    def test_weighted_problem_drops_unit_mass_hints(self, small_points,
                                                    bbox, rng):
        w = rng.uniform(0.5, 1.5, size=small_points.shape[0])
        grid = kde_grid(small_points, bbox, SIZE, BW, method="auto",
                        eps=0.2, weights=w)
        plan = grid.diagnostics.records["kdv.plan"]
        assert plan["method"] not in ("bounds", "sampling")
        assert "eps" in plan["dropped"]

    def test_unknown_hint_rejected(self, small_points, bbox):
        with pytest.raises(ParameterError, match="unknown"):
            plan_kdv(KDVProblem(small_points, bbox, SIZE, BW),
                     {"bogus": 1})

    def test_non_problem_rejected(self):
        with pytest.raises(ParameterError, match="KDVProblem"):
            plan_kdv(object())


class TestWorkersDefault:
    """Library-level auto reads the effective worker count (REPRO_WORKERS
    / set_default_workers), not just the explicit kwarg."""

    def _big_gaussian(self):
        # Crossover workload: serially the grid scatter is cheapest, but
        # with 8 workers the dual-tree execute phase amortises below it.
        return _uniform_problem(30_000, (192, 192), 2.0, "gaussian")

    def test_serial_default_plans_serial_backend(self):
        plan = plan_kdv(self._big_gaussian())
        assert plan.workers == 1
        assert plan.method == "grid"

    def test_worker_default_flips_to_parallel_capable(self):
        parallel.set_default_workers(8)
        plan = plan_kdv(self._big_gaussian())
        assert plan.workers == 8
        assert plan.method in ("parallel", "dualtree")

    def test_env_workers_read(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "8")
        plan = plan_kdv(self._big_gaussian())
        assert plan.workers == 8
        assert plan.method in ("parallel", "dualtree")

    def test_parallel_choice_bit_identical_to_serial_run(self, small_points,
                                                         bbox):
        # Whatever auto resolves to with workers available, executing
        # that plan is bit-identical to the same backend run serially
        # (the repro.parallel worker-invariance contract).
        auto = kde_grid(small_points, bbox, SIZE, BW, method="auto",
                        workers=4)
        plan = auto.diagnostics.records["kdv.plan"]
        assert plan["method"] in ("parallel", "dualtree")
        serial = kde_grid(small_points, bbox, SIZE, BW,
                          method=plan["method"], workers=1)
        assert np.array_equal(auto.values, serial.values)


class TestPlanInvariance:
    """Planning is deterministic and does not depend on the executor."""

    def test_plan_identical_for_any_workers(self, small_points, bbox):
        problem = KDVProblem(small_points, bbox, SIZE, BW)
        methods = {plan_kdv(problem, {"workers": w}).method
                   for w in (2, 4, 8)}
        assert len(methods) == 1

    def test_plan_identical_for_any_backend_hint(self, small_points, bbox):
        problem = KDVProblem(small_points, bbox, SIZE, BW)
        plans = [plan_kdv(problem, {"backend": b})
                 for b in ("serial", "thread", "process")]
        assert len({p.method for p in plans}) == 1
        assert len({tuple(sorted(p.costs.items())) for p in plans}) == 1

    def test_default_backend_does_not_change_plan(self, small_points, bbox):
        problem = KDVProblem(small_points, bbox, SIZE, BW)
        baseline = plan_kdv(problem)
        parallel.set_default_backend("process")
        clear_plan_cache()
        assert plan_kdv(problem).method == baseline.method

    def test_repeated_planning_is_deterministic(self, small_points, bbox):
        problem = KDVProblem(small_points, bbox, SIZE, BW)
        first = plan_kdv(problem)
        clear_plan_cache()
        second = plan_kdv(problem)
        assert first.method == second.method
        assert first.rationale == second.rationale
        assert not second.cache_hit


class TestPlanCache:
    def test_identical_query_hits_cache(self, small_points, bbox):
        problem = KDVProblem(small_points, bbox, SIZE, BW)
        first = plan_kdv(problem)
        second = plan_kdv(problem)
        assert not first.cache_hit
        assert second.cache_hit
        assert second.method == first.method
        info = plan_cache_info()
        assert info["hits"] == 1 and info["misses"] == 1

    def test_same_shape_different_points_still_hits(self, bbox):
        # The cost model never reads coordinates, so two same-shaped
        # problems share a plan — the serve layer's hot case.
        a = _uniform_problem(500, SIZE, BW, seed=1)
        b = _uniform_problem(500, SIZE, BW, seed=2)
        b = KDVProblem(b.points, a.bbox, SIZE, BW)
        plan_kdv(a)
        assert plan_kdv(b).cache_hit

    @pytest.mark.parametrize("change", [
        {"bandwidth": BW * 2}, {"size": (25, 16)}, {"kernel": "gaussian"},
    ])
    def test_signature_change_misses(self, small_points, bbox, change):
        base = dict(size=SIZE, bandwidth=BW, kernel="quartic")
        plan_kdv(KDVProblem(small_points, bbox, base["size"],
                            base["bandwidth"], base["kernel"]))
        base.update(change)
        plan = plan_kdv(KDVProblem(small_points, bbox, base["size"],
                                   base["bandwidth"], base["kernel"]))
        assert not plan.cache_hit

    def test_different_hints_miss(self, small_points, bbox):
        problem = KDVProblem(small_points, bbox, SIZE, BW)
        plan_kdv(problem)
        assert not plan_kdv(problem, {"tau": 0.1}).cache_hit

    def test_calibrate_invalidates_cache(self, small_points, bbox):
        problem = KDVProblem(small_points, bbox, SIZE, BW)
        plan_kdv(problem)
        calibrate()
        assert not plan_kdv(problem).cache_hit

    def test_cache_bounded_lru(self, small_points, bbox):
        for i in range(planner_mod.PLAN_CACHE_MAXSIZE + 10):
            plan_kdv(KDVProblem(small_points, bbox, SIZE, BW + 0.01 * i))
        assert plan_cache_info()["size"] == planner_mod.PLAN_CACHE_MAXSIZE

    def test_cache_counters_traced(self, small_points, bbox):
        grids = []
        with obs.enabled():
            for _ in range(2):
                grids.append(kde_grid(small_points, bbox, SIZE, BW,
                                      method="auto"))
        assert grids[0].diagnostics.counter("kdv.plan.cache_miss") == 1
        assert grids[1].diagnostics.counter("kdv.plan.cache_hit") == 1
        assert grids[1].diagnostics.records["kdv.plan"]["cache_hit"]


class TestCalibration:
    def test_calibrate_from_results_dir(self, tmp_path):
        (tmp_path / "ablation_kdv_methods.txt").write_text(
            "Ablation A: KDV methods, quartic kernel, 128x96 grid\n"
            "method   n      mean time\n"
            "naive    1000   614.4 ms\n"
            "naive    4000   2457.6 ms\n"
        )
        model = calibrate(results_dir=tmp_path)
        # 2457.6 ms / (4000 * 12288) = 5e-8 s per point-pixel.
        assert model.coefficient("naive_pp") == pytest.approx(5e-8, rel=1e-6)
        assert "ablation_kdv_methods.txt" in model.source

    def test_calibrate_from_repo_artifacts(self):
        import pathlib

        results = pathlib.Path(__file__).parent.parent / "benchmarks" / "results"
        model = calibrate(results_dir=results)
        for name in ("naive_pp", "sweep_unit", "dualtree_build",
                     "dualtree_refine", "grid_f32_factor"):
            assert model.coefficient(name) > 0.0

    def test_calibrate_from_traces_rescales(self, small_points, bbox):
        with obs.enabled():
            grid = kde_grid(small_points, bbox, SIZE, BW, method="auto")
        method = grid.diagnostics.records["kdv.plan"]["method"]
        dominant = {"naive": "naive_pp", "grid": "grid_pp",
                    "sweep": "sweep_unit"}[method]
        before = planner_mod.cost_model().coefficient(dominant)
        model = calibrate(traces=[grid.diagnostics])
        assert model.coefficient(dominant) != before
        assert "obs traces" in model.source

    def test_calibrate_missing_dir_is_noop(self, tmp_path):
        before = dict(planner_mod.cost_model().coefficients)
        model = calibrate(results_dir=tmp_path / "nope")
        assert dict(model.coefficients) == before


class TestPlanDiagnostics:
    def test_plan_recorded_untraced(self, small_points, bbox):
        grid = kde_grid(small_points, bbox, SIZE, BW, method="auto")
        plan = grid.diagnostics.records["kdv.plan"]
        assert plan["method"] in plan["costs"]
        assert plan["rationale"].startswith(plan["method"])

    def test_explicit_method_records_no_plan(self, small_points, bbox):
        grid = kde_grid(small_points, bbox, SIZE, BW, method="naive")
        records = (grid.diagnostics.records
                   if grid.diagnostics is not None else {})
        assert "kdv.plan" not in records

    def test_plan_as_dict_json_serialisable(self, small_points, bbox):
        import json

        plan = plan_kdv(KDVProblem(small_points, bbox, SIZE, BW),
                        {"workers": 2})
        text = json.dumps(plan.as_dict())
        assert "rationale" in json.loads(text)
