"""Tests for K-function plots with Monte-Carlo envelopes (Figure 2)."""

import numpy as np
import pytest

from repro.core.kfunction import KFunctionPlot, k_function_plot
from repro.data import csr, inhibited, thomas
from repro.errors import ParameterError

THRESHOLDS = np.array([0.4, 0.8, 1.2, 1.6, 2.0])


class TestFigure2Regimes:
    """The three regimes the paper's Figure 2 annotates."""

    def test_clustered_dataset_above_upper(self, bbox):
        pts = thomas(300, 3, 0.4, bbox, seed=21)
        plot = k_function_plot(pts, bbox, THRESHOLDS, n_simulations=39, seed=22)
        assert plot.clustered_mask().any()
        assert "clustered" in plot.classify()

    def test_csr_dataset_mostly_inside(self, bbox):
        pts = csr(300, bbox, seed=23)
        plot = k_function_plot(pts, bbox, THRESHOLDS, n_simulations=39, seed=24)
        # Pointwise envelopes at 39 sims: allow one marginal excursion.
        outside = plot.clustered_mask().sum() + plot.dispersed_mask().sum()
        assert outside <= 1

    def test_dispersed_dataset_below_lower(self, bbox):
        pts = inhibited(300, 0.7, bbox, seed=25)
        plot = k_function_plot(pts, bbox, THRESHOLDS, n_simulations=39, seed=26)
        assert plot.dispersed_mask().any()
        assert "dispersed" in plot.classify()


class TestPlotMechanics:
    def test_envelope_ordering(self, bbox, random_points):
        plot = k_function_plot(random_points, bbox, THRESHOLDS, n_simulations=9, seed=1)
        assert (plot.lower <= plot.upper).all()

    def test_reproducible_with_seed(self, bbox, small_points):
        a = k_function_plot(small_points, bbox, THRESHOLDS, n_simulations=5, seed=3)
        b = k_function_plot(small_points, bbox, THRESHOLDS, n_simulations=5, seed=3)
        np.testing.assert_array_equal(a.lower, b.lower)
        np.testing.assert_array_equal(a.upper, b.upper)

    def test_more_simulations_widen_envelope(self, bbox, small_points):
        few = k_function_plot(small_points, bbox, THRESHOLDS, n_simulations=5, seed=4)
        many = k_function_plot(small_points, bbox, THRESHOLDS, n_simulations=50, seed=4)
        assert (many.upper >= few.upper).all()
        assert (many.lower <= few.lower).all()

    def test_clustered_thresholds_subset(self, bbox):
        pts = thomas(250, 3, 0.4, bbox, seed=27)
        plot = k_function_plot(pts, bbox, THRESHOLDS, n_simulations=19, seed=28)
        chosen = plot.clustered_thresholds()
        assert set(chosen.tolist()) <= set(THRESHOLDS.tolist())

    def test_rows_format(self, bbox, small_points):
        plot = k_function_plot(small_points, bbox, THRESHOLDS, n_simulations=5, seed=5)
        rows = plot.rows()
        assert len(rows) == THRESHOLDS.shape[0]
        s, k, lo, hi, regime = rows[0]
        assert regime in ("clustered", "random", "dispersed")

    def test_rejects_zero_simulations(self, bbox, small_points):
        with pytest.raises(ParameterError):
            k_function_plot(small_points, bbox, THRESHOLDS, n_simulations=0)

    def test_mismatched_arrays_rejected(self):
        with pytest.raises(ParameterError):
            KFunctionPlot(
                thresholds=np.array([1.0, 2.0]),
                observed=np.array([1.0]),
                lower=np.array([0.0, 0.0]),
                upper=np.array([1.0, 1.0]),
                n_simulations=1,
            )
