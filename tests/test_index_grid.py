"""Unit tests for the uniform grid index."""

import numpy as np
import pytest

from repro.errors import ParameterError
from repro.index import GridIndex


def brute_indices(points, center, radius):
    d2 = ((points - np.asarray(center)) ** 2).sum(axis=1)
    return set(np.flatnonzero(d2 <= radius * radius).tolist())


class TestGridIndexQueries:
    def test_range_indices_match_brute(self, random_points):
        index = GridIndex(random_points, cell_size=1.5)
        for center in [(0.0, 0.0), (10.0, 6.0), (19.9, 11.9), (5.0, 3.0)]:
            got = set(index.range_indices(center, 2.5).tolist())
            assert got == brute_indices(random_points, center, 2.5)

    def test_range_count_matches(self, random_points):
        index = GridIndex(random_points, cell_size=0.8)
        for center in [(3.0, 3.0), (15.0, 8.0)]:
            assert index.range_count(center, 1.7) == len(
                brute_indices(random_points, center, 1.7)
            )

    def test_query_outside_bbox(self, random_points):
        index = GridIndex(random_points, cell_size=1.0)
        got = set(index.range_indices((-5.0, -5.0), 30.0).tolist())
        assert got == brute_indices(random_points, (-5.0, -5.0), 30.0)

    def test_neighbor_distances_sorted_consistent(self, random_points):
        index = GridIndex(random_points, cell_size=1.0)
        d = index.neighbor_distances((10.0, 6.0), 3.0)
        assert (d <= 3.0).all()
        assert d.shape[0] == index.range_count((10.0, 6.0), 3.0)

    def test_count_within_many_queries(self, random_points):
        index = GridIndex(random_points, cell_size=1.0)
        queries = random_points[:10]
        counts = index.count_within(queries, 2.0)
        for q, c in zip(queries, counts):
            assert c == len(brute_indices(random_points, q, 2.0))

    def test_multi_threshold_counts(self, random_points):
        index = GridIndex(random_points, cell_size=2.0)
        thresholds = np.array([0.5, 1.0, 2.0])
        table = index.count_within_thresholds(random_points[:8], thresholds)
        assert table.shape == (8, 3)
        for row, q in zip(table, random_points[:8]):
            for c, s in zip(row, thresholds):
                assert c == len(brute_indices(random_points, q, s))
        # Counts must be monotone in the threshold.
        assert (np.diff(table, axis=1) >= 0).all()

    def test_zero_threshold_counts_coincident(self):
        pts = np.array([[1.0, 1.0], [1.0, 1.0], [3.0, 3.0]])
        index = GridIndex(pts, cell_size=1.0)
        table = index.count_within_thresholds(pts, np.array([0.0]))
        assert table[:, 0].tolist() == [2, 2, 1]


class TestGridIndexConstruction:
    def test_rejects_bad_cell_size(self, random_points):
        with pytest.raises(ParameterError):
            GridIndex(random_points, cell_size=0.0)

    def test_len(self, random_points):
        assert len(GridIndex(random_points, cell_size=1.0)) == random_points.shape[0]

    def test_single_point(self):
        index = GridIndex([[2.0, 2.0]], cell_size=1.0)
        assert index.range_count((2.0, 2.0), 0.5) == 1
        assert index.range_count((5.0, 5.0), 0.5) == 0

    def test_duplicate_points_counted(self):
        pts = np.array([[1.0, 1.0]] * 5)
        index = GridIndex(pts, cell_size=1.0)
        assert index.range_count((1.0, 1.0), 0.1) == 5

    def test_radius_larger_than_domain(self, random_points):
        index = GridIndex(random_points, cell_size=1.0)
        assert index.range_count((10.0, 6.0), 100.0) == random_points.shape[0]

    def test_empty_thresholds_rejected(self, random_points):
        index = GridIndex(random_points, cell_size=1.0)
        with pytest.raises(ParameterError):
            index.count_within_thresholds(random_points[:2], [])
