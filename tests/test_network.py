"""Unit tests for the road-network substrate (graph, positions, lixels)."""

import numpy as np
import pytest

from repro.errors import NetworkError, ParameterError
from repro.network import (
    NetworkPosition,
    RoadNetwork,
    grid_network,
    lixelize,
    node_distances,
    position_distances,
    position_to_position_distance,
    radial_network,
    random_geometric_network,
    two_corridor_network,
)


@pytest.fixture()
def path_network():
    """A simple 4-node path: 0 -1- 1 -2- 2 -1- 3 (lengths on edges)."""
    coords = [[0.0, 0.0], [1.0, 0.0], [3.0, 0.0], [4.0, 0.0]]
    return RoadNetwork(coords, [(0, 1), (1, 2), (2, 3)])


class TestRoadNetworkConstruction:
    def test_euclidean_lengths(self, path_network):
        np.testing.assert_allclose(path_network.edge_lengths, [1.0, 2.0, 1.0])

    def test_total_length(self, path_network):
        assert path_network.total_length == pytest.approx(4.0)

    def test_explicit_lengths(self):
        net = RoadNetwork([[0, 0], [1, 0]], [(0, 1)], lengths=[5.0])
        assert net.edge_lengths[0] == 5.0

    def test_rejects_self_loop(self):
        with pytest.raises(NetworkError, match="self-loop"):
            RoadNetwork([[0, 0], [1, 0]], [(0, 0)])

    def test_rejects_bad_node_id(self):
        with pytest.raises(NetworkError, match="node id"):
            RoadNetwork([[0, 0], [1, 0]], [(0, 5)])

    def test_rejects_no_edges(self):
        with pytest.raises(NetworkError, match="at least one edge"):
            RoadNetwork([[0, 0], [1, 0]], np.empty((0, 2), dtype=int))

    def test_rejects_zero_length(self):
        with pytest.raises(NetworkError, match="positive"):
            RoadNetwork([[0, 0], [1, 0]], [(0, 1)], lengths=[0.0])

    def test_neighbors_and_degree(self, path_network):
        nbrs, edges, lengths = path_network.neighbors(1)
        assert set(nbrs.tolist()) == {0, 2}
        assert path_network.degree(1) == 2
        assert path_network.degree(0) == 1


class TestNetworkPositions:
    def test_position_coords_interpolates(self, path_network):
        pos = NetworkPosition(1, 1.0)  # halfway along edge 1 (length 2)
        np.testing.assert_allclose(path_network.position_coords(pos), [2.0, 0.0])

    def test_position_validation(self, path_network):
        with pytest.raises(NetworkError):
            path_network.check_position(NetworkPosition(9, 0.0))
        with pytest.raises(NetworkError):
            path_network.check_position(NetworkPosition(0, 99.0))
        with pytest.raises(NetworkError):
            NetworkPosition(0, -1.0)

    def test_sample_positions_on_network(self, path_network, rng):
        positions = path_network.sample_positions(200, rng)
        assert len(positions) == 200
        for pos in positions:
            path_network.check_position(pos)

    def test_snap_points(self, path_network):
        snapped = path_network.snap_points([[2.0, 0.5], [-1.0, 0.0]])
        # (2, 0.5) projects onto edge 1 at offset 1; (-1, 0) clamps to node 0.
        assert snapped[0].edge == 1
        assert snapped[0].offset == pytest.approx(1.0)
        assert snapped[1].edge == 0
        assert snapped[1].offset == pytest.approx(0.0)

    def test_connected_components(self):
        net = RoadNetwork(
            [[0, 0], [1, 0], [5, 5], [6, 5]], [(0, 1), (2, 3)]
        )
        labels = net.connected_components()
        assert labels[0] == labels[1]
        assert labels[2] == labels[3]
        assert labels[0] != labels[2]


class TestDijkstra:
    def test_path_distances(self, path_network):
        dist = node_distances(path_network, 0)
        np.testing.assert_allclose(dist, [0.0, 1.0, 3.0, 4.0])

    def test_cutoff_limits_reach(self, path_network):
        dist = node_distances(path_network, 0, cutoff=2.0)
        assert dist[0] == 0.0 and dist[1] == 1.0
        assert np.isinf(dist[2]) and np.isinf(dist[3])

    def test_multi_source(self, path_network):
        dist = node_distances(path_network, [(0, 0.0), (3, 0.0)])
        np.testing.assert_allclose(dist, [0.0, 1.0, 1.0, 0.0])

    def test_source_with_initial_distance(self, path_network):
        dist = node_distances(path_network, [(0, 10.0)])
        assert dist[3] == pytest.approx(14.0)

    def test_rejects_bad_source(self, path_network):
        with pytest.raises(NetworkError):
            node_distances(path_network, 42)

    def test_position_distances(self, path_network):
        pos = NetworkPosition(1, 0.5)  # 1.5 from node 0
        dist = position_distances(path_network, pos)
        np.testing.assert_allclose(dist, [1.5, 0.5, 1.5, 2.5])

    def test_position_to_position_same_edge(self, path_network):
        a = NetworkPosition(1, 0.2)
        b = NetworkPosition(1, 1.7)
        assert position_to_position_distance(path_network, a, b) == pytest.approx(1.5)

    def test_position_to_position_cross_edges(self, path_network):
        a = NetworkPosition(0, 0.5)
        b = NetworkPosition(2, 0.5)
        assert position_to_position_distance(path_network, a, b) == pytest.approx(3.0)

    def test_matches_networkx(self, road_network):
        nx = pytest.importorskip("networkx")
        g = nx.Graph()
        for e, (u, v) in enumerate(road_network.edge_nodes):
            g.add_edge(int(u), int(v), weight=float(road_network.edge_lengths[e]))
        ref = nx.single_source_dijkstra_path_length(g, 0)
        dist = node_distances(road_network, 0)
        for node, d in ref.items():
            assert dist[node] == pytest.approx(d)


class TestLixels:
    def test_lixel_count_and_lengths(self, path_network):
        lix = lixelize(path_network, 0.5)
        # Edge lengths 1, 2, 1 with target 0.5 -> 2 + 4 + 2 lixels.
        assert lix.n_lixels == 8
        np.testing.assert_allclose(lix.lixel_length_actual, 0.5)

    def test_lixels_cover_edges_exactly(self, road_network):
        lix = lixelize(road_network, 0.3)
        total = lix.lixel_length_actual.sum()
        assert total == pytest.approx(road_network.total_length)

    def test_midpoints_are_valid_positions(self, path_network):
        lix = lixelize(path_network, 0.4)
        for pos in lix.midpoints():
            path_network.check_position(pos)

    def test_midpoint_coords_on_segments(self, path_network):
        lix = lixelize(path_network, 0.5)
        coords = lix.midpoint_coords()
        assert coords.shape == (lix.n_lixels, 2)
        np.testing.assert_allclose(coords[:, 1], 0.0)  # the path lies on y=0

    def test_locate_roundtrip(self, path_network):
        lix = lixelize(path_network, 0.5)
        for k, pos in enumerate(lix.midpoints()):
            assert lix.locate(pos) == k

    def test_irregular_edge_split(self):
        net = RoadNetwork([[0, 0], [1.3, 0]], [(0, 1)])
        lix = lixelize(net, 0.5)
        assert lix.n_lixels == 3  # ceil(1.3 / 0.5)
        assert lix.lixel_length_actual[0] == pytest.approx(1.3 / 3)


class TestGenerators:
    def test_grid_network_shape(self):
        net = grid_network(4, 3, spacing=2.0)
        assert net.n_nodes == 12
        assert net.n_edges == 4 * 2 + 3 * 3  # vertical + horizontal families
        assert (net.connected_components() == 0).all()

    def test_radial_network_connected(self):
        net = radial_network(3, 6)
        assert net.n_nodes == 1 + 3 * 6
        assert (net.connected_components() == 0).all()

    def test_random_geometric_connected(self):
        net = random_geometric_network(60, radius=3.0, bbox_size=10.0, seed=5)
        assert (net.connected_components() == 0).all()

    def test_random_geometric_too_sparse(self):
        with pytest.raises(ParameterError, match="no edges"):
            random_geometric_network(10, radius=1e-6, bbox_size=100.0, seed=1)

    def test_two_corridor_gap_vs_network_distance(self):
        net = two_corridor_network(length=10.0, gap=0.5, segments=10)
        lower_start = NetworkPosition(0, 0.0)  # x ~ 0 on the lower corridor
        # The first upper-corridor edge starts at node segments+1 (x=0, y=gap).
        upper_start = net.snap_points([[0.0, 0.5]])[0]
        d_net = position_to_position_distance(net, lower_start, upper_start)
        # Euclidean gap is 0.5; network route goes out and back: ~ 2 * length.
        assert d_net > 19.0

    def test_grid_network_rejects_small(self):
        with pytest.raises(ParameterError):
            grid_network(1, 5)
