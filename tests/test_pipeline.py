"""Tests for the end-to-end hotspot workflow (Figure 5)."""

import numpy as np
import pytest

from repro.core.pipeline import HotspotAnalysis
from repro.data import csr, hk_covid, thomas
from repro.errors import ParameterError


class TestHotspotAnalysis:
    def test_clustered_data_significant(self, bbox):
        pts = thomas(300, 2, 0.5, bbox, seed=201)
        report = HotspotAnalysis(pts, bbox).run(
            size=(48, 32), n_simulations=19, seed=202
        )
        assert report.significant
        assert report.bandwidth_source == "k-function"
        assert len(report.hotspots) >= 1

    def test_csr_data_not_significant(self, bbox):
        pts = csr(300, bbox, seed=203)
        report = HotspotAnalysis(pts, bbox).run(
            size=(48, 32), n_simulations=39, seed=204
        )
        # CSR can graze the envelope; the bandwidth source is the robust
        # signal: with no clustered thresholds it falls back to Scott.
        if not report.significant:
            assert report.bandwidth_source == "scott"

    def test_hotspot_near_true_center(self, bbox):
        center = np.array([[15.0, 8.0]])
        pts = thomas(400, 1, 0.5, bbox, seed=205, centers=center)
        report = HotspotAnalysis(pts, bbox).run(
            size=(64, 40), n_simulations=19, seed=206
        )
        top = report.hotspots[0]
        assert np.hypot(top.peak[0] - 15.0, top.peak[1] - 8.0) < 2.0

    def test_covid_workflow_end_to_end(self):
        data = hk_covid(300, 400, seed=207)
        report = HotspotAnalysis(data.points, data.bbox).run(
            size=(64, 40), n_simulations=19, seed=208
        )
        assert report.significant
        summary = report.summary()
        assert "significant clustering: yes" in summary
        assert "hotspots found" in summary

    def test_custom_thresholds_respected(self, bbox, clustered_points):
        ts = np.array([0.5, 1.0, 1.5])
        report = HotspotAnalysis(clustered_points, bbox).run(
            thresholds=ts, size=(32, 24), n_simulations=9, seed=209
        )
        np.testing.assert_array_equal(report.k_plot.thresholds, ts)

    def test_default_thresholds_ladder(self, bbox, small_points):
        analysis = HotspotAnalysis(small_points, bbox)
        ts = analysis.default_thresholds(8)
        assert ts.shape == (8,)
        assert ts[-1] == pytest.approx(0.25 * bbox.diagonal)
        assert (np.diff(ts) > 0).all()

    def test_reproducible(self, bbox, clustered_points):
        a = HotspotAnalysis(clustered_points, bbox).run(
            size=(32, 24), n_simulations=9, seed=210
        )
        b = HotspotAnalysis(clustered_points, bbox).run(
            size=(32, 24), n_simulations=9, seed=210
        )
        assert a.bandwidth == b.bandwidth
        assert a.density.max_abs_difference(b.density) == 0.0

    def test_validation(self, bbox, small_points):
        with pytest.raises(ParameterError):
            HotspotAnalysis(small_points, (0, 0, 1, 1))
        analysis = HotspotAnalysis(small_points, bbox)
        with pytest.raises(ParameterError):
            analysis.run(quantile=1.2)
        with pytest.raises(ParameterError):
            analysis.default_thresholds(1)
