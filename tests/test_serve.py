"""Serving layer: cache, coalescer, datasets, service semantics, HTTP."""

import json
import threading
import urllib.request

import numpy as np
import pytest

import repro
from repro.errors import DataError, ParameterError, ReproError, ServeError
from repro.serve import (
    AnalyticsService,
    Coalescer,
    Dataset,
    DatasetStore,
    LRUCache,
    ServeConfig,
    create_server,
)

BBOX = repro.BoundingBox(0.0, 0.0, 8.0, 8.0)
RNG = np.random.default_rng(42)
POINTS = BBOX.sample_uniform(500, RNG)


def make_service(**overrides):
    config = ServeConfig(tile_px=32, max_zoom=3, **overrides)
    service = AnalyticsService(config=config)
    service.create_dataset("d", POINTS, bbox=BBOX)
    return service


# ---------------------------------------------------------------------------
# LRUCache
# ---------------------------------------------------------------------------


class TestLRUCache:
    def test_put_get_roundtrip(self):
        cache = LRUCache(4)
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert cache.get("missing") is None
        assert cache.get("missing", default=7) == 7

    def test_capacity_evicts_least_recent(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")          # refresh "a"; "b" is now the LRU entry
        cache.put("c", 3)
        assert cache.get("a") == 1
        assert cache.get("b") is None
        assert len(cache) == 2

    def test_invalidate_by_key_and_predicate(self):
        cache = LRUCache(8)
        for tx in range(4):
            cache.put(("tile", 0, tx), tx)
        assert cache.invalidate(key=("tile", 0, 1)) == 1
        assert cache.invalidate(key=("tile", 0, 1)) == 0
        removed = cache.invalidate(predicate=lambda k: k[2] >= 2)
        assert removed == 2
        assert len(cache) == 1

    def test_invalidate_requires_exactly_one_selector(self):
        cache = LRUCache(2)
        with pytest.raises(ParameterError):
            cache.invalidate()
        with pytest.raises(ParameterError):
            cache.invalidate(key="a", predicate=lambda k: True)

    def test_bad_capacity(self):
        with pytest.raises(ParameterError):
            LRUCache(0)

    def test_stats(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.get("a")
        cache.get("b")
        stats = cache.stats()
        assert stats["hits"] == 1
        assert stats["misses"] == 1
        assert stats["size"] == 1
        assert stats["capacity"] == 2


# ---------------------------------------------------------------------------
# Coalescer
# ---------------------------------------------------------------------------


class TestCoalescer:
    def test_single_caller_leads(self):
        c = Coalescer()
        result, led = c.run("k", lambda: 41 + 1)
        assert (result, led) is not None
        assert result == 42 and led
        assert c.executions == 1 and c.coalesced == 0
        assert c.inflight() == 0

    def test_n_threads_one_execution(self):
        """The satellite contract: N concurrent identical requests, one compute."""
        c = Coalescer()
        release = threading.Event()
        entered = threading.Event()
        calls = []

        def compute():
            calls.append(1)
            entered.set()
            release.wait(timeout=10.0)
            return "surface"

        results = []

        def worker():
            results.append(c.run("tile", compute))

        leader = threading.Thread(target=worker)
        leader.start()
        assert entered.wait(timeout=10.0)
        followers = [threading.Thread(target=worker) for _ in range(5)]
        for t in followers:
            t.start()
        # Wait until all five are registered on the flight, then release.
        deadline = threading.Event()
        for _ in range(2000):
            if c.coalesced == 5:
                break
            deadline.wait(0.005)
        assert c.coalesced == 5
        release.set()
        leader.join(timeout=10.0)
        for t in followers:
            t.join(timeout=10.0)
        assert len(calls) == 1, "exactly one execution for six callers"
        assert len(results) == 6
        assert all(r[0] == "surface" for r in results)
        assert sum(1 for r in results if r[1]) == 1
        assert c.executions == 1

    def test_leader_error_propagates_to_followers(self):
        c = Coalescer()
        release = threading.Event()
        entered = threading.Event()

        def compute():
            entered.set()
            release.wait(timeout=10.0)
            raise DataError("boom")

        errors = []

        def worker():
            try:
                c.run("k", compute)
            except ReproError as exc:
                errors.append(exc)

        threads = [threading.Thread(target=worker)]
        threads[0].start()
        assert entered.wait(timeout=10.0)
        threads.append(threading.Thread(target=worker))
        threads[1].start()
        for _ in range(2000):
            if c.coalesced == 1:
                break
            threading.Event().wait(0.005)
        release.set()
        for t in threads:
            t.join(timeout=10.0)
        assert len(errors) == 2
        assert all(isinstance(e, DataError) for e in errors)
        # Flight retired: the next arrival recomputes.
        result, led = c.run("k", lambda: "fresh")
        assert result == "fresh" and led

    def test_distinct_keys_do_not_coalesce(self):
        c = Coalescer()
        c.run("a", lambda: 1)
        c.run("b", lambda: 2)
        assert c.executions == 2 and c.coalesced == 0


# ---------------------------------------------------------------------------
# Dataset / DatasetStore
# ---------------------------------------------------------------------------


class TestDataset:
    def test_identity_stable_content_advances(self):
        d = Dataset("d", POINTS, bbox=BBOX)
        identity = d.identity
        before = d.content_fingerprint()
        d.ingest(np.array([[4.0, 4.0]]))
        assert d.identity == identity
        assert d.content_fingerprint() != before
        assert d.version == 1
        assert d.n == POINTS.shape[0] + 1

    def test_points_since(self):
        d = Dataset("d", POINTS, bbox=BBOX)
        batch = np.array([[1.0, 1.0], [2.0, 2.0]])
        d.ingest(batch)
        pts, ts = d.points_since(POINTS.shape[0])
        np.testing.assert_array_equal(pts, batch)
        assert ts.shape == (2,)

    def test_ingest_outside_bbox_rejected(self):
        d = Dataset("d", POINTS, bbox=BBOX)
        with pytest.raises(DataError, match="outside"):
            d.ingest(np.array([[99.0, 99.0]]))

    def test_times_length_mismatch_rejected(self):
        with pytest.raises(DataError):
            Dataset("d", POINTS, times=np.zeros(3), bbox=BBOX)

    def test_defensive_copies(self):
        d = Dataset("d", POINTS, bbox=BBOX)
        d.points[:] = -1.0
        np.testing.assert_array_equal(d.points, POINTS)

    def test_store(self):
        store = DatasetStore()
        store.create("a", POINTS, bbox=BBOX)
        assert store.names() == ("a",)
        with pytest.raises(ParameterError, match="exists"):
            store.create("a", POINTS, bbox=BBOX)
        with pytest.raises(ServeError, match="unknown dataset"):
            store.get("nope")
        assert isinstance(store.get("a"), Dataset)
        assert store.summaries()[0]["name"] == "a"

    def test_serve_error_is_lookup_error(self):
        assert issubclass(ServeError, LookupError)
        assert issubclass(ServeError, ReproError)


# ---------------------------------------------------------------------------
# AnalyticsService: tiles, caching, coalescing, invalidation
# ---------------------------------------------------------------------------


class TestServiceTiles:
    def test_cache_hit_is_bit_identical_to_cold_compute(self):
        service = make_service()
        cold = service.tile("d", 1, 0, 1, bandwidth=0.8)
        warm = service.tile("d", 1, 0, 1, bandwidth=0.8)
        assert warm is cold  # same cached TileResult object
        fresh = make_service().tile("d", 1, 0, 1, bandwidth=0.8)
        np.testing.assert_array_equal(cold.values, fresh.values)
        snap = service.stats_snapshot()
        assert snap["counters"]["tile.cache_hit"] == 1
        assert snap["counters"]["tile.cache_miss"] == 1

    def test_tile_payload_shape_and_bbox(self):
        service = make_service()
        result = service.tile("d", 2, 3, 0, bandwidth=0.8)
        assert result.values.shape == (32, 32)
        payload = result.to_payload()
        assert payload["zoom"] == 2 and payload["tx"] == 3
        assert len(payload["values"]) == 32
        # tile (3, 0) of a 4x4 lattice covers the bbox's right-bottom corner
        xmin, ymin, xmax, ymax = payload["bbox"]
        assert xmax == pytest.approx(BBOX.xmax)
        assert ymin == pytest.approx(BBOX.ymin)

    def test_zoom_and_coordinate_validation(self):
        service = make_service()
        with pytest.raises(ParameterError, match="zoom"):
            service.tile("d", 9, 0, 0, bandwidth=0.8)
        with pytest.raises(ParameterError, match="bandwidth"):
            service.tile("d", 1, 0, 0, bandwidth=-1.0)
        with pytest.raises(ServeError):
            service.tile("d", 1, 5, 0, bandwidth=0.8)

    def test_unknown_dataset_is_serve_error(self):
        service = make_service()
        with pytest.raises(ServeError, match="unknown dataset"):
            service.tile("ghost", 1, 0, 0, bandwidth=0.8)

    def test_tiles_stitch_to_full_surface(self):
        """The tiled lattice is a partition of the maintained surface."""
        service = make_service()
        dataset = service.store.get("d")
        surface = service._surface(dataset, 1, 0.8, "quartic", None)
        surface.sync(dataset)
        grid = surface.grid()
        stitched = np.empty_like(grid.values)
        px = 32
        for ty in range(2):
            for tx in range(2):
                tile = service.tile("d", 1, tx, ty, bandwidth=0.8)
                # surface arrays are x-major: axis 0 is x, axis 1 is y
                stitched[tx * px:(tx + 1) * px, ty * px:(ty + 1) * px] = \
                    tile.values
        np.testing.assert_allclose(stitched, np.maximum(grid.values, 0.0),
                                   atol=1e-12)

    def test_concurrent_identical_tiles_execute_once(self):
        """Satellite (d): N threads, same tile, exactly one execution."""
        # Admission must not cap concurrency below the thread count, or
        # late arrivals queue outside the coalescer and land on the cache.
        service = make_service(max_inflight=16)
        n_threads = 6
        barrier = threading.Barrier(n_threads)
        gate = threading.Event()
        entered = threading.Event()
        real_compute = service._compute_tile
        calls = []

        def slow_compute(*args, **kwargs):
            calls.append(1)
            entered.set()
            gate.wait(timeout=10.0)
            return real_compute(*args, **kwargs)

        service._compute_tile = slow_compute
        results = []
        errors = []

        def worker():
            try:
                barrier.wait(timeout=10.0)
                results.append(service.tile("d", 1, 1, 1, bandwidth=0.8))
            except BaseException as exc:  # surface in main thread
                errors.append(exc)

        threads = [threading.Thread(target=worker) for _ in range(n_threads)]
        for t in threads:
            t.start()
        assert entered.wait(timeout=10.0)
        # Release the leader only after every other thread is a follower.
        for _ in range(2000):
            if service.coalescer.coalesced == n_threads - 1:
                break
            threading.Event().wait(0.005)
        gate.set()
        for t in threads:
            t.join(timeout=10.0)
        assert not errors
        assert len(calls) == 1, "exactly one tile execution for six requests"
        assert len(results) == n_threads
        first = results[0]
        for r in results[1:]:
            assert r is first  # every follower got the leader's object
        snap = service.stats_snapshot()
        assert snap["counters"]["coalesce.waited"] == n_threads - 1
        assert snap["counters"]["tile.computed"] == 1

    def test_ingest_invalidates_only_dirty_tiles(self):
        """Satellite (d): invalidation-after-ingest, far tiles stay cached."""
        service = make_service()
        # Warm all 4 tiles at zoom 1 (tile_px=32, 2x2 lattice over 8x8 bbox).
        warm = {
            (tx, ty): service.tile("d", 1, tx, ty, bandwidth=0.4)
            for tx in range(2) for ty in range(2)
        }
        # Ingest a tight cluster well inside tile (0, 0): x,y in [1, 2].
        cluster = np.array([[1.5, 1.5], [1.6, 1.4], [1.4, 1.6]])
        report = service.ingest("d", cluster)
        assert report["added"] == 3
        assert report["invalidated_tiles"] >= 1
        # Far corner tile survived in cache (same object), dirty tile did not.
        hit_before = service.stats_snapshot()["counters"].get(
            "tile.cache_hit", 0)
        far = service.tile("d", 1, 1, 1, bandwidth=0.4)
        assert far is warm[(1, 1)]
        hit_after = service.stats_snapshot()["counters"]["tile.cache_hit"]
        assert hit_after == hit_before + 1
        near = service.tile("d", 1, 0, 0, bandwidth=0.4)
        assert near is not warm[(0, 0)]
        assert near.values.sum() > warm[(0, 0)].values.sum()
        assert near.version == 1

    def test_invalidated_surface_matches_fresh_service(self):
        """Post-ingest incremental tiles equal a cold service on final data."""
        service = make_service()
        for tx in range(2):
            for ty in range(2):
                service.tile("d", 1, tx, ty, bandwidth=0.6)
        extra = BBOX.sample_uniform(60, np.random.default_rng(9))
        service.ingest("d", extra)
        final = np.vstack([POINTS, extra])
        fresh = ServeConfig(tile_px=32, max_zoom=3)
        cold = AnalyticsService(config=fresh)
        cold.create_dataset("d", final, bbox=BBOX)
        for tx in range(2):
            for ty in range(2):
                inc = service.tile("d", 1, tx, ty, bandwidth=0.6)
                ref = cold.tile("d", 1, tx, ty, bandwidth=0.6)
                np.testing.assert_allclose(inc.values, ref.values, atol=1e-9)


class TestServiceQuery:
    def test_query_kdv_and_result_cache(self):
        service = make_service()
        request = {"kind": "kdv", "dataset": "d", "bandwidth": 0.8,
                   "size": [32, 32], "method": "grid"}
        first = service.query(request)
        second = service.query(request)
        assert first["kind"] == "kdv"
        assert first["surface_sha256"] == second["surface_sha256"]
        assert "plan" in first and first["plan"]["method"] == "grid"
        assert first["trace"]["seconds"] >= 0.0
        snap = service.stats_snapshot()
        assert snap["result_cache"]["hits"] == 1

    def test_ingest_retires_query_results(self):
        service = make_service()
        request = {"kind": "kdv", "dataset": "d", "bandwidth": 0.8,
                   "size": [32, 32], "method": "grid"}
        before = service.query(request)
        service.ingest("d", np.array([[4.0, 4.0]] * 5))
        after = service.query(request)
        assert after["surface_sha256"] != before["surface_sha256"]
        assert after["version"] == 1

    def test_query_hotspot_and_kfunction(self):
        service = make_service()
        hot = service.query({"kind": "hotspot", "dataset": "d",
                             "size": [32, 32], "n_simulations": 9, "seed": 1})
        assert hot["kind"] == "hotspot"
        assert "hotspots" in hot
        kf = service.query({"kind": "kfunction", "dataset": "d",
                            "n_thresholds": 4, "n_simulations": 5, "seed": 1})
        assert kf["kind"] == "kfunction"
        assert len(kf["rows"]) == 4
        assert {"threshold", "observed", "lower", "upper", "regime"} <= \
            set(kf["rows"][0])

    def test_query_requires_dataset(self):
        service = make_service()
        with pytest.raises(ParameterError, match="dataset"):
            service.query({"kind": "kdv", "bandwidth": 0.5})


# ---------------------------------------------------------------------------
# HTTP front-end (ephemeral port, real sockets)
# ---------------------------------------------------------------------------


@pytest.fixture()
def http_server():
    service = make_service()
    server = create_server(service, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    base = f"http://127.0.0.1:{server.server_address[1]}"
    try:
        yield base, service
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=10.0)


def _get(base, path):
    with urllib.request.urlopen(base + path, timeout=10.0) as resp:
        return resp.status, resp.headers.get("Content-Type"), resp.read()


def _post(base, path, payload):
    req = urllib.request.Request(
        base + path, data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"}, method="POST",
    )
    with urllib.request.urlopen(req, timeout=10.0) as resp:
        return resp.status, json.loads(resp.read())


class TestHTTPFrontend:
    def test_healthz_and_stats(self, http_server):
        base, _ = http_server
        status, ctype, body = _get(base, "/healthz")
        assert status == 200
        assert json.loads(body)["ok"] is True
        status, _, body = _get(base, "/stats")
        stats = json.loads(body)
        assert status == 200
        assert "counters" in stats and "tile_cache" in stats

    def test_tile_json_and_ppm(self, http_server):
        base, _ = http_server
        status, ctype, body = _get(
            base, "/v1/tile/d/1/0/0.json?bandwidth=0.8")
        assert status == 200 and ctype == "application/json"
        payload = json.loads(body)
        assert len(payload["values"]) == 32
        status, ctype, body = _get(
            base, "/v1/tile/d/1/0/0.ppm?bandwidth=0.8")
        assert status == 200 and ctype == "image/x-portable-pixmap"
        assert body.startswith(b"P6\n32 32\n255\n")
        assert len(body) == len(b"P6\n32 32\n255\n") + 32 * 32 * 3

    def test_query_roundtrip(self, http_server):
        base, _ = http_server
        status, payload = _post(base, "/v1/query", {
            "kind": "kdv", "dataset": "d", "bandwidth": 0.8,
            "size": [32, 32], "method": "grid",
        })
        assert status == 200
        assert payload["kind"] == "kdv" and "surface_sha256" in payload

    def test_create_and_ingest_dataset(self, http_server):
        base, service = http_server
        status, payload = _post(base, "/v1/datasets/fresh", {
            "points": [[1.0, 1.0], [2.0, 2.0], [3.0, 3.0]],
            "bbox": [0.0, 0.0, 4.0, 4.0],
        })
        assert status == 201
        assert payload["n"] == 3
        status, payload = _post(base, "/v1/ingest/fresh", {
            "points": [[2.5, 2.5]],
        })
        assert status == 200
        assert payload["added"] == 1 and payload["version"] == 1
        assert "fresh" in {row["name"] for row in service.datasets()}

    def test_unknown_dataset_404(self, http_server):
        base, _ = http_server
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(base, "/v1/tile/ghost/1/0/0.json?bandwidth=0.8")
        assert excinfo.value.code == 404
        assert json.loads(excinfo.value.read())["error"]

    def test_missing_bandwidth_400(self, http_server):
        base, _ = http_server
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(base, "/v1/tile/d/1/0/0.json")
        assert excinfo.value.code == 400

    def test_unknown_route_404(self, http_server):
        base, _ = http_server
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(base, "/v1/teleport")
        assert excinfo.value.code == 404

    def test_stats_reflect_traffic(self, http_server):
        base, service = http_server
        _get(base, "/v1/tile/d/1/0/0.json?bandwidth=0.8")
        _get(base, "/v1/tile/d/1/0/0.json?bandwidth=0.8")
        snap = service.stats_snapshot()
        assert snap["counters"]["requests.total"] >= 2
        assert snap["tile_cache_hit_rate"] > 0.0
        assert "p50" in snap["latency_ms"]["tile"]
