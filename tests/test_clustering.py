"""Tests for DBSCAN and hotspot extraction."""

import numpy as np
import pytest

from repro.core.clustering import dbscan, extract_hotspots, label_components
from repro.core.kdv import kde_grid
from repro.data import csr, thomas
from repro.errors import ParameterError
from repro.geometry import BoundingBox, pairwise_distances
from repro.raster import DensityGrid


def brute_dbscan(points, eps, min_pts):
    """Reference DBSCAN with an O(n^2) neighbourhood table."""
    d = pairwise_distances(points)
    nbrs = [np.flatnonzero(row <= eps) for row in d]
    core = [len(nb) >= min_pts for nb in nbrs]
    labels = np.full(points.shape[0], -1)
    cluster = 0
    for seed in range(points.shape[0]):
        if labels[seed] != -1 or not core[seed]:
            continue
        labels[seed] = cluster
        frontier = list(nbrs[seed])
        while frontier:
            j = frontier.pop()
            if labels[j] == -1:
                labels[j] = cluster
                if core[j]:
                    frontier.extend(nbrs[j])
        cluster += 1
    return labels


def same_partition(a, b):
    """Cluster labels match up to renaming; noise must match exactly."""
    if (a == -1).tolist() != (b == -1).tolist():
        return False
    mapping = {}
    for x, y in zip(a, b):
        if x == -1:
            continue
        if x in mapping and mapping[x] != y:
            return False
        mapping[x] = y
    return len(set(mapping.values())) == len(mapping)


class TestDBSCAN:
    def test_matches_brute_force(self, bbox):
        pts = np.vstack([thomas(150, 3, 0.3, bbox, seed=11), csr(30, bbox, seed=12)])
        got = dbscan(pts, eps=0.5, min_pts=5)
        ref = brute_dbscan(pts, 0.5, 5)
        assert same_partition(got, ref)

    def test_well_separated_clusters(self):
        rng = np.random.default_rng(13)
        a = rng.normal([0, 0], 0.2, size=(40, 2))
        b = rng.normal([10, 10], 0.2, size=(40, 2))
        labels = dbscan(np.vstack([a, b]), eps=1.0, min_pts=4)
        assert labels.max() == 1
        assert len(set(labels[:40])) == 1
        assert len(set(labels[40:])) == 1
        assert labels[0] != labels[40]

    def test_all_noise_when_sparse(self, bbox):
        pts = csr(30, bbox, seed=14)
        labels = dbscan(pts, eps=0.01, min_pts=3)
        assert (labels == -1).all()

    def test_single_cluster_dense(self):
        pts = np.random.default_rng(15).normal(size=(60, 2)) * 0.1
        labels = dbscan(pts, eps=0.5, min_pts=3)
        assert (labels == 0).all()

    def test_min_pts_one_no_noise(self, small_points):
        labels = dbscan(small_points, eps=0.5, min_pts=1)
        assert (labels >= 0).all()

    def test_validation(self, small_points):
        with pytest.raises(ParameterError):
            dbscan(small_points, eps=0.0)
        with pytest.raises(ParameterError):
            dbscan(small_points, eps=1.0, min_pts=0)


class TestLabelComponents:
    def test_two_blobs(self):
        mask = np.zeros((6, 6), dtype=bool)
        mask[0:2, 0:2] = True
        mask[4:6, 4:6] = True
        labels, count = label_components(mask)
        assert count == 2
        assert labels[0, 0] != labels[5, 5]
        assert labels[3, 3] == -1

    def test_diagonal_not_connected(self):
        mask = np.zeros((2, 2), dtype=bool)
        mask[0, 0] = mask[1, 1] = True
        _, count = label_components(mask)
        assert count == 2  # 4-connectivity

    def test_empty_mask(self):
        labels, count = label_components(np.zeros((3, 3), dtype=bool))
        assert count == 0
        assert (labels == -1).all()

    def test_full_mask(self):
        _, count = label_components(np.ones((4, 5), dtype=bool))
        assert count == 1

    def test_rejects_1d(self):
        with pytest.raises(ParameterError):
            label_components(np.zeros(5, dtype=bool))


class TestExtractHotspots:
    def test_two_cluster_dataset_two_hotspots(self, bbox):
        centers = np.array([[4.0, 4.0], [16.0, 8.0]])
        pts = thomas(400, 2, 0.5, bbox, seed=16, centers=centers)
        grid = kde_grid(pts, bbox, (64, 40), 1.0)
        spots = extract_hotspots(grid, quantile=0.9, min_pixels=3)
        assert len(spots) >= 2
        found = np.array([s.peak for s in spots[:2]])
        # Each true centre is near some extracted peak.
        for c in centers:
            assert np.sqrt(((found - c) ** 2).sum(axis=1)).min() < 2.0

    def test_sorted_by_mass(self, bbox, clustered_points):
        grid = kde_grid(clustered_points, bbox, (48, 32), 1.0)
        spots = extract_hotspots(grid, quantile=0.9)
        masses = [s.mass for s in spots]
        assert masses == sorted(masses, reverse=True)

    def test_min_pixels_filters_speckle(self, bbox, clustered_points):
        grid = kde_grid(clustered_points, bbox, (48, 32), 0.4)
        all_spots = extract_hotspots(grid, quantile=0.97, min_pixels=1)
        big_spots = extract_hotspots(grid, quantile=0.97, min_pixels=4)
        assert len(big_spots) <= len(all_spots)

    def test_hotspot_fields_consistent(self, bbox, clustered_points):
        grid = kde_grid(clustered_points, bbox, (48, 32), 1.0)
        spot = extract_hotspots(grid, quantile=0.9)[0]
        assert spot.n_pixels == spot.pixels.shape[0]
        assert spot.peak_value <= grid.max
        assert bbox.contains([spot.centroid]).all()
        assert spot.area > 0

    def test_quantile_validation(self, bbox, clustered_points):
        grid = kde_grid(clustered_points, bbox, (16, 16), 1.0)
        with pytest.raises(ParameterError):
            extract_hotspots(grid, quantile=1.5)
        with pytest.raises(ParameterError):
            extract_hotspots(grid, min_pixels=0)
