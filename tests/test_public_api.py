"""Contract tests on the public API surface itself."""

import inspect

import pytest

import repro


class TestPublicSurface:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"repro.__all__ lists missing name {name}"

    def test_no_duplicates_in_all(self):
        assert len(repro.__all__) == len(set(repro.__all__))

    def test_public_callables_documented(self):
        """Every public function/class carries a docstring."""
        undocumented = []
        for name in repro.__all__:
            obj = getattr(repro, name)
            if inspect.isfunction(obj) or inspect.isclass(obj):
                if not (obj.__doc__ or "").strip():
                    undocumented.append(name)
        assert not undocumented, f"missing docstrings: {undocumented}"

    def test_submodules_have_docstrings(self):
        import importlib
        import pkgutil

        missing = []
        for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
            module = importlib.import_module(info.name)
            if not (module.__doc__ or "").strip():
                missing.append(info.name)
        assert not missing, f"modules without docstrings: {missing}"

    def test_version_present(self):
        parts = repro.__version__.split(".")
        assert len(parts) == 3 and all(p.isdigit() for p in parts)

    def test_core_tools_exported(self):
        """The paper's Table 1 inventory is all reachable from the top level."""
        table1 = [
            "kde_grid",          # KDV
            "idw_grid",          # IDW
            "kriging_grid",      # Kriging
            "k_function",        # K-function
            "morans_i",          # Moran's I
            "general_g",         # Getis-Ord General G
        ]
        for name in table1:
            assert callable(getattr(repro, name))

    def test_variants_exported(self):
        for name in ("nkdv", "stkdv", "stnkdv", "network_k_function", "st_k_function"):
            assert callable(getattr(repro, name))

    def test_result_types_exported(self):
        for name in ("Diagnostics", "NetworkKResult", "STKResult"):
            assert name in repro.__all__
            assert inspect.isclass(getattr(repro, name))


class TestKwargConventions:
    """Every entry point exposing seed/workers/backend follows one shape:
    exactly these names, ``None`` defaults (honouring ``REPRO_WORKERS`` /
    ``REPRO_BACKEND``), ordered seed -> workers -> backend after the
    algorithm parameters."""

    TRIO = ("seed", "workers", "backend")

    def _entry_points(self):
        for name in sorted(repro.__all__):
            obj = getattr(repro, name)
            if inspect.isfunction(obj):
                yield name, obj
        yield "HotspotAnalysis.run", repro.HotspotAnalysis.run
        yield "parallel.parallel_map", repro.parallel.parallel_map

    def _violations(self):
        problems = []
        for name, fn in self._entry_points():
            params = list(inspect.signature(fn).parameters.values())
            names = [p.name for p in params]
            trio = [p for p in params if p.name in self.TRIO]
            if not trio:
                continue
            for p in trio:
                if p.default is not None:
                    problems.append(
                        f"{name}: {p.name} default is {p.default!r}, not None"
                    )
                if p.kind == inspect.Parameter.POSITIONAL_ONLY:
                    problems.append(f"{name}: {p.name} is positional-only")
            # Relative order is seed -> workers -> backend ...
            idx = [names.index(p.name) for p in trio]
            want = [n for n in self.TRIO if n in names]
            if [names[i] for i in sorted(idx)] != want:
                problems.append(f"{name}: trio order is {names}")
            # ... and nothing but trio members may follow the first one
            # (the trio sits after every algorithm parameter).
            tail = names[min(idx):]
            extras = [n for n in tail if n not in self.TRIO]
            if extras:
                problems.append(
                    f"{name}: algorithm params {extras} follow the "
                    "seed/workers/backend block"
                )
        return problems

    def test_trio_signature_convention(self):
        problems = self._violations()
        assert not problems, "\n".join(problems)

    def test_trio_is_widely_adopted(self):
        """Smoke check the audit actually sees the surface (no silent
        pass because nothing matched)."""
        with_trio = [
            name for name, fn in self._entry_points()
            if any(p in inspect.signature(fn).parameters for p in self.TRIO)
        ]
        assert len(with_trio) >= 20
