"""Contract tests on the public API surface itself."""

import inspect

import pytest

import repro


class TestPublicSurface:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"repro.__all__ lists missing name {name}"

    def test_no_duplicates_in_all(self):
        assert len(repro.__all__) == len(set(repro.__all__))

    def test_public_callables_documented(self):
        """Every public function/class carries a docstring."""
        undocumented = []
        for name in repro.__all__:
            obj = getattr(repro, name)
            if inspect.isfunction(obj) or inspect.isclass(obj):
                if not (obj.__doc__ or "").strip():
                    undocumented.append(name)
        assert not undocumented, f"missing docstrings: {undocumented}"

    def test_submodules_have_docstrings(self):
        import importlib
        import pkgutil

        missing = []
        for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
            module = importlib.import_module(info.name)
            if not (module.__doc__ or "").strip():
                missing.append(info.name)
        assert not missing, f"modules without docstrings: {missing}"

    def test_version_present(self):
        parts = repro.__version__.split(".")
        assert len(parts) == 3 and all(p.isdigit() for p in parts)

    def test_core_tools_exported(self):
        """The paper's Table 1 inventory is all reachable from the top level."""
        table1 = [
            "kde_grid",          # KDV
            "idw_grid",          # IDW
            "kriging_grid",      # Kriging
            "k_function",        # K-function
            "morans_i",          # Moran's I
            "general_g",         # Getis-Ord General G
        ]
        for name in table1:
            assert callable(getattr(repro, name))

    def test_variants_exported(self):
        for name in ("nkdv", "stkdv", "stnkdv", "network_k_function", "st_k_function"):
            assert callable(getattr(repro, name))
