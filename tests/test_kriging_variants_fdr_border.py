"""Tests for simple/universal kriging, FDR control, and border-corrected K."""

import numpy as np
import pytest

from repro.core.autocorrelation import fdr_mask, fdr_threshold
from repro.core.interpolation import (
    VariogramModel,
    ordinary_kriging,
    simple_kriging,
    universal_kriging,
)
from repro.core.kfunction import border_ripley_k, ripley_k
from repro.data import csr, thomas
from repro.errors import DataError, ParameterError
from repro.geometry import BoundingBox


@pytest.fixture(scope="module")
def model():
    return VariogramModel("exponential", nugget=0.0, psill=1.0, range_=3.0)


@pytest.fixture(scope="module")
def stationary_field():
    rng = np.random.default_rng(501)
    pts = rng.uniform(0, 10, size=(70, 2))
    vals = 5.0 + np.sin(pts[:, 0] * 0.8) * np.cos(pts[:, 1] * 0.6)
    return pts, vals


class TestSimpleKriging:
    def test_exact_at_samples(self, stationary_field, model):
        pts, vals = stationary_field
        res = simple_kriging(pts, vals, pts, model, mean=5.0)
        np.testing.assert_allclose(res.predictions, vals, atol=1e-6)

    def test_far_query_returns_mean(self, stationary_field, model):
        pts, vals = stationary_field
        res = simple_kriging(pts, vals, [[1e5, 1e5]], model, mean=5.0)
        assert res.predictions[0] == pytest.approx(5.0, abs=1e-6)
        assert res.variances[0] == pytest.approx(model.sill, rel=1e-6)

    def test_variance_zero_at_samples(self, stationary_field, model):
        pts, vals = stationary_field
        res = simple_kriging(pts, vals, pts[:5], model, mean=5.0)
        assert res.variances.max() < 1e-6

    def test_close_to_ordinary_with_true_mean(self, stationary_field, model, rng):
        pts, vals = stationary_field
        queries = rng.uniform(2, 8, size=(15, 2))
        sk = simple_kriging(pts, vals, queries, model, mean=float(vals.mean()))
        ok = ordinary_kriging(pts, vals, queries, model)
        np.testing.assert_allclose(sk.predictions, ok.predictions, atol=0.25)


class TestUniversalKriging:
    def test_recovers_linear_trend(self, model, rng):
        """A pure linear field must be reproduced exactly beyond the data."""
        pts = rng.uniform(0, 10, size=(80, 2))
        vals = 2.0 + 0.5 * pts[:, 0] - 0.3 * pts[:, 1]
        queries = np.array([[12.0, 12.0], [-2.0, 5.0]])  # extrapolation!
        res = universal_kriging(pts, vals, queries, model, k_neighbors=None)
        expected = 2.0 + 0.5 * queries[:, 0] - 0.3 * queries[:, 1]
        np.testing.assert_allclose(res.predictions, expected, atol=1e-5)

    def test_ordinary_biased_under_trend_uk_not(self, model, rng):
        pts = rng.uniform(0, 10, size=(80, 2))
        vals = 0.8 * pts[:, 0]
        query = np.array([[13.0, 5.0]])  # beyond the sampled range
        ok = ordinary_kriging(pts, vals, query, model, k_neighbors=None)
        uk = universal_kriging(pts, vals, query, model, k_neighbors=None)
        truth = 0.8 * 13.0
        assert abs(uk.predictions[0] - truth) < abs(ok.predictions[0] - truth)

    def test_exact_at_samples(self, stationary_field, model):
        pts, vals = stationary_field
        res = universal_kriging(pts, vals, pts[:10], model)
        np.testing.assert_allclose(res.predictions, vals[:10], atol=1e-5)

    def test_needs_enough_samples(self, model):
        with pytest.raises(DataError):
            universal_kriging([[0, 0], [1, 1]], [1.0, 2.0], [[0.5, 0.5]], model)
        with pytest.raises(ParameterError):
            universal_kriging(
                np.random.default_rng(1).uniform(size=(10, 2)),
                np.arange(10.0), [[0.5, 0.5]], model, k_neighbors=2,
            )


class TestFDR:
    def test_null_p_values_mostly_survive(self, rng):
        p = rng.uniform(size=500)
        mask = fdr_mask(p, alpha=0.05)
        # Under the global null BH rejects nothing in most realisations;
        # in any case far fewer than the naive 5% * 500 = 25.
        assert mask.sum() <= 5

    def test_strong_signals_rejected(self, rng):
        p = np.concatenate([rng.uniform(size=200), np.full(20, 1e-8)])
        mask = fdr_mask(p, alpha=0.05)
        assert mask[-20:].all()  # every true signal survives
        assert mask[:200].sum() <= 5  # almost no false rejections

    def test_threshold_monotone_in_alpha(self, rng):
        p = rng.uniform(size=100) * 0.2
        assert fdr_threshold(p, 0.01) <= fdr_threshold(p, 0.10)

    def test_all_tiny_all_rejected(self):
        mask = fdr_mask(np.full(10, 1e-6))
        assert mask.all()

    def test_validation(self):
        with pytest.raises(DataError):
            fdr_mask([])
        with pytest.raises(DataError):
            fdr_mask([1.5])
        with pytest.raises(ParameterError):
            fdr_mask([0.5], alpha=0.0)

    def test_integrates_with_local_moran(self, random_points, rng):
        from repro.core.autocorrelation import knn_weights, local_morans_i

        w = knn_weights(random_points, 6)
        z = rng.normal(size=random_points.shape[0])  # pure noise
        local = local_morans_i(z, w, permutations=99, seed=502)
        naive_hits = (local.p_values < 0.05).sum()
        fdr_hits = fdr_mask(local.p_values, 0.05).sum()
        assert fdr_hits <= naive_hits  # FDR can only tighten


class TestBorderRipleyK:
    BBOX = BoundingBox(0.0, 0.0, 20.0, 12.0)

    def test_reduces_csr_bias(self):
        pts = csr(800, self.BBOX, seed=511)
        ts = np.array([1.0, 2.0])
        truth = np.pi * ts ** 2
        plain = ripley_k(pts, ts, self.BBOX)
        border = border_ripley_k(pts, ts, self.BBOX)
        assert np.abs(border - truth).sum() < np.abs(plain - truth).sum()

    @pytest.mark.parametrize("method", ["naive", "grid", "kdtree"])
    def test_methods_agree(self, method):
        pts = csr(300, self.BBOX, seed=512)
        ts = np.array([0.5, 1.5])
        ref = border_ripley_k(pts, ts, self.BBOX, method="grid")
        got = border_ripley_k(pts, ts, self.BBOX, method=method)
        np.testing.assert_allclose(got, ref, rtol=1e-12)

    def test_nan_when_no_interior(self):
        pts = csr(100, self.BBOX, seed=513)
        out = border_ripley_k(pts, [100.0], self.BBOX)
        assert np.isnan(out[0])

    def test_clustered_still_above_csr(self):
        clu = thomas(500, 4, 0.5, self.BBOX, seed=514)
        uni = csr(500, self.BBOX, seed=515)
        s = np.array([1.0])
        assert border_ripley_k(clu, s, self.BBOX)[0] > 2 * border_ripley_k(
            uni, s, self.BBOX
        )[0]
