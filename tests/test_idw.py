"""Tests for inverse distance weighting."""

import numpy as np
import pytest

from repro.core.interpolation import idw_grid, idw_predict
from repro.errors import ParameterError
from repro.geometry import BoundingBox


@pytest.fixture(scope="module")
def samples():
    rng = np.random.default_rng(71)
    pts = rng.uniform(0, 10, size=(80, 2))
    vals = np.sin(pts[:, 0] * 0.8) + 0.3 * pts[:, 1]
    return pts, vals


class TestExactInterpolation:
    @pytest.mark.parametrize("method,kw", [
        ("naive", {}),
        ("knn", {"k": 8}),
        ("cutoff", {"radius": 2.0}),
    ])
    def test_exact_at_samples(self, method, kw, samples):
        pts, vals = samples
        pred = idw_predict(pts, vals, pts, method=method, **kw)
        np.testing.assert_allclose(pred, vals, atol=1e-9)

    def test_coincident_samples_pick_one(self):
        pts = np.array([[1.0, 1.0], [1.0, 1.0]])
        vals = np.array([2.0, 4.0])
        pred = idw_predict(pts, vals, [[1.0, 1.0]])
        assert pred[0] in (2.0, 4.0)


class TestPredictions:
    def test_within_sample_range(self, samples):
        """IDW is a convex combination: predictions stay in [min, max]."""
        pts, vals = samples
        rng = np.random.default_rng(72)
        queries = rng.uniform(0, 10, size=(50, 2))
        pred = idw_predict(pts, vals, queries)
        assert pred.min() >= vals.min() - 1e-9
        assert pred.max() <= vals.max() + 1e-9

    def test_far_query_approaches_mean_with_low_power(self, samples):
        pts, vals = samples
        pred = idw_predict(pts, vals, [[1e6, 1e6]], power=2.0)
        # At extreme range all weights are ~equal: prediction ~ mean.
        assert pred[0] == pytest.approx(vals.mean(), abs=0.05 * abs(vals).max())

    def test_higher_power_more_local(self, samples):
        pts, vals = samples
        nearest = pts[0] + np.array([0.01, 0.0])
        soft = idw_predict(pts, vals, [nearest], power=1.0)[0]
        sharp = idw_predict(pts, vals, [nearest], power=8.0)[0]
        assert abs(sharp - vals[0]) <= abs(soft - vals[0]) + 1e-12

    def test_knn_converges_to_naive_with_k_equals_n(self, samples):
        pts, vals = samples
        rng = np.random.default_rng(73)
        queries = rng.uniform(0, 10, size=(20, 2))
        a = idw_predict(pts, vals, queries, method="naive")
        b = idw_predict(pts, vals, queries, method="knn", k=pts.shape[0])
        np.testing.assert_allclose(a, b, rtol=1e-9)

    def test_cutoff_fallback_nearest(self, samples):
        pts, vals = samples
        pred = idw_predict(pts, vals, [[50.0, 50.0]], method="cutoff", radius=1.0)
        # No sample within radius 1 of (50, 50): nearest-sample fallback.
        d = np.sqrt(((pts - [50.0, 50.0]) ** 2).sum(axis=1))
        assert pred[0] == vals[np.argmin(d)]

    def test_chunking_invariant(self, samples):
        pts, vals = samples
        queries = pts[:25] + 0.05
        a = idw_predict(pts, vals, queries, chunk=4)
        b = idw_predict(pts, vals, queries, chunk=10_000)
        np.testing.assert_allclose(a, b, rtol=1e-12)


class TestIdwGrid:
    def test_grid_shape_and_window(self, samples):
        pts, vals = samples
        bbox = BoundingBox(0, 0, 10, 10)
        grid = idw_grid(pts, vals, bbox, (16, 12), method="knn", k=6)
        assert grid.shape == (16, 12)
        assert grid.bbox is bbox

    def test_methods_similar_smooth_field(self, samples):
        pts, vals = samples
        bbox = BoundingBox(0, 0, 10, 10)
        naive = idw_grid(pts, vals, bbox, (10, 10), method="naive")
        knn = idw_grid(pts, vals, bbox, (10, 10), method="knn", k=30)
        assert np.abs(naive.values - knn.values).max() < 0.5


class TestValidation:
    def test_unknown_method(self, samples):
        pts, vals = samples
        with pytest.raises(ParameterError, match="unknown IDW"):
            idw_predict(pts, vals, [[0, 0]], method="spline")

    def test_cutoff_needs_radius(self, samples):
        pts, vals = samples
        with pytest.raises(ParameterError, match="radius"):
            idw_predict(pts, vals, [[0, 0]], method="cutoff")

    def test_bad_power(self, samples):
        pts, vals = samples
        with pytest.raises(ParameterError):
            idw_predict(pts, vals, [[0, 0]], power=0.0)

    def test_bad_k(self, samples):
        pts, vals = samples
        with pytest.raises(ParameterError):
            idw_predict(pts, vals, [[0, 0]], method="knn", k=0)
